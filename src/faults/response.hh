/**
 * @file
 * Fault-response bookkeeping: retry backlog, backoff, degraded mode.
 *
 * The response side of the fault subsystem lives in HmaSystem (it
 * owns the placement and the bandwidth model); this class holds the
 * pure state it threads through the run: cross-tier remaps that
 * failed because the surviving tier was full (retried with
 * exponential backoff, dropped — and the run degraded — after
 * maxRetries), correctable-strike counts per page, and the sticky
 * degraded-mode flag that keeps a capacity-starved run completing
 * instead of aborting.
 *
 * sweepVictims picks the emergency-demotion victims of a capacity
 * loss: the coldest unpinned HBM pages first, ties broken by page
 * id, so the sweep is deterministic and sacrifices as little
 * performance as the budget allows.
 */

#ifndef RAMP_FAULTS_RESPONSE_HH
#define RAMP_FAULTS_RESPONSE_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/types.hh"
#include "placement/map.hh"
#include "placement/profile.hh"

namespace ramp
{

/** One cross-tier remap still owed to a retired page. */
struct PendingRemap
{
    PageId page = invalidPage;

    /** Failed attempts so far. */
    std::uint32_t attempts = 0;

    /** Injector epoch the next attempt is due. */
    std::uint64_t retryEpoch = 0;
};

/** Mutable response state of one run. */
class ResponseState
{
  public:
    explicit ResponseState(std::uint32_t max_retries = 8);

    /** Queue a failed cross-tier remap; first retry next epoch. */
    void queueRemap(PageId page, std::uint64_t epoch);

    /** Pages due a retry this epoch, ascending page id. */
    std::vector<PageId> dueRemaps(std::uint64_t epoch) const;

    /** A retry succeeded: drop the page from the backlog. */
    void resolveRemap(PageId page);

    /**
     * A retry failed: push the page out by an exponentially growing
     * delay (1, 2, 4, ... epochs, capped at 64).
     * @return true when the page exhausted maxRetries and was
     *         dropped — the caller records degradation
     */
    bool backoff(PageId page, std::uint64_t epoch);

    /** Remaps still owed. */
    std::size_t backlog() const { return pending_.size(); }

    /** Lifetime retry attempts (telemetry). */
    std::uint64_t retries() const { return retries_; }

    /** @{ @name Degraded mode (sticky once entered) */
    bool degraded() const { return degraded_; }
    void setDegraded() { degraded_ = true; }
    /** @} */

    /** Count a correctable strike against a page. */
    void noteCorrectable(PageId page, std::uint64_t count = 1);

    /** Correctable strikes a page has absorbed. */
    std::uint64_t correctableCount(PageId page) const;

  private:
    std::uint32_t maxRetries_;
    std::vector<PendingRemap> pending_;
    std::unordered_map<PageId, std::uint64_t> correctable_;
    std::uint64_t retries_ = 0;
    bool degraded_ = false;
};

/**
 * Emergency-demotion victims for a capacity-loss sweep: up to
 * `budget` unpinned HBM-resident pages, coldest first by the run's
 * live profile (untouched pages count zero), page id on ties.
 */
std::vector<PageId> sweepVictims(const PlacementMap &map,
                                 const PageProfile &profile,
                                 std::uint64_t budget);

} // namespace ramp

#endif // RAMP_FAULTS_RESPONSE_HH
