/**
 * @file
 * Deterministic online fault injection against a live HMA run.
 *
 * The injector is driven by the simulator at its own epoch boundary
 * (epochCycles) and produces the faults that land in that epoch,
 * from three sources evaluated in a fixed order:
 *
 *  1. Script — the `--inject` plan (plan.hh), exact page/epoch
 *     campaigns that reproduce bit-for-bit.
 *  2. Poisson — arrivals at a mean rate derived from the FaultSim
 *     FitRates (faultsPerEpoch), striking uniformly over the pages
 *     the run has touched; a configured share arrives uncorrected.
 *  3. Hammer — RowHammer-style: pages whose per-epoch activation
 *     count crosses the threshold disturb their address neighbour
 *     (page + 1), escalating to an uncorrected strike at twice the
 *     threshold. Hot pages become risky pages.
 *
 * Everything draws from one explicitly seeded Rng and iterates in
 * sorted/first-touch order, so the same seed produces the same fault
 * schedule regardless of --jobs. The injector only *produces*
 * faults; the response (retirement, sweeps, degraded mode) lives in
 * HmaSystem + PlacementMap (see DESIGN.md §12).
 */

#ifndef RAMP_FAULTS_INJECTOR_HH
#define RAMP_FAULTS_INJECTOR_HH

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/rng.hh"
#include "common/types.hh"
#include "faults/plan.hh"
#include "reliability/fit.hh"

namespace ramp
{

/** Which injector source produced a fault. */
enum class FaultSource : std::uint8_t
{
    Script,
    Poisson,
    Hammer,
};

/** Stable spelling ("script", "poisson", "hammer"). */
const char *faultSourceName(FaultSource source);

/** One fault the injector landed (input to the response side). */
struct InjectedFault
{
    FaultEventKind kind = FaultEventKind::Uncorrected;
    FaultSource source = FaultSource::Script;

    /** Struck page (invalidPage for capacity loss). */
    PageId page = invalidPage;

    /** Tier losing capacity (CapacityLoss only). */
    MemoryId tier = MemoryId::HBM;

    /** Absolute capacity pages lost (0 = resolve pct). */
    std::uint64_t pages = 0;

    /** Capacity lost as a percentage of the tier. */
    double pct = 0;

    /** Correctable burst size. */
    std::uint64_t count = 1;
};

/** Injector knobs. All sources off by default. */
struct InjectorConfig
{
    /** Scripted events (parseFaultPlan of `--inject`). */
    std::vector<FaultEvent> script;

    /** Rng seed for the Poisson source. */
    std::uint64_t seed = 1;

    /** Injector epoch length in cycles. */
    Cycle epochCycles = 3'200'000;

    /** Mean Poisson arrivals per epoch (0 = source off). */
    double poissonFaultsPerEpoch = 0;

    /** Fraction of Poisson arrivals that are uncorrected. */
    double poissonUncorrectedShare = 0.05;

    /** Activations per epoch that trigger hammer (0 = off). */
    std::uint32_t hammerThreshold = 0;

    /** Response: emergency-demotion budget per injector epoch. */
    std::uint32_t sweepCapPages = 256;

    /** Response: remap retry attempts before giving up (degrade). */
    std::uint32_t maxRetries = 8;

    /** True when any source can fire. */
    bool active() const
    {
        return !script.empty() || poissonFaultsPerEpoch > 0 ||
               hammerThreshold > 0;
    }

    /**
     * Mean fault arrivals per epoch for a device population at the
     * given FIT rates: total FIT x chips / 1e9 device-hours, scaled
     * to the epoch's length in hours. This seeds the Poisson source
     * from the same numbers the offline FaultSim consumes. Real FIT
     * magnitudes produce vanishing per-epoch means at simulated-
     * cycle timescales, so campaigns pass accelerated hours (or a
     * fitBoost-scaled FitRates) here on purpose.
     */
    static double faultsPerEpoch(const FitRates &rates, int chips,
                                 double hours_per_epoch);
};

/** Produces the faults of each epoch; one instance per run. */
class FaultInjector
{
  public:
    explicit FaultInjector(InjectorConfig config);

    const InjectorConfig &config() const { return config_; }
    Cycle epochCycles() const { return config_.epochCycles; }

    /**
     * Observe one demand access: records first-touch pages (the
     * Poisson victim population) and, when the hammer source is on,
     * counts per-page activations for this epoch.
     */
    void onAccess(PageId page, bool is_write, MemoryId mem);

    /**
     * Epoch boundary: the faults landing in epoch `epoch` (1-based),
     * in deterministic order — scripted events first (script order,
     * including any catch-up from skipped epochs), then Poisson
     * arrivals, then hammer victims in ascending page order.
     */
    std::vector<InjectedFault> onEpoch(std::uint64_t epoch);

    /** Lifetime faults produced, by source (telemetry/tests). */
    std::uint64_t produced() const { return produced_; }

  private:
    InjectorConfig config_;
    Rng rng_;
    std::vector<PageId> seen_;          ///< first-touch order
    std::unordered_set<PageId> seenSet_;
    std::unordered_map<PageId, std::uint32_t> activations_;
    std::vector<bool> fired_; ///< script events already landed
    std::uint64_t produced_ = 0;
};

} // namespace ramp

#endif // RAMP_FAULTS_INJECTOR_HH
