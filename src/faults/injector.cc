#include "faults/injector.hh"

#include <algorithm>

namespace ramp
{

const char *
faultSourceName(FaultSource source)
{
    switch (source) {
      case FaultSource::Script: return "script";
      case FaultSource::Poisson: return "poisson";
      case FaultSource::Hammer: return "hammer";
    }
    return "?";
}

double
InjectorConfig::faultsPerEpoch(const FitRates &rates, int chips,
                               double hours_per_epoch)
{
    return rates.total() * static_cast<double>(chips) / 1e9 *
           hours_per_epoch;
}

FaultInjector::FaultInjector(InjectorConfig config)
    : config_(std::move(config)), rng_(config_.seed),
      fired_(config_.script.size(), false)
{
}

void
FaultInjector::onAccess(PageId page, bool is_write, MemoryId mem)
{
    (void)is_write;
    (void)mem;
    if (seenSet_.insert(page).second)
        seen_.push_back(page);
    if (config_.hammerThreshold > 0)
        ++activations_[page];
}

std::vector<InjectedFault>
FaultInjector::onEpoch(std::uint64_t epoch)
{
    std::vector<InjectedFault> faults;

    // 1. Scripted events, in script order. Firing on `<=` instead
    // of `==` catches up events scheduled before the first boundary
    // or into epochs the run never reached cleanly.
    for (std::size_t i = 0; i < config_.script.size(); ++i) {
        if (fired_[i] || config_.script[i].epoch > epoch)
            continue;
        fired_[i] = true;
        const FaultEvent &event = config_.script[i];
        InjectedFault fault;
        fault.kind = event.kind;
        fault.source = FaultSource::Script;
        fault.page = event.page;
        fault.tier = event.tier;
        fault.pages = event.pages;
        fault.pct = event.pct;
        fault.count = event.count;
        faults.push_back(fault);
    }

    // 2. Poisson arrivals over the touched-page population.
    if (config_.poissonFaultsPerEpoch > 0 && !seen_.empty()) {
        const std::uint64_t arrivals =
            rng_.nextPoisson(config_.poissonFaultsPerEpoch);
        for (std::uint64_t i = 0; i < arrivals; ++i) {
            InjectedFault fault;
            fault.source = FaultSource::Poisson;
            fault.page = seen_[rng_.nextRange(seen_.size())];
            fault.kind = rng_.nextDouble() <
                                 config_.poissonUncorrectedShare
                             ? FaultEventKind::Uncorrected
                             : FaultEventKind::Correctable;
            faults.push_back(fault);
        }
    }

    // 3. Hammer: aggressors over the threshold disturb their
    // neighbour page. Iterate in ascending page order — the counts
    // live in an unordered_map, and the schedule must not depend on
    // hash iteration order.
    if (config_.hammerThreshold > 0 && !activations_.empty()) {
        std::vector<std::pair<PageId, std::uint32_t>> hot;
        for (const auto &[page, count] : activations_)
            if (count >= config_.hammerThreshold)
                hot.emplace_back(page, count);
        std::sort(hot.begin(), hot.end());
        for (const auto &[aggressor, count] : hot) {
            InjectedFault fault;
            fault.source = FaultSource::Hammer;
            fault.page = aggressor + 1; // adjacent-row victim
            fault.kind = count >= 2 * config_.hammerThreshold
                             ? FaultEventKind::Uncorrected
                             : FaultEventKind::Correctable;
            faults.push_back(fault);
        }
        activations_.clear();
    }

    produced_ += faults.size();
    return faults;
}

} // namespace ramp
