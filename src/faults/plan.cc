#include "faults/plan.hh"

#include <cstdlib>
#include <sstream>

namespace ramp
{

namespace
{

/** Trimmed copy (the grammar ignores whitespace around tokens). */
std::string
trim(const std::string &text)
{
    const auto begin = text.find_first_not_of(" \t");
    if (begin == std::string::npos)
        return "";
    const auto end = text.find_last_not_of(" \t");
    return text.substr(begin, end - begin + 1);
}

std::vector<std::string>
splitOn(const std::string &text, char sep)
{
    std::vector<std::string> parts;
    std::string part;
    std::istringstream in(text);
    while (std::getline(in, part, sep))
        parts.push_back(trim(part));
    return parts;
}

bool
parseNumber(const std::string &text, double &value)
{
    char *end = nullptr;
    value = std::strtod(text.c_str(), &end);
    return end != text.c_str() && *end == '\0';
}

bool
parseField(const std::string &field, FaultEvent &event,
           std::string &error)
{
    const auto eq = field.find('=');
    if (eq == std::string::npos) {
        error = "fault plan: field '" + field + "' needs key=value";
        return false;
    }
    const std::string key = trim(field.substr(0, eq));
    const std::string text = trim(field.substr(eq + 1));
    if (key == "tier") {
        if (text == "hbm") {
            event.tier = MemoryId::HBM;
        } else if (text == "ddr") {
            event.tier = MemoryId::DDR;
        } else {
            error = "fault plan: unknown tier '" + text +
                    "' (want hbm|ddr)";
            return false;
        }
        return true;
    }
    double value = 0;
    if (!parseNumber(text, value) || value < 0) {
        error = "fault plan: bad number in '" + field + "'";
        return false;
    }
    if (key == "page") {
        event.page = static_cast<PageId>(value);
    } else if (key == "epoch") {
        event.epoch = static_cast<std::uint64_t>(value);
    } else if (key == "count") {
        event.count = static_cast<std::uint64_t>(value);
    } else if (key == "pct") {
        event.pct = value;
    } else if (key == "pages") {
        event.pages = static_cast<std::uint64_t>(value);
    } else {
        error = "fault plan: unknown field '" + key + "'";
        return false;
    }
    return true;
}

bool
validate(const FaultEvent &event, std::string &error)
{
    if (event.kind == FaultEventKind::CapacityLoss) {
        if (event.pct <= 0 && event.pages == 0) {
            error = "fault plan: capacity event needs pct or pages";
            return false;
        }
        if (event.pct > 100) {
            error = "fault plan: capacity pct above 100";
            return false;
        }
        return true;
    }
    if (event.page == invalidPage) {
        error = std::string("fault plan: ") +
                faultEventKindName(event.kind) +
                " event needs a page";
        return false;
    }
    if (event.count == 0) {
        error = "fault plan: count must be positive";
        return false;
    }
    return true;
}

} // namespace

const char *
faultEventKindName(FaultEventKind kind)
{
    switch (kind) {
      case FaultEventKind::Correctable: return "correctable";
      case FaultEventKind::Uncorrected: return "uncorrected";
      case FaultEventKind::CapacityLoss: return "capacity";
    }
    return "?";
}

std::vector<FaultEvent>
parseFaultPlan(const std::string &text, std::string &error)
{
    error.clear();
    std::vector<FaultEvent> events;
    for (const std::string &spec : splitOn(text, ';')) {
        if (spec.empty())
            continue;
        const auto colon = spec.find(':');
        const std::string kind = trim(spec.substr(0, colon));
        FaultEvent event;
        if (kind == "correctable") {
            event.kind = FaultEventKind::Correctable;
        } else if (kind == "uncorrected") {
            event.kind = FaultEventKind::Uncorrected;
        } else if (kind == "capacity") {
            event.kind = FaultEventKind::CapacityLoss;
        } else {
            error = "fault plan: unknown kind '" + kind +
                    "' (want correctable|uncorrected|capacity)";
            return {};
        }
        if (colon != std::string::npos) {
            for (const std::string &field :
                 splitOn(spec.substr(colon + 1), ',')) {
                if (field.empty())
                    continue;
                if (!parseField(field, event, error))
                    return {};
            }
        }
        if (!validate(event, error))
            return {};
        events.push_back(event);
    }
    if (events.empty())
        error = "fault plan: no events in '" + text + "'";
    return error.empty() ? events : std::vector<FaultEvent>{};
}

std::string
formatFaultEvent(const FaultEvent &event)
{
    std::ostringstream out;
    out << faultEventKindName(event.kind) << ":";
    if (event.kind == FaultEventKind::CapacityLoss) {
        out << "tier="
            << (event.tier == MemoryId::HBM ? "hbm" : "ddr");
        if (event.pct > 0)
            out << ",pct=" << event.pct;
        if (event.pages > 0)
            out << ",pages=" << event.pages;
    } else {
        out << "page=" << event.page;
        if (event.kind == FaultEventKind::Correctable &&
            event.count != 1)
            out << ",count=" << event.count;
    }
    out << ",epoch=" << event.epoch;
    return out.str();
}

std::string
formatFaultPlan(const std::vector<FaultEvent> &events)
{
    std::string out;
    for (const FaultEvent &event : events) {
        if (!out.empty())
            out += ";";
        out += formatFaultEvent(event);
    }
    return out;
}

} // namespace ramp
