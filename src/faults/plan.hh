/**
 * @file
 * Scripted fault-injection plans (the `--inject` grammar).
 *
 * A plan is an ordered list of fault events to land on a live run,
 * keyed by injector epoch. The textual grammar keeps campaigns
 * reproducible and diffable, mirroring the RegionScheme grammar:
 *
 *   plan  := event (';' event)*
 *   event := kind ':' field (',' field)*
 *   kind  := 'correctable' | 'uncorrected' | 'capacity'
 *   field := 'page=' N | 'epoch=' N | 'count=' N   (page strikes)
 *          | 'tier=' hbm|ddr | 'pct=' X | 'pages=' N  (capacity)
 *
 * e.g. "uncorrected:page=1234,epoch=3;capacity:tier=hbm,pct=25,
 * epoch=5" retires page 1234 at the third injector epoch and kills a
 * quarter of the HBM at the fifth. parseFaultPlan/formatFaultPlan
 * round-trip: format emits the canonical field order, parse accepts
 * any order.
 */

#ifndef RAMP_FAULTS_PLAN_HH
#define RAMP_FAULTS_PLAN_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace ramp
{

/** What kind of fault a plan event injects. */
enum class FaultEventKind : std::uint8_t
{
    /** ECC-corrected strike: raises the page's effective risk. */
    Correctable,

    /** Uncorrected error: the page's frame dies and is retired. */
    Uncorrected,

    /** A tier loses frames (dead channel/stack); sweeps follow. */
    CapacityLoss,
};

/** Stable spelling ("correctable", "uncorrected", "capacity"). */
const char *faultEventKindName(FaultEventKind kind);

/** One scripted fault event. */
struct FaultEvent
{
    FaultEventKind kind = FaultEventKind::Uncorrected;

    /** Struck page (page strikes; unused for capacity loss). */
    PageId page = invalidPage;

    /** Injector epoch the event fires at (1 = first boundary). */
    std::uint64_t epoch = 1;

    /** Correctable burst size. */
    std::uint64_t count = 1;

    /** Tier losing capacity. */
    MemoryId tier = MemoryId::HBM;

    /** Capacity lost as a percentage of the tier (0 = use pages). */
    double pct = 0;

    /** Capacity lost as an absolute page count (0 = use pct). */
    std::uint64_t pages = 0;
};

/**
 * Parse a fault plan ("uncorrected:page=7,epoch=2;...").
 * @return the events in script order, or empty with `error` set
 */
std::vector<FaultEvent> parseFaultPlan(const std::string &text,
                                       std::string &error);

/** Canonical grammar spelling of one event (round-trips parse). */
std::string formatFaultEvent(const FaultEvent &event);

/** Canonical ';'-joined spelling of a plan. */
std::string formatFaultPlan(const std::vector<FaultEvent> &events);

} // namespace ramp

#endif // RAMP_FAULTS_PLAN_HH
