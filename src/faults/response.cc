#include "faults/response.hh"

#include <algorithm>

namespace ramp
{

ResponseState::ResponseState(std::uint32_t max_retries)
    : maxRetries_(max_retries)
{
}

void
ResponseState::queueRemap(PageId page, std::uint64_t epoch)
{
    for (const PendingRemap &pending : pending_)
        if (pending.page == page)
            return; // already owed
    pending_.push_back({page, 0, epoch + 1});
}

std::vector<PageId>
ResponseState::dueRemaps(std::uint64_t epoch) const
{
    std::vector<PageId> due;
    for (const PendingRemap &pending : pending_)
        if (pending.retryEpoch <= epoch)
            due.push_back(pending.page);
    std::sort(due.begin(), due.end());
    return due;
}

void
ResponseState::resolveRemap(PageId page)
{
    pending_.erase(
        std::remove_if(pending_.begin(), pending_.end(),
                       [&](const PendingRemap &pending) {
                           return pending.page == page;
                       }),
        pending_.end());
}

bool
ResponseState::backoff(PageId page, std::uint64_t epoch)
{
    ++retries_;
    for (PendingRemap &pending : pending_) {
        if (pending.page != page)
            continue;
        ++pending.attempts;
        if (pending.attempts >= maxRetries_) {
            resolveRemap(page);
            return true; // gave up
        }
        const std::uint32_t shift =
            std::min<std::uint32_t>(pending.attempts, 6U);
        pending.retryEpoch = epoch + (std::uint64_t{1} << shift);
        return false;
    }
    return false;
}

void
ResponseState::noteCorrectable(PageId page, std::uint64_t count)
{
    correctable_[page] += count;
}

std::uint64_t
ResponseState::correctableCount(PageId page) const
{
    const auto it = correctable_.find(page);
    return it == correctable_.end() ? 0 : it->second;
}

std::vector<PageId>
sweepVictims(const PlacementMap &map, const PageProfile &profile,
             std::uint64_t budget)
{
    if (budget == 0)
        return {};
    struct Victim
    {
        PageId page;
        std::uint64_t hotness;
    };
    std::vector<Victim> victims;
    for (const PageId page : map.hbmPages()) {
        if (map.isPinned(page))
            continue;
        const PageStats *stats = profile.find(page);
        victims.push_back(
            {page, stats == nullptr ? 0 : stats->hotness()});
    }
    std::sort(victims.begin(), victims.end(),
              [](const Victim &a, const Victim &b) {
                  if (a.hotness != b.hotness)
                      return a.hotness < b.hotness;
                  return a.page < b.page;
              });
    if (victims.size() > budget)
        victims.resize(budget);
    std::vector<PageId> pages;
    pages.reserve(victims.size());
    for (const Victim &victim : victims)
        pages.push_back(victim.page);
    return pages;
}

} // namespace ramp
