#include "region/region.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "eventlog/eventlog.hh"
#include "prof/prof.hh"
#include "telemetry/telemetry.hh"

namespace ramp
{

namespace
{

/** Telemetry handles of the region hot path (one lookup ever). */
struct RegionTelemetry
{
    telemetry::Counter &merges =
        telemetry::metrics().counter("region.merges");
    telemetry::Counter &splits =
        telemetry::metrics().counter("region.splits");
    telemetry::Counter &epochs =
        telemetry::metrics().counter("region.epochs");
    telemetry::HistogramMetric &count =
        telemetry::metrics().histogram(
            "region.count",
            telemetry::FixedHistogram::linear(0, 4096, 16));
};

RegionTelemetry &
regionTelemetry()
{
    static RegionTelemetry telemetry;
    return telemetry;
}

void
emitAdaptation(eventlog::EventKind kind, std::size_t index,
               const Region &result, PageId partner_first, Cycle now)
{
    RAMP_EVLOG({
        eventlog::EventRecord record;
        record.kind = kind;
        record.policy = eventlog::PolicyId::RegionMigration;
        record.epoch = now;
        record.region = static_cast<std::uint32_t>(index);
        record.page = result.first;
        record.span = static_cast<std::uint32_t>(
            std::min<std::uint64_t>(result.pages, UINT32_MAX));
        record.partner = partner_first;
        record.hotness = static_cast<float>(result.density());
        record.avf = static_cast<float>(result.avf);
        eventlog::emit(record);
    });
}

} // namespace

RegionMonitor::RegionMonitor(const RegionConfig &config)
    : config_(config)
{
    if (config_.minRegions == 0)
        config_.minRegions = 1;
    if (config_.maxRegions < config_.minRegions)
        ramp_fatal("region budget: maxRegions (", config_.maxRegions,
                   ") below minRegions (", config_.minRegions, ")");
    regions_.reserve(config_.maxRegions);
}

void
RegionMonitor::initFootprint(PageId first, std::uint64_t pages)
{
    if (pages == 0)
        ramp_fatal("region footprint must cover at least one page");
    regions_.clear();
    lastHit_ = 0;
    const std::uint64_t count = std::max<std::uint64_t>(
        1, std::min({config_.maxRegions, config_.minRegions * 2,
                     pages}));
    const std::uint64_t base = pages / count;
    const std::uint64_t extra = pages % count;
    PageId next = first;
    for (std::uint64_t i = 0; i < count; ++i) {
        Region region;
        region.first = next;
        region.pages = base + (i < extra ? 1 : 0);
        next = region.end();
        regions_.push_back(region);
    }
}

void
RegionMonitor::initFromProfile(const PageProfile &profile)
{
    regions_.clear();
    lastHit_ = 0;
    auto entries = profile.entries();
    if (entries.empty())
        return;
    std::sort(entries.begin(), entries.end(),
              [](const auto &a, const auto &b) {
                  return a.first < b.first;
              });
    const std::uint64_t touched = entries.size();
    const std::uint64_t chunks =
        std::min<std::uint64_t>(config_.maxRegions, touched);
    const std::uint64_t base = touched / chunks;
    const std::uint64_t extra = touched % chunks;
    std::size_t cursor = 0;
    for (std::uint64_t c = 0; c < chunks; ++c) {
        const std::size_t take = base + (c < extra ? 1 : 0);
        Region region;
        region.first = entries[cursor].first;
        double avf_mass = 0;
        for (std::size_t i = 0; i < take; ++i) {
            const PageStats &stats = entries[cursor + i].second;
            region.reads += static_cast<double>(stats.reads);
            region.writes += static_cast<double>(stats.writes);
            avf_mass += stats.avf;
        }
        const PageId last = entries[cursor + take - 1].first;
        region.pages = last - region.first + 1;
        region.avf = avf_mass / static_cast<double>(region.pages);
        cursor += take;
        regions_.push_back(region);
    }
}

std::size_t
RegionMonitor::indexOf(PageId page) const
{
    // Branchless binary search for the last region whose first page
    // is <= `page`: this runs once per access that misses the
    // recency cache, and a data-dependent conditional move beats the
    // mispredicted branches of std::upper_bound on skewed streams.
    const std::size_t count = regions_.size();
    if (count == 0 || page < regions_.front().first)
        return npos;
    std::size_t base = 0;
    std::size_t len = count;
    while (len > 1) {
        const std::size_t half = len / 2;
        base += regions_[base + half].first <= page ? half : 0;
        len -= half;
    }
    return page < regions_[base].end() ? base : npos;
}

void
RegionMonitor::recordAccess(PageId page, bool is_write)
{
    if (regions_.empty()) {
        Region region;
        region.first = page;
        region.pages = 1;
        regions_.push_back(region);
        lastHit_ = 0;
    }

    // Recency cache: trace streams are strongly page-local, so most
    // lookups hit the same region as the previous access.
    if (lastHit_ < regions_.size()) {
        const Region &hit = regions_[lastHit_];
        if (page >= hit.first && page < hit.end()) {
            Region &region = regions_[lastHit_];
            if (is_write)
                ++region.epochWrites;
            else
                ++region.epochReads;
            return;
        }
    }

    std::size_t index = indexOf(page);
    if (index == npos) {
        // Outside the covered span (or in a seed gap): grow the
        // nearest region on the left, or the front region backward,
        // so coverage only ever expands and stays contiguous per
        // region.
        if (page < regions_.front().first) {
            Region &front = regions_.front();
            front.pages += front.first - page;
            front.first = page;
            index = 0;
        } else {
            const auto it = std::upper_bound(
                regions_.begin(), regions_.end(), page,
                [](PageId p, const Region &r) {
                    return p < r.first;
                });
            index = static_cast<std::size_t>(
                        it - regions_.begin()) - 1;
            Region &left = regions_[index];
            left.pages = page - left.first + 1;
        }
    }
    Region &region = regions_[index];
    if (is_write)
        ++region.epochWrites;
    else
        ++region.epochReads;
    lastHit_ = index;
}

double
RegionMonitor::meanDensity() const
{
    std::uint64_t pages = 0;
    double hotness = 0;
    for (const Region &region : regions_) {
        pages += region.pages;
        hotness += region.hotness();
    }
    return pages == 0 ? 0.0
                      : hotness / static_cast<double>(pages);
}

double
RegionMonitor::meanAvf() const
{
    std::uint64_t pages = 0;
    double mass = 0;
    for (const Region &region : regions_) {
        pages += region.pages;
        mass += region.avf * static_cast<double>(region.pages);
    }
    return pages == 0 ? 0.0 : mass / static_cast<double>(pages);
}

std::uint64_t
RegionMonitor::trackedBytes() const
{
    return config_.maxRegions * sizeof(Region);
}

void
RegionMonitor::mergePass(Cycle now)
{
    std::size_t i = 0;
    while (i + 1 < regions_.size() &&
           regions_.size() > config_.minRegions) {
        Region &a = regions_[i];
        const Region &b = regions_[i + 1];
        const double da = a.density();
        const double db = b.density();
        const double hi = std::max(da, db);
        const bool similar =
            hi <= 0.0 ||
            std::fabs(da - db) <= config_.mergeDensityDelta * hi;
        if (!similar) {
            ++i;
            continue;
        }
        const PageId absorbed_first = b.first;
        const std::uint64_t span = b.end() - a.first;
        // Aggregates sum; AVF mass (mean x pages) is conserved over
        // the widened span, so footprint-wide means are unchanged.
        a.avf = (a.avf * static_cast<double>(a.pages) +
                 b.avf * static_cast<double>(b.pages)) /
                static_cast<double>(span);
        a.pages = span;
        a.reads += b.reads;
        a.writes += b.writes;
        a.epochReads += b.epochReads;
        a.epochWrites += b.epochWrites;
        a.age = std::min(a.age, b.age);
        regions_.erase(regions_.begin() +
                       static_cast<std::ptrdiff_t>(i) + 1);
        ++merges_;
        if (config_.ledger)
            emitAdaptation(eventlog::EventKind::RegionMerge, i, a,
                           absorbed_first, now);
    }
}

void
RegionMonitor::splitRegion(std::size_t index, std::uint64_t lhs,
                           Cycle now)
{
    Region &left = regions_[index];
    const std::uint64_t total = left.pages;
    Region right;
    right.first = left.first + lhs;
    right.pages = total - lhs;
    // Apportion by page count; the remainder stays on the left
    // so epoch counts are conserved exactly.
    const auto take = [&](std::uint64_t count) {
        return count * lhs / total;
    };
    right.epochReads = left.epochReads - take(left.epochReads);
    right.epochWrites =
        left.epochWrites - take(left.epochWrites);
    left.epochReads -= right.epochReads;
    left.epochWrites -= right.epochWrites;
    const double share = static_cast<double>(lhs) /
                         static_cast<double>(total);
    const double lr = left.reads * share;
    const double lw = left.writes * share;
    right.reads = left.reads - lr;
    right.writes = left.writes - lw;
    left.reads = lr;
    left.writes = lw;
    right.avf = left.avf;
    left.pages = lhs;
    left.age = 0;
    right.age = 0;
    regions_.insert(regions_.begin() +
                        static_cast<std::ptrdiff_t>(index) + 1,
                    right);
    ++splits_;
    if (config_.ledger)
        emitAdaptation(eventlog::EventKind::RegionSplit, index,
                       regions_[index], right.first, now);
}

void
RegionMonitor::splitPass(Cycle now)
{
    // DAMON's adaptation: aim to double the region count each epoch
    // (bounded by the budget) and let the next merge pass re-join
    // halves that still behave alike — divergent halves drift apart.
    const std::uint64_t target = std::min<std::uint64_t>(
        config_.maxRegions,
        std::max<std::uint64_t>(config_.minRegions,
                                2 * regions_.size()));
    while (regions_.size() < target) {
        // Largest region first (lowest first page on ties): big
        // spans are where undetected divergence hides.
        std::size_t pick = npos;
        for (std::size_t i = 0; i < regions_.size(); ++i) {
            if (regions_[i].pages < 2)
                continue;
            if (pick == npos ||
                regions_[i].pages > regions_[pick].pages)
                pick = i;
        }
        if (pick == npos)
            break;
        splitRegion(pick, regions_[pick].pages / 2, now);
    }
}

bool
RegionMonitor::splitAt(PageId page, Cycle now)
{
    std::size_t index = indexOf(page);
    if (index == npos)
        return false;
    // Cleave off everything left of the page, then everything right
    // of it, budget permitting, so the struck page stands alone.
    if (page > regions_[index].first &&
        regions_.size() < config_.maxRegions) {
        splitRegion(index, page - regions_[index].first, now);
        ++index; // the page now heads the right half
    }
    if (regions_[index].pages >= 2 &&
        regions_[index].first == page &&
        regions_.size() < config_.maxRegions)
        splitRegion(index, 1, now);
    Region &struck = regions_[index];
    struck.avf = 1.0; // maximally risky to every scheme predicate
    struck.age = 0;
    return true;
}

void
RegionMonitor::endEpoch(Cycle now)
{
    ++epochs_;
    const std::uint64_t merges_before = merges_;
    const std::uint64_t splits_before = splits_;

    for (Region &region : regions_) {
        region.reads = config_.decay * region.reads +
                       static_cast<double>(region.epochReads);
        region.writes = config_.decay * region.writes +
                        static_cast<double>(region.epochWrites);
        ++region.age;
    }

    {
        RAMP_PROF_SCOPE(adapt_prof, "region.adapt");
        mergePass(now);
        splitPass(now);
    }

    for (Region &region : regions_) {
        region.epochReads = 0;
        region.epochWrites = 0;
    }
    lastHit_ = 0;

    RAMP_TELEM({
        auto &tel = regionTelemetry();
        tel.epochs.add(1);
        tel.merges.add(merges_ - merges_before);
        tel.splits.add(splits_ - splits_before);
        tel.count.observe(static_cast<double>(regions_.size()));
    });
}

} // namespace ramp
