/**
 * @file
 * Region-granularity migration and static placement.
 *
 * RegionMigrationEngine plugs the RegionMonitor + SchemeEngine pair
 * into the MigrationEngine interface the HMA simulator drives: every
 * demand access is folded into the bounded region set, and each
 * interval boundary adapts the regions (merge/split) and evaluates
 * the declarative schemes into region-level batch ops. Page mode
 * (no region engine) remains the default everywhere and is untouched
 * by this layer.
 *
 * buildRegionStaticPlacement is the region twin of the Section 4-5
 * static quadrant policies: it ranks *regions* (seeded from the
 * profiling pass) by the policy's metric and bulk-places them until
 * the HBM fills. With `maxRegions >= footprint` every region is one
 * page and the decisions match buildStaticPlacement exactly.
 */

#ifndef RAMP_REGION_ENGINE_HH
#define RAMP_REGION_ENGINE_HH

#include <cstdint>
#include <vector>

#include "migration/engine.hh"
#include "placement/policies.hh"
#include "region/region.hh"
#include "region/scheme.hh"

namespace ramp
{

/** Region-granularity dynamic migration (monitor + schemes). */
class RegionMigrationEngine : public MigrationEngine
{
  public:
    /**
     * @param interval_cycles epoch length (adaptation + schemes)
     * @param config monitor knobs (budget, merge delta, decay)
     * @param schemes ordered declarative rules to evaluate
     */
    RegionMigrationEngine(Cycle interval_cycles,
                          const RegionConfig &config,
                          std::vector<RegionScheme> schemes);

    /** Seed the monitor from a profiling pass (preferred). */
    void seedFromProfile(const PageProfile &profile);

    /** Seed the monitor with a flat footprint span. */
    void seedFootprint(PageId first, std::uint64_t pages);

    const char *name() const override { return "region-migration"; }
    void onAccess(PageId page, bool is_write, MemoryId mem) override;
    Cycle interval() const override { return interval_; }
    MigrationDecision onInterval(Cycle now,
                                 const PlacementMap &map) override;
    void onFault(PageId page, bool uncorrected, Cycle now) override;
    std::uint64_t
    hardwareCostBytes(std::uint64_t total_pages,
                      std::uint64_t hbm_pages) const override;

    const RegionMonitor &monitor() const { return monitor_; }
    const SchemeEngine &schemes() const { return schemes_; }

  private:
    Cycle interval_;
    RegionMonitor monitor_;
    SchemeEngine schemes_;
};

/**
 * The default scheme list: the paper's balanced quadrant policy at
 * region granularity ("promote:hot,lowrisk,quota=4;
 * demote:highrisk,quota=4;demote:cold,age>=2,quota=4").
 */
std::vector<RegionScheme> defaultRegionSchemes();

/**
 * Build a static placement at region granularity: seed regions from
 * the profile, rank them by the policy's metric (density, 1-AVF,
 * Wr/Wr^2 of the aggregates; Balanced restricts to the hot &
 * low-risk quadrant using the *profile's* Fig 4 thresholds), and
 * bulk-place winners until HBM fills. Emits one Region ledger record
 * per placed region.
 */
PlacementMap buildRegionStaticPlacement(
    StaticPolicy policy, const PageProfile &profile,
    const RegionConfig &config, std::uint64_t hbm_capacity_pages);

} // namespace ramp

#endif // RAMP_REGION_ENGINE_HH
