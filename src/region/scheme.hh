/**
 * @file
 * Declarative region schemes (DAMOS-style).
 *
 * A RegionScheme is "predicate -> action with a quota": it matches
 * regions by size, access density, AVF risk, and age, and asks for a
 * whole-region action (promote/demote/pin) at each epoch boundary,
 * at most `quota` regions per epoch. The textual grammar keeps
 * experiments declarative:
 *
 *   scheme  := action ':' pred (',' pred)*
 *   schemes := scheme (';' scheme)*
 *   action  := 'promote' | 'demote' | 'pin'
 *   pred    := 'hot' | 'cold'            (density vs footprint mean)
 *            | 'lowrisk' | 'highrisk'    (AVF vs footprint mean)
 *            | 'pages>=' N | 'density>=' X
 *            | 'avf<=' X   | 'age>=' N
 *            | 'quota=' N                (regions per epoch)
 *
 * e.g. "promote:hot,lowrisk,quota=4;demote:cold,age>=2,quota=4" is
 * the paper's Fig 4 balanced quadrant policy at region granularity.
 *
 * The SchemeEngine evaluates an ordered scheme list against a
 * RegionMonitor and the current PlacementMap residency and emits
 * RegionOps (first matching scheme wins per region; demotions are
 * ordered before pins and promotions so they free HBM capacity
 * first). Evaluation is pure and deterministic: schemes in declared
 * order, regions in address order.
 */

#ifndef RAMP_REGION_SCHEME_HH
#define RAMP_REGION_SCHEME_HH

#include <cstdint>
#include <string>
#include <vector>

#include "migration/engine.hh"
#include "placement/map.hh"
#include "region/region.hh"

namespace ramp
{

/** One declarative rule: predicate -> action, with a quota. */
struct RegionScheme
{
    RegionAction action = RegionAction::None;

    /** @{ @name Relative predicates (vs footprint-wide means) */
    bool requireHot = false;      ///< density > meanDensity
    bool requireCold = false;     ///< density <= meanDensity
    bool requireLowRisk = false;  ///< avf <= meanAvf
    bool requireHighRisk = false; ///< avf > meanAvf
    /** @} */

    /** @{ @name Absolute predicates (0 / unset = no constraint) */
    std::uint64_t minPages = 0;
    double minDensity = 0;
    bool hasMinDensity = false;
    double maxAvf = 0;
    bool hasMaxAvf = false;
    std::uint32_t minAge = 0;
    /** @} */

    /** Regions this scheme may act on per epoch. */
    std::uint64_t quota = UINT64_MAX;

    /** True when the region satisfies every predicate. */
    bool matches(const Region &region, double mean_density,
                 double mean_avf) const;
};

/**
 * Parse a scheme list ("promote:hot,quota=4;demote:cold").
 * @return the schemes, or empty with `error` set on bad grammar
 */
std::vector<RegionScheme> parseRegionSchemes(const std::string &text,
                                             std::string &error);

/** Canonical grammar spelling of one scheme (round-trips parse). */
std::string formatRegionScheme(const RegionScheme &scheme);

/** Canonical ';'-joined spelling of a scheme list. */
std::string formatRegionSchemes(
    const std::vector<RegionScheme> &schemes);

/** Evaluates an ordered scheme list at each epoch boundary. */
class SchemeEngine
{
  public:
    explicit SchemeEngine(std::vector<RegionScheme> schemes);

    /**
     * Match every region against the schemes (first match wins) and
     * emit the quota-bounded region ops, demotions first. Ops whose
     * span would not move any page (already resident, pinned, or no
     * capacity) are suppressed, so an op in the result always has
     * work to do.
     */
    std::vector<RegionOp> evaluate(const RegionMonitor &monitor,
                                   const PlacementMap &map) const;

    const std::vector<RegionScheme> &schemes() const
    {
        return schemes_;
    }

    /** Lifetime count of ops emitted (telemetry cross-check). */
    std::uint64_t actions() const { return actions_; }

  private:
    std::vector<RegionScheme> schemes_;
    mutable std::uint64_t actions_ = 0;
};

} // namespace ramp

#endif // RAMP_REGION_SCHEME_HH
