#include "region/scheme.hh"

#include <algorithm>
#include <cstdlib>
#include <sstream>

namespace ramp
{

namespace
{

/** Trimmed copy (the grammar ignores whitespace around tokens). */
std::string
trim(const std::string &text)
{
    const auto begin = text.find_first_not_of(" \t");
    if (begin == std::string::npos)
        return "";
    const auto end = text.find_last_not_of(" \t");
    return text.substr(begin, end - begin + 1);
}

std::vector<std::string>
splitOn(const std::string &text, char sep)
{
    std::vector<std::string> parts;
    std::string part;
    std::istringstream in(text);
    while (std::getline(in, part, sep))
        parts.push_back(trim(part));
    return parts;
}

bool
parseNumber(const std::string &text, double &value)
{
    char *end = nullptr;
    value = std::strtod(text.c_str(), &end);
    return end != text.c_str() && *end == '\0';
}

bool
parsePredicate(const std::string &pred, RegionScheme &scheme,
               std::string &error)
{
    if (pred == "hot") {
        scheme.requireHot = true;
        return true;
    }
    if (pred == "cold") {
        scheme.requireCold = true;
        return true;
    }
    if (pred == "lowrisk") {
        scheme.requireLowRisk = true;
        return true;
    }
    if (pred == "highrisk") {
        scheme.requireHighRisk = true;
        return true;
    }
    const auto numeric = [&](const char *prefix,
                             double &value) -> int {
        const std::size_t n = std::string(prefix).size();
        if (pred.compare(0, n, prefix) != 0)
            return 0; // not this predicate
        if (!parseNumber(pred.substr(n), value) || value < 0) {
            error = "region scheme: bad number in '" + pred + "'";
            return -1;
        }
        return 1;
    };
    double value = 0;
    int got;
    if ((got = numeric("pages>=", value)) != 0) {
        scheme.minPages = static_cast<std::uint64_t>(value);
        return got > 0;
    }
    if ((got = numeric("density>=", value)) != 0) {
        scheme.minDensity = value;
        scheme.hasMinDensity = true;
        return got > 0;
    }
    if ((got = numeric("avf<=", value)) != 0) {
        scheme.maxAvf = value;
        scheme.hasMaxAvf = true;
        return got > 0;
    }
    if ((got = numeric("age>=", value)) != 0) {
        scheme.minAge = static_cast<std::uint32_t>(value);
        return got > 0;
    }
    if ((got = numeric("quota=", value)) != 0) {
        scheme.quota = static_cast<std::uint64_t>(value);
        return got > 0;
    }
    error = "region scheme: unknown predicate '" + pred + "'";
    return false;
}

/** Rank actions so capacity frees before it is claimed. */
int
applyRank(RegionAction action)
{
    switch (action) {
      case RegionAction::Demote: return 0;
      case RegionAction::Pin: return 1;
      default: return 2;
    }
}

} // namespace

bool
RegionScheme::matches(const Region &region, double mean_density,
                      double mean_avf) const
{
    const double density = region.density();
    if (requireHot && !(density > mean_density))
        return false;
    if (requireCold && density > mean_density)
        return false;
    if (requireLowRisk && region.avf > mean_avf)
        return false;
    if (requireHighRisk && !(region.avf > mean_avf))
        return false;
    if (region.pages < minPages)
        return false;
    if (hasMinDensity && density < minDensity)
        return false;
    if (hasMaxAvf && region.avf > maxAvf)
        return false;
    if (region.age < minAge)
        return false;
    return true;
}

std::vector<RegionScheme>
parseRegionSchemes(const std::string &text, std::string &error)
{
    error.clear();
    std::vector<RegionScheme> schemes;
    for (const std::string &spec : splitOn(text, ';')) {
        if (spec.empty())
            continue;
        const auto colon = spec.find(':');
        const std::string action = trim(spec.substr(0, colon));
        RegionScheme scheme;
        if (action == "promote") {
            scheme.action = RegionAction::Promote;
        } else if (action == "demote") {
            scheme.action = RegionAction::Demote;
        } else if (action == "pin") {
            scheme.action = RegionAction::Pin;
        } else {
            error = "region scheme: unknown action '" + action +
                    "' (want promote|demote|pin)";
            return {};
        }
        if (colon != std::string::npos) {
            for (const std::string &pred :
                 splitOn(spec.substr(colon + 1), ',')) {
                if (pred.empty())
                    continue;
                if (!parsePredicate(pred, scheme, error))
                    return {};
            }
        }
        schemes.push_back(scheme);
    }
    if (schemes.empty())
        error = "region scheme: no schemes in '" + text + "'";
    return error.empty() ? schemes : std::vector<RegionScheme>{};
}

std::string
formatRegionScheme(const RegionScheme &scheme)
{
    std::ostringstream out;
    out << regionActionName(scheme.action) << ":";
    std::vector<std::string> preds;
    if (scheme.requireHot)
        preds.push_back("hot");
    if (scheme.requireCold)
        preds.push_back("cold");
    if (scheme.requireLowRisk)
        preds.push_back("lowrisk");
    if (scheme.requireHighRisk)
        preds.push_back("highrisk");
    const auto number = [](double value) {
        std::ostringstream text;
        text << value;
        return text.str();
    };
    if (scheme.minPages > 0)
        preds.push_back("pages>=" + std::to_string(scheme.minPages));
    if (scheme.hasMinDensity)
        preds.push_back("density>=" + number(scheme.minDensity));
    if (scheme.hasMaxAvf)
        preds.push_back("avf<=" + number(scheme.maxAvf));
    if (scheme.minAge > 0)
        preds.push_back("age>=" + std::to_string(scheme.minAge));
    if (scheme.quota != UINT64_MAX)
        preds.push_back("quota=" + std::to_string(scheme.quota));
    for (std::size_t i = 0; i < preds.size(); ++i)
        out << (i == 0 ? "" : ",") << preds[i];
    return out.str();
}

std::string
formatRegionSchemes(const std::vector<RegionScheme> &schemes)
{
    std::string out;
    for (const RegionScheme &scheme : schemes) {
        if (!out.empty())
            out += ";";
        out += formatRegionScheme(scheme);
    }
    return out;
}

SchemeEngine::SchemeEngine(std::vector<RegionScheme> schemes)
    : schemes_(std::move(schemes))
{
}

std::vector<RegionOp>
SchemeEngine::evaluate(const RegionMonitor &monitor,
                       const PlacementMap &map) const
{
    const double mean_density = monitor.meanDensity();
    const double mean_avf = monitor.meanAvf();
    const auto &regions = monitor.regions();

    std::vector<RegionOp> ops;
    std::vector<bool> acted(regions.size(), false);
    for (const RegionScheme &scheme : schemes_) {
        std::uint64_t quota = scheme.quota;
        for (std::size_t i = 0;
             i < regions.size() && quota > 0; ++i) {
            if (acted[i])
                continue; // first matching scheme owns the region
            const Region &region = regions[i];
            if (!scheme.matches(region, mean_density, mean_avf))
                continue;
            const MemoryId dst =
                scheme.action == RegionAction::Demote
                    ? MemoryId::DDR
                    : MemoryId::HBM;
            if (scheme.action == RegionAction::Pin) {
                // Re-pinning a pinned span is a no-op; spans pin
                // whole, so the first page tells.
                if (map.isPinned(region.first) &&
                    map.movablePages(region.first, region.pages,
                                     dst).empty())
                    continue;
            } else if (map.movablePages(region.first, region.pages,
                                        dst).empty()) {
                continue; // nothing would move: not an action
            }
            RegionOp op;
            op.first = region.first;
            op.pages = region.pages;
            op.region = static_cast<std::uint32_t>(i);
            op.action = scheme.action;
            op.density = static_cast<float>(region.density());
            op.avf = static_cast<float>(region.avf);
            op.threshHot = static_cast<float>(mean_density);
            op.threshRisk = static_cast<float>(mean_avf);
            ops.push_back(op);
            acted[i] = true;
            --quota;
        }
    }
    std::stable_sort(ops.begin(), ops.end(),
                     [](const RegionOp &a, const RegionOp &b) {
                         return applyRank(a.action) <
                                applyRank(b.action);
                     });
    actions_ += ops.size();
    return ops;
}

} // namespace ramp
