#include "region/engine.hh"

#include <algorithm>
#include <numeric>

#include "common/logging.hh"
#include "eventlog/eventlog.hh"

namespace ramp
{

RegionMigrationEngine::RegionMigrationEngine(
    Cycle interval_cycles, const RegionConfig &config,
    std::vector<RegionScheme> schemes)
    : interval_(interval_cycles), monitor_(config),
      schemes_(std::move(schemes))
{
    if (interval_cycles == 0)
        ramp_fatal("region engine needs a non-zero interval");
}

void
RegionMigrationEngine::seedFromProfile(const PageProfile &profile)
{
    monitor_.initFromProfile(profile);
}

void
RegionMigrationEngine::seedFootprint(PageId first,
                                     std::uint64_t pages)
{
    monitor_.initFootprint(first, pages);
}

void
RegionMigrationEngine::onAccess(PageId page, bool is_write,
                                MemoryId mem)
{
    (void)mem;
    monitor_.recordAccess(page, is_write);
}

MigrationDecision
RegionMigrationEngine::onInterval(Cycle now, const PlacementMap &map)
{
    monitor_.endEpoch(now);
    MigrationDecision decision;
    decision.regionOps = schemes_.evaluate(monitor_, map);
    return decision;
}

void
RegionMigrationEngine::onFault(PageId page, bool uncorrected,
                               Cycle now)
{
    (void)uncorrected;
    // Isolate the struck page into its own maximally-risky region so
    // highrisk/avf predicates act on it at page resolution instead
    // of smearing the risk over the whole covering span.
    monitor_.splitAt(page, now);
}

std::uint64_t
RegionMigrationEngine::hardwareCostBytes(std::uint64_t total_pages,
                                         std::uint64_t hbm_pages) const
{
    // Bounded by the region budget, not the footprint: that is the
    // whole point of the abstraction.
    (void)total_pages;
    (void)hbm_pages;
    return monitor_.trackedBytes();
}

std::vector<RegionScheme>
defaultRegionSchemes()
{
    // The paper's balanced quadrant policy, region-granular: claim
    // HBM for hot & low-risk spans, push risky spans out, and expire
    // spans that stayed cold for two epochs.
    RegionScheme promote;
    promote.action = RegionAction::Promote;
    promote.requireHot = true;
    promote.requireLowRisk = true;
    promote.quota = 4;

    RegionScheme evict_risky;
    evict_risky.action = RegionAction::Demote;
    evict_risky.requireHighRisk = true;
    evict_risky.quota = 4;

    RegionScheme expire_cold;
    expire_cold.action = RegionAction::Demote;
    expire_cold.requireCold = true;
    expire_cold.minAge = 2;
    expire_cold.quota = 4;

    return {promote, evict_risky, expire_cold};
}

PlacementMap
buildRegionStaticPlacement(StaticPolicy policy,
                           const PageProfile &profile,
                           const RegionConfig &config,
                           std::uint64_t hbm_capacity_pages)
{
    PlacementMap map(hbm_capacity_pages);
    if (policy == StaticPolicy::DdrOnly)
        return map;

    RegionMonitor monitor(config);
    monitor.initFromProfile(profile);
    const auto &regions = monitor.regions();

    // Fig 4 thresholds come from the page profile (not the region
    // set) so per-page regions classify exactly like the page
    // policies do.
    const double mean_hot = profile.meanHotness();
    const double mean_avf = profile.meanAvf();

    const auto metric = [&](const Region &r) -> double {
        switch (policy) {
          case StaticPolicy::PerfFocused: return r.density();
          case StaticPolicy::ReliabilityFocused: return 1.0 - r.avf;
          case StaticPolicy::Balanced: return r.density();
          case StaticPolicy::WrRatio: return r.wrRatio();
          case StaticPolicy::Wr2Ratio: return r.wr2Ratio();
          default: return 0.0;
        }
    };

    std::vector<std::size_t> order(regions.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    if (policy == StaticPolicy::Balanced) {
        // Hot & low-risk quadrant only; like the page policy, this
        // may leave the HBM underfilled.
        std::erase_if(order, [&](std::size_t i) {
            return regions[i].density() <= mean_hot ||
                   regions[i].avf > mean_avf;
        });
    }
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) {
                  const double ma = metric(regions[a]);
                  const double mb = metric(regions[b]);
                  if (ma != mb)
                      return ma > mb;
                  return regions[a].first < regions[b].first;
              });

    for (const std::size_t i : order) {
        if (map.hbmFreePages() == 0)
            break;
        const Region &region = regions[i];
        const std::uint64_t placed =
            map.placeRange(region.first, region.pages,
                           MemoryId::HBM);
        if (placed == 0)
            continue;
        if (config.ledger) {
            RAMP_EVLOG({
                eventlog::EventRecord record;
                record.kind = eventlog::EventKind::Region;
                record.policy = eventlog::policyIdFromName(
                    policyName(policy));
                record.page = region.first;
                record.region = static_cast<std::uint32_t>(i);
                record.span = static_cast<std::uint32_t>(
                    std::min<std::uint64_t>(region.pages,
                                            UINT32_MAX));
                record.moved = static_cast<std::uint32_t>(
                    std::min<std::uint64_t>(placed, UINT32_MAX));
                record.detail = static_cast<std::uint8_t>(
                    RegionAction::Place);
                record.dst = eventlog::Tier::Hbm;
                record.hotness =
                    static_cast<float>(region.density());
                record.avf = static_cast<float>(region.avf);
                record.threshHot = static_cast<float>(mean_hot);
                record.threshRisk = static_cast<float>(mean_avf);
                eventlog::emit(record);
            });
        }
    }
    return map;
}

} // namespace ramp
