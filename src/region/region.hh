/**
 * @file
 * Adaptive region-based access monitoring (DAMON-style).
 *
 * Per-page metadata is the scalability ceiling of the simulator: at
 * datacenter footprints (millions of 4 KB pages) the tracking
 * dominates the work. The RegionMonitor keeps a *bounded* set of
 * address-contiguous regions instead: each access lands in the
 * region covering its page (binary search over a sorted span table,
 * no hashing, no allocation), and each epoch the region set adapts —
 * adjacent regions with similar access density merge, large regions
 * split at their midpoint so divergent halves can drift apart, and
 * the total count is clamped to [minRegions, maxRegions].
 *
 * Aggregate read/write/AVF statistics are conserved exactly across
 * merges and splits (merges sum, splits apportion by page count with
 * the remainder kept on the left half), so region-granularity
 * policies see the same total traffic a per-page profile would.
 *
 * Every merge and split can be recorded in the decision ledger
 * (eventlog RegionMerge/RegionSplit records) and counted in
 * telemetry (region.merges / region.splits / region.count).
 */

#ifndef RAMP_REGION_REGION_HH
#define RAMP_REGION_REGION_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "placement/profile.hh"

namespace ramp
{

/** Knobs of the adaptive region monitor. */
struct RegionConfig
{
    /** Region-count floor: merging never shrinks the set below. */
    std::uint64_t minRegions = 16;

    /** Region-count budget: the tracked-metadata bound. */
    std::uint64_t maxRegions = 1024;

    /**
     * Adjacent regions merge when their access densities differ by
     * no more than this fraction of the larger density (both-idle
     * regions always qualify).
     */
    double mergeDensityDelta = 0.2;

    /**
     * Exponential decay folding an epoch's counts into the running
     * aggregates: aggregate = decay * aggregate + epoch. 1.0 keeps
     * full history (and makes conservation testable), 0.0 keeps
     * only the last epoch.
     */
    double decay = 0.5;

    /** Record merges/splits in the decision ledger when enabled. */
    bool ledger = true;
};

/** One address-contiguous span of pages with aggregate behaviour. */
struct Region
{
    /** First page of the span. */
    PageId first = 0;

    /** Page count of the span (always >= 1). */
    std::uint64_t pages = 0;

    /** @{ @name Current-epoch raw counts (reset by endEpoch) */
    std::uint64_t epochReads = 0;
    std::uint64_t epochWrites = 0;
    /** @} */

    /** @{ @name Decayed running aggregates (updated by endEpoch) */
    double reads = 0;
    double writes = 0;
    /** @} */

    /** Mean per-page AVF of the span (profile-seeded). */
    double avf = 0;

    /** Epochs this region survived unchanged by merge/split. */
    std::uint32_t age = 0;

    /** One past the last page of the span. */
    PageId end() const { return first + pages; }

    /** Aggregate access count (the region hotness metric). */
    double hotness() const { return reads + writes; }

    /** Accesses per page: the merge/scheme comparison metric. */
    double density() const
    {
        return pages == 0
                   ? 0.0
                   : hotness() / static_cast<double>(pages);
    }

    /** Wr ratio of the aggregates (region risk heuristic). */
    double wrRatio() const
    {
        return writes / (reads > 1.0 ? reads : 1.0);
    }

    /** Wr^2 ratio of the aggregates. */
    double wr2Ratio() const
    {
        return writes * writes / (reads > 1.0 ? reads : 1.0);
    }
};

/**
 * Bounded adaptive set of disjoint, sorted, contiguous regions.
 *
 * The monitor must be seeded (initFootprint or initFromProfile)
 * before accesses are recorded; accesses outside the covered span
 * grow the edge regions so every access is always attributable.
 */
class RegionMonitor
{
  public:
    explicit RegionMonitor(const RegionConfig &config = {});

    /** Cover one contiguous span with equal initial regions. */
    void initFootprint(PageId first, std::uint64_t pages);

    /**
     * Cover a profiled footprint: the touched pages are chunked
     * into at most maxRegions equal-count runs (per-page regions
     * when maxRegions >= footprint), each seeded with the chunk's
     * aggregate reads/writes/AVF. Gaps between chunks stay
     * uncovered until merges bridge them.
     */
    void initFromProfile(const PageProfile &profile);

    /** Count one access into the covering region (O(log n)). */
    void recordAccess(PageId page, bool is_write);

    /**
     * Epoch boundary: fold epoch counts into the decayed
     * aggregates, merge similar neighbours, split the largest
     * regions back up to the budget, and age the survivors.
     * @param now decision time stamped into ledger records
     */
    void endEpoch(Cycle now = 0);

    /**
     * Fault response: isolate a struck page into its own region so
     * scheme predicates see the risk at page resolution. Splits the
     * covering region at the page's boundaries (budget permitting)
     * and marks the page's region maximally risky (avf = 1, age 0).
     * @return false when no region covers the page
     */
    bool splitAt(PageId page, Cycle now = 0);

    /** The regions, sorted by first page, pairwise disjoint. */
    const std::vector<Region> &regions() const { return regions_; }

    /** Index of the region covering a page (npos if uncovered). */
    std::size_t indexOf(PageId page) const;

    /** "Not covered" return of indexOf(). */
    static constexpr std::size_t npos = SIZE_MAX;

    const RegionConfig &config() const { return config_; }

    /** @{ @name Adaptation counters (lifetime totals) */
    std::uint64_t merges() const { return merges_; }
    std::uint64_t splits() const { return splits_; }
    std::uint64_t epochs() const { return epochs_; }
    /** @} */

    /** @{ @name Footprint-wide aggregate means (scheme thresholds) */
    double meanDensity() const;
    double meanAvf() const;
    /** @} */

    /**
     * Tracked-metadata footprint in bytes: the span table plus the
     * per-region aggregates (what a hardware or kernel
     * implementation must provision for `maxRegions`).
     */
    std::uint64_t trackedBytes() const;

  private:
    /** Merge similar adjacent regions down to minRegions at most. */
    void mergePass(Cycle now);

    /** Split largest regions until the budget or indivisibility. */
    void splitPass(Cycle now);

    /** Split one region after `lhs_pages` pages (count-conserving). */
    void splitRegion(std::size_t index, std::uint64_t lhs_pages,
                     Cycle now);

    RegionConfig config_;
    std::vector<Region> regions_;
    std::size_t lastHit_ = 0; ///< recency cache for recordAccess
    std::uint64_t merges_ = 0;
    std::uint64_t splits_ = 0;
    std::uint64_t epochs_ = 0;
};

} // namespace ramp

#endif // RAMP_REGION_REGION_HH
