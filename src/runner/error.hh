/**
 * @file
 * Structured failure semantics of the experiment runner.
 *
 * A long campaign must not die because one pass dies: every failure
 * a pass can hit is mapped onto a small PassError taxonomy so the
 * harness can record it (a FAILED row in the table/JSON report),
 * keep the rest of the sweep running, and exit nonzero with a
 * summary. The same header owns the cooperative cancellation flag
 * SIGINT/SIGTERM set: the thread pool polls it between tasks, so a
 * campaign winds down at a pass boundary, flushes its checkpoint
 * journal and partial report, and exits 128+signal instead of
 * losing hours of completed trials.
 */

#ifndef RAMP_RUNNER_ERROR_HH
#define RAMP_RUNNER_ERROR_HH

#include <exception>
#include <stdexcept>
#include <string>

namespace ramp::runner
{

/** What went wrong, coarsely — stamped into reports and messages. */
enum class PassErrorCode
{
    Unknown,      ///< Unrecognised exception type.
    Usage,        ///< Bad command-line flag (binaries exit 2).
    InvalidInput, ///< Rejected workload spec or system config.
    Io,           ///< Filesystem/stream failure.
    Corrupt,      ///< Checksum or format mismatch in an artifact.
    Timeout,      ///< Pass exceeded --pass-timeout.
    Cancelled,    ///< Cooperative shutdown (SIGINT/SIGTERM).
    OutOfMemory,  ///< Allocation failure inside a pass.
    Internal,     ///< Broken invariant (a runner bug).
};

/** Stable lower-case name of a code (JSON `error` field). */
const char *passErrorCodeName(PassErrorCode code);

/** Terminal state of one recorded pass. */
enum class PassStatus
{
    Ok,      ///< Completed; metrics are valid.
    Failed,  ///< Threw; metrics are zero, error/message say why.
    Timeout, ///< Completed but exceeded --pass-timeout.
    Skipped, ///< Never ran (campaign cancelled first).
};

/** Stable lower-case name of a status (JSON `status` field). */
const char *passStatusName(PassStatus status);

/** Typed runner error: a code plus a human-actionable message. */
class PassError : public std::runtime_error
{
  public:
    PassError(PassErrorCode code, const std::string &message)
        : std::runtime_error(message), code_(code)
    {
    }

    PassErrorCode code() const { return code_; }

  private:
    PassErrorCode code_;
};

/** A captured exception, classified for the report. */
struct ErrorInfo
{
    PassErrorCode code = PassErrorCode::Unknown;
    std::string message;
};

/**
 * Classify a captured exception: PassError keeps its code; standard
 * exception types map onto the taxonomy (invalid_argument ->
 * InvalidInput, bad_alloc -> OutOfMemory, ios/filesystem -> Io,
 * logic_error -> Internal); anything else is Unknown.
 */
ErrorInfo describeException(std::exception_ptr error);

/** @{ @name Cooperative cancellation
 * One process-wide flag. Signal handlers (and tests) set it; the
 * thread pool polls it between tasks and stops handing out work;
 * the harness observes it after a batch, flushes, and throws
 * PassError(Cancelled).
 */

/** True once a shutdown was requested. */
bool cancellationRequested();

/** Request a shutdown as if signal `sig` arrived (0 = programmatic). */
void requestCancellation(int sig = 0);

/** Reset the flag (tests only). */
void clearCancellation();

/** The signal that requested shutdown (0 if none/programmatic). */
int cancellationSignal();

/**
 * Install SIGINT/SIGTERM handlers that request cancellation. A
 * second signal force-exits immediately with 128+sig. Idempotent.
 */
void installSignalHandlers();

/** Throw PassError(Cancelled) if a shutdown was requested. */
void throwIfCancelled(const char *what);

/** @} */

} // namespace ramp::runner

#endif // RAMP_RUNNER_ERROR_HH
