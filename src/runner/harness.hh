/**
 * @file
 * The experiment harness every figure/table binary runs on.
 *
 * One Harness per binary: it parses the shared runner flags
 * (--jobs, --json, --cache-dir), owns the thread pool, the profile
 * cache, and the result sink, and provides the two operations the
 * paper's methodology repeats everywhere — profile a workload set
 * (cached, parallel) and fan policy passes out over it (parallel,
 * deterministic, recorded).
 */

#ifndef RAMP_RUNNER_HARNESS_HH
#define RAMP_RUNNER_HARNESS_HH

#include <string>
#include <vector>

#include "runner/pool.hh"
#include "runner/profile_cache.hh"
#include "runner/report.hh"

namespace ramp::runner
{

/** Shared execution context of one harness binary. */
class Harness
{
  public:
    /** Parse runner flags from the command line. */
    Harness(std::string tool, int argc, char **argv);

    /** Construct from pre-parsed options (tests, embedding). */
    Harness(std::string tool, RunnerOptions options);

    const RunnerOptions &options() const { return options_; }

    /** The system under experiment (Table 1, scaled). */
    const SystemConfig &config() const { return config_; }

    /** Mutable access for sweep binaries that adjust knobs. */
    SystemConfig &config() { return config_; }

    ThreadPool &pool() { return pool_; }
    ProfileCache &cache() { return cache_; }
    Report &report() { return report_; }

    /** Profile one workload through the cache (recorded). */
    ProfiledWorkloadPtr profile(const WorkloadSpec &spec,
                                const GeneratorOptions &options = {});

    /**
     * Profile a workload set: cache lookups fan out across the
     * pool, results come back in spec order, and each baseline pass
     * is recorded once.
     */
    std::vector<ProfiledWorkloadPtr>
    profileAll(const std::vector<WorkloadSpec> &specs,
               const GeneratorOptions &options = {});

    /**
     * Fan fn out over profiled workloads on the pool; results in
     * workload order. fn must be pure in the shared state (it may
     * build its own engines/systems).
     */
    template <typename Fn>
    auto mapWorkloads(const std::vector<ProfiledWorkloadPtr> &wls,
                      Fn fn)
    {
        return pool_.map(wls, fn);
    }

    /**
     * Record one pass into the JSON report; returns the result (by
     * value, so recording a temporary pass is safe).
     */
    SimResult record(const std::string &workload,
                     const SimResult &result);

    /**
     * Finish the run: write the JSON report when requested.
     * Returns the binary's exit code (1 when the report cannot be
     * written, else 0).
     */
    int finish();

  private:
    std::string tool_;
    RunnerOptions options_;
    SystemConfig config_;
    ThreadPool pool_;
    ProfileCache cache_;
    Report report_;
};

} // namespace ramp::runner

#endif // RAMP_RUNNER_HARNESS_HH
