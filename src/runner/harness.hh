/**
 * @file
 * The experiment harness every figure/table binary runs on.
 *
 * One Harness per binary: it parses the shared runner flags
 * (--jobs, --json, --metrics-out, --trace-out, --bench-out,
 * --cache-dir, --checkpoint, --pass-timeout), owns the thread pool,
 * the profile cache, the checkpoint journal, the watchdog, the
 * resource sampler, and the result sink,
 * and provides the operations the
 * paper's methodology repeats everywhere — profile a workload set
 * (cached, parallel) and fan policy passes out over it (parallel,
 * deterministic, recorded, fault-contained).
 *
 * runPasses() is the fault-tolerant fan-out: a pass that throws
 * becomes a FAILED row instead of killing the campaign, completed
 * passes are journaled to the checkpoint directory the moment they
 * finish, journaled passes are replayed on resume (bit-identical to
 * an uninterrupted run), passes overstaying --pass-timeout are
 * flagged TIMEOUT, and SIGINT/SIGTERM winds the campaign down at a
 * pass boundary with the partial report flushed.
 */

#ifndef RAMP_RUNNER_HARNESS_HH
#define RAMP_RUNNER_HARNESS_HH

#include <chrono>
#include <csignal>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "perf/bench_report.hh"
#include "perf/microbench.hh"
#include "perf/resource.hh"
#include "runner/checkpoint.hh"
#include "runner/pool.hh"
#include "runner/profile_cache.hh"
#include "runner/report.hh"
#include "runner/watchdog.hh"

namespace ramp::runner
{

/** One planned pass of a campaign. */
struct PassDesc
{
    /** Workload name recorded in the report's "workload" column. */
    std::string workload;

    /**
     * Checkpoint key, unique within the binary; build it with
     * Harness::passKey() so it covers the profiled input. Sweep
     * binaries must fold the sweep point into the pass label.
     */
    std::string key;
};

/** Terminal state of one runPasses() pass. */
struct PassOutcome
{
    /** Valid when ok(); value-initialised otherwise. */
    SimResult result;

    PassStatus status = PassStatus::Skipped;

    /** Classified failure cause when status is Failed. */
    PassErrorCode error = PassErrorCode::Unknown;

    /** Human-readable failure description when not Ok. */
    std::string message;

    /** Replayed from the checkpoint journal (not recomputed). */
    bool fromCheckpoint = false;

    /** Wall-clock duration of the pass (0 when replayed). */
    double seconds = 0;

    /** True when `result` holds usable metrics (Ok or Timeout). */
    bool ok() const
    {
        return status == PassStatus::Ok ||
               status == PassStatus::Timeout;
    }
};

/** Shared execution context of one harness binary. */
class Harness
{
  public:
    /** Parse runner flags from the command line. */
    Harness(std::string tool, int argc, char **argv);

    /** Construct from pre-parsed options (tests, embedding). */
    Harness(std::string tool, RunnerOptions options);

    const RunnerOptions &options() const { return options_; }

    /** The system under experiment (Table 1, scaled). */
    const SystemConfig &config() const { return config_; }

    /** Mutable access for sweep binaries that adjust knobs. */
    SystemConfig &config() { return config_; }

    ThreadPool &pool() { return pool_; }
    ProfileCache &cache() { return cache_; }
    Report &report() { return report_; }

    /** Profile one workload through the cache (recorded). */
    ProfiledWorkloadPtr profile(const WorkloadSpec &spec,
                                const GeneratorOptions &options = {});

    /**
     * Profile a workload set: cache lookups fan out across the
     * pool, results come back in spec order, and each baseline pass
     * is recorded once.
     */
    std::vector<ProfiledWorkloadPtr>
    profileAll(const std::vector<WorkloadSpec> &specs,
               const GeneratorOptions &options = {});

    /**
     * Fan fn out over profiled workloads on the pool; results in
     * workload order. fn must be pure in the shared state (it may
     * build its own engines/systems).
     */
    template <typename Fn>
    auto mapWorkloads(const std::vector<ProfiledWorkloadPtr> &wls,
                      Fn fn)
    {
        return pool_.map(wls, fn);
    }

    /**
     * Checkpoint key of one pass: hash of the workload's profiling
     * fingerprint plus the pass label. The label must be unique per
     * (workload, pass) pair within the binary — sweep binaries
     * embed the sweep point in it.
     */
    static std::string passKey(const ProfiledWorkloadPtr &wl,
                               const std::string &label);

    /**
     * Run one pass per desc, fault-contained: fn(i) computes pass
     * i's result. Passes present in the checkpoint journal are
     * replayed without running fn; the rest fan out on the pool. A
     * pass that throws yields a Failed outcome (value-initialised
     * result, classified error) and the sweep continues; a pass
     * exceeding --pass-timeout is flagged Timeout (and re-runs on
     * resume). Every outcome is recorded in the report in desc
     * order regardless of scheduling. On SIGINT/SIGTERM remaining
     * passes become Skipped, the report is flushed, and
     * PassError(Cancelled) is thrown.
     */
    template <typename Fn>
    std::vector<PassOutcome>
    runPasses(const std::vector<PassDesc> &descs, Fn fn)
    {
        return runPassesImpl(
            descs, std::function<SimResult(std::size_t)>(fn));
    }

    /**
     * Record one pass into the JSON report; returns the result (by
     * value, so recording a temporary pass is safe).
     */
    SimResult record(const std::string &workload,
                     const SimResult &result);

    /**
     * Fold microbenchmark rows into the --bench-out document
     * (perf_suite registers its kernel suite this way).
     */
    void addMicrobenchResults(std::vector<perf::BenchResult> rows);

    /**
     * The resource sampler started for --bench-out (nullptr
     * otherwise); tests assert on its summary.
     */
    const perf::ResourceSampler *sampler() const
    {
        return sampler_.get();
    }

    /**
     * Finish the run: write the JSON report, telemetry metrics
     * snapshot (--metrics-out), Chrome trace (--trace-out), and
     * BENCH performance report (--bench-out; the resource sampler
     * is stopped and joined first) when requested (each atomic
     * tmp+rename) and print a failure summary to stderr when any
     * pass is not Ok. Exit code: 0 on full success, 1 when any
     * output file cannot be written, 3 when any pass failed or
     * timed out.
     */
    int finish();

  private:
    std::vector<PassOutcome>
    runPassesImpl(const std::vector<PassDesc> &descs,
                  const std::function<SimResult(std::size_t)> &fn);

    /**
     * Write every requested output artifact (--events-out, --json,
     * --metrics-out, --trace-out, --bench-out), each atomic
     * tmp+rename. Returns 0, or 1 when any file cannot be written.
     * Idempotent: called early when a pass times out (so a campaign
     * an operator then kills still leaves artifacts behind, like
     * the SIGINT path) and again by finish(), which atomically
     * replaces the early flush with the complete campaign.
     */
    int flushOutputs();

    /** Render the --bench-out document from the run's state. */
    std::string benchJson();

    std::string tool_;
    RunnerOptions options_;
    SystemConfig config_;
    ThreadPool pool_;
    ProfileCache cache_;
    Report report_;
    std::unique_ptr<CheckpointJournal> journal_;
    std::unique_ptr<Watchdog> watchdog_;
    std::unique_ptr<perf::ResourceSampler> sampler_;
    std::vector<perf::BenchResult> microResults_;
    std::chrono::steady_clock::time_point startTime_;
};

/**
 * Standard main() wrapper of a harness binary: installs the
 * SIGINT/SIGTERM handlers, runs the body (which constructs the
 * Harness and returns finish()), and maps errors onto exit codes —
 * Usage 2, Cancelled 128+signal, any other failure 1.
 */
template <typename Body>
int
benchMain(const char *tool, Body body)
{
    installSignalHandlers();
    try {
        return body();
    } catch (const PassError &error) {
        if (error.code() == PassErrorCode::Usage) {
            std::fprintf(stderr, "%s: %s\n", tool, error.what());
            return 2;
        }
        if (error.code() == PassErrorCode::Cancelled) {
            std::fprintf(stderr,
                         "%s: cancelled; partial results flushed\n",
                         tool);
            const int sig = cancellationSignal();
            return 128 + (sig != 0 ? sig : SIGINT);
        }
        std::fprintf(stderr, "%s: %s: %s\n", tool,
                     passErrorCodeName(error.code()), error.what());
        return 1;
    } catch (const std::exception &error) {
        std::fprintf(stderr, "%s: %s\n", tool, error.what());
        return 1;
    }
}

} // namespace ramp::runner

#endif // RAMP_RUNNER_HARNESS_HH
