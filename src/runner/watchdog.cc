#include "runner/watchdog.hh"

#include "common/logging.hh"

namespace ramp::runner
{

Watchdog::Watchdog(double timeout_seconds)
    : timeout_(timeout_seconds), thread_([this] { loop(); })
{
}

Watchdog::~Watchdog()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    wake_.notify_all();
    thread_.join();
}

Watchdog::Scope
Watchdog::watch(std::string label)
{
    std::lock_guard<std::mutex> lock(mutex_);
    const std::uint64_t id = next_id_++;
    entries_.emplace(id, Entry{std::move(label),
                               std::chrono::steady_clock::now(),
                               false});
    return Scope(this, id);
}

void
Watchdog::unwatch(std::uint64_t id)
{
    std::lock_guard<std::mutex> lock(mutex_);
    entries_.erase(id);
}

void
Watchdog::Scope::release()
{
    if (dog_ != nullptr)
        dog_->unwatch(id_);
    dog_ = nullptr;
}

void
Watchdog::loop()
{
    std::unique_lock<std::mutex> lock(mutex_);
    while (!stop_) {
        wake_.wait_for(lock, std::chrono::milliseconds(250));
        const auto now = std::chrono::steady_clock::now();
        for (auto &[id, entry] : entries_) {
            if (entry.warned)
                continue;
            const double elapsed =
                std::chrono::duration<double>(now - entry.start)
                    .count();
            if (elapsed > timeout_) {
                entry.warned = true;
                ramp_warn("pass '", entry.label,
                          "' exceeded --pass-timeout (", timeout_,
                          " s) and is still running; it will be "
                          "flagged TIMEOUT in the report");
            }
        }
    }
}

} // namespace ramp::runner
