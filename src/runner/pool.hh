/**
 * @file
 * Deterministic thread-pool executor for independent simulation
 * passes.
 *
 * Every figure binary fans the paper's per-workload passes out as
 * pure tasks: each task reads shared immutable inputs (config,
 * traces, profile) and produces its own result. The pool runs such a
 * task set across worker threads and collects results in task-index
 * order, so a run with N threads is bit-identical to a serial run —
 * parallelism changes wall-clock only, never the published tables.
 *
 * Nested map() calls (a task that itself fans out) are safe: the
 * calling thread participates in executing its own batch, so an
 * inner batch completes even when every worker is busy with outer
 * tasks. Stochastic tasks take an explicit per-task seed derived via
 * taskSeed(), never shared generator state.
 *
 * Failure semantics: an exception thrown by a task is captured
 * instead of terminating the worker thread; the remaining tasks of
 * the batch still run, and the first captured exception is rethrown
 * on the calling thread once the batch drains. The pool also polls
 * the cooperative cancellation flag (runner/error.hh) between
 * tasks: after SIGINT/SIGTERM no new task starts, in-flight tasks
 * finish, and the caller observes the partially-filled results (the
 * harness then flushes and exits). Callers needing per-task
 * containment (the harness does) catch inside the task themselves.
 */

#ifndef RAMP_RUNNER_POOL_HH
#define RAMP_RUNNER_POOL_HH

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace ramp::runner
{

/**
 * Derive the seed of one task of a seeded campaign (SplitMix64 of
 * the campaign seed advanced by the task index). Tasks seeded this
 * way draw independent streams whose union does not depend on how
 * the tasks are scheduled or sharded.
 */
std::uint64_t taskSeed(std::uint64_t campaign_seed,
                       std::uint64_t task_index);

/** Fixed-size pool of worker threads executing indexed batches. */
class ThreadPool
{
  public:
    /**
     * @param jobs worker count; 0 picks defaultJobs(). A pool of 1
     *             executes every batch on the calling thread.
     */
    explicit ThreadPool(unsigned jobs = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Configured parallelism (>= 1). */
    unsigned jobs() const { return jobs_; }

    /**
     * Default parallelism: the RAMP_JOBS environment variable when
     * set, otherwise std::thread::hardware_concurrency().
     */
    static unsigned defaultJobs();

    /**
     * Run task(i) for every i in [0, count). Blocks until all
     * started indices completed. The calling thread participates,
     * so this may be invoked from inside a task. Rethrows the first
     * exception any task threw (after the batch drains); stops
     * dispatching new indices once cancellation is requested.
     */
    void runIndexed(std::size_t count,
                    const std::function<void(std::size_t)> &task);

    /**
     * Parallel map: results[i] = fn(i), collected in index order.
     * The result type must be default-constructible (every RAMP
     * result struct is).
     */
    template <typename Fn>
    auto mapIndex(std::size_t count, Fn fn)
        -> std::vector<std::invoke_result_t<Fn &, std::size_t>>
    {
        using R = std::invoke_result_t<Fn &, std::size_t>;
        std::vector<R> results(count);
        runIndexed(count, [&](std::size_t i) { results[i] = fn(i); });
        return results;
    }

    /** Parallel map over a vector of items, in item order. */
    template <typename T, typename Fn>
    auto map(const std::vector<T> &items, Fn fn)
        -> std::vector<std::invoke_result_t<Fn &, const T &>>
    {
        return mapIndex(items.size(), [&](std::size_t i) {
            return fn(items[i]);
        });
    }

  private:
    void workerLoop();

    unsigned jobs_;
    std::vector<std::thread> workers_;

    std::mutex mutex_;
    std::condition_variable wake_;
    std::condition_variable idle_;

    /** Run one index, capturing any exception into error_. */
    void runTask(const std::function<void(std::size_t)> &task,
                 std::size_t index,
                 std::unique_lock<std::mutex> &lock);

    /** @{ @name Current batch (guarded by mutex_) */
    const std::function<void(std::size_t)> *task_ = nullptr;
    std::size_t count_ = 0;
    std::size_t next_ = 0;
    std::size_t inflight_ = 0;
    std::exception_ptr error_;
    bool stop_ = false;
    /** @} */
};

} // namespace ramp::runner

#endif // RAMP_RUNNER_POOL_HH
