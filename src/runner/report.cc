#include "runner/report.hh"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <sstream>

#include "common/stats.hh"
#include "common/table.hh"
#include "runner/checkpoint.hh"

namespace ramp::runner
{

double
meanRatio(std::span<const double> ratios)
{
    return mean(ratios);
}

double
hitRate(std::uint64_t hits, std::uint64_t misses)
{
    const std::uint64_t total = hits + misses;
    // NaN, not 0: an idle counter pair is unmeasured, and the JSON
    // emitters render NaN as null instead of a fake perfect miss.
    return total == 0 ? std::numeric_limits<double>::quiet_NaN()
                      : static_cast<double>(hits) /
                            static_cast<double>(total);
}

double
accessShare(std::uint64_t part, std::uint64_t rest)
{
    const std::uint64_t total = part + rest;
    return total == 0 ? std::numeric_limits<double>::quiet_NaN()
                      : static_cast<double>(part) /
                            static_cast<double>(total);
}

double
RatioColumn::mean() const
{
    return meanRatio(values_);
}

std::string
RatioColumn::averageCell(int precision) const
{
    if (values_.empty())
        return "-";
    return TextTable::ratio(mean(), precision);
}

std::string
RatioColumn::lossCell(int precision) const
{
    if (values_.empty())
        return "-";
    return TextTable::percent(1.0 - mean(), precision);
}

namespace
{

/** Positive double for --pass-timeout; throws PassError(Usage). */
double
parseTimeout(const std::string &text)
{
    char *end = nullptr;
    const double parsed = std::strtod(text.c_str(), &end);
    if (end == text.c_str() || *end != '\0' || !(parsed > 0))
        throw PassError(PassErrorCode::Usage,
                        "--pass-timeout needs a positive number of "
                        "seconds, got '" +
                            text + "'");
    return parsed;
}

/** Sample period for --sample-ms; throws PassError(Usage). */
unsigned
parseSampleMs(const std::string &text)
{
    char *end = nullptr;
    const long parsed = std::strtol(text.c_str(), &end, 10);
    if (end == text.c_str() || *end != '\0' || parsed < 10)
        throw PassError(PassErrorCode::Usage,
                        "--sample-ms needs an integer of at least "
                        "10 milliseconds, got '" +
                            text + "'");
    return static_cast<unsigned>(parsed);
}

} // namespace

RunnerOptions
RunnerOptions::parse(int argc, char **argv)
{
    RunnerOptions options;
    if (const char *env = std::getenv("RAMP_JSON"))
        options.jsonPath = env;
    if (const char *env = std::getenv("RAMP_METRICS_OUT"))
        options.metricsPath = env;
    if (const char *env = std::getenv("RAMP_TRACE_OUT"))
        options.tracePath = env;
    if (const char *env = std::getenv("RAMP_BENCH_OUT"))
        options.benchPath = env;
    if (const char *env = std::getenv("RAMP_EVENTS_OUT"))
        options.eventsPath = env;
    if (const char *env = std::getenv("RAMP_TIMELINE_OUT"))
        options.timelinePath = env;
    if (const char *env = std::getenv("RAMP_PROF_OUT"))
        options.profilePath = env;
    if (const char *env = std::getenv("RAMP_HEALTH_RULES"))
        options.healthRules = env;
    if (const char *env = std::getenv("RAMP_SAMPLE_MS"))
        options.sampleMs = parseSampleMs(env);
    if (const char *env = std::getenv("RAMP_CACHE_DIR"))
        options.cacheDir = env;
    if (const char *env = std::getenv("RAMP_CHECKPOINT"))
        options.checkpointDir = env;
    if (const char *env = std::getenv("RAMP_PASS_TIMEOUT"))
        options.passTimeout = parseTimeout(env);
    // RAMP_JOBS is honoured by ThreadPool::defaultJobs(); jobs = 0
    // defers to it.

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&](const char *flag) -> std::string {
            if (i + 1 >= argc)
                throw PassError(PassErrorCode::Usage,
                                std::string(flag) +
                                    " needs a value");
            return argv[++i];
        };
        if (arg == "--jobs" || arg == "-j") {
            const std::string text = value("--jobs");
            char *end = nullptr;
            const long parsed =
                std::strtol(text.c_str(), &end, 10);
            if (end == text.c_str() || *end != '\0' || parsed < 1)
                throw PassError(PassErrorCode::Usage,
                                "--jobs needs a positive integer, "
                                "got '" +
                                    text + "'");
            options.jobs = static_cast<unsigned>(parsed);
        } else if (arg == "--json") {
            options.jsonPath = value("--json");
        } else if (arg == "--metrics-out") {
            options.metricsPath = value("--metrics-out");
        } else if (arg == "--trace-out") {
            options.tracePath = value("--trace-out");
        } else if (arg == "--bench-out") {
            options.benchPath = value("--bench-out");
        } else if (arg == "--events-out") {
            options.eventsPath = value("--events-out");
        } else if (arg == "--timeline-out") {
            options.timelinePath = value("--timeline-out");
        } else if (arg == "--profile-out") {
            options.profilePath = value("--profile-out");
        } else if (arg == "--health-rules") {
            options.healthRules = value("--health-rules");
        } else if (arg == "--sample-ms") {
            options.sampleMs =
                parseSampleMs(value("--sample-ms"));
        } else if (arg == "--cache-dir") {
            options.cacheDir = value("--cache-dir");
        } else if (arg == "--checkpoint") {
            options.checkpointDir = value("--checkpoint");
        } else if (arg == "--pass-timeout") {
            options.passTimeout =
                parseTimeout(value("--pass-timeout"));
        } else {
            options.positional.push_back(arg);
        }
    }
    return options;
}

const char *
RunnerOptions::flagsHelp()
{
    return "  --jobs N        parallel simulation passes "
           "(default: all cores; env RAMP_JOBS)\n"
           "  --json PATH     write machine-readable results "
           "(env RAMP_JSON)\n"
           "  --metrics-out PATH  write a telemetry metrics "
           "snapshot (env RAMP_METRICS_OUT)\n"
           "  --trace-out PATH  write a Chrome trace-event file "
           "(env RAMP_TRACE_OUT)\n"
           "  --bench-out PATH  write a BENCH_<tool>.json "
           "performance report (env RAMP_BENCH_OUT)\n"
           "  --events-out PATH  write the decision ledger as "
           "JSONL (env RAMP_EVENTS_OUT)\n"
           "  --timeline-out PATH  write the epoch health timeline "
           "as JSONL (env RAMP_TIMELINE_OUT)\n"
           "  --profile-out PATH  write a ramp-profile-v1 cycle "
           "profile (+PATH.folded flamegraph stacks; env "
           "RAMP_PROF_OUT)\n"
           "  --health-rules R  SLO rules evaluated per epoch, e.g. "
           "alert:p99_slowdown>2,for=3 (env RAMP_HEALTH_RULES)\n"
           "  --sample-ms N   resource-sampler period, >= 10 "
           "(default 50; env RAMP_SAMPLE_MS)\n"
           "  --cache-dir D   persist profiling passes on disk "
           "(env RAMP_CACHE_DIR)\n"
           "  --checkpoint D  journal completed passes; resume a "
           "killed campaign (env RAMP_CHECKPOINT)\n"
           "  --pass-timeout S  flag passes running longer than S "
           "seconds (env RAMP_PASS_TIMEOUT)\n";
}

Report::Report(std::string tool)
    : tool_(std::move(tool))
{
}

void
Report::add(const std::string &workload, const SimResult &result,
            double seconds)
{
    std::lock_guard<std::mutex> lock(mutex_);
    PassRecord record;
    record.workload = workload;
    record.result = result;
    record.seconds = seconds;
    passes_.push_back(std::move(record));
}

void
Report::add(const std::string &workload, const SimResult &result,
            PassStatus status, const std::string &error,
            const std::string &message, double seconds)
{
    std::lock_guard<std::mutex> lock(mutex_);
    passes_.push_back(
        {workload, result, status, error, message, seconds});
}

std::vector<PassRecord>
Report::passes() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return passes_;
}

std::vector<PassRecord>
Report::failures() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<PassRecord> out;
    for (const auto &pass : passes_)
        if (pass.status != PassStatus::Ok)
            out.push_back(pass);
    return out;
}

namespace
{

/** JSON string escaping (control characters, quotes, backslash). */
std::string
jsonEscape(const std::string &text)
{
    std::string out;
    out.reserve(text.size() + 2);
    for (const char c : text) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buffer[8];
                std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
                out += buffer;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/** Finite JSON number (JSON has no inf/nan; render as null). */
std::string
jsonNumber(double value)
{
    if (!std::isfinite(value))
        return "null";
    std::ostringstream out;
    out.precision(17);
    out << value;
    return out.str();
}

} // namespace

bool
Report::writeJson(const std::string &path, unsigned jobs,
                  const ProfileCacheStats &cache_stats,
                  const EventsInfo *events,
                  const HealthInfo *health) const
{
    std::ostringstream out;
    const auto passes = this->passes();
    out << "{\n"
        << "  \"tool\": \"" << jsonEscape(tool_) << "\",\n"
        << "  \"jobs\": " << jobs << ",\n"
        << "  \"profile_cache\": {\n"
        << "    \"memory_hits\": " << cache_stats.memoryHits
        << ",\n"
        << "    \"disk_hits\": " << cache_stats.diskHits << ",\n"
        << "    \"misses\": " << cache_stats.misses << ",\n"
        << "    \"disk_writes\": " << cache_stats.diskWrites << "\n"
        << "  },\n";
    if (events != nullptr)
        out << "  \"events\": {\n"
            << "    \"path\": \"" << jsonEscape(events->path)
            << "\",\n"
            << "    \"records\": " << events->records << ",\n"
            << "    \"dropped\": " << events->dropped << "\n"
            << "  },\n";
    if (health != nullptr) {
        out << "  \"health\": {\n"
            << "    \"path\": \"" << jsonEscape(health->path)
            << "\",\n"
            << "    \"rules\": \"" << jsonEscape(health->rules)
            << "\",\n"
            << "    \"samples\": " << health->samples << ",\n"
            << "    \"alerts\": " << health->alerts << ",\n"
            << "    \"warns\": " << health->warns << ",\n"
            << "    \"fired\": [\n";
        for (std::size_t i = 0; i < health->alertJson.size(); ++i)
            out << "      " << health->alertJson[i]
                << (i + 1 < health->alertJson.size() ? "," : "")
                << "\n";
        out << "    ]\n"
            << "  },\n";
    }
    out << "  \"passes\": [\n";
    for (std::size_t i = 0; i < passes.size(); ++i) {
        const auto &pass = passes[i];
        const auto &r = pass.result;
        out << "    {\"workload\": \"" << jsonEscape(pass.workload)
            << "\", \"label\": \"" << jsonEscape(r.label) << "\""
            << ", \"status\": \"" << passStatusName(pass.status)
            << "\"";
        if (pass.status != PassStatus::Ok)
            out << ", \"error\": \"" << jsonEscape(pass.error)
                << "\", \"message\": \"" << jsonEscape(pass.message)
                << "\"";
        out << ", \"ipc\": " << jsonNumber(r.ipc)
            << ", \"mpki\": " << jsonNumber(r.mpki)
            << ", \"ser\": " << jsonNumber(r.ser)
            << ", \"memory_avf\": " << jsonNumber(r.memoryAvf)
            << ", \"makespan\": " << r.makespan
            << ", \"instructions\": " << r.instructions
            << ", \"requests\": " << r.requests
            << ", \"avg_read_latency\": "
            << jsonNumber(r.avgReadLatency)
            << ", \"hbm_access_fraction\": "
            << jsonNumber(r.hbmAccessFraction)
            << ", \"migrated_pages\": " << r.migratedPages
            << ", \"migration_events\": " << r.migrationEvents;
        // Fault keys appear only for runs an injector touched, so
        // fault-free artifacts stay byte-identical to before.
        if (r.faultsInjected > 0 || r.capacityLostPages > 0 ||
            r.pagesRetired > 0 || r.degraded) {
            out << ", \"faults_injected\": " << r.faultsInjected
                << ", \"pages_retired\": " << r.pagesRetired
                << ", \"capacity_lost_pages\": "
                << r.capacityLostPages
                << ", \"response_moves\": " << r.responseMoves
                << ", \"response_retries\": " << r.responseRetries
                << ", \"degraded\": "
                << (r.degraded ? "true" : "false");
        }
        out << "}" << (i + 1 < passes.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    return atomicWriteFile(path, out.str());
}

} // namespace ramp::runner
