#include "runner/report.hh"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/stats.hh"
#include "common/table.hh"

namespace ramp::runner
{

double
meanRatio(std::span<const double> ratios)
{
    return mean(ratios);
}

double
RatioColumn::mean() const
{
    return meanRatio(values_);
}

std::string
RatioColumn::averageCell(int precision) const
{
    if (values_.empty())
        return "-";
    return TextTable::ratio(mean(), precision);
}

std::string
RatioColumn::lossCell(int precision) const
{
    if (values_.empty())
        return "-";
    return TextTable::percent(1.0 - mean(), precision);
}

RunnerOptions
RunnerOptions::parse(int argc, char **argv)
{
    RunnerOptions options;
    if (const char *env = std::getenv("RAMP_JSON"))
        options.jsonPath = env;
    if (const char *env = std::getenv("RAMP_CACHE_DIR"))
        options.cacheDir = env;
    // RAMP_JOBS is honoured by ThreadPool::defaultJobs(); jobs = 0
    // defers to it.

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&](const char *flag) -> std::string {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n", flag);
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--jobs" || arg == "-j") {
            const std::string text = value("--jobs");
            char *end = nullptr;
            const long parsed =
                std::strtol(text.c_str(), &end, 10);
            if (end == text.c_str() || *end != '\0' || parsed < 1) {
                std::fprintf(stderr,
                             "--jobs needs a positive integer, got "
                             "'%s'\n",
                             text.c_str());
                std::exit(2);
            }
            options.jobs = static_cast<unsigned>(parsed);
        } else if (arg == "--json") {
            options.jsonPath = value("--json");
        } else if (arg == "--cache-dir") {
            options.cacheDir = value("--cache-dir");
        } else {
            options.positional.push_back(arg);
        }
    }
    return options;
}

const char *
RunnerOptions::flagsHelp()
{
    return "  --jobs N        parallel simulation passes "
           "(default: all cores; env RAMP_JOBS)\n"
           "  --json PATH     write machine-readable results "
           "(env RAMP_JSON)\n"
           "  --cache-dir D   persist profiling passes on disk "
           "(env RAMP_CACHE_DIR)\n";
}

Report::Report(std::string tool)
    : tool_(std::move(tool))
{
}

void
Report::add(const std::string &workload, const SimResult &result)
{
    std::lock_guard<std::mutex> lock(mutex_);
    passes_.push_back({workload, result});
}

std::vector<PassRecord>
Report::passes() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return passes_;
}

namespace
{

/** JSON string escaping (control characters, quotes, backslash). */
std::string
jsonEscape(const std::string &text)
{
    std::string out;
    out.reserve(text.size() + 2);
    for (const char c : text) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buffer[8];
                std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
                out += buffer;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/** Finite JSON number (JSON has no inf/nan; clamp to 0). */
std::string
jsonNumber(double value)
{
    if (!std::isfinite(value))
        return "0";
    std::ostringstream out;
    out.precision(17);
    out << value;
    return out.str();
}

} // namespace

bool
Report::writeJson(const std::string &path, unsigned jobs,
                  const ProfileCacheStats &cache_stats) const
{
    std::ofstream out(path);
    if (!out)
        return false;

    const auto passes = this->passes();
    out << "{\n"
        << "  \"tool\": \"" << jsonEscape(tool_) << "\",\n"
        << "  \"jobs\": " << jobs << ",\n"
        << "  \"profile_cache\": {\n"
        << "    \"memory_hits\": " << cache_stats.memoryHits
        << ",\n"
        << "    \"disk_hits\": " << cache_stats.diskHits << ",\n"
        << "    \"misses\": " << cache_stats.misses << ",\n"
        << "    \"disk_writes\": " << cache_stats.diskWrites << "\n"
        << "  },\n"
        << "  \"passes\": [\n";
    for (std::size_t i = 0; i < passes.size(); ++i) {
        const auto &[workload, r] = passes[i];
        out << "    {\"workload\": \"" << jsonEscape(workload)
            << "\", \"label\": \"" << jsonEscape(r.label) << "\""
            << ", \"ipc\": " << jsonNumber(r.ipc)
            << ", \"mpki\": " << jsonNumber(r.mpki)
            << ", \"ser\": " << jsonNumber(r.ser)
            << ", \"memory_avf\": " << jsonNumber(r.memoryAvf)
            << ", \"makespan\": " << r.makespan
            << ", \"instructions\": " << r.instructions
            << ", \"requests\": " << r.requests
            << ", \"avg_read_latency\": "
            << jsonNumber(r.avgReadLatency)
            << ", \"hbm_access_fraction\": "
            << jsonNumber(r.hbmAccessFraction)
            << ", \"migrated_pages\": " << r.migratedPages
            << ", \"migration_events\": " << r.migrationEvents
            << "}" << (i + 1 < passes.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    return static_cast<bool>(out);
}

} // namespace ramp::runner
