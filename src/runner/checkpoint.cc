#include "runner/checkpoint.hh"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fcntl.h>
#include <filesystem>
#include <thread>
#include <unistd.h>

#include "common/logging.hh"
#include "runner/codec.hh"
#include "runner/error.hh"

namespace ramp::runner
{

std::uint64_t
fnv1a64(std::string_view bytes)
{
    std::uint64_t hash = 0xcbf29ce484222325ULL;
    for (const char c : bytes) {
        hash ^= static_cast<std::uint8_t>(c);
        hash *= 0x100000001b3ULL;
    }
    return hash;
}

std::string
hashHex(std::uint64_t value)
{
    char buffer[20];
    std::snprintf(buffer, sizeof(buffer), "%016llx",
                  static_cast<unsigned long long>(value));
    return buffer;
}

std::string
uniqueTmpPath(const std::string &path)
{
    static std::atomic<std::uint64_t> counter{0};
    return path + ".tmp." + std::to_string(::getpid()) + "." +
           std::to_string(counter.fetch_add(1));
}

namespace
{

constexpr int writeAttempts = 3;

/** One attempt of the write-fsync-rename sequence. */
bool
tryAtomicWrite(const std::string &path, std::string_view bytes,
               std::string *error)
{
    const std::string tmp = uniqueTmpPath(path);
    const int fd =
        ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) {
        if (error != nullptr)
            *error = "cannot open " + tmp;
        return false;
    }
    std::size_t written = 0;
    bool ok = true;
    while (written < bytes.size()) {
        const ssize_t n = ::write(fd, bytes.data() + written,
                                  bytes.size() - written);
        if (n <= 0) {
            ok = false;
            break;
        }
        written += static_cast<std::size_t>(n);
    }
    if (ok && ::fsync(fd) != 0)
        ok = false;
    if (::close(fd) != 0)
        ok = false;

    std::error_code ec;
    if (ok) {
        std::filesystem::rename(tmp, path, ec);
        if (!ec)
            return true;
        if (error != nullptr)
            *error = "cannot rename " + tmp + " to " + path + ": " +
                     ec.message();
    } else if (error != nullptr) {
        *error = "short write to " + tmp;
    }
    std::filesystem::remove(tmp, ec);
    return false;
}

/** Minimal JSON string escape for labels/keys. */
std::string
escape(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (const char c : text) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buffer[8];
                std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
                out += buffer;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/**
 * Read an escaped JSON string starting at `pos` (just past the
 * opening quote); leaves `pos` past the closing quote.
 */
bool
readEscaped(const std::string &line, std::size_t &pos,
            std::string &out)
{
    out.clear();
    while (pos < line.size()) {
        const char c = line[pos];
        if (c == '"') {
            ++pos;
            return true;
        }
        if (c != '\\') {
            out.push_back(c);
            ++pos;
            continue;
        }
        if (pos + 1 >= line.size())
            return false;
        const char esc = line[pos + 1];
        pos += 2;
        switch (esc) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case 'n': out.push_back('\n'); break;
          case 't': out.push_back('\t'); break;
          case 'r': out.push_back('\r'); break;
          case 'u': {
            if (pos + 4 > line.size())
                return false;
            unsigned value = 0;
            if (std::sscanf(line.c_str() + pos, "%4x", &value) != 1)
                return false;
            out.push_back(static_cast<char>(value));
            pos += 4;
            break;
          }
          default: return false;
        }
    }
    return false;
}

/** Expect `token` at `pos` and advance past it. */
bool
expect(const std::string &line, std::size_t &pos, const char *token)
{
    const std::size_t len = std::strlen(token);
    if (line.compare(pos, len, token) != 0)
        return false;
    pos += len;
    return true;
}

std::string
headerLine(const std::string &tool)
{
    // Version 2: SimResult grew the fault-response fields.
    return "{\"ramp_journal\":2,\"tool\":\"" + escape(tool) + "\"}";
}

} // namespace

bool
atomicWriteFile(const std::string &path, std::string_view bytes,
                std::string *error)
{
    std::error_code ec;
    const auto parent = std::filesystem::path(path).parent_path();
    if (!parent.empty())
        std::filesystem::create_directories(parent, ec);

    for (int attempt = 0; attempt < writeAttempts; ++attempt) {
        if (attempt > 0)
            std::this_thread::sleep_for(
                std::chrono::milliseconds(10 * attempt));
        if (tryAtomicWrite(path, bytes, error))
            return true;
    }
    return false;
}

std::string
CheckpointJournal::encodeLine(const std::string &key,
                              const std::string &workload,
                              const SimResult &result)
{
    codec::Writer writer;
    writer.result(result);
    std::string body = "{\"key\":\"" + escape(key) +
                       "\",\"workload\":\"" + escape(workload) +
                       "\",\"result\":\"" +
                       codec::hexEncode(writer.bytes) + "\"";
    return body + ",\"crc\":\"" + hashHex(fnv1a64(body)) + "\"}";
}

bool
CheckpointJournal::decodeLine(const std::string &line,
                              std::string &key,
                              std::string &workload,
                              SimResult &result)
{
    // Checksum first: everything before `,"crc":"..."}` must hash
    // to the recorded value, so torn or bit-flipped lines are
    // rejected without parsing.
    const std::string crcToken = ",\"crc\":\"";
    const std::size_t crcPos = line.rfind(crcToken);
    if (crcPos == std::string::npos ||
        line.size() != crcPos + crcToken.size() + 18 ||
        line.compare(line.size() - 2, 2, "\"}") != 0)
        return false;
    const std::string recorded =
        line.substr(crcPos + crcToken.size(), 16);
    if (recorded != hashHex(fnv1a64(line.substr(0, crcPos))))
        return false;

    std::size_t pos = 0;
    std::string hex;
    if (!expect(line, pos, "{\"key\":\"") ||
        !readEscaped(line, pos, key) ||
        !expect(line, pos, ",\"workload\":\"") ||
        !readEscaped(line, pos, workload) ||
        !expect(line, pos, ",\"result\":\"") ||
        !readEscaped(line, pos, hex) || pos != crcPos)
        return false;

    std::vector<std::uint8_t> bytes;
    if (!codec::hexDecode(hex, bytes))
        return false;
    codec::Reader reader{bytes};
    SimResult decoded = reader.result();
    if (!reader.ok || reader.pos != bytes.size())
        return false;
    result = std::move(decoded);
    return true;
}

CheckpointJournal::CheckpointJournal(const std::string &dir,
                                     const std::string &tool)
    : path_(dir + "/" + tool + ".ckpt.jsonl"), tool_(tool)
{
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec)
        throw PassError(PassErrorCode::Io,
                        "cannot create checkpoint directory " + dir +
                            ": " + ec.message());
    load();
    out_.open(path_, std::ios::app);
    if (!out_)
        throw PassError(PassErrorCode::Io,
                        "cannot open checkpoint journal " + path_ +
                            " for append");
    if (std::filesystem::file_size(path_, ec) == 0 || ec) {
        out_ << headerLine(tool_) << "\n";
        out_.flush();
    }
}

void
CheckpointJournal::load()
{
    std::ifstream in(path_);
    if (!in)
        return; // No journal yet: fresh campaign.

    std::string line;
    if (!std::getline(in, line) || line != headerLine(tool_)) {
        // Unreadable header: never trust any of it. Quarantine the
        // file and start fresh.
        in.close();
        std::error_code ec;
        std::filesystem::rename(path_, path_ + ".corrupt", ec);
        ramp_warn("checkpoint journal ", path_,
                  " has an unreadable header; quarantined as ",
                  path_ + ".corrupt");
        return;
    }

    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        std::string key, workload;
        SimResult result;
        if (decodeLine(line, key, workload, result)) {
            entries_.emplace(std::move(key),
                             Entry{std::move(workload),
                                   std::move(result)});
            ++stats_.loaded;
        } else {
            ++stats_.corruptLines;
        }
    }
    if (stats_.corruptLines > 0)
        ramp_warn("checkpoint journal ", path_, ": skipped ",
                  stats_.corruptLines,
                  " corrupt/truncated line(s); those passes will "
                  "be recomputed");
}

bool
CheckpointJournal::lookup(const std::string &key,
                          std::string &workload, SimResult &result)
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = entries_.find(key);
    if (it == entries_.end())
        return false;
    workload = it->second.workload;
    result = it->second.result;
    ++stats_.hits;
    return true;
}

void
CheckpointJournal::append(const std::string &key,
                          const std::string &workload,
                          const SimResult &result)
{
    const std::string line = encodeLine(key, workload, result);
    std::lock_guard<std::mutex> lock(mutex_);
    if (entries_.count(key) != 0)
        return; // Already journaled (e.g. duplicate key).
    out_ << line << "\n";
    out_.flush();
    entries_.emplace(key, Entry{workload, result});
    ++stats_.appended;
}

CheckpointStats
CheckpointJournal::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

} // namespace ramp::runner
