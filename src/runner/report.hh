/**
 * @file
 * Result sink of the experiment runner.
 *
 * Collects every simulation pass a harness binary executes and
 * emits two views: the paper-style TextTable rows the binary prints
 * itself, and a machine-readable JSON document (--json <path>) with
 * per-pass IPC, MPKI, SER, AVF, and migration counters plus the
 * profile-cache hit counters — the repo's first structured
 * perf-trajectory output.
 *
 * The summary-row helpers (meanRatio, RatioColumn) live here so that
 * every figure binary computes its trailing "average" row the same
 * way instead of hand-rolling ratio vectors.
 */

#ifndef RAMP_RUNNER_REPORT_HH
#define RAMP_RUNNER_REPORT_HH

#include <cstdint>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "hma/system.hh"
#include "runner/error.hh"
#include "runner/profile_cache.hh"

namespace ramp::runner
{

/** Arithmetic mean of a ratio series (0 when empty). */
double meanRatio(std::span<const double> ratios);

/** @{ @name Derived-metric helpers (--metrics-out "derived" block)
 * Numerically both are part/(part+rest), but they answer different
 * questions: hitRate() is the success fraction of a hits/misses
 * counter pair, accessShare() is one component's share of traffic
 * split across two destinations (e.g. the HBM's share of demand
 * accesses). Keeping them separate stops a share from being
 * mislabelled as a hit rate.
 */

/** Hit fraction of a hits/misses pair (NaN when idle: the JSON
 * emitters render that as null, not a fake 0). */
double hitRate(std::uint64_t hits, std::uint64_t misses);

/** Share of `part` in part+rest traffic (NaN when idle). */
double accessShare(std::uint64_t part, std::uint64_t rest);
/** @} */

/**
 * One ratio column of a figure table, accumulated per workload and
 * summarised in the trailing "average" row.
 */
class RatioColumn
{
  public:
    /** Append one workload's ratio; returns it for chaining. */
    double add(double ratio)
    {
        values_.push_back(ratio);
        return ratio;
    }

    /** Arithmetic mean of the column (0 when empty). */
    double mean() const;

    /** Average cell formatted as a ratio, e.g. "1.62x". */
    std::string averageCell(int precision = 2) const;

    /** Average cell formatted as a loss, e.g. "14.1%". */
    std::string lossCell(int precision = 1) const;

    const std::vector<double> &values() const { return values_; }

  private:
    std::vector<double> values_;
};

/** Command-line/environment knobs shared by harness binaries. */
struct RunnerOptions
{
    /** Simulation-pass parallelism; 0 = hardware concurrency. */
    unsigned jobs = 0;

    /** JSON report target ("" = no JSON). */
    std::string jsonPath;

    /** Telemetry metrics-snapshot target ("" = no metrics file). */
    std::string metricsPath;

    /** Chrome trace-event target ("" = no trace file). */
    std::string tracePath;

    /** BENCH_<tool>.json target ("" = no bench report). */
    std::string benchPath;

    /** Decision-ledger JSONL target ("" = no events file). */
    std::string eventsPath;

    /** Health-timeline JSONL target ("" = no timeline file). */
    std::string timelinePath;

    /** Health rule set ("" = defaults when the timeline is on). */
    std::string healthRules;

    /** Cycle-profile target ("" = profiler off). The folded
     * flamegraph stacks land next to it at PATH.folded. */
    std::string profilePath;

    /** Resource-sampler period in milliseconds (>= 10). */
    unsigned sampleMs = 50;

    /** On-disk profile-cache directory ("" = memory-only). */
    std::string cacheDir;

    /** Checkpoint-journal directory ("" = no checkpointing). */
    std::string checkpointDir;

    /** Watchdog threshold in seconds (0 = no watchdog). */
    double passTimeout = 0;

    /** Arguments not consumed by the runner, in order. */
    std::vector<std::string> positional;

    /**
     * Parse --jobs N, --json PATH, --metrics-out PATH, --trace-out
     * PATH, --bench-out PATH, --events-out PATH, --timeline-out
     * PATH, --health-rules RULES, --profile-out PATH, --sample-ms
     * N, --cache-dir PATH, --checkpoint DIR, and --pass-timeout S
     * from argv (with RAMP_JOBS / RAMP_JSON / RAMP_METRICS_OUT /
     * RAMP_TRACE_OUT / RAMP_BENCH_OUT / RAMP_EVENTS_OUT /
     * RAMP_TIMELINE_OUT / RAMP_HEALTH_RULES / RAMP_PROF_OUT /
     * RAMP_SAMPLE_MS / RAMP_CACHE_DIR / RAMP_CHECKPOINT /
     * RAMP_PASS_TIMEOUT environment fallbacks); everything else
     * lands in positional.
     * Throws PassError(Usage) on a malformed flag — the binary
     * decides the exit code.
     */
    static RunnerOptions parse(int argc, char **argv);

    /** Usage text of the flags parse() consumes. */
    static const char *flagsHelp();
};

/** Decision-ledger summary stamped into the JSON document. */
struct EventsInfo
{
    /** Events-file path as requested (--events-out). */
    std::string path;

    /** Records written to the events file. */
    std::uint64_t records = 0;

    /** Records dropped at the RAMP_EVENTS_LIMIT capacity cap. */
    std::uint64_t dropped = 0;
};

/** Health-monitor summary stamped into the JSON document. */
struct HealthInfo
{
    /** Timeline-file path as requested (--timeline-out). */
    std::string path;

    /** Installed rule set (canonical spelling). */
    std::string rules;

    /** Timeline samples recorded. */
    std::uint64_t samples = 0;

    /** alert-severity rules fired. */
    std::uint64_t alerts = 0;

    /** warn-severity rules fired. */
    std::uint64_t warns = 0;

    /** Fired alerts as pre-rendered JSON objects, in sorted order. */
    std::vector<std::string> alertJson;
};

/** One recorded simulation pass. */
struct PassRecord
{
    std::string workload;
    SimResult result;

    /** Terminal state; non-Ok records carry error/message. */
    PassStatus status = PassStatus::Ok;

    /** Error-code name (passErrorCodeName) when not Ok. */
    std::string error;

    /** Human-readable failure description when not Ok. */
    std::string message;

    /** Wall-clock duration of the pass (0 = not measured). */
    double seconds = 0;
};

/** Thread-safe collector of pass results; writes the JSON view. */
class Report
{
  public:
    /** @param tool binary name stamped into the JSON document. */
    explicit Report(std::string tool);

    /** Record one pass (label taken from result.label). */
    void add(const std::string &workload, const SimResult &result,
             double seconds = 0);

    /** Record one pass with an explicit terminal status. */
    void add(const std::string &workload, const SimResult &result,
             PassStatus status, const std::string &error,
             const std::string &message, double seconds = 0);

    /** Recorded passes, in recording order. */
    std::vector<PassRecord> passes() const;

    /** Recorded passes whose status is not Ok, in order. */
    std::vector<PassRecord> failures() const;

    /**
     * Write the JSON document: tool, jobs, per-pass metrics and
     * status, the profile-cache counters, and (when written) the
     * decision-ledger and health-monitor summaries. The write is
     * atomic (unique temp file + rename), so a crash never leaves a
     * torn report. Returns false when the file cannot be written.
     */
    bool writeJson(const std::string &path, unsigned jobs,
                   const ProfileCacheStats &cache_stats,
                   const EventsInfo *events = nullptr,
                   const HealthInfo *health = nullptr) const;

  private:
    std::string tool_;
    mutable std::mutex mutex_;
    std::vector<PassRecord> passes_;
};

} // namespace ramp::runner

#endif // RAMP_RUNNER_REPORT_HH
