#include "runner/profile_cache.hh"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/logging.hh"
#include "runner/checkpoint.hh"
#include "runner/codec.hh"
#include "telemetry/telemetry.hh"

namespace ramp::runner
{

namespace
{

/** Mirror of ProfileCacheStats in the telemetry registry. */
struct CacheTelemetry
{
    telemetry::Counter &memoryHits =
        telemetry::metrics().counter("profile_cache.memory_hits");
    telemetry::Counter &diskHits =
        telemetry::metrics().counter("profile_cache.disk_hits");
    telemetry::Counter &misses =
        telemetry::metrics().counter("profile_cache.misses");
    telemetry::Counter &diskWrites =
        telemetry::metrics().counter("profile_cache.disk_writes");
    telemetry::Counter &quarantined =
        telemetry::metrics().counter("profile_cache.quarantined");
};

CacheTelemetry &
cacheTelemetry()
{
    static CacheTelemetry telemetry;
    return telemetry;
}

// Version 2 appends a trailing FNV-1a checksum of the payload.
constexpr char diskMagic[8] = {'R', 'A', 'M', 'P',
                               'P', 'R', 'F', '2'};

/** Exact textual form of a double (round-trips via hexfloat). */
std::string
exact(double value)
{
    char buffer[40];
    std::snprintf(buffer, sizeof(buffer), "%a", value);
    return buffer;
}

void
appendDramConfig(std::ostringstream &out, const DramConfig &config)
{
    out << config.name << ',' << static_cast<int>(config.id) << ','
        << config.capacityBytes << ',' << config.channels << ','
        << config.ranksPerChannel << ',' << config.banksPerRank
        << ',' << config.rowBytes << ',' << config.timing.tRCD
        << ',' << config.timing.tRP << ',' << config.timing.tCL
        << ',' << config.timing.tCWL << ',' << config.timing.tRAS
        << ',' << config.timing.tBURST;
}

} // namespace

void
ProfileCache::setDiskDir(std::string dir)
{
    std::lock_guard<std::mutex> lock(mutex_);
    disk_dir_ = std::move(dir);
}

std::string
ProfileCache::fingerprint(const SystemConfig &config,
                          const WorkloadSpec &spec,
                          const GeneratorOptions &options)
{
    std::ostringstream out;
    out << "spec=" << spec.name << ";benchmarks=";
    for (const auto &bench : spec.coreBenchmarks)
        out << bench << ',';
    out << ";gen=" << options.seed << ','
        << exact(options.traceScale) << ',' << options.cpuLevel
        << ',' << options.hitBurst;
    out << ";cpu=" << config.cores << ',' << config.issueWidth
        << ',' << config.robSize << ','
        << config.maxOutstandingReads;
    out << ";hbm=";
    appendDramConfig(out, config.hbm);
    out << ";ddr=";
    appendDramConfig(out, config.ddr);
    out << ";ser=" << exact(config.ser.fitUncHbmPerGB) << ','
        << exact(config.ser.fitUncDdrPerGB);
    return out.str();
}

std::vector<std::uint8_t>
ProfileCache::serializeBaseline(const std::string &fingerprint,
                                const SimResult &base)
{
    codec::Writer out;
    out.bytes.insert(out.bytes.end(), diskMagic,
                     diskMagic + sizeof(diskMagic));
    out.str(fingerprint);
    out.result(base);

    // Per-page profile, sorted for a canonical byte stream.
    auto pages = base.profile.entries();
    std::sort(pages.begin(), pages.end(),
              [](const auto &a, const auto &b) {
                  return a.first < b.first;
              });
    out.u64(pages.size());
    for (const auto &[page, stats] : pages) {
        out.u64(page);
        out.u64(stats.reads);
        out.u64(stats.writes);
        out.f64(stats.avf);
    }

    // Trailing checksum over everything before it; a torn or
    // bit-flipped file fails verification instead of being loaded.
    const std::uint64_t crc = fnv1a64(std::string_view(
        reinterpret_cast<const char *>(out.bytes.data()),
        out.bytes.size()));
    out.u64(crc);
    return std::move(out.bytes);
}

bool
ProfileCache::deserializeBaseline(
    const std::vector<std::uint8_t> &bytes,
    const std::string &fingerprint, SimResult &base)
{
    if (bytes.size() < sizeof(diskMagic) + 8 ||
        std::memcmp(bytes.data(), diskMagic, sizeof(diskMagic)) != 0)
        return false;

    const std::size_t payload = bytes.size() - 8;
    codec::Reader crc_in{bytes, payload};
    if (crc_in.u64() !=
        fnv1a64(std::string_view(
            reinterpret_cast<const char *>(bytes.data()), payload)))
        return false;

    codec::Reader in{bytes, sizeof(diskMagic)};
    if (in.str() != fingerprint || !in.ok)
        return false;

    SimResult result = in.result();
    const std::uint64_t page_count = in.u64();
    result.profile.reserve(page_count);
    for (std::uint64_t i = 0; i < page_count && in.ok; ++i) {
        const PageId page = in.u64();
        PageStats stats;
        stats.reads = in.u64();
        stats.writes = in.u64();
        stats.avf = in.f64();
        result.profile.setStats(page, stats);
    }
    if (!in.ok)
        return false;
    base = std::move(result);
    return true;
}

std::string
ProfileCache::diskPathFor(const std::string &key) const
{
    char name[32];
    std::snprintf(name, sizeof(name), "%016llx.profile",
                  static_cast<unsigned long long>(fnv1a64(key)));
    return disk_dir_ + "/" + name;
}

ProfiledWorkloadPtr
ProfileCache::compute(const SystemConfig &config,
                      const WorkloadSpec &spec,
                      const GeneratorOptions &options,
                      const std::string &key)
{
    RAMP_TELEM_SPAN(compute_span, "profile.compute", "runner",
                    telemetry::traceArg("workload", spec.name));
    auto profiled = std::make_shared<ProfiledWorkload>();
    profiled->data = prepareWorkload(spec, options);
    profiled->fingerprint = key;

    std::string disk_path;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (!disk_dir_.empty())
            disk_path = diskPathFor(key);
    }

    if (!disk_path.empty()) {
        std::ifstream in(disk_path, std::ios::binary);
        if (in) {
            std::vector<std::uint8_t> bytes(
                (std::istreambuf_iterator<char>(in)),
                std::istreambuf_iterator<char>());
            if (deserializeBaseline(bytes, key, profiled->base)) {
                std::lock_guard<std::mutex> lock(mutex_);
                ++stats_.diskHits;
                RAMP_TELEM(cacheTelemetry().diskHits.add(1));
                return profiled;
            }
            // Never trust a damaged entry: move it aside so it can
            // be inspected, then recompute and rewrite it.
            std::error_code ec;
            std::filesystem::rename(disk_path,
                                    disk_path + ".corrupt", ec);
            ramp_warn("profile cache entry ", disk_path,
                      " failed its checksum; quarantined as "
                      ".corrupt and recomputing");
            std::lock_guard<std::mutex> lock(mutex_);
            ++stats_.quarantined;
            RAMP_TELEM(cacheTelemetry().quarantined.add(1));
        }
    }

    profiled->base = runDdrOnly(config, profiled->data);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.misses;
        RAMP_TELEM(cacheTelemetry().misses.add(1));
    }

    if (!disk_path.empty()) {
        const auto bytes = serializeBaseline(key, profiled->base);
        std::string error;
        if (atomicWriteFile(
                disk_path,
                std::string_view(
                    reinterpret_cast<const char *>(bytes.data()),
                    bytes.size()),
                &error)) {
            std::lock_guard<std::mutex> lock(mutex_);
            ++stats_.diskWrites;
            RAMP_TELEM(cacheTelemetry().diskWrites.add(1));
        } else {
            ramp_warn("profile cache write failed: ", error);
        }
    }
    return profiled;
}

ProfiledWorkloadPtr
ProfileCache::get(const SystemConfig &config,
                  const WorkloadSpec &spec,
                  const GeneratorOptions &options)
{
    const std::string key = fingerprint(config, spec, options);

    std::shared_future<ProfiledWorkloadPtr> future;
    std::promise<ProfiledWorkloadPtr> promise;
    bool owner = false;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = entries_.find(key);
        if (it != entries_.end()) {
            future = it->second;
            ++stats_.memoryHits;
            RAMP_TELEM(cacheTelemetry().memoryHits.add(1));
        } else {
            future = promise.get_future().share();
            entries_.emplace(key, future);
            owner = true;
        }
    }

    if (owner)
        promise.set_value(compute(config, spec, options, key));
    return future.get();
}

ProfileCacheStats
ProfileCache::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

} // namespace ramp::runner
