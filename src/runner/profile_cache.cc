#include "runner/profile_cache.hh"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <unistd.h>

#include "common/logging.hh"

namespace ramp::runner
{

namespace
{

constexpr char diskMagic[8] = {'R', 'A', 'M', 'P',
                               'P', 'R', 'F', '1'};

/** FNV-1a 64-bit hash, for cache file names. */
std::uint64_t
fnv1a(const std::string &text)
{
    std::uint64_t hash = 0xcbf29ce484222325ULL;
    for (const char c : text) {
        hash ^= static_cast<std::uint8_t>(c);
        hash *= 0x100000001b3ULL;
    }
    return hash;
}

/** Exact textual form of a double (round-trips via hexfloat). */
std::string
exact(double value)
{
    char buffer[40];
    std::snprintf(buffer, sizeof(buffer), "%a", value);
    return buffer;
}

void
putU64(std::vector<std::uint8_t> &out, std::uint64_t value)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(
            static_cast<std::uint8_t>(value >> (8 * i)));
}

void
putF64(std::vector<std::uint8_t> &out, double value)
{
    std::uint64_t bits;
    std::memcpy(&bits, &value, sizeof(bits));
    putU64(out, bits);
}

void
putString(std::vector<std::uint8_t> &out, const std::string &text)
{
    putU64(out, text.size());
    out.insert(out.end(), text.begin(), text.end());
}

void
putDramStats(std::vector<std::uint8_t> &out, const DramStats &stats)
{
    putU64(out, stats.reads);
    putU64(out, stats.writes);
    putU64(out, stats.rowHits);
    putU64(out, stats.rowMisses);
    putU64(out, stats.busBusyCycles);
    putU64(out, stats.totalReadLatency);
}

/** Bounds-checked little-endian reader over a byte buffer. */
struct ByteReader
{
    const std::vector<std::uint8_t> &bytes;
    std::size_t pos = 0;
    bool ok = true;

    std::uint64_t u64()
    {
        if (pos + 8 > bytes.size()) {
            ok = false;
            return 0;
        }
        std::uint64_t value = 0;
        for (int i = 0; i < 8; ++i)
            value |= static_cast<std::uint64_t>(bytes[pos + i])
                     << (8 * i);
        pos += 8;
        return value;
    }

    double f64()
    {
        const std::uint64_t bits = u64();
        double value;
        std::memcpy(&value, &bits, sizeof(value));
        return value;
    }

    std::string str()
    {
        const std::uint64_t size = u64();
        if (!ok || pos + size > bytes.size()) {
            ok = false;
            return {};
        }
        std::string text(bytes.begin() +
                             static_cast<std::ptrdiff_t>(pos),
                         bytes.begin() +
                             static_cast<std::ptrdiff_t>(pos + size));
        pos += size;
        return text;
    }

    DramStats dramStats()
    {
        DramStats stats;
        stats.reads = u64();
        stats.writes = u64();
        stats.rowHits = u64();
        stats.rowMisses = u64();
        stats.busBusyCycles = u64();
        stats.totalReadLatency = u64();
        return stats;
    }
};

void
appendDramConfig(std::ostringstream &out, const DramConfig &config)
{
    out << config.name << ',' << static_cast<int>(config.id) << ','
        << config.capacityBytes << ',' << config.channels << ','
        << config.ranksPerChannel << ',' << config.banksPerRank
        << ',' << config.rowBytes << ',' << config.timing.tRCD
        << ',' << config.timing.tRP << ',' << config.timing.tCL
        << ',' << config.timing.tCWL << ',' << config.timing.tRAS
        << ',' << config.timing.tBURST;
}

} // namespace

void
ProfileCache::setDiskDir(std::string dir)
{
    std::lock_guard<std::mutex> lock(mutex_);
    disk_dir_ = std::move(dir);
}

std::string
ProfileCache::fingerprint(const SystemConfig &config,
                          const WorkloadSpec &spec,
                          const GeneratorOptions &options)
{
    std::ostringstream out;
    out << "spec=" << spec.name << ";benchmarks=";
    for (const auto &bench : spec.coreBenchmarks)
        out << bench << ',';
    out << ";gen=" << options.seed << ','
        << exact(options.traceScale) << ',' << options.cpuLevel
        << ',' << options.hitBurst;
    out << ";cpu=" << config.cores << ',' << config.issueWidth
        << ',' << config.robSize << ','
        << config.maxOutstandingReads;
    out << ";hbm=";
    appendDramConfig(out, config.hbm);
    out << ";ddr=";
    appendDramConfig(out, config.ddr);
    out << ";ser=" << exact(config.ser.fitUncHbmPerGB) << ','
        << exact(config.ser.fitUncDdrPerGB);
    return out.str();
}

std::vector<std::uint8_t>
ProfileCache::serializeBaseline(const std::string &fingerprint,
                                const SimResult &base)
{
    std::vector<std::uint8_t> out;
    out.insert(out.end(), diskMagic, diskMagic + sizeof(diskMagic));
    putString(out, fingerprint);
    putString(out, base.label);
    putU64(out, base.makespan);
    putU64(out, base.instructions);
    putU64(out, base.requests);
    putU64(out, base.reads);
    putU64(out, base.writes);
    putF64(out, base.ipc);
    putF64(out, base.mpki);
    putF64(out, base.avgReadLatency);
    putF64(out, base.hbmAccessFraction);
    putDramStats(out, base.hbmStats);
    putDramStats(out, base.ddrStats);
    putU64(out, base.migratedPages);
    putU64(out, base.migrationEvents);
    putF64(out, base.memoryAvf);
    putF64(out, base.ser);

    // Per-page profile, sorted for a canonical byte stream.
    auto pages = base.profile.entries();
    std::sort(pages.begin(), pages.end(),
              [](const auto &a, const auto &b) {
                  return a.first < b.first;
              });
    putU64(out, pages.size());
    for (const auto &[page, stats] : pages) {
        putU64(out, page);
        putU64(out, stats.reads);
        putU64(out, stats.writes);
        putF64(out, stats.avf);
    }
    return out;
}

bool
ProfileCache::deserializeBaseline(
    const std::vector<std::uint8_t> &bytes,
    const std::string &fingerprint, SimResult &base)
{
    if (bytes.size() < sizeof(diskMagic) ||
        std::memcmp(bytes.data(), diskMagic, sizeof(diskMagic)) != 0)
        return false;

    ByteReader in{bytes, sizeof(diskMagic)};
    if (in.str() != fingerprint || !in.ok)
        return false;

    SimResult result;
    result.label = in.str();
    result.makespan = in.u64();
    result.instructions = in.u64();
    result.requests = in.u64();
    result.reads = in.u64();
    result.writes = in.u64();
    result.ipc = in.f64();
    result.mpki = in.f64();
    result.avgReadLatency = in.f64();
    result.hbmAccessFraction = in.f64();
    result.hbmStats = in.dramStats();
    result.ddrStats = in.dramStats();
    result.migratedPages = in.u64();
    result.migrationEvents = in.u64();
    result.memoryAvf = in.f64();
    result.ser = in.f64();

    const std::uint64_t page_count = in.u64();
    for (std::uint64_t i = 0; i < page_count && in.ok; ++i) {
        const PageId page = in.u64();
        PageStats stats;
        stats.reads = in.u64();
        stats.writes = in.u64();
        stats.avf = in.f64();
        result.profile.setStats(page, stats);
    }
    if (!in.ok)
        return false;
    base = std::move(result);
    return true;
}

std::string
ProfileCache::diskPathFor(const std::string &key) const
{
    char name[32];
    std::snprintf(name, sizeof(name), "%016llx.profile",
                  static_cast<unsigned long long>(fnv1a(key)));
    return disk_dir_ + "/" + name;
}

ProfiledWorkloadPtr
ProfileCache::compute(const SystemConfig &config,
                      const WorkloadSpec &spec,
                      const GeneratorOptions &options,
                      const std::string &key)
{
    auto profiled = std::make_shared<ProfiledWorkload>();
    profiled->data = prepareWorkload(spec, options);

    std::string disk_path;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (!disk_dir_.empty())
            disk_path = diskPathFor(key);
    }

    if (!disk_path.empty()) {
        std::ifstream in(disk_path, std::ios::binary);
        if (in) {
            std::vector<std::uint8_t> bytes(
                (std::istreambuf_iterator<char>(in)),
                std::istreambuf_iterator<char>());
            if (deserializeBaseline(bytes, key, profiled->base)) {
                std::lock_guard<std::mutex> lock(mutex_);
                ++stats_.diskHits;
                return profiled;
            }
        }
    }

    profiled->base = runDdrOnly(config, profiled->data);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.misses;
    }

    if (!disk_path.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(
            std::filesystem::path(disk_path).parent_path(), ec);
        const std::string tmp =
            disk_path + ".tmp" + std::to_string(::getpid());
        const auto bytes = serializeBaseline(key, profiled->base);
        std::ofstream out(tmp, std::ios::binary);
        if (out) {
            out.write(reinterpret_cast<const char *>(bytes.data()),
                      static_cast<std::streamsize>(bytes.size()));
            out.close();
            std::filesystem::rename(tmp, disk_path, ec);
            if (!ec) {
                std::lock_guard<std::mutex> lock(mutex_);
                ++stats_.diskWrites;
            } else {
                std::filesystem::remove(tmp, ec);
            }
        }
    }
    return profiled;
}

ProfiledWorkloadPtr
ProfileCache::get(const SystemConfig &config,
                  const WorkloadSpec &spec,
                  const GeneratorOptions &options)
{
    const std::string key = fingerprint(config, spec, options);

    std::shared_future<ProfiledWorkloadPtr> future;
    std::promise<ProfiledWorkloadPtr> promise;
    bool owner = false;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = entries_.find(key);
        if (it != entries_.end()) {
            future = it->second;
            ++stats_.memoryHits;
        } else {
            future = promise.get_future().share();
            entries_.emplace(key, future);
            owner = true;
        }
    }

    if (owner)
        promise.set_value(compute(config, spec, options, key));
    return future.get();
}

ProfileCacheStats
ProfileCache::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

} // namespace ramp::runner
