#include "runner/pool.hh"

#include <chrono>
#include <cstdlib>

#include "prof/prof.hh"
#include "runner/error.hh"
#include "telemetry/telemetry.hh"

namespace ramp::runner
{

namespace
{

/** Task lifetime metrics shared by every pool of the process. */
struct PoolTelemetry
{
    telemetry::Counter &tasks =
        telemetry::metrics().counter("pool.tasks");
    telemetry::HistogramMetric &taskSeconds =
        telemetry::metrics().histogram(
            "pool.task_seconds",
            telemetry::FixedHistogram(
                {0.0, 0.001, 0.01, 0.1, 1.0, 10.0, 60.0, 600.0}));
};

PoolTelemetry &
poolTelemetry()
{
    static PoolTelemetry telemetry;
    return telemetry;
}

/** Run one task index, wrapped in a span and lifetime histogram. */
void
runInstrumented(const std::function<void(std::size_t)> &task,
                std::size_t index)
{
    // TSC-only: dispatch overhead is measured per task, and a PMU
    // read per task would swamp the thing being measured.
    RAMP_PROF_SCOPE(task_prof, "pool.task");
#ifndef RAMP_TELEMETRY_DISABLED
    if (telemetry::enabled()) {
        auto &tel = poolTelemetry();
        tel.tasks.add(1);
        telemetry::ScopedSpan span("pool.task", "runner");
        const auto start = std::chrono::steady_clock::now();
        task(index);
        tel.taskSeconds.observe(
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - start)
                .count());
        return;
    }
#endif
    task(index);
}

} // namespace

std::uint64_t
taskSeed(std::uint64_t campaign_seed, std::uint64_t task_index)
{
    // SplitMix64 step (Steele et al.); the golden-gamma increment
    // decorrelates adjacent task indices.
    std::uint64_t z = campaign_seed + (task_index + 1) *
                                          0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

unsigned
ThreadPool::defaultJobs()
{
    if (const char *env = std::getenv("RAMP_JOBS")) {
        const long parsed = std::strtol(env, nullptr, 10);
        if (parsed >= 1)
            return static_cast<unsigned>(parsed);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

ThreadPool::ThreadPool(unsigned jobs)
    : jobs_(jobs == 0 ? defaultJobs() : jobs)
{
    // The calling thread executes batch tasks too, so jobs_ - 1
    // workers give the requested parallelism.
    workers_.reserve(jobs_ - 1);
    for (unsigned i = 1; i < jobs_; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    wake_.notify_all();
    for (auto &worker : workers_)
        worker.join();
}

void
ThreadPool::runTask(const std::function<void(std::size_t)> &task,
                    std::size_t index,
                    std::unique_lock<std::mutex> &lock)
{
    lock.unlock();
    std::exception_ptr error;
    try {
        runInstrumented(task, index);
    } catch (...) {
        error = std::current_exception();
    }
    lock.lock();
    if (error && !error_)
        error_ = error;
}

void
ThreadPool::runIndexed(std::size_t count,
                       const std::function<void(std::size_t)> &task)
{
    if (count == 0)
        return;

    std::unique_lock<std::mutex> lock(mutex_);
    if (task_ != nullptr || workers_.empty()) {
        // Nested batch (called from inside a task) or single-job
        // pool: run inline on the calling thread. Exceptions
        // propagate to the enclosing task/caller directly.
        lock.unlock();
        for (std::size_t i = 0; i < count; ++i) {
            if (cancellationRequested())
                break;
            runInstrumented(task, i);
        }
        return;
    }

    task_ = &task;
    count_ = count;
    next_ = 0;
    error_ = nullptr;
    wake_.notify_all();

    // Participate in the batch; stop dispatching once cancelled.
    while (next_ < count_ && !cancellationRequested())
        runTask(task, next_++, lock);
    idle_.wait(lock, [this] { return inflight_ == 0; });
    task_ = nullptr;

    const std::exception_ptr error = error_;
    error_ = nullptr;
    if (error) {
        lock.unlock();
        std::rethrow_exception(error);
    }
}

void
ThreadPool::workerLoop()
{
    std::unique_lock<std::mutex> lock(mutex_);
    while (true) {
        wake_.wait(lock, [this] {
            return stop_ || (task_ != nullptr && next_ < count_ &&
                             !cancellationRequested());
        });
        if (stop_)
            return;
        while (task_ != nullptr && next_ < count_ &&
               !cancellationRequested()) {
            const std::size_t index = next_++;
            ++inflight_;
            const auto *task = task_;
            runTask(*task, index, lock);
            --inflight_;
        }
        if (inflight_ == 0)
            idle_.notify_all();
    }
}

} // namespace ramp::runner
