/**
 * @file
 * Little-endian byte codec shared by the runner's durable artifacts.
 *
 * The profile cache (disk baselines) and the checkpoint journal
 * (completed pass results) both need the same property: a SimResult
 * must round-trip bit-exactly, so a resumed campaign is
 * byte-identical to an uninterrupted one. Doubles travel as raw
 * IEEE-754 bits, never as decimal text. The Reader is
 * bounds-checked: truncated or corrupt buffers flip `ok` instead of
 * reading out of range, and the caller treats that as a cache miss
 * or a skipped journal line.
 */

#ifndef RAMP_RUNNER_CODEC_HH
#define RAMP_RUNNER_CODEC_HH

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "hma/system.hh"

namespace ramp::runner::codec
{

/** Append-only little-endian writer. */
struct Writer
{
    std::vector<std::uint8_t> bytes;

    void u64(std::uint64_t value)
    {
        for (int i = 0; i < 8; ++i)
            bytes.push_back(
                static_cast<std::uint8_t>(value >> (8 * i)));
    }

    void f64(double value)
    {
        std::uint64_t bits;
        std::memcpy(&bits, &value, sizeof(bits));
        u64(bits);
    }

    void str(const std::string &text)
    {
        u64(text.size());
        bytes.insert(bytes.end(), text.begin(), text.end());
    }

    void dram(const DramStats &stats)
    {
        u64(stats.reads);
        u64(stats.writes);
        u64(stats.rowHits);
        u64(stats.rowMisses);
        u64(stats.busBusyCycles);
        u64(stats.totalReadLatency);
    }

    /** Every SimResult field except the per-page profile. */
    void result(const SimResult &r)
    {
        str(r.label);
        u64(r.makespan);
        u64(r.instructions);
        u64(r.requests);
        u64(r.reads);
        u64(r.writes);
        f64(r.ipc);
        f64(r.mpki);
        f64(r.avgReadLatency);
        f64(r.hbmAccessFraction);
        dram(r.hbmStats);
        dram(r.ddrStats);
        u64(r.migratedPages);
        u64(r.migrationEvents);
        u64(r.faultsInjected);
        u64(r.pagesRetired);
        u64(r.capacityLostPages);
        u64(r.responseMoves);
        u64(r.responseRetries);
        u64(r.degraded ? 1 : 0);
        f64(r.memoryAvf);
        f64(r.ser);
    }
};

/** Bounds-checked little-endian reader over a byte buffer. */
struct Reader
{
    const std::vector<std::uint8_t> &bytes;
    std::size_t pos = 0;
    bool ok = true;

    std::uint64_t u64()
    {
        if (pos + 8 > bytes.size()) {
            ok = false;
            return 0;
        }
        std::uint64_t value = 0;
        for (int i = 0; i < 8; ++i)
            value |= static_cast<std::uint64_t>(bytes[pos + i])
                     << (8 * i);
        pos += 8;
        return value;
    }

    double f64()
    {
        const std::uint64_t bits = u64();
        double value;
        std::memcpy(&value, &bits, sizeof(value));
        return value;
    }

    std::string str()
    {
        const std::uint64_t size = u64();
        if (!ok || pos + size > bytes.size()) {
            ok = false;
            return {};
        }
        std::string text(bytes.begin() +
                             static_cast<std::ptrdiff_t>(pos),
                         bytes.begin() +
                             static_cast<std::ptrdiff_t>(pos + size));
        pos += size;
        return text;
    }

    DramStats dram()
    {
        DramStats stats;
        stats.reads = u64();
        stats.writes = u64();
        stats.rowHits = u64();
        stats.rowMisses = u64();
        stats.busBusyCycles = u64();
        stats.totalReadLatency = u64();
        return stats;
    }

    /** Inverse of Writer::result (profile left untouched). */
    SimResult result()
    {
        SimResult r;
        r.label = str();
        r.makespan = u64();
        r.instructions = u64();
        r.requests = u64();
        r.reads = u64();
        r.writes = u64();
        r.ipc = f64();
        r.mpki = f64();
        r.avgReadLatency = f64();
        r.hbmAccessFraction = f64();
        r.hbmStats = dram();
        r.ddrStats = dram();
        r.migratedPages = u64();
        r.migrationEvents = u64();
        r.faultsInjected = u64();
        r.pagesRetired = u64();
        r.capacityLostPages = u64();
        r.responseMoves = u64();
        r.responseRetries = u64();
        r.degraded = u64() != 0;
        r.memoryAvf = f64();
        r.ser = f64();
        return r;
    }
};

/** Lower-case hex encoding (journal lines stay printable). */
inline std::string
hexEncode(const std::vector<std::uint8_t> &bytes)
{
    static const char digits[] = "0123456789abcdef";
    std::string out;
    out.reserve(bytes.size() * 2);
    for (const std::uint8_t byte : bytes) {
        out.push_back(digits[byte >> 4]);
        out.push_back(digits[byte & 0xf]);
    }
    return out;
}

/** Inverse of hexEncode; false on odd length or non-hex digits. */
inline bool
hexDecode(const std::string &text, std::vector<std::uint8_t> &out)
{
    if (text.size() % 2 != 0)
        return false;
    auto nibble = [](char c) -> int {
        if (c >= '0' && c <= '9')
            return c - '0';
        if (c >= 'a' && c <= 'f')
            return c - 'a' + 10;
        return -1;
    };
    out.clear();
    out.reserve(text.size() / 2);
    for (std::size_t i = 0; i < text.size(); i += 2) {
        const int hi = nibble(text[i]);
        const int lo = nibble(text[i + 1]);
        if (hi < 0 || lo < 0)
            return false;
        out.push_back(static_cast<std::uint8_t>((hi << 4) | lo));
    }
    return true;
}

} // namespace ramp::runner::codec

#endif // RAMP_RUNNER_CODEC_HH
