/**
 * @file
 * Crash-safe artifacts: checkpoint journal and atomic file writes.
 *
 * A campaign run with --checkpoint <dir> journals every completed
 * pass to an append-only JSONL file, one checksummed line per pass,
 * flushed as soon as the pass finishes. A killed campaign resumed
 * with the same directory replays the journaled passes and runs
 * only the missing ones; because results round-trip bit-exactly
 * (codec.hh) and taskSeed() makes passes schedule-independent, the
 * resumed report is byte-identical to an uninterrupted run.
 *
 * Corruption is contained, never trusted: a torn or bit-flipped
 * journal line fails its FNV-1a checksum and is skipped (that pass
 * simply recomputes); a journal whose header is unreadable is
 * quarantined (renamed *.corrupt) and a fresh one is started.
 *
 * The same file owns the crash-safety primitives the rest of the
 * runner reuses: collision-free temp names (pid + atomic counter,
 * fixing the pid-only suffix race two threads could hit) and
 * atomic tmp+rename writes with bounded retry on transient
 * filesystem errors.
 */

#ifndef RAMP_RUNNER_CHECKPOINT_HH
#define RAMP_RUNNER_CHECKPOINT_HH

#include <cstdint>
#include <fstream>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

#include "hma/system.hh"

namespace ramp::runner
{

/** FNV-1a 64-bit hash (cache file names, journal checksums). */
std::uint64_t fnv1a64(std::string_view bytes);

/** 16-digit lower-case hex rendering of a 64-bit hash. */
std::string hashHex(std::uint64_t value);

/**
 * A temp-file name next to `path` that no other thread or process
 * of this run can pick: pid plus a per-process atomic counter.
 */
std::string uniqueTmpPath(const std::string &path);

/**
 * Write `bytes` to `path` atomically: create parent directories,
 * write a unique temp file, fsync-close, rename over the target.
 * Transient failures are retried a bounded number of times; the
 * temp file never survives a failure. Returns false (with a
 * diagnostic in *error when given) once retries are exhausted.
 */
bool atomicWriteFile(const std::string &path, std::string_view bytes,
                     std::string *error = nullptr);

/** Counters of one journal load (reported at resume). */
struct CheckpointStats
{
    /** Valid pass lines loaded from an existing journal. */
    std::uint64_t loaded = 0;

    /** Corrupt/truncated lines skipped (their passes recompute). */
    std::uint64_t corruptLines = 0;

    /** Passes served from the journal this run. */
    std::uint64_t hits = 0;

    /** Passes appended this run. */
    std::uint64_t appended = 0;
};

/**
 * Append-only journal of completed passes, keyed by the profile
 * cache fingerprint hash plus the pass label. Thread-safe: passes
 * append concurrently from pool workers; every append is flushed
 * before it returns, so a SIGKILL loses at most the in-flight line
 * (which the checksum then rejects on load).
 */
class CheckpointJournal
{
  public:
    /**
     * Open (creating or resuming) `dir`/`tool`.ckpt.jsonl. Loads
     * every valid line of an existing journal; quarantines a
     * journal whose header is missing or unreadable.
     */
    CheckpointJournal(const std::string &dir,
                      const std::string &tool);

    /** The journal file path. */
    const std::string &path() const { return path_; }

    /**
     * Look up a completed pass; fills `workload` and `result` and
     * counts a hit when present.
     */
    bool lookup(const std::string &key, std::string &workload,
                SimResult &result);

    /** Journal one completed pass (thread-safe, flushed). */
    void append(const std::string &key, const std::string &workload,
                const SimResult &result);

    CheckpointStats stats() const;

    /** @{ @name Line codec (exposed for tests) */
    static std::string encodeLine(const std::string &key,
                                  const std::string &workload,
                                  const SimResult &result);

    /** False when the checksum or format does not hold. */
    static bool decodeLine(const std::string &line, std::string &key,
                           std::string &workload, SimResult &result);
    /** @} */

  private:
    void load();

    std::string path_;
    std::string tool_;
    mutable std::mutex mutex_;
    std::ofstream out_;

    struct Entry
    {
        std::string workload;
        SimResult result;
    };
    std::unordered_map<std::string, Entry> entries_;
    CheckpointStats stats_;
};

} // namespace ramp::runner

#endif // RAMP_RUNNER_CHECKPOINT_HH
