#include "runner/error.hh"

#include <atomic>
#include <csignal>
#include <filesystem>
#include <ios>
#include <new>
#include <unistd.h>

namespace ramp::runner
{

const char *
passErrorCodeName(PassErrorCode code)
{
    switch (code) {
      case PassErrorCode::Usage: return "usage";
      case PassErrorCode::InvalidInput: return "invalid-input";
      case PassErrorCode::Io: return "io";
      case PassErrorCode::Corrupt: return "corrupt";
      case PassErrorCode::Timeout: return "timeout";
      case PassErrorCode::Cancelled: return "cancelled";
      case PassErrorCode::OutOfMemory: return "out-of-memory";
      case PassErrorCode::Internal: return "internal";
      case PassErrorCode::Unknown: break;
    }
    return "unknown";
}

const char *
passStatusName(PassStatus status)
{
    switch (status) {
      case PassStatus::Ok: return "ok";
      case PassStatus::Failed: return "failed";
      case PassStatus::Timeout: return "timeout";
      case PassStatus::Skipped: return "skipped";
    }
    return "unknown";
}

ErrorInfo
describeException(std::exception_ptr error)
{
    if (!error)
        return {PassErrorCode::Unknown, "no exception captured"};
    try {
        std::rethrow_exception(error);
    } catch (const PassError &e) {
        return {e.code(), e.what()};
    } catch (const std::filesystem::filesystem_error &e) {
        return {PassErrorCode::Io, e.what()};
    } catch (const std::ios_base::failure &e) {
        return {PassErrorCode::Io, e.what()};
    } catch (const std::bad_alloc &e) {
        return {PassErrorCode::OutOfMemory, e.what()};
    } catch (const std::invalid_argument &e) {
        return {PassErrorCode::InvalidInput, e.what()};
    } catch (const std::logic_error &e) {
        return {PassErrorCode::Internal, e.what()};
    } catch (const std::exception &e) {
        return {PassErrorCode::Unknown, e.what()};
    } catch (...) {
        return {PassErrorCode::Unknown, "non-standard exception"};
    }
}

namespace
{

std::atomic<bool> cancelRequested{false};
std::atomic<int> cancelSignal{0};
std::atomic<bool> handlersInstalled{false};

extern "C" void
rampSignalHandler(int sig)
{
    if (cancelRequested.exchange(true)) {
        // Second signal: the user means it. Force-exit now.
        _exit(128 + sig);
    }
    cancelSignal.store(sig);
    // Async-signal-safe progress note.
    static const char msg[] =
        "\nramp: shutdown requested; finishing in-flight passes "
        "and flushing (signal again to force-exit)\n";
    [[maybe_unused]] const auto n =
        write(STDERR_FILENO, msg, sizeof(msg) - 1);
}

} // namespace

bool
cancellationRequested()
{
    return cancelRequested.load(std::memory_order_relaxed);
}

void
requestCancellation(int sig)
{
    cancelSignal.store(sig);
    cancelRequested.store(true);
}

void
clearCancellation()
{
    cancelRequested.store(false);
    cancelSignal.store(0);
}

int
cancellationSignal()
{
    return cancelSignal.load();
}

void
installSignalHandlers()
{
    if (handlersInstalled.exchange(true))
        return;
    struct sigaction action = {};
    action.sa_handler = rampSignalHandler;
    sigemptyset(&action.sa_mask);
    sigaction(SIGINT, &action, nullptr);
    sigaction(SIGTERM, &action, nullptr);
}

void
throwIfCancelled(const char *what)
{
    if (!cancellationRequested())
        return;
    const int sig = cancellationSignal();
    std::string message = std::string(what) + " interrupted";
    if (sig != 0)
        message += " by signal " + std::to_string(sig);
    throw PassError(PassErrorCode::Cancelled, message);
}

} // namespace ramp::runner
