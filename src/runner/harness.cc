#include "runner/harness.hh"

#include <cstdio>

namespace ramp::runner
{

Harness::Harness(std::string tool, int argc, char **argv)
    : Harness(std::move(tool), RunnerOptions::parse(argc, argv))
{
}

Harness::Harness(std::string tool, RunnerOptions options)
    : tool_(std::move(tool)),
      options_(std::move(options)),
      config_(SystemConfig::scaledDefault()),
      pool_(options_.jobs),
      report_(tool_)
{
    if (!options_.cacheDir.empty())
        cache_.setDiskDir(options_.cacheDir);
}

ProfiledWorkloadPtr
Harness::profile(const WorkloadSpec &spec,
                 const GeneratorOptions &options)
{
    auto profiled = cache_.get(config_, spec, options);
    report_.add(profiled->name(), profiled->base);
    return profiled;
}

std::vector<ProfiledWorkloadPtr>
Harness::profileAll(const std::vector<WorkloadSpec> &specs,
                    const GeneratorOptions &options)
{
    auto profiled = pool_.map(specs, [&](const WorkloadSpec &spec) {
        return cache_.get(config_, spec, options);
    });
    // Record baselines after the fan-out so the JSON pass order is
    // the spec order, not the scheduling order.
    for (const auto &wl : profiled)
        report_.add(wl->name(), wl->base);
    return profiled;
}

SimResult
Harness::record(const std::string &workload, const SimResult &result)
{
    report_.add(workload, result);
    return result;
}

int
Harness::finish()
{
    if (options_.jsonPath.empty())
        return 0;
    if (!report_.writeJson(options_.jsonPath, pool_.jobs(),
                           cache_.stats())) {
        std::fprintf(stderr, "%s: cannot write JSON report to %s\n",
                     tool_.c_str(), options_.jsonPath.c_str());
        return 1;
    }
    return 0;
}

} // namespace ramp::runner
