#include "runner/harness.hh"

#include <chrono>
#include <cstdio>
#include <iostream>
#include <optional>

#include <sstream>

#include <cstdlib>

#include "common/logging.hh"
#include "common/table.hh"
#include "eventlog/eventlog.hh"
#include "health/health.hh"
#include "health/rules.hh"
#include "prof/prof.hh"
#include "telemetry/telemetry.hh"

namespace ramp::runner
{

namespace
{

/**
 * Render the --metrics-out document: the merged registry snapshot
 * plus derived hit-rates, histogram percentiles, and the per-pass
 * status/duration list.
 */
std::string
metricsJson(const std::string &tool, unsigned jobs,
            const std::vector<PassRecord> &passes)
{
    const auto snap = telemetry::metrics().snapshot();
    std::ostringstream out;
    out << "{\n"
        << "  \"tool\": \"" << telemetry::jsonEscape(tool)
        << "\",\n"
        << "  \"jobs\": " << jobs << ",\n"
        << "  \"derived\": {\n"
        << "    \"l1d_hit_rate\": "
        << telemetry::jsonNumber(
               hitRate(snap.counterOr("cache.l1d.hits"),
                       snap.counterOr("cache.l1d.misses")))
        << ",\n"
        << "    \"l1i_hit_rate\": "
        << telemetry::jsonNumber(
               hitRate(snap.counterOr("cache.l1i.hits"),
                       snap.counterOr("cache.l1i.misses")))
        << ",\n"
        << "    \"l2_hit_rate\": "
        << telemetry::jsonNumber(
               hitRate(snap.counterOr("cache.l2.hits"),
                       snap.counterOr("cache.l2.misses")))
        << ",\n"
        // A share of traffic split across the memories, not a hit
        // rate: the HBM serving an access is not a "hit".
        << "    \"hbm_access_share\": "
        << telemetry::jsonNumber(
               accessShare(snap.counterOr("hma.accesses.hbm"),
                           snap.counterOr("hma.accesses.ddr")))
        << ",\n"
        << "    \"profile_cache_hit_rate\": "
        << telemetry::jsonNumber(hitRate(
               snap.counterOr("profile_cache.memory_hits") +
                   snap.counterOr("profile_cache.disk_hits"),
               snap.counterOr("profile_cache.misses")))
        << ",\n"
        << "    \"percentiles\": {";
    bool first = true;
    for (const auto &[name, hist] : snap.histograms) {
        out << (first ? "\n" : ",\n") << "      \""
            << telemetry::jsonEscape(name)
            << "\": {\"p50\": " << telemetry::jsonNumber(hist.p50())
            << ", \"p95\": " << telemetry::jsonNumber(hist.p95())
            << ", \"p99\": " << telemetry::jsonNumber(hist.p99())
            << "}";
        first = false;
    }
    out << (first ? "" : "\n    ") << "}\n"
        << "  },\n"
        << "  \"metrics\": " << snap.toJson(2) << ",\n"
        << "  \"passes\": [\n";
    for (std::size_t i = 0; i < passes.size(); ++i) {
        const auto &pass = passes[i];
        out << "    {\"workload\": \""
            << telemetry::jsonEscape(pass.workload)
            << "\", \"label\": \""
            << telemetry::jsonEscape(pass.result.label)
            << "\", \"status\": \"" << passStatusName(pass.status)
            << "\", \"seconds\": "
            << telemetry::jsonNumber(pass.seconds) << "}"
            << (i + 1 < passes.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    return out.str();
}

} // namespace

Harness::Harness(std::string tool, int argc, char **argv)
    : Harness(std::move(tool), RunnerOptions::parse(argc, argv))
{
}

Harness::Harness(std::string tool, RunnerOptions options)
    : tool_(std::move(tool)),
      options_(std::move(options)),
      config_(SystemConfig::scaledDefault()),
      pool_(options_.jobs),
      report_(tool_),
      startTime_(std::chrono::steady_clock::now())
{
    validateSystemConfig(config_);
    if (!options_.metricsPath.empty() ||
        !options_.tracePath.empty() ||
        !options_.benchPath.empty()) {
        // The bench report derives its throughput quotes from the
        // telemetry counters, so --bench-out switches telemetry on
        // like the other exporters do.
        telemetry::setEnabled(true);
        telemetry::captureLogEvents();
    }
    if (!options_.benchPath.empty())
        sampler_ = std::make_unique<perf::ResourceSampler>(
            std::chrono::milliseconds(options_.sampleMs));
    if (!options_.eventsPath.empty()) {
        eventlog::setEnabled(true);
        if (const char *env = std::getenv("RAMP_EVENTS_LIMIT"))
            eventlog::setCapacity(
                std::strtoull(env, nullptr, 10));
    }
    if (!options_.timelinePath.empty() ||
        !options_.healthRules.empty()) {
        // Health alerts are stamped into the decision ledger and
        // sample attribution needs the eventlog run label, so the
        // monitor switches both substrates on. The telemetry
        // baseline for the timeline's final metrics-delta record is
        // captured by setEnabled(true), so telemetry goes first.
        telemetry::setEnabled(true);
        eventlog::setEnabled(true);
        health::setEnabled(true);
        std::vector<health::HealthRule> rules;
        if (options_.healthRules.empty()) {
            rules = health::defaultRules();
        } else {
            std::string error;
            rules =
                health::parseHealthRules(options_.healthRules, error);
            if (!error.empty())
                throw PassError(PassErrorCode::Usage, error);
        }
        health::setRules(std::move(rules));
    }
    if (!options_.profilePath.empty())
        prof::setEnabled(true);
    if (!options_.cacheDir.empty())
        cache_.setDiskDir(options_.cacheDir);
    if (!options_.checkpointDir.empty())
        journal_ = std::make_unique<CheckpointJournal>(
            options_.checkpointDir, tool_);
    if (options_.passTimeout > 0)
        watchdog_ = std::make_unique<Watchdog>(options_.passTimeout);
}

ProfiledWorkloadPtr
Harness::profile(const WorkloadSpec &spec,
                 const GeneratorOptions &options)
{
    validateSystemConfig(config_);
    throwIfCancelled("profiling");
    auto profiled = cache_.get(config_, spec, options);
    report_.add(profiled->name(), profiled->base);
    return profiled;
}

std::vector<ProfiledWorkloadPtr>
Harness::profileAll(const std::vector<WorkloadSpec> &specs,
                    const GeneratorOptions &options)
{
    validateSystemConfig(config_);
    throwIfCancelled("profiling");
    auto profiled = pool_.map(specs, [&](const WorkloadSpec &spec) {
        return cache_.get(config_, spec, options);
    });
    throwIfCancelled("profiling");
    // Record baselines after the fan-out so the JSON pass order is
    // the spec order, not the scheduling order.
    for (const auto &wl : profiled)
        report_.add(wl->name(), wl->base);
    return profiled;
}

std::string
Harness::passKey(const ProfiledWorkloadPtr &wl,
                 const std::string &label)
{
    const std::string fp = wl ? wl->fingerprint : std::string();
    return hashHex(fnv1a64(fp)) + "/" + label;
}

std::vector<PassOutcome>
Harness::runPassesImpl(const std::vector<PassDesc> &descs,
                       const std::function<SimResult(std::size_t)> &fn)
{
    const std::size_t count = descs.size();
    std::vector<PassOutcome> outcomes(count);

    // Replay journaled passes; only the rest fan out.
    std::vector<std::size_t> missing;
    missing.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        auto &out = outcomes[i];
        std::string workload;
        if (journal_ != nullptr &&
            journal_->lookup(descs[i].key, workload, out.result)) {
            out.status = PassStatus::Ok;
            out.fromCheckpoint = true;
        } else {
            missing.push_back(i);
        }
    }
    if (missing.size() < count)
        ramp_inform("resumed ", count - missing.size(), " of ",
                    count, " pass(es) from checkpoint journal ",
                    journal_->path());

    pool_.runIndexed(missing.size(), [&](std::size_t task) {
        const std::size_t index = missing[task];
        const PassDesc &desc = descs[index];
        PassOutcome &out = outcomes[index];

        RAMP_TELEM_SPAN(
            pass_span, "pass", "runner",
            telemetry::traceArg("workload", desc.workload));
        RAMP_PROF_SCOPE(pass_prof, "runner.pass");
        // Ledger run label: "<workload>/<pass label>". The label
        // half of the checkpoint key is unique per (workload,
        // pass) and schedule-independent, so analyzers can sort
        // runs deterministically at any --jobs width.
        const std::size_t label_at = desc.key.find('/');
        eventlog::RunScope events_scope(
            desc.workload + "/" +
            (label_at == std::string::npos
                 ? desc.key
                 : desc.key.substr(label_at + 1)));
        std::optional<Watchdog::Scope> scope;
        if (watchdog_ != nullptr)
            scope.emplace(watchdog_->watch(desc.key));
        const auto start = std::chrono::steady_clock::now();
        try {
            out.result = fn(index);
            out.status = PassStatus::Ok;
        } catch (...) {
            const ErrorInfo info =
                describeException(std::current_exception());
            out.result = SimResult{};
            out.error = info.code;
            out.message = info.message;
            if (info.code == PassErrorCode::Cancelled) {
                out.status = PassStatus::Skipped;
            } else {
                out.status = PassStatus::Failed;
                ramp_warn("pass '", desc.key, "' (", desc.workload,
                          ") failed [",
                          passErrorCodeName(info.code),
                          "]: ", info.message);
            }
        }
        scope.reset();
        const double elapsed =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - start)
                .count();
        out.seconds = elapsed;

        if (out.status == PassStatus::Ok &&
            cancellationRequested()) {
            // A nested fan-out inside the pass may have been cut
            // short by the cancellation flag; never trust (or
            // journal) a result finished after the request.
            out.result = SimResult{};
            out.status = PassStatus::Skipped;
            out.error = PassErrorCode::Cancelled;
            out.message = "cancelled while the pass was running";
            return;
        }
        if (out.status == PassStatus::Ok && options_.passTimeout > 0 &&
            elapsed > options_.passTimeout) {
            out.status = PassStatus::Timeout;
            out.error = PassErrorCode::Timeout;
            out.message =
                "pass took " + std::to_string(elapsed) +
                " s (limit " +
                std::to_string(options_.passTimeout) + " s)";
            return; // Not journaled: a resume re-runs it.
        }
        if (out.status == PassStatus::Ok && journal_ != nullptr)
            journal_->append(desc.key, desc.workload, out.result);
    });

    // Record in desc order, so the report never depends on the
    // scheduling and a resumed run matches an uninterrupted one.
    for (std::size_t i = 0; i < count; ++i) {
        auto &out = outcomes[i];
        if (out.status == PassStatus::Skipped && out.message.empty()) {
            out.error = PassErrorCode::Cancelled;
            out.message = "campaign cancelled before this pass ran";
        }
        if (out.status == PassStatus::Ok)
            report_.add(descs[i].workload, out.result, out.seconds);
        else
            report_.add(descs[i].workload, out.result, out.status,
                        passErrorCodeName(out.error), out.message,
                        out.seconds);
    }

    bool timed_out = false;
    for (const auto &out : outcomes)
        if (out.status == PassStatus::Timeout)
            timed_out = true;
    if (timed_out && !cancellationRequested()) {
        // A timed-out pass is a campaign an operator may kill next;
        // leave the artifacts behind now (finish() atomically
        // rewrites them with the complete campaign later).
        flushOutputs();
    }

    if (cancellationRequested()) {
        finish(); // Flush what completed before winding down.
        const int sig = cancellationSignal();
        throw PassError(PassErrorCode::Cancelled,
                        sig != 0 ? "campaign cancelled by signal " +
                                       std::to_string(sig)
                                 : "campaign cancelled");
    }
    return outcomes;
}

SimResult
Harness::record(const std::string &workload, const SimResult &result)
{
    report_.add(workload, result);
    return result;
}

void
Harness::addMicrobenchResults(std::vector<perf::BenchResult> rows)
{
    microResults_.insert(microResults_.end(),
                         std::make_move_iterator(rows.begin()),
                         std::make_move_iterator(rows.end()));
}

std::string
Harness::benchJson()
{
    perf::BenchReportSpec spec;
    spec.tool = tool_;
    spec.jobs = pool_.jobs();
    spec.sampleMs = options_.sampleMs;
    spec.wallSeconds =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - startTime_)
            .count();
    if (sampler_ != nullptr)
        spec.resources = sampler_->summary();
    spec.metrics = telemetry::metrics().snapshot();
    for (const PassRecord &pass : report_.passes()) {
        ++spec.passes.count;
        if (pass.status == PassStatus::Ok)
            ++spec.passes.ok;
        // Replayed checkpoint passes record 0 s; folding them in
        // would fake an impossibly fast campaign.
        if (pass.seconds > 0)
            spec.passes.seconds.add(pass.seconds);
    }
    spec.eventRecords = eventlog::stats().recorded;
    spec.microbenchmarks = microResults_;
    if (prof::enabled())
        spec.profileBlock = prof::profileBlockJson();
    return perf::renderBenchReport(spec);
}

int
Harness::finish()
{
    // Join the sampler before snapshotting, so the final RSS/CPU
    // readings cover the whole campaign (idempotent: a cancelled
    // campaign finishes once from the cancellation path).
    if (sampler_ != nullptr)
        sampler_->stop();
    const auto failures = report_.failures();
    if (!failures.empty()) {
        TextTable table({"workload", "label", "status", "error",
                         "message"});
        for (const auto &pass : failures)
            table.addRow({pass.workload, pass.result.label,
                          passStatusName(pass.status), pass.error,
                          pass.message});
        table.print(std::cerr,
                    tool_ + ": " + std::to_string(failures.size()) +
                        " pass(es) did not complete");
    }

    const int flush = flushOutputs();
    return flush != 0 ? flush : (failures.empty() ? 0 : 3);
}

int
Harness::flushOutputs()
{
    int code = 0;
    std::optional<EventsInfo> events_info;
    if (!options_.eventsPath.empty()) {
        if (atomicWriteFile(options_.eventsPath,
                            eventlog::toJsonl(tool_))) {
            const auto stats = eventlog::stats();
            events_info = EventsInfo{options_.eventsPath,
                                     stats.recorded, stats.dropped};
        } else {
            std::fprintf(stderr,
                         "%s: cannot write events file to %s\n",
                         tool_.c_str(), options_.eventsPath.c_str());
            code = 1;
        }
    }
    if (cancellationRequested() && eventlog::enabled()) {
        // Post-mortem: park the trailing window of the ledger next
        // to the events file (or under the tool's name when none
        // was requested) so an interrupted campaign leaves its
        // final decisions behind for inspection.
        std::size_t window = 256;
        if (const char *env = std::getenv("RAMP_EVENTS_DUMP"))
            window = std::strtoull(env, nullptr, 10);
        const std::string path =
            options_.eventsPath.empty()
                ? tool_ + ".postmortem.jsonl"
                : options_.eventsPath + ".postmortem";
        if (window > 0 &&
            !atomicWriteFile(
                path, eventlog::postMortemJsonl(tool_, window))) {
            std::fprintf(stderr,
                         "%s: cannot write post-mortem dump to "
                         "%s\n",
                         tool_.c_str(), path.c_str());
            code = 1;
        }
    }
    if (!options_.timelinePath.empty() &&
        !atomicWriteFile(options_.timelinePath,
                         health::timelineJsonl(tool_))) {
        std::fprintf(stderr,
                     "%s: cannot write health timeline to %s\n",
                     tool_.c_str(), options_.timelinePath.c_str());
        code = 1;
    }
    std::optional<HealthInfo> health_info;
    if (health::enabled()) {
        health_info = HealthInfo{};
        health_info->path = options_.timelinePath;
        health_info->rules =
            health::formatHealthRules(health::rules());
        health_info->samples = health::sampleCount();
        for (const auto &alert : health::alerts()) {
            if (alert.severity == health::Severity::Alert)
                ++health_info->alerts;
            else
                ++health_info->warns;
            health_info->alertJson.push_back(
                health::alertJson(alert));
        }
    }
    if (!options_.jsonPath.empty() &&
        !report_.writeJson(options_.jsonPath, pool_.jobs(),
                           cache_.stats(),
                           events_info ? &*events_info : nullptr,
                           health_info ? &*health_info : nullptr)) {
        std::fprintf(stderr, "%s: cannot write JSON report to %s\n",
                     tool_.c_str(), options_.jsonPath.c_str());
        code = 1;
    }
    if (!options_.metricsPath.empty() &&
        !atomicWriteFile(options_.metricsPath,
                         metricsJson(tool_, pool_.jobs(),
                                     report_.passes()))) {
        std::fprintf(stderr,
                     "%s: cannot write metrics snapshot to %s\n",
                     tool_.c_str(), options_.metricsPath.c_str());
        code = 1;
    }
    if (!options_.tracePath.empty() &&
        !atomicWriteFile(options_.tracePath,
                         telemetry::traceJson())) {
        std::fprintf(stderr, "%s: cannot write trace to %s\n",
                     tool_.c_str(), options_.tracePath.c_str());
        code = 1;
    }
    if (!options_.profilePath.empty()) {
        if (!atomicWriteFile(
                options_.profilePath,
                prof::profileJson(tool_, pool_.jobs()))) {
            std::fprintf(stderr,
                         "%s: cannot write cycle profile to %s\n",
                         tool_.c_str(),
                         options_.profilePath.c_str());
            code = 1;
        }
        const std::string folded = options_.profilePath + ".folded";
        if (!atomicWriteFile(folded, prof::foldedStacks())) {
            std::fprintf(stderr,
                         "%s: cannot write folded stacks to %s\n",
                         tool_.c_str(), folded.c_str());
            code = 1;
        }
    }
    if (!options_.benchPath.empty() &&
        !atomicWriteFile(options_.benchPath, benchJson())) {
        std::fprintf(stderr,
                     "%s: cannot write bench report to %s\n",
                     tool_.c_str(), options_.benchPath.c_str());
        code = 1;
    }
    return code;
}

} // namespace ramp::runner
