/**
 * @file
 * Watchdog for stuck simulation passes (--pass-timeout).
 *
 * A campaign cannot preempt a compute-bound pass, but it can refuse
 * to hide one: each running pass registers with the watchdog, whose
 * background thread warns the moment a pass overstays the timeout
 * (so an operator watching a hung campaign sees *which* pass is
 * stuck), and the harness flags any pass whose wall time exceeded
 * the limit as TIMEOUT in the table/JSON report, turning the
 * campaign's exit code nonzero. Timed-out passes are not journaled,
 * so a resume re-runs them.
 */

#ifndef RAMP_RUNNER_WATCHDOG_HH
#define RAMP_RUNNER_WATCHDOG_HH

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>

namespace ramp::runner
{

/** Background monitor of in-flight passes. */
class Watchdog
{
  public:
    /** @param timeout_seconds warn/flag threshold (must be > 0). */
    explicit Watchdog(double timeout_seconds);
    ~Watchdog();

    Watchdog(const Watchdog &) = delete;
    Watchdog &operator=(const Watchdog &) = delete;

    double timeoutSeconds() const { return timeout_; }

    /** RAII registration of one running pass. */
    class Scope
    {
      public:
        Scope() = default;
        Scope(Watchdog *dog, std::uint64_t id)
            : dog_(dog), id_(id)
        {
        }
        Scope(Scope &&other) noexcept
            : dog_(other.dog_), id_(other.id_)
        {
            other.dog_ = nullptr;
        }
        Scope &operator=(Scope &&other) noexcept
        {
            release();
            dog_ = other.dog_;
            id_ = other.id_;
            other.dog_ = nullptr;
            return *this;
        }
        Scope(const Scope &) = delete;
        Scope &operator=(const Scope &) = delete;
        ~Scope() { release(); }

      private:
        void release();

        Watchdog *dog_ = nullptr;
        std::uint64_t id_ = 0;
    };

    /** Register a pass; it stays watched until the Scope dies. */
    Scope watch(std::string label);

  private:
    friend class Scope;

    struct Entry
    {
        std::string label;
        std::chrono::steady_clock::time_point start;
        bool warned = false;
    };

    void loop();
    void unwatch(std::uint64_t id);

    double timeout_;
    std::mutex mutex_;
    std::condition_variable wake_;
    std::map<std::uint64_t, Entry> entries_;
    std::uint64_t next_id_ = 0;
    bool stop_ = false;
    std::thread thread_;
};

} // namespace ramp::runner

#endif // RAMP_RUNNER_WATCHDOG_HH
