/**
 * @file
 * Cache of the paper's expensive profiling pass.
 *
 * Every experiment begins with the same two steps per workload:
 * prepareWorkload() (trace synthesis) and runDdrOnly() (the DDR-only
 * baseline whose PageProfile drives all policies). Both are
 * deterministic in (workload spec, generator options, system
 * config), so the pass is computed exactly once per process and
 * shared by reference across all passes and threads.
 *
 * An optional on-disk layer persists the baseline SimResult
 * (including the per-page profile) under a fingerprint key, so
 * successive bench binaries skip the profiling simulation entirely;
 * traces are regenerated from the spec on a disk hit (generation is
 * cheap relative to simulation and keeps the cache files small).
 * Disk entries carry a trailing FNV-1a checksum: a corrupt or torn
 * file is quarantined (renamed *.corrupt) and recomputed instead of
 * being trusted, and writes go through a unique temp file + rename
 * so concurrent processes never observe a partial entry.
 */

#ifndef RAMP_RUNNER_PROFILE_CACHE_HH
#define RAMP_RUNNER_PROFILE_CACHE_HH

#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "hma/experiment.hh"

namespace ramp::runner
{

/** A profiled workload: traces plus the DDR-only baseline pass. */
struct ProfiledWorkload
{
    WorkloadData data;

    /** DDR-only pass; its profile drives the static policies. */
    SimResult base;

    /**
     * Canonical cache key this entry was computed under; the
     * checkpoint journal derives its pass keys from it.
     */
    std::string fingerprint;

    const PageProfile &profile() const { return base.profile; }
    const std::string &name() const { return data.spec.name; }
};

/** Shared immutable handle; passes only read the profiled state. */
using ProfiledWorkloadPtr = std::shared_ptr<const ProfiledWorkload>;

/** Where each ProfileCache::get() was served from. */
struct ProfileCacheStats
{
    /** Served from the in-process map (no recomputation at all). */
    std::uint64_t memoryHits = 0;

    /** Baseline loaded from disk (only traces regenerated). */
    std::uint64_t diskHits = 0;

    /** Full profiling pass executed. */
    std::uint64_t misses = 0;

    /** Cache files written after a miss. */
    std::uint64_t diskWrites = 0;

    /** Corrupt cache files quarantined (*.corrupt) and recomputed. */
    std::uint64_t quarantined = 0;
};

/** Process-wide, thread-safe cache of profiling passes. */
class ProfileCache
{
  public:
    ProfileCache() = default;

    /**
     * Enable the on-disk layer under the given directory (created
     * on first write). An empty string disables it.
     */
    void setDiskDir(std::string dir);

    /** The configured disk directory ("" when disabled). */
    const std::string &diskDir() const { return disk_dir_; }

    /**
     * The profiled workload for a key, computing it at most once
     * per process. Concurrent callers with the same key block until
     * the single computation finishes and then share the result.
     */
    ProfiledWorkloadPtr get(const SystemConfig &config,
                            const WorkloadSpec &spec,
                            const GeneratorOptions &options = {});

    /** Hit/miss counters since construction. */
    ProfileCacheStats stats() const;

    /**
     * Canonical cache key: every field of the spec, the generator
     * options, and the SystemConfig fields the DDR-only pass
     * depends on (migration knobs are excluded — the profiling pass
     * runs no engine).
     */
    static std::string fingerprint(const SystemConfig &config,
                                   const WorkloadSpec &spec,
                                   const GeneratorOptions &options);

    /** @{ @name On-disk baseline serialisation (exposed for tests) */
    /** Magic + payload + trailing FNV-1a checksum of the payload. */
    static std::vector<std::uint8_t>
    serializeBaseline(const std::string &fingerprint,
                      const SimResult &base);

    /**
     * Parse a serialised baseline; returns false on a checksum,
     * format, version, or fingerprint mismatch (the caller
     * quarantines the file and recomputes).
     */
    static bool deserializeBaseline(
        const std::vector<std::uint8_t> &bytes,
        const std::string &fingerprint, SimResult &base);
    /** @} */

  private:
    ProfiledWorkloadPtr compute(const SystemConfig &config,
                                const WorkloadSpec &spec,
                                const GeneratorOptions &options,
                                const std::string &key);

    std::string diskPathFor(const std::string &key) const;

    mutable std::mutex mutex_;
    std::unordered_map<std::string,
                       std::shared_future<ProfiledWorkloadPtr>>
        entries_;
    std::string disk_dir_;
    ProfileCacheStats stats_;
};

} // namespace ramp::runner

#endif // RAMP_RUNNER_PROFILE_CACHE_HH
