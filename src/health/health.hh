/**
 * @file
 * Epoch-aligned timeline telemetry + SLO health monitor.
 *
 * Every other observability surface (metrics, traces, the decision
 * ledger, BENCH reports) is an end-of-run snapshot. This subsystem
 * is the continuous layer: at every epoch boundary — an HmaSystem
 * injector/migration epoch, or a PlacementService global epoch —
 * the simulator hands the recorder one TimelineSample carrying the
 * derived health signals of that epoch (per-tenant hbm_share /
 * slowdown / resident pages, per-shard occupancy and degraded
 * flags, fault backlog and retire counts, migration churn, Jain
 * fairness, p99 slowdown). The recorder stamps each sample with a
 * per-(source, run) sequence number and evaluates the installed
 * HealthMonitor rules (rules.hh) against it, firing warn/alert
 * events with `for=` hysteresis.
 *
 * Determinism: samples are captured inside the run that produced
 * them (single-threaded per run), carry only run-derived values,
 * and are rendered sorted by (source, run label, seq) — so
 * timelineJsonl() is byte-identical at any --jobs. The registry
 * delta demanded by the timeline contract is carried by one final
 * "metrics" record: the counter totals accumulated since health was
 * enabled (sharded counters sum exactly, so the delta is
 * schedule-independent), minus the host-dependent `proc.` / `pool.`
 * families.
 *
 * Alerts fan out four ways, all deterministic: an `alert` record in
 * the decision ledger (run/seq-stamped like every other record),
 * `health.*` telemetry counters, the alert lines of the timeline
 * document, and any registered callbacks (the hook the service
 * layer can use for admission control).
 *
 * Gating mirrors telemetry/eventlog exactly: disabled instrumented
 * sites cost one relaxed atomic load and branch (RAMP_HEALTH), and
 * defining RAMP_HEALTH_DISABLED compiles the sites out entirely.
 *
 * Run labels come from the calling thread's eventlog::RunScope, so
 * the harness enables the ledger whenever the timeline is on;
 * without a scope, samples land in the "unattributed" run.
 */

#ifndef RAMP_HEALTH_HEALTH_HH
#define RAMP_HEALTH_HEALTH_HH

#include <cstdint>
#include <functional>
#include <limits>
#include <string>
#include <vector>

#include "health/rules.hh"

namespace ramp::health
{

/** Schema identifier stamped into the timeline header line. */
inline constexpr const char *timelineSchema = "ramp-timeline-v1";

/** Signals with no measurement render as null. */
inline constexpr double unmeasured =
    std::numeric_limits<double>::quiet_NaN();

/** True when instrumentation sites should record (default off). */
bool enabled();

/**
 * Toggle recording at runtime. Turning it on snapshots the metrics
 * registry as the baseline of the final timeline "metrics" record.
 */
void setEnabled(bool on);

/** One tenant's slice of an epoch (service source only). */
struct TenantSample
{
    std::uint32_t id = 0;
    std::uint32_t shard = 0;

    /** Pages resident in HBM at the epoch boundary. */
    std::uint64_t resident = 0;

    /** Arbitrated HBM quota for the epoch (pages). */
    std::uint64_t grant = 0;

    /** resident / footprint (NaN when footprint unknown). */
    double hbmShare = unmeasured;

    /** Epoch makespan vs solo baseline (NaN without baseline). */
    double slowdown = unmeasured;
};

/** One shard's state at an epoch boundary. */
struct ShardSample
{
    std::uint32_t shard = 0;
    std::uint64_t capacityPages = 0;
    std::uint64_t usedPages = 0;

    /** used / capacity (NaN when the tier has no capacity). */
    double occupancy = unmeasured;

    bool degraded = false;

    /** Pages retired so far (cumulative). */
    std::uint64_t retired = 0;
};

/** One epoch boundary, as handed to record() by a simulator. */
struct TimelineSample
{
    /** Which epoch clock produced it ("system" or "service"). */
    std::string source;

    /** Run label, stamped by record() from the eventlog RunScope. */
    std::string run;

    /** 1-based epoch number on that clock. */
    std::uint64_t epoch = 0;

    /** Per-(source, run) sequence, stamped by record(). */
    std::uint64_t seq = 0;

    /** Pages moved by migration/rebalancing this epoch. */
    std::uint64_t moves = 0;

    /** Faults landed this epoch. */
    std::uint64_t faultsInjected = 0;

    /** Pages retired this epoch. */
    std::uint64_t pagesRetired = 0;

    /** Capacity pages lost this epoch. */
    std::uint64_t capacityLost = 0;

    /** Overfull-HBM backlog after the response swept (pages). */
    double backlog = unmeasured;

    /** Run-wide degraded flag. */
    bool degraded = false;

    /** Jain fairness over tenant HBM residency (service source). */
    double fairness = unmeasured;

    /** p99 tenant slowdown vs solo (service source). */
    double p99Slowdown = unmeasured;

    std::vector<TenantSample> tenants;
    std::vector<ShardSample> shards;
};

/** One fired rule. */
struct HealthAlert
{
    Severity severity = Severity::Alert;

    /** Index of the rule in the installed set (stable id). */
    std::uint32_t rule = 0;

    HealthSignal signal = HealthSignal::P99Slowdown;

    /** Sample coordinates at the firing epoch. */
    std::string source;
    std::string run;
    std::uint64_t epoch = 0;
    std::uint64_t seq = 0;

    /** Scope instance that breached (0 / -1 = run-wide). */
    std::uint32_t tenant = 0;
    std::int32_t shard = -1;

    /** Measured value (1 for boolean signals) and threshold. */
    double value = unmeasured;
    double threshold = unmeasured;
};

using AlertCallback = std::function<void(const HealthAlert &)>;

/**
 * Install the monitor's rule set (replaces any previous set; resets
 * hysteresis streaks). The empty set disables the monitor but not
 * the timeline.
 */
void setRules(std::vector<HealthRule> rules);

/** The installed rule set. */
std::vector<HealthRule> rules();

/**
 * The default rule set installed by the harness when --timeline-out
 * is given without --health-rules:
 *
 *     alert:shard_degraded;alert:p99_slowdown>2,for=3;warn:fairness<0.9,for=2
 */
std::vector<HealthRule> defaultRules();

/**
 * Register an alert hook, called synchronously from record() under
 * the subsystem lock (keep it cheap; it runs on the simulating
 * thread). Callbacks persist until reset().
 */
void addAlertCallback(AlertCallback callback);

/**
 * Record one epoch-boundary sample: stamps the calling thread's run
 * label and the next (source, run) sequence number, evaluates the
 * rules, and fires any alerts. Call through RAMP_HEALTH.
 */
void record(TimelineSample sample);

/** Samples recorded so far (tests). */
std::uint64_t sampleCount();

/** Alerts fired so far, sorted by (source, run, seq, rule, scope). */
std::vector<HealthAlert> alerts();

/** One alert rendered as a single JSON object line (no newline). */
std::string alertJson(const HealthAlert &alert);

/**
 * The timeline as a JSONL document: a header line ({"schema":
 * "ramp-timeline-v1", "tool": ..., "rules": ...}), one "sample"
 * line per epoch sorted by (source, run, seq), one "alert" line per
 * fired rule, and a final "metrics" line carrying the deterministic
 * counter delta since health was enabled.
 */
std::string timelineJsonl(const std::string &tool);

/** Drop samples, alerts, rules, callbacks, and streaks (tests). */
void reset();

} // namespace ramp::health

/**
 * Run one or more statements only when the health timeline is
 * recording:
 *
 *   RAMP_HEALTH({
 *       ramp::health::TimelineSample sample;
 *       ...
 *       ramp::health::record(std::move(sample));
 *   });
 */
#ifndef RAMP_HEALTH_DISABLED
#define RAMP_HEALTH(...) \
    do { \
        if (::ramp::health::enabled()) { \
            __VA_ARGS__; \
        } \
    } while (0)
#else
#define RAMP_HEALTH(...) \
    do { \
    } while (0)
#endif

#endif // RAMP_HEALTH_HEALTH_HH
