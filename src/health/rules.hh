/**
 * @file
 * Declarative SLO health rules.
 *
 * A rule set is a ';'-separated list of rules, each
 *
 *     severity ':' signal [cmp threshold] [',' key '=' value ...]
 *
 * where severity is `warn` or `alert`, signal names one of the
 * derived health signals carried by every timeline sample
 * (health.hh), cmp is '>' or '<' against a numeric threshold, and
 * the optional fields are:
 *
 *   for=N     consecutive breaching epochs before the rule fires
 *             (hysteresis, default 1)
 *   tenant=N  restrict a per-tenant signal to one tenant id
 *   shard=N   restrict a per-shard signal to one shard index
 *
 * Boolean signals (shard_degraded, degraded) take no comparator;
 * numeric signals require one. Example:
 *
 *     alert:p99_slowdown>2,for=3;alert:shard_degraded;warn:fairness<0.9,for=2
 *
 * parseHealthRules/formatHealthRules round-trip (same grammar
 * discipline as the fault plan, faults/plan.hh).
 */

#ifndef RAMP_HEALTH_RULES_HH
#define RAMP_HEALTH_RULES_HH

#include <cstdint>
#include <string>
#include <vector>

namespace ramp::health
{

/** How loud a firing rule is. */
enum class Severity : std::uint8_t
{
    Warn,
    Alert,
};

/** Stable spelling ("warn", "alert"). */
const char *severityName(Severity severity);

/** The derived signals a rule can watch (one per sample scope). */
enum class HealthSignal : std::uint8_t
{
    P99Slowdown,    ///< run-wide p99 slowdown vs solo (numeric)
    Fairness,       ///< run-wide Jain fairness index (numeric)
    FaultBacklog,   ///< run-wide overfull-page backlog (numeric)
    Churn,          ///< run-wide pages moved this epoch (numeric)
    Degraded,       ///< run-wide degraded flag (boolean)
    Slowdown,       ///< per-tenant slowdown vs solo (numeric)
    HbmShare,       ///< per-tenant HBM share of footprint (numeric)
    ShardOccupancy, ///< per-shard HBM used/capacity (numeric)
    ShardDegraded,  ///< per-shard degraded flag (boolean)
};

/** Stable spelling ("p99_slowdown", "fairness", ...). */
const char *healthSignalName(HealthSignal signal);

/** Boolean signals take no comparator/threshold. */
bool healthSignalIsBoolean(HealthSignal signal);

/** Threshold direction for numeric signals. */
enum class Comparator : std::uint8_t
{
    None,    ///< boolean signal, no threshold
    Greater, ///< breach when value > threshold
    Less,    ///< breach when value < threshold
};

/** One parsed rule. */
struct HealthRule
{
    Severity severity = Severity::Alert;
    HealthSignal signal = HealthSignal::P99Slowdown;
    Comparator cmp = Comparator::None;
    double threshold = 0;

    /** Consecutive breaching epochs before firing (>= 1). */
    std::uint32_t forEpochs = 1;

    /** Restrict to one tenant id (0 = every tenant). */
    std::uint32_t tenant = 0;

    /** Restrict to one shard index (-1 = every shard). */
    std::int32_t shard = -1;

    bool operator==(const HealthRule &other) const = default;
};

/**
 * Parse a rule set. Returns the rules, or an empty vector with
 * `error` set on the first malformed rule.
 */
std::vector<HealthRule> parseHealthRules(const std::string &text,
                                         std::string &error);

/** Canonical spelling of one rule (parse/format round-trips). */
std::string formatHealthRule(const HealthRule &rule);

/** ';'-joined canonical rule set. */
std::string formatHealthRules(const std::vector<HealthRule> &rules);

} // namespace ramp::health

#endif // RAMP_HEALTH_RULES_HH
