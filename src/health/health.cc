#include "health/health.hh"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <map>
#include <mutex>
#include <sstream>
#include <tuple>
#include <utility>

#include "eventlog/eventlog.hh"
#include "telemetry/telemetry.hh"

namespace ramp::health
{

namespace
{

std::atomic<bool> healthEnabled{false};

/** Everything behind one lock; record() is epoch-rate, not hot. */
struct Store
{
    std::mutex mutex;
    std::vector<TimelineSample> samples;
    std::vector<HealthAlert> alerts;
    std::vector<HealthRule> rules;
    std::vector<AlertCallback> callbacks;

    /** Next seq per (source '\n' run). */
    std::map<std::string, std::uint64_t> nextSeq;

    /** Consecutive breaches per (rule '\n' source '\n' run '\n' scope). */
    std::map<std::string, std::uint32_t> streaks;

    /** Counter totals when health was enabled (delta baseline). */
    std::map<std::string, std::uint64_t> baseline;
};

Store &
store()
{
    static Store instance;
    return instance;
}

/** Host/scheduling-dependent counter families the timeline skips. */
bool
hostDependentCounter(const std::string &name)
{
    return name.rfind("proc.", 0) == 0 || name.rfind("pool.", 0) == 0;
}

std::string
streakKey(std::size_t rule, const TimelineSample &sample,
          std::uint32_t tenant, std::int32_t shard)
{
    std::string key = std::to_string(rule);
    key += '\n';
    key += sample.source;
    key += '\n';
    key += sample.run;
    key += '\n';
    if (tenant != 0)
        key += 't' + std::to_string(tenant);
    else if (shard >= 0)
        key += 's' + std::to_string(shard);
    return key;
}

/** Alert ordering: sample order first, then rule, then scope. */
auto
alertKey(const HealthAlert &alert)
{
    return std::make_tuple(alert.source, alert.run, alert.seq,
                           alert.rule, alert.tenant, alert.shard);
}

void
fireLocked(Store &s, const HealthRule &rule, std::uint32_t rule_index,
           const TimelineSample &sample, std::uint32_t tenant,
           std::int32_t shard, double value)
{
    HealthAlert alert;
    alert.severity = rule.severity;
    alert.rule = rule_index;
    alert.signal = rule.signal;
    alert.source = sample.source;
    alert.run = sample.run;
    alert.epoch = sample.epoch;
    alert.seq = sample.seq;
    alert.tenant = tenant;
    alert.shard = shard;
    alert.value = value;
    alert.threshold = rule.cmp == Comparator::None ? unmeasured
                                                   : rule.threshold;
    s.alerts.push_back(alert);

    RAMP_TELEM({
        auto &metrics = telemetry::metrics();
        metrics.counter(rule.severity == Severity::Alert
                            ? "health.alerts"
                            : "health.warns")
            .add(1);
    });

    RAMP_EVLOG({
        eventlog::TenantScope tenant_scope(tenant);
        eventlog::EventRecord record;
        record.kind = eventlog::EventKind::Alert;
        record.epoch = sample.epoch;
        record.detail =
            static_cast<std::uint8_t>(rule.severity);
        record.span = rule_index;
        record.region = static_cast<std::uint32_t>(rule.signal);
        record.moved =
            shard >= 0 ? static_cast<std::uint32_t>(shard) + 1 : 0;
        record.hotness = static_cast<float>(value);
        record.threshHot = static_cast<float>(
            rule.cmp == Comparator::None ? unmeasured
                                         : rule.threshold);
        eventlog::emit(record);
    });

    for (const AlertCallback &callback : s.callbacks)
        callback(alert);
}

/**
 * One (rule, scope instance) evaluation: advance or reset the
 * hysteresis streak and fire exactly when it reaches for=.
 */
void
evaluateScopeLocked(Store &s, const HealthRule &rule,
                    std::uint32_t rule_index,
                    const TimelineSample &sample,
                    std::uint32_t tenant, std::int32_t shard,
                    double value, bool breach)
{
    auto &streak =
        s.streaks[streakKey(rule_index, sample, tenant, shard)];
    if (!breach) {
        streak = 0;
        return;
    }
    ++streak;
    if (streak == rule.forEpochs)
        fireLocked(s, rule, rule_index, sample, tenant, shard, value);
}

bool
numericBreach(const HealthRule &rule, double value)
{
    if (!std::isfinite(value))
        return false;
    return rule.cmp == Comparator::Greater ? value > rule.threshold
                                           : value < rule.threshold;
}

void
evaluateLocked(Store &s, const TimelineSample &sample)
{
    for (std::size_t i = 0; i < s.rules.size(); ++i) {
        const HealthRule &rule = s.rules[i];
        const auto index = static_cast<std::uint32_t>(i);
        switch (rule.signal) {
          case HealthSignal::P99Slowdown:
          case HealthSignal::Fairness:
          case HealthSignal::FaultBacklog:
          case HealthSignal::Churn: {
            double value = 0;
            if (rule.signal == HealthSignal::P99Slowdown)
                value = sample.p99Slowdown;
            else if (rule.signal == HealthSignal::Fairness)
                value = sample.fairness;
            else if (rule.signal == HealthSignal::FaultBacklog)
                value = sample.backlog;
            else
                value = static_cast<double>(sample.moves);
            evaluateScopeLocked(s, rule, index, sample, 0, -1, value,
                                numericBreach(rule, value));
            break;
          }
          case HealthSignal::Degraded:
            evaluateScopeLocked(s, rule, index, sample, 0, -1,
                                sample.degraded ? 1 : 0,
                                sample.degraded);
            break;
          case HealthSignal::Slowdown:
          case HealthSignal::HbmShare:
            for (const TenantSample &tenant : sample.tenants) {
                if (rule.tenant != 0 && tenant.id != rule.tenant)
                    continue;
                const double value =
                    rule.signal == HealthSignal::Slowdown
                        ? tenant.slowdown
                        : tenant.hbmShare;
                evaluateScopeLocked(s, rule, index, sample,
                                    tenant.id, -1, value,
                                    numericBreach(rule, value));
            }
            break;
          case HealthSignal::ShardOccupancy:
            for (const ShardSample &shard : sample.shards) {
                if (rule.shard >= 0 &&
                    shard.shard !=
                        static_cast<std::uint32_t>(rule.shard))
                    continue;
                evaluateScopeLocked(
                    s, rule, index, sample, 0,
                    static_cast<std::int32_t>(shard.shard),
                    shard.occupancy,
                    numericBreach(rule, shard.occupancy));
            }
            break;
          case HealthSignal::ShardDegraded:
            for (const ShardSample &shard : sample.shards) {
                if (rule.shard >= 0 &&
                    shard.shard !=
                        static_cast<std::uint32_t>(rule.shard))
                    continue;
                evaluateScopeLocked(
                    s, rule, index, sample, 0,
                    static_cast<std::int32_t>(shard.shard),
                    shard.degraded ? 1 : 0, shard.degraded);
            }
            break;
        }
    }
}

std::string
sampleJson(const TimelineSample &sample)
{
    using telemetry::jsonEscape;
    using telemetry::jsonNumber;
    std::ostringstream out;
    out << "{\"type\": \"sample\", \"source\": \""
        << jsonEscape(sample.source) << "\", \"run\": \""
        << jsonEscape(sample.run) << "\", \"epoch\": " << sample.epoch
        << ", \"seq\": " << sample.seq
        << ", \"moves\": " << sample.moves
        << ", \"faults_injected\": " << sample.faultsInjected
        << ", \"pages_retired\": " << sample.pagesRetired
        << ", \"capacity_lost\": " << sample.capacityLost
        << ", \"backlog\": " << jsonNumber(sample.backlog)
        << ", \"degraded\": "
        << (sample.degraded ? "true" : "false")
        << ", \"fairness\": " << jsonNumber(sample.fairness)
        << ", \"p99_slowdown\": " << jsonNumber(sample.p99Slowdown)
        << ", \"tenants\": [";
    bool first = true;
    for (const TenantSample &tenant : sample.tenants) {
        if (!first)
            out << ", ";
        first = false;
        out << "{\"tenant\": " << tenant.id
            << ", \"shard\": " << tenant.shard
            << ", \"resident\": " << tenant.resident
            << ", \"grant\": " << tenant.grant
            << ", \"hbm_share\": " << jsonNumber(tenant.hbmShare)
            << ", \"slowdown\": " << jsonNumber(tenant.slowdown)
            << "}";
    }
    out << "], \"shards\": [";
    first = true;
    for (const ShardSample &shard : sample.shards) {
        if (!first)
            out << ", ";
        first = false;
        out << "{\"shard\": " << shard.shard
            << ", \"capacity\": " << shard.capacityPages
            << ", \"used\": " << shard.usedPages
            << ", \"occupancy\": " << jsonNumber(shard.occupancy)
            << ", \"degraded\": " << (shard.degraded ? "true" : "false")
            << ", \"retired\": " << shard.retired << "}";
    }
    out << "]}";
    return out.str();
}

} // namespace

bool
enabled()
{
    return healthEnabled.load(std::memory_order_relaxed);
}

void
setEnabled(bool on)
{
    if (on) {
        Store &s = store();
        std::lock_guard<std::mutex> lock(s.mutex);
        s.baseline = telemetry::metrics().snapshot().counters;
    }
    healthEnabled.store(on, std::memory_order_relaxed);
}

void
setRules(std::vector<HealthRule> rules)
{
    Store &s = store();
    std::lock_guard<std::mutex> lock(s.mutex);
    s.rules = std::move(rules);
    s.streaks.clear();
    RAMP_TELEM(telemetry::metrics().gauge("health.rules").set(
        static_cast<double>(s.rules.size())));
}

std::vector<HealthRule>
rules()
{
    Store &s = store();
    std::lock_guard<std::mutex> lock(s.mutex);
    return s.rules;
}

std::vector<HealthRule>
defaultRules()
{
    std::string error;
    auto rules = parseHealthRules(
        "alert:shard_degraded;alert:p99_slowdown>2,for=3;"
        "warn:fairness<0.9,for=2",
        error);
    return rules;
}

void
addAlertCallback(AlertCallback callback)
{
    Store &s = store();
    std::lock_guard<std::mutex> lock(s.mutex);
    s.callbacks.push_back(std::move(callback));
}

void
record(TimelineSample sample)
{
    if (!enabled())
        return;
    sample.run = eventlog::currentRunLabel();
    Store &s = store();
    std::lock_guard<std::mutex> lock(s.mutex);
    sample.seq = s.nextSeq[sample.source + '\n' + sample.run]++;
    RAMP_TELEM(telemetry::metrics().counter("health.samples").add(1));
    evaluateLocked(s, sample);
    s.samples.push_back(std::move(sample));
}

std::uint64_t
sampleCount()
{
    Store &s = store();
    std::lock_guard<std::mutex> lock(s.mutex);
    return s.samples.size();
}

std::vector<HealthAlert>
alerts()
{
    Store &s = store();
    std::lock_guard<std::mutex> lock(s.mutex);
    std::vector<HealthAlert> sorted = s.alerts;
    std::stable_sort(sorted.begin(), sorted.end(),
                     [](const HealthAlert &a, const HealthAlert &b) {
                         return alertKey(a) < alertKey(b);
                     });
    return sorted;
}

std::string
alertJson(const HealthAlert &alert)
{
    using telemetry::jsonEscape;
    using telemetry::jsonNumber;
    std::ostringstream out;
    out << "{\"type\": \"alert\", \"severity\": \""
        << severityName(alert.severity)
        << "\", \"rule\": " << alert.rule << ", \"signal\": \""
        << healthSignalName(alert.signal) << "\", \"source\": \""
        << jsonEscape(alert.source) << "\", \"run\": \""
        << jsonEscape(alert.run) << "\", \"epoch\": " << alert.epoch
        << ", \"seq\": " << alert.seq;
    if (alert.tenant != 0)
        out << ", \"tenant\": " << alert.tenant;
    if (alert.shard >= 0)
        out << ", \"shard\": " << alert.shard;
    out << ", \"value\": " << jsonNumber(alert.value)
        << ", \"threshold\": " << jsonNumber(alert.threshold) << "}";
    return out.str();
}

std::string
timelineJsonl(const std::string &tool)
{
    Store &s = store();
    std::unique_lock<std::mutex> lock(s.mutex);
    std::vector<TimelineSample> samples = s.samples;
    const auto rule_set = s.rules;
    const auto baseline = s.baseline;
    lock.unlock();

    std::stable_sort(
        samples.begin(), samples.end(),
        [](const TimelineSample &a, const TimelineSample &b) {
            return std::tie(a.source, a.run, a.seq) <
                   std::tie(b.source, b.run, b.seq);
        });
    const auto sorted_alerts = alerts();

    using telemetry::jsonEscape;
    std::ostringstream out;
    out << "{\"schema\": \"" << timelineSchema << "\", \"tool\": \""
        << jsonEscape(tool) << "\", \"samples\": " << samples.size()
        << ", \"alerts\": " << sorted_alerts.size()
        << ", \"rules\": \"" << jsonEscape(formatHealthRules(rule_set))
        << "\"}\n";
    for (const TimelineSample &sample : samples)
        out << sampleJson(sample) << "\n";
    for (const HealthAlert &alert : sorted_alerts)
        out << alertJson(alert) << "\n";

    // The registry delta since enable: sharded counters sum exactly
    // and independently of scheduling, so this one record is
    // byte-stable at any --jobs once the host-dependent families
    // (proc.*, pool.*) are dropped.
    out << "{\"type\": \"metrics\", \"counters\": {";
    bool first = true;
    const auto current = telemetry::metrics().snapshot().counters;
    for (const auto &[name, total] : current) {
        if (hostDependentCounter(name))
            continue;
        const auto it = baseline.find(name);
        const std::uint64_t base =
            it == baseline.end() ? 0 : it->second;
        if (total <= base)
            continue;
        if (!first)
            out << ", ";
        first = false;
        out << "\"" << jsonEscape(name) << "\": " << (total - base);
    }
    out << "}}\n";
    return out.str();
}

void
reset()
{
    Store &s = store();
    std::lock_guard<std::mutex> lock(s.mutex);
    s.samples.clear();
    s.alerts.clear();
    s.rules.clear();
    s.callbacks.clear();
    s.nextSeq.clear();
    s.streaks.clear();
    s.baseline.clear();
}

} // namespace ramp::health
