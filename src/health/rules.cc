#include "health/rules.hh"

#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace ramp::health
{

namespace
{

/** Trimmed copy (the grammar ignores whitespace around tokens). */
std::string
trim(const std::string &text)
{
    const auto begin = text.find_first_not_of(" \t");
    if (begin == std::string::npos)
        return "";
    const auto end = text.find_last_not_of(" \t");
    return text.substr(begin, end - begin + 1);
}

std::vector<std::string>
splitOn(const std::string &text, char sep)
{
    std::vector<std::string> parts;
    std::string part;
    std::istringstream in(text);
    while (std::getline(in, part, sep))
        parts.push_back(trim(part));
    return parts;
}

bool
parseNumber(const std::string &text, double &value)
{
    char *end = nullptr;
    value = std::strtod(text.c_str(), &end);
    return end != text.c_str() && *end == '\0';
}

/** Shortest spelling that survives a parse round-trip. */
std::string
number(double value)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.9g", value);
    return buf;
}

bool
parseSignal(const std::string &name, HealthSignal &signal)
{
    for (int i = 0; i <= static_cast<int>(HealthSignal::ShardDegraded);
         ++i) {
        const auto candidate = static_cast<HealthSignal>(i);
        if (name == healthSignalName(candidate)) {
            signal = candidate;
            return true;
        }
    }
    return false;
}

bool
parseField(const std::string &field, HealthRule &rule,
           std::string &error)
{
    const auto eq = field.find('=');
    if (eq == std::string::npos) {
        error = "health rules: field '" + field + "' needs key=value";
        return false;
    }
    const std::string key = trim(field.substr(0, eq));
    const std::string text = trim(field.substr(eq + 1));
    double value = 0;
    if (!parseNumber(text, value)) {
        error = "health rules: bad number in '" + field + "'";
        return false;
    }
    if (key == "for") {
        if (value < 1) {
            error = "health rules: for= must be at least 1";
            return false;
        }
        rule.forEpochs = static_cast<std::uint32_t>(value);
    } else if (key == "tenant") {
        if (value < 1) {
            error = "health rules: tenant= must be a positive id";
            return false;
        }
        rule.tenant = static_cast<std::uint32_t>(value);
    } else if (key == "shard") {
        if (value < 0) {
            error = "health rules: shard= must be non-negative";
            return false;
        }
        rule.shard = static_cast<std::int32_t>(value);
    } else {
        error = "health rules: unknown field '" + key +
                "' (want for|tenant|shard)";
        return false;
    }
    return true;
}

bool
validate(const HealthRule &rule, std::string &error)
{
    if (healthSignalIsBoolean(rule.signal)) {
        if (rule.cmp != Comparator::None) {
            error = std::string("health rules: ") +
                    healthSignalName(rule.signal) +
                    " takes no threshold";
            return false;
        }
    } else if (rule.cmp == Comparator::None) {
        error = std::string("health rules: ") +
                healthSignalName(rule.signal) +
                " needs a > or < threshold";
        return false;
    }
    const bool per_tenant = rule.signal == HealthSignal::Slowdown ||
                            rule.signal == HealthSignal::HbmShare;
    const bool per_shard =
        rule.signal == HealthSignal::ShardOccupancy ||
        rule.signal == HealthSignal::ShardDegraded;
    if (rule.tenant != 0 && !per_tenant) {
        error = std::string("health rules: tenant= only applies to "
                            "per-tenant signals, not ") +
                healthSignalName(rule.signal);
        return false;
    }
    if (rule.shard >= 0 && !per_shard) {
        error = std::string("health rules: shard= only applies to "
                            "per-shard signals, not ") +
                healthSignalName(rule.signal);
        return false;
    }
    return true;
}

} // namespace

const char *
severityName(Severity severity)
{
    switch (severity) {
      case Severity::Warn: return "warn";
      case Severity::Alert: return "alert";
    }
    return "?";
}

const char *
healthSignalName(HealthSignal signal)
{
    switch (signal) {
      case HealthSignal::P99Slowdown: return "p99_slowdown";
      case HealthSignal::Fairness: return "fairness";
      case HealthSignal::FaultBacklog: return "fault_backlog";
      case HealthSignal::Churn: return "churn";
      case HealthSignal::Degraded: return "degraded";
      case HealthSignal::Slowdown: return "slowdown";
      case HealthSignal::HbmShare: return "hbm_share";
      case HealthSignal::ShardOccupancy: return "shard_occupancy";
      case HealthSignal::ShardDegraded: return "shard_degraded";
    }
    return "?";
}

bool
healthSignalIsBoolean(HealthSignal signal)
{
    return signal == HealthSignal::Degraded ||
           signal == HealthSignal::ShardDegraded;
}

std::vector<HealthRule>
parseHealthRules(const std::string &text, std::string &error)
{
    error.clear();
    std::vector<HealthRule> rules;
    for (const std::string &spec : splitOn(text, ';')) {
        if (spec.empty())
            continue;
        const auto colon = spec.find(':');
        if (colon == std::string::npos) {
            error = "health rules: rule '" + spec +
                    "' needs severity:signal";
            return {};
        }
        const std::string severity = trim(spec.substr(0, colon));
        HealthRule rule;
        if (severity == "warn") {
            rule.severity = Severity::Warn;
        } else if (severity == "alert") {
            rule.severity = Severity::Alert;
        } else {
            error = "health rules: unknown severity '" + severity +
                    "' (want warn|alert)";
            return {};
        }
        const std::string body = trim(spec.substr(colon + 1));
        const auto fields = splitOn(body, ',');
        if (fields.empty() || fields.front().empty()) {
            error = "health rules: rule '" + spec +
                    "' names no signal";
            return {};
        }
        const std::string &head = fields.front();
        const auto cmp = head.find_first_of("><");
        std::string name = head;
        if (cmp != std::string::npos) {
            name = trim(head.substr(0, cmp));
            rule.cmp = head[cmp] == '>' ? Comparator::Greater
                                        : Comparator::Less;
            if (!parseNumber(trim(head.substr(cmp + 1)),
                             rule.threshold)) {
                error = "health rules: bad threshold in '" + head +
                        "'";
                return {};
            }
        }
        if (!parseSignal(name, rule.signal)) {
            error = "health rules: unknown signal '" + name + "'";
            return {};
        }
        for (std::size_t i = 1; i < fields.size(); ++i) {
            if (fields[i].empty())
                continue;
            if (!parseField(fields[i], rule, error))
                return {};
        }
        if (!validate(rule, error))
            return {};
        rules.push_back(rule);
    }
    if (rules.empty())
        error = "health rules: no rules in '" + text + "'";
    return error.empty() ? rules : std::vector<HealthRule>{};
}

std::string
formatHealthRule(const HealthRule &rule)
{
    std::ostringstream out;
    out << severityName(rule.severity) << ":"
        << healthSignalName(rule.signal);
    if (rule.cmp != Comparator::None)
        out << (rule.cmp == Comparator::Greater ? ">" : "<")
            << number(rule.threshold);
    if (rule.forEpochs != 1)
        out << ",for=" << rule.forEpochs;
    if (rule.tenant != 0)
        out << ",tenant=" << rule.tenant;
    if (rule.shard >= 0)
        out << ",shard=" << rule.shard;
    return out.str();
}

std::string
formatHealthRules(const std::vector<HealthRule> &rules)
{
    std::string out;
    for (const HealthRule &rule : rules) {
        if (!out.empty())
            out += ";";
        out += formatHealthRule(rule);
    }
    return out;
}

} // namespace ramp::health
