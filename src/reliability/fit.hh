/**
 * @file
 * Transient FIT rates per DRAM device (paper Section 3.2).
 *
 * The baseline rates approximate the transient-fault column of the
 * AMD/ORNL Jaguar field study (Sridharan & Liberty, SC'12) that the
 * paper feeds into FaultSim. Die-stacked memory applies a scaling
 * factor on top, modelling the higher bit density and the additional
 * failure modes (e.g. TSVs) the paper cites (Section 2.2); the factor
 * is a calibration input (see DESIGN.md).
 */

#ifndef RAMP_RELIABILITY_FIT_HH
#define RAMP_RELIABILITY_FIT_HH

#include <array>

#include "reliability/fault.hh"

namespace ramp
{

/** FIT (failures per 1e9 device-hours) per fault mode, per chip. */
struct FitRates
{
    /** Indexed by FaultMode. */
    std::array<double, numFaultModes> perMode{};

    /** Rate for one mode. */
    double of(FaultMode mode) const
    {
        return perMode[static_cast<std::size_t>(mode)];
    }

    /** Mutable rate for one mode. */
    double &of(FaultMode mode)
    {
        return perMode[static_cast<std::size_t>(mode)];
    }

    /** Sum over all modes. */
    double total() const;

    /** All rates multiplied by a density/technology factor. */
    FitRates scaled(double factor) const;

    /**
     * Field-study transient rates for a commodity DDR device
     * (approximated from the Jaguar study, FIT per chip).
     */
    static FitRates fieldStudyDdr();

    /**
     * Die-stacked device rates: field-study rates scaled by the
     * given density/TSV factor (default 3).
     */
    static FitRates stacked(double factor = 3.0);
};

} // namespace ramp

#endif // RAMP_RELIABILITY_FIT_HH
