#include "reliability/fit.hh"

namespace ramp
{

double
FitRates::total() const
{
    double sum = 0;
    for (const double rate : perMode)
        sum += rate;
    return sum;
}

FitRates
FitRates::scaled(double factor) const
{
    FitRates scaled = *this;
    for (double &rate : scaled.perMode)
        rate *= factor;
    return scaled;
}

FitRates
FitRates::fieldStudyDdr()
{
    FitRates rates;
    rates.of(FaultMode::Bit) = 14.2;
    rates.of(FaultMode::Word) = 1.4;
    rates.of(FaultMode::Column) = 1.4;
    rates.of(FaultMode::Row) = 0.2;
    rates.of(FaultMode::Bank) = 0.8;
    rates.of(FaultMode::Rank) = 0.3;
    return rates;
}

FitRates
FitRates::stacked(double factor)
{
    return fieldStudyDdr().scaled(factor);
}

} // namespace ramp
