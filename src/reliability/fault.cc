#include "reliability/fault.hh"

namespace ramp
{

const char *
faultModeName(FaultMode mode)
{
    switch (mode) {
      case FaultMode::Bit: return "bit";
      case FaultMode::Word: return "word";
      case FaultMode::Column: return "column";
      case FaultMode::Row: return "row";
      case FaultMode::Bank: return "bank";
      case FaultMode::Rank: return "rank";
    }
    return "?";
}

bool
FaultRecord::multiBit(const ChipGeometry &geometry) const
{
    switch (mode) {
      case FaultMode::Bit:
      case FaultMode::Column:
        // One bit position per codeword.
        return false;
      case FaultMode::Word:
      case FaultMode::Row:
      case FaultMode::Bank:
      case FaultMode::Rank:
        // The chip's whole contribution to each affected word.
        return geometry.bitsPerWord > 1;
    }
    return false;
}

namespace
{

/** Coordinate match: equal, or at least one side wildcard. */
bool
coordIntersects(std::uint64_t a, std::uint64_t b)
{
    return a == faultWildcard || b == faultWildcard || a == b;
}

} // namespace

bool
sameWordPossible(const FaultRecord &a, const FaultRecord &b)
{
    return coordIntersects(a.bank, b.bank) &&
           coordIntersects(a.row, b.row) &&
           coordIntersects(a.column, b.column);
}

bool
defeatsSingleBitCorrection(const FaultRecord &a, const FaultRecord &b,
                           const ChipGeometry &geometry)
{
    if (!sameWordPossible(a, b))
        return false;
    // Either fault already flips several bits of the shared word.
    if (a.multiBit(geometry) || b.multiBit(geometry))
        return true;
    // Two single-bit contributions: distinct bits unless they are
    // the exact same bit position of the same chip.
    if (a.chip != b.chip)
        return true;
    return !(coordIntersects(a.bit, b.bit));
}

} // namespace ramp
