#include "reliability/ser.hh"

namespace ramp
{

double
SerParams::fitPerPage(MemoryId mem) const
{
    const double per_gb =
        mem == MemoryId::HBM ? fitUncHbmPerGB : fitUncDdrPerGB;
    return per_gb * static_cast<double>(pageSize) /
           static_cast<double>(1ULL << 30);
}

double
computeSer(const std::vector<std::pair<PageId, double>> &page_avfs,
           const std::function<MemoryId(PageId)> &memory_of,
           const SerParams &params)
{
    double ser = 0;
    for (const auto &[page, avf] : page_avfs)
        ser += params.fitPerPage(memory_of(page)) * avf;
    return ser;
}

double
computeDdrOnlySer(
    const std::vector<std::pair<PageId, double>> &page_avfs,
    const SerParams &params)
{
    double ser = 0;
    for (const auto &[page, avf] : page_avfs)
        ser += params.fitPerPage(MemoryId::DDR) * avf;
    return ser;
}

} // namespace ramp
