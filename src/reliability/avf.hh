/**
 * @file
 * Architectural Vulnerability Factor tracking (paper Section 4.1).
 *
 * AVF is tracked per 64 B cache line over the memory-level request
 * stream: the interval preceding a read is ACE (a fault in it would
 * have been consumed), the interval preceding a write is dead (a
 * fault would have been overwritten — Figure 3b), and the tail after
 * the last access is dead. A line's first access interval starts at
 * time 0, modelling its initialisation at program load. Page AVF is
 * the mean over the page's 64 lines (Equation 1); memory AVF is the
 * mean over the touched footprint.
 */

#ifndef RAMP_RELIABILITY_AVF_HH
#define RAMP_RELIABILITY_AVF_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/types.hh"

namespace ramp
{

/** Per-line ACE interval accumulator composed to page AVF. */
class AvfTracker
{
  public:
    /** Record one memory access at the given time. */
    void onAccess(Addr addr, bool is_write, Cycle now);

    /**
     * Close the measurement window. Tail intervals are dead; the
     * total time divides all ACE sums (Equation 1). Must be called
     * once, after the last access.
     */
    void finalize(Cycle end_time);

    /** AVF of one page in [0, 1] (0 for untouched pages). */
    double pageAvf(PageId page) const;

    /** Footprint-mean AVF over all touched pages. */
    double memoryAvf() const;

    /** All touched pages with their AVF. */
    std::vector<std::pair<PageId, double>> pageAvfs() const;

    /** Number of touched pages. */
    std::size_t touchedPages() const { return pages_.size(); }

    /** True once finalize() has been called. */
    bool finalized() const { return totalTime_ > 0; }

    /** Reset to an empty, unfinalised tracker. */
    void reset();

  private:
    struct LineState
    {
        Cycle lastAccess = 0;
        Cycle aceTime = 0;
    };

    struct PageState
    {
        LineState lines[linesPerPage];
    };

    std::unordered_map<PageId, PageState> pages_;
    Cycle totalTime_ = 0;
};

} // namespace ramp

#endif // RAMP_RELIABILITY_AVF_HH
