#include "reliability/avf.hh"

#include "common/logging.hh"

namespace ramp
{

void
AvfTracker::onAccess(Addr addr, bool is_write, Cycle now)
{
    if (finalized())
        ramp_panic("AvfTracker accessed after finalize");
    auto &line = pages_[pageOf(addr)].lines[lineInPage(addr)];
    if (!is_write && now > line.lastAccess) {
        // The line had to survive since its previous access (or its
        // initialisation at t = 0) for this read to be correct.
        line.aceTime += now - line.lastAccess;
    }
    line.lastAccess = now;
}

void
AvfTracker::finalize(Cycle end_time)
{
    if (end_time == 0)
        ramp_fatal("AVF window must have positive length");
    if (finalized())
        ramp_panic("AvfTracker finalized twice");
    totalTime_ = end_time;
}

double
AvfTracker::pageAvf(PageId page) const
{
    if (!finalized())
        ramp_panic("pageAvf before finalize");
    const auto it = pages_.find(page);
    if (it == pages_.end())
        return 0.0;
    Cycle ace = 0;
    for (const auto &line : it->second.lines)
        ace += line.aceTime;
    return static_cast<double>(ace) /
           (static_cast<double>(linesPerPage) *
            static_cast<double>(totalTime_));
}

double
AvfTracker::memoryAvf() const
{
    if (!finalized())
        ramp_panic("memoryAvf before finalize");
    if (pages_.empty())
        return 0.0;
    double sum = 0;
    for (const auto &[page, state] : pages_) {
        Cycle ace = 0;
        for (const auto &line : state.lines)
            ace += line.aceTime;
        sum += static_cast<double>(ace);
    }
    return sum / (static_cast<double>(linesPerPage) *
                  static_cast<double>(totalTime_) *
                  static_cast<double>(pages_.size()));
}

std::vector<std::pair<PageId, double>>
AvfTracker::pageAvfs() const
{
    std::vector<std::pair<PageId, double>> result;
    result.reserve(pages_.size());
    for (const auto &[page, state] : pages_)
        result.emplace_back(page, pageAvf(page));
    return result;
}

void
AvfTracker::reset()
{
    pages_.clear();
    totalTime_ = 0;
}

} // namespace ramp
