#include "reliability/ecc.hh"

namespace ramp
{

const char *
eccName(EccKind kind)
{
    switch (kind) {
      case EccKind::None: return "none";
      case EccKind::SecDed: return "SEC-DED";
      case EccKind::ChipKill: return "ChipKill";
    }
    return "?";
}

EccOutcome
classifyFaults(EccKind kind, std::span<const FaultRecord> faults,
               const ChipGeometry &geometry)
{
    if (faults.empty())
        return EccOutcome::NoError;

    switch (kind) {
      case EccKind::None:
        return EccOutcome::Uncorrected;

      case EccKind::SecDed:
        // A single multi-bit fault defeats per-word correction.
        for (const auto &fault : faults)
            if (fault.multiBit(geometry))
                return EccOutcome::Uncorrected;
        // Two single-bit faults sharing a word defeat it too.
        for (std::size_t i = 0; i < faults.size(); ++i)
            for (std::size_t j = i + 1; j < faults.size(); ++j)
                if (defeatsSingleBitCorrection(faults[i], faults[j],
                                               geometry))
                    return EccOutcome::Uncorrected;
        return EccOutcome::Corrected;

      case EccKind::ChipKill:
        // Any fault confined to one chip is corrected; two faults on
        // different chips overlapping the same word are not.
        for (std::size_t i = 0; i < faults.size(); ++i) {
            for (std::size_t j = i + 1; j < faults.size(); ++j) {
                if (faults[i].chip != faults[j].chip &&
                    sameWordPossible(faults[i], faults[j]))
                    return EccOutcome::Uncorrected;
            }
        }
        return EccOutcome::Corrected;
    }
    return EccOutcome::Uncorrected;
}

} // namespace ramp
