/**
 * @file
 * Soft-error-rate model (Equation 2: SER = FIT x AVF).
 *
 * The SER of an HMA configuration sums, over every page, the page's
 * AVF weighted by the uncorrected-error FIT of the memory currently
 * holding it. FIT inputs come from FaultSim (per-GB uncorrected FIT
 * of the SEC-DED stacked memory and the ChipKill DDR); all paper
 * results are reported relative to a DDR-only baseline, which this
 * module computes directly.
 */

#ifndef RAMP_RELIABILITY_SER_HH
#define RAMP_RELIABILITY_SER_HH

#include <functional>
#include <vector>

#include "common/types.hh"

namespace ramp
{

/** Reliability of the two memories, as uncorrected FIT per GB. */
struct SerParams
{
    /** Uncorrected-error FIT per GB of the stacked memory. */
    double fitUncHbmPerGB = 127.0;

    /** Uncorrected-error FIT per GB of the off-package DDR. */
    double fitUncDdrPerGB = 0.15;

    /** FIT of one 4 KB page resident in the given memory. */
    double fitPerPage(MemoryId mem) const;

    /** HBM-to-DDR uncorrected FIT ratio. */
    double fitRatio() const { return fitUncHbmPerGB / fitUncDdrPerGB; }

    /**
     * Default parameters calibrated from this repo's FaultSim
     * presets (see bench/faultsim_rates and EXPERIMENTS.md). Kept as
     * constants so the placement benches do not re-run a Monte-Carlo
     * campaign on every invocation.
     */
    static SerParams calibratedDefault() { return SerParams{}; }
};

/**
 * Absolute SER of a placement (arbitrary units: FIT x AVF).
 *
 * @param page_avfs AVF of every touched page
 * @param memory_of maps a page to the memory holding it
 * @param params per-memory FIT rates
 */
double computeSer(
    const std::vector<std::pair<PageId, double>> &page_avfs,
    const std::function<MemoryId(PageId)> &memory_of,
    const SerParams &params);

/** SER of the same pages when everything lives in DDR. */
double computeDdrOnlySer(
    const std::vector<std::pair<PageId, double>> &page_avfs,
    const SerParams &params);

} // namespace ramp

#endif // RAMP_RELIABILITY_SER_HH
