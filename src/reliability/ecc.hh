/**
 * @file
 * Error-correction schemes of the two memories (Table 1).
 *
 * The off-package DDR uses x4 single-ChipKill (symbol correction:
 * any single-chip fault is corrected); the die-stacked memory uses
 * SEC-DED, which corrects one bit per word and is defeated by any
 * multi-bit pattern — including every coarse single-chip fault mode,
 * which is precisely the reliability gap the paper exploits.
 */

#ifndef RAMP_RELIABILITY_ECC_HH
#define RAMP_RELIABILITY_ECC_HH

#include <span>

#include "reliability/fault.hh"

namespace ramp
{

/** Correction scheme applied by a memory controller. */
enum class EccKind
{
    /** No correction: any fault is an uncorrected error. */
    None,

    /** Single-error-correct, double-error-detect per word. */
    SecDed,

    /** x4 symbol correction: any single-chip fault corrected. */
    ChipKill,
};

/** Human-readable ECC name. */
const char *eccName(EccKind kind);

/** Classification of a fault set against a scheme. */
enum class EccOutcome
{
    /** No faults present. */
    NoError,

    /** All error patterns corrected. */
    Corrected,

    /** Some pattern exceeded the code: uncorrected error. */
    Uncorrected,
};

/**
 * Classify the faults present in one rank against an ECC scheme.
 *
 * A fault set is uncorrected when a single fault already defeats the
 * code (SEC-DED vs any multi-bit mode) or when two faults can land in
 * the same codeword and jointly exceed the correction capability
 * (two bits for SEC-DED, two chips for ChipKill).
 */
EccOutcome classifyFaults(EccKind kind,
                          std::span<const FaultRecord> faults,
                          const ChipGeometry &geometry);

} // namespace ramp

#endif // RAMP_RELIABILITY_ECC_HH
