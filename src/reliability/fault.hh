/**
 * @file
 * DRAM fault geometry: fault modes, records, and overlap tests.
 *
 * Follows the FaultSim design (Nair et al., TACO 2015): a fault is a
 * region of one DRAM chip described by (bank, row, column, bit)
 * coordinates where any coordinate may be a wildcard. Two faults can
 * contribute errors to the same ECC codeword iff their coordinate
 * regions intersect; the ECC schemes in ecc.hh classify the outcome.
 */

#ifndef RAMP_RELIABILITY_FAULT_HH
#define RAMP_RELIABILITY_FAULT_HH

#include <cstdint>
#include <string>

namespace ramp
{

/** Transient fault modes observed in the field study. */
enum class FaultMode : std::uint8_t
{
    Bit = 0,    ///< one bit of one word
    Word,       ///< the chip's whole contribution to one word
    Column,     ///< one bit position across all rows of a bank
    Row,        ///< the chip's contribution to every word of a row
    Bank,       ///< an entire bank of the chip
    Rank,       ///< the entire chip (rank-wide logic fault)
};

/** Number of fault modes. */
constexpr int numFaultModes = 6;

/** Human-readable fault-mode name. */
const char *faultModeName(FaultMode mode);

/** Wildcard coordinate ("all values"). */
constexpr std::uint64_t faultWildcard = UINT64_MAX;

/** Per-chip array geometry used to draw fault coordinates. */
struct ChipGeometry
{
    std::uint32_t banks = 8;
    std::uint64_t rows = 32768;
    std::uint64_t columns = 1024; ///< words per row

    /** Bits one chip contributes to each codeword (x4/x8/x128). */
    std::uint32_t bitsPerWord = 8;
};

/** One injected fault region. */
struct FaultRecord
{
    FaultMode mode = FaultMode::Bit;

    /** Chip within the rank. */
    std::uint32_t chip = 0;

    /** @{ @name Region coordinates; faultWildcard = all. */
    std::uint64_t bank = faultWildcard;
    std::uint64_t row = faultWildcard;
    std::uint64_t column = faultWildcard;
    std::uint64_t bit = faultWildcard;
    /** @} */

    /** True when the fault affects > 1 bit of some codeword. */
    bool multiBit(const ChipGeometry &geometry) const;
};

/**
 * True when two faults can affect the same ECC codeword.
 *
 * Codewords are addressed by (bank, row, column); two regions
 * intersect when every jointly-specified coordinate matches.
 */
bool sameWordPossible(const FaultRecord &a, const FaultRecord &b);

/**
 * True when two faults intersecting a codeword produce at least two
 * distinct erroneous bits in it (the SEC-DED defeat condition).
 */
bool defeatsSingleBitCorrection(const FaultRecord &a,
                                const FaultRecord &b,
                                const ChipGeometry &geometry);

} // namespace ramp

#endif // RAMP_RELIABILITY_FAULT_HH
