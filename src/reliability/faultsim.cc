#include "reliability/faultsim.hh"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/logging.hh"
#include "eventlog/eventlog.hh"
#include "prof/prof.hh"
#include "runner/error.hh"
#include "telemetry/telemetry.hh"

namespace ramp
{

namespace
{

/** Per-shard outcome counters (updated once per shard). */
struct FaultSimTelemetry
{
    telemetry::Counter &shards =
        telemetry::metrics().counter("faultsim.shards");
    telemetry::Counter &trials =
        telemetry::metrics().counter("faultsim.trials");
    telemetry::Counter &faults =
        telemetry::metrics().counter("faultsim.faults_injected");
    telemetry::Counter &corrected =
        telemetry::metrics().counter("faultsim.corrected");
    telemetry::Counter &uncorrected =
        telemetry::metrics().counter("faultsim.uncorrected");
};

FaultSimTelemetry &
faultSimTelemetry()
{
    static FaultSimTelemetry telemetry;
    return telemetry;
}

} // namespace

FaultSimConfig
FaultSimConfig::ddrChipKill()
{
    FaultSimConfig config;
    config.name = "DDR3-x4-ChipKill";
    config.rates = FitRates::fieldStudyDdr();
    config.geometry.banks = 8;
    config.geometry.rows = 32768;
    config.geometry.columns = 1024;
    config.geometry.bitsPerWord = 4;
    config.chips = 18; // 16 data + 2 ECC, x4
    config.dataBytes = 8ULL << 30;
    config.ecc = EccKind::ChipKill;
    return config;
}

FaultSimConfig
FaultSimConfig::hbmSecDed(double stacked_factor)
{
    FaultSimConfig config;
    config.name = "HBM-SEC-DED";
    config.rates = FitRates::stacked(stacked_factor);
    config.geometry.banks = 8;
    config.geometry.rows = 16384;
    config.geometry.columns = 512;
    // One die renders the whole 128-bit word (Section 2.2), so any
    // coarse fault mode is a multi-bit pattern for SEC-DED.
    config.geometry.bitsPerWord = 128;
    config.chips = 1;
    config.dataBytes = 128ULL << 20; // one HBM channel of Table 1
    config.ecc = EccKind::SecDed;
    config.tier = MemoryId::HBM;
    return config;
}

FaultSim::FaultSim(const FaultSimConfig &config)
    : config_(config)
{
    if (config.chips == 0)
        ramp_fatal("FaultSim needs at least one chip");
    if (config.hours <= 0)
        ramp_fatal("FaultSim horizon must be positive");
    if (config.fitBoost < 1.0)
        ramp_fatal("fitBoost must be >= 1");
}

FaultRecord
FaultSim::drawFault(Rng &rng) const
{
    // Pick the mode proportionally to its FIT share.
    const double total = config_.rates.total();
    double pick = rng.nextDouble() * total;
    auto mode = FaultMode::Rank;
    for (int m = 0; m < numFaultModes; ++m) {
        const auto candidate = static_cast<FaultMode>(m);
        pick -= config_.rates.of(candidate);
        if (pick <= 0) {
            mode = candidate;
            break;
        }
    }

    const auto &geometry = config_.geometry;
    FaultRecord fault;
    fault.mode = mode;
    fault.chip = static_cast<std::uint32_t>(
        rng.nextRange(config_.chips));
    switch (mode) {
      case FaultMode::Bit:
        fault.bank = rng.nextRange(geometry.banks);
        fault.row = rng.nextRange(geometry.rows);
        fault.column = rng.nextRange(geometry.columns);
        fault.bit = rng.nextRange(geometry.bitsPerWord);
        break;
      case FaultMode::Word:
        fault.bank = rng.nextRange(geometry.banks);
        fault.row = rng.nextRange(geometry.rows);
        fault.column = rng.nextRange(geometry.columns);
        break;
      case FaultMode::Column:
        fault.bank = rng.nextRange(geometry.banks);
        fault.column = rng.nextRange(geometry.columns);
        fault.bit = rng.nextRange(geometry.bitsPerWord);
        break;
      case FaultMode::Row:
        fault.bank = rng.nextRange(geometry.banks);
        fault.row = rng.nextRange(geometry.rows);
        break;
      case FaultMode::Bank:
        fault.bank = rng.nextRange(geometry.banks);
        break;
      case FaultMode::Rank:
        break;
    }
    return fault;
}

namespace
{

/**
 * Geometric page attribution of a fault: spread the rank's data
 * bytes evenly across the (bank, row, column) word grid and map the
 * fault's first affected word to its page. Wildcard coordinates
 * (coarse modes) attribute to the first word they cover.
 */
PageId
faultPage(const FaultRecord &fault, const ChipGeometry &geometry,
          std::uint64_t data_bytes)
{
    const auto coord = [](std::uint64_t value) {
        return value == faultWildcard ? 0 : value;
    };
    const std::uint64_t words = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(geometry.banks) *
               geometry.rows * geometry.columns);
    const std::uint64_t word =
        (coord(fault.bank) * geometry.rows + coord(fault.row)) *
            geometry.columns +
        coord(fault.column);
    const std::uint64_t word_bytes =
        std::max<std::uint64_t>(1, data_bytes / words);
    const std::uint64_t pages =
        std::max<std::uint64_t>(1, data_bytes / pageSize);
    return word * word_bytes / pageSize % pages;
}

} // namespace

FaultSim::ShardCounts
FaultSim::runShard(std::uint64_t trials, std::uint64_t seed,
                   std::uint64_t shard) const
{
    RAMP_TELEM_SPAN(shard_span, "faultsim.shard", "reliability");
    RAMP_PROF_SCOPE_PMU(shard_prof, "faultsim.shard");
    // Shard labels are schedule-independent, so ledger analyzers
    // see identical fault streams at any --jobs width.
    eventlog::RunScope events_scope(config_.name + "/shard" +
                                    std::to_string(shard));
    Rng rng(seed);
    ShardCounts counts;

    const double mean_faults = config_.rates.total() *
                               static_cast<double>(config_.chips) *
                               config_.hours / 1e9 * config_.fitBoost;

    std::vector<FaultRecord> faults;
    for (std::uint64_t trial = 0; trial < trials; ++trial) {
        const std::uint64_t count = rng.nextPoisson(mean_faults);
        counts.faults += count;
        faults.clear();
        for (std::uint64_t i = 0; i < count; ++i)
            faults.push_back(drawFault(rng));

        switch (classifyFaults(config_.ecc, faults,
                               config_.geometry)) {
          case EccOutcome::NoError:
            ++counts.noError;
            break;
          case EccOutcome::Corrected:
            ++counts.corrected;
            break;
          case EccOutcome::Uncorrected:
            ++counts.uncorrected;
            // Only the rare uncorrected trials put per-fault
            // records in the ledger, keeping fault volume bounded
            // while every reliability escape stays attributable.
            RAMP_EVLOG({
                for (const FaultRecord &fault : faults) {
                    eventlog::EventRecord record;
                    record.kind = eventlog::EventKind::Fault;
                    record.policy = eventlog::PolicyId::FaultSim;
                    record.dst = eventlog::tierOf(config_.tier);
                    record.detail = static_cast<std::uint8_t>(
                        fault.mode);
                    record.epoch = trial;
                    record.page = faultPage(fault, config_.geometry,
                                            config_.dataBytes);
                    eventlog::emit(record);
                }
            });
            break;
        }
    }
    RAMP_TELEM({
        auto &tel = faultSimTelemetry();
        tel.shards.add(1);
        tel.trials.add(trials);
        tel.faults.add(counts.faults);
        tel.corrected.add(counts.corrected);
        tel.uncorrected.add(counts.uncorrected);
    });
    return counts;
}

FaultSimResult
FaultSim::run(std::uint64_t trials, std::uint64_t seed,
              runner::ThreadPool *pool) const
{
    RAMP_TELEM_SPAN(campaign_span, "faultsim.campaign",
                    "reliability",
                    telemetry::traceArg("config", config_.name));

    // The campaign is embarrassingly parallel: fixed-size shards
    // with SplitMix64-derived seeds make the outcome a pure
    // function of (trials, seed) regardless of thread count.
    const std::uint64_t shards =
        (trials + shardTrials - 1) / shardTrials;

    auto shard_counts = [&](std::size_t shard) {
        const std::uint64_t first = shard * shardTrials;
        const std::uint64_t size =
            std::min(shardTrials, trials - first);
        return runShard(size, runner::taskSeed(seed, shard),
                        shard);
    };

    std::vector<ShardCounts> per_shard;
    if (pool != nullptr) {
        per_shard = pool->mapIndex(shards, shard_counts);
        // The pool stops dispatching once a shutdown is requested;
        // a partially-run campaign must not be mistaken for a
        // converged one.
        runner::throwIfCancelled("fault-injection campaign");
    } else {
        per_shard.reserve(shards);
        for (std::uint64_t shard = 0; shard < shards; ++shard)
            per_shard.push_back(shard_counts(shard));
    }

    FaultSimResult result;
    result.trials = trials;
    std::uint64_t total_faults = 0;
    for (const auto &counts : per_shard) {
        result.noError += counts.noError;
        result.corrected += counts.corrected;
        result.uncorrected += counts.uncorrected;
        total_faults += counts.faults;
    }

    result.avgFaultsPerTrial =
        trials == 0 ? 0
                    : static_cast<double>(total_faults) /
                          static_cast<double>(trials);

    // De-boost: single-fault-dominated codes scale linearly in the
    // injection rate, pair-dominated ones quadratically.
    const double order = config_.ecc == EccKind::ChipKill ? 2.0 : 1.0;
    const double boost_scale =
        std::pow(config_.fitBoost, order);
    const double p_boosted =
        trials == 0 ? 0
                    : static_cast<double>(result.uncorrected) /
                          static_cast<double>(trials);
    result.pUncorrected = p_boosted / boost_scale;
    result.fitUncorrectedPerRank =
        result.pUncorrected / config_.hours * 1e9;
    result.fitUncorrectedPerGB =
        result.fitUncorrectedPerRank /
        (static_cast<double>(config_.dataBytes) /
         static_cast<double>(1ULL << 30));
    return result;
}

} // namespace ramp
