/**
 * @file
 * Event-based Monte-Carlo DRAM fault simulator (FaultSim substitute,
 * paper Section 3.2).
 *
 * Each trial draws the transient faults striking one rank over a
 * time horizon (Poisson arrivals per fault mode at field-study FIT
 * rates), then asks the ECC model whether the resulting pattern is
 * corrected. The fraction of uncorrected trials yields the
 * uncorrected-error FIT per rank, which the SER model consumes as
 * the per-GB reliability of each memory in the HMA.
 *
 * ChipKill's uncorrected probability comes almost entirely from
 * two-fault overlaps, so direct simulation needs enormous trial
 * counts (the paper runs 1M trials). The fitBoost option multiplies
 * the injection rate and analytically rescales the result by
 * 1/boost^2 for pair-dominated codes, preserving the estimate while
 * keeping trial counts tractable.
 */

#ifndef RAMP_RELIABILITY_FAULTSIM_HH
#define RAMP_RELIABILITY_FAULTSIM_HH

#include <cstdint>
#include <string>

#include "common/rng.hh"
#include "common/types.hh"
#include "reliability/ecc.hh"
#include "reliability/fit.hh"
#include "runner/pool.hh"

namespace ramp
{

/** One simulated rank configuration. */
struct FaultSimConfig
{
    /** Label for reports. */
    std::string name = "rank";

    /** Per-chip transient FIT rates. */
    FitRates rates = FitRates::fieldStudyDdr();

    /** Per-chip array geometry. */
    ChipGeometry geometry;

    /** Chips per rank, including ECC chips. */
    std::uint32_t chips = 18;

    /** Usable data bytes per rank (for per-GB normalisation). */
    std::uint64_t dataBytes = 8ULL << 30;

    /** Correction scheme of the rank's controller. */
    EccKind ecc = EccKind::ChipKill;

    /** HMA tier this rank backs (decision-ledger attribution). */
    MemoryId tier = MemoryId::DDR;

    /** Simulated horizon per trial, in hours (default 5 years). */
    double hours = 5.0 * 365 * 24;

    /**
     * Injection-rate multiplier for rare-event acceleration. The
     * result is rescaled by 1/boost for single-fault-dominated codes
     * (SEC-DED, None) and 1/boost^2 for pair-dominated ones
     * (ChipKill). Use 1 for unbiased direct simulation.
     */
    double fitBoost = 1.0;

    /**
     * The paper's off-package memory: x4 DDR rank with single
     * ChipKill (16 data + 2 ECC chips).
     */
    static FaultSimConfig ddrChipKill();

    /**
     * The paper's die-stacked memory: one wide-word chip per channel
     * protected by SEC-DED, with raw FIT scaled for density/TSV
     * failure modes.
     */
    static FaultSimConfig hbmSecDed(double stacked_factor = 3.0);
};

/** Outcome counts and derived rates of a simulation campaign. */
struct FaultSimResult
{
    std::uint64_t trials = 0;
    std::uint64_t noError = 0;
    std::uint64_t corrected = 0;
    std::uint64_t uncorrected = 0;

    /** Mean faults injected per trial (diagnostic). */
    double avgFaultsPerTrial = 0;

    /** De-boosted probability of an uncorrected error per horizon. */
    double pUncorrected = 0;

    /** Uncorrected-error FIT of the rank. */
    double fitUncorrectedPerRank = 0;

    /** Uncorrected-error FIT per GB of data. */
    double fitUncorrectedPerGB = 0;
};

/** Monte-Carlo engine over one rank configuration. */
class FaultSim
{
  public:
    explicit FaultSim(const FaultSimConfig &config);

    /**
     * Run a campaign of independent trials.
     *
     * Trials are split into fixed-size shards whose seeds derive
     * from the campaign seed (SplitMix64 of the shard index), so
     * the result depends only on (trials, seed) — never on the
     * shard schedule. Passing a thread pool fans the shards out in
     * parallel; without one they run serially, bit-identically.
     */
    FaultSimResult run(std::uint64_t trials, std::uint64_t seed,
                       runner::ThreadPool *pool = nullptr) const;

    /** Trials per shard of a campaign. */
    static constexpr std::uint64_t shardTrials = 62500;

    /** Draw one fault with mode probability proportional to FIT. */
    FaultRecord drawFault(Rng &rng) const;

    /** The configuration under simulation. */
    const FaultSimConfig &config() const { return config_; }

  private:
    /** Raw outcome counts of one shard of trials. */
    struct ShardCounts
    {
        std::uint64_t noError = 0;
        std::uint64_t corrected = 0;
        std::uint64_t uncorrected = 0;
        std::uint64_t faults = 0;
    };

    ShardCounts runShard(std::uint64_t trials, std::uint64_t seed,
                         std::uint64_t shard) const;

    FaultSimConfig config_;
};

} // namespace ramp

#endif // RAMP_RELIABILITY_FAULTSIM_HH
