/**
 * @file
 * DRAM device geometry and timing (Table 1 presets).
 *
 * Timing is expressed in core clock cycles (3.2 GHz, 0.3125 ns) so
 * the memory model and the trace-driven core model share one clock.
 * The presets implement the paper's two memories: off-package
 * DDR3-1600 (2 channels x 64-bit) and on-package HBM (8 channels x
 * 128-bit at 1 GHz DDR). Per-channel peak bandwidth follows directly
 * from the burst occupancy: 64 B take 16 core cycles on a DDR3
 * channel and ~13 on an HBM channel, giving the paper's ~5x aggregate
 * bandwidth advantage for HBM.
 */

#ifndef RAMP_DRAM_CONFIG_HH
#define RAMP_DRAM_CONFIG_HH

#include <cstdint>
#include <string>

#include "common/types.hh"

namespace ramp
{

/** Core frequency used to convert nanoseconds to cycles. */
constexpr double coreFrequencyGHz = 3.2;

/** Convert nanoseconds to (rounded) core cycles. */
constexpr Cycle
nsToCycles(double ns)
{
    return static_cast<Cycle>(ns * coreFrequencyGHz + 0.5);
}

/** DRAM command timing, in core cycles. */
struct DramTiming
{
    /** Activate to column command. */
    Cycle tRCD = 0;

    /** Precharge. */
    Cycle tRP = 0;

    /** Read column access strobe latency. */
    Cycle tCL = 0;

    /** Write column latency. */
    Cycle tCWL = 0;

    /** Activate to precharge. */
    Cycle tRAS = 0;

    /** Data-bus occupancy of one 64 B transfer. */
    Cycle tBURST = 0;
};

/** Full description of one memory device. */
struct DramConfig
{
    /** Human-readable name ("HBM", "DDR3"). */
    std::string name;

    /** Which HMA slot this device fills. */
    MemoryId id = MemoryId::DDR;

    /** Total capacity in bytes. */
    std::uint64_t capacityBytes = 0;

    /** Independent channels. */
    std::uint32_t channels = 1;

    /** Ranks per channel. */
    std::uint32_t ranksPerChannel = 1;

    /** Banks per rank. */
    std::uint32_t banksPerRank = 8;

    /** Row-buffer size in bytes. */
    std::uint64_t rowBytes = 8192;

    /** Command/data timing. */
    DramTiming timing;

    /** Capacity in 4 KB pages. */
    std::uint64_t capacityPages() const
    {
        return capacityBytes / pageSize;
    }

    /** Total banks across the device. */
    std::uint32_t totalBanks() const
    {
        return channels * ranksPerChannel * banksPerRank;
    }

    /** Aggregate peak bandwidth in bytes per core cycle. */
    double peakBandwidth() const;

    /** Unloaded row-hit read latency in core cycles. */
    Cycle idleReadLatency() const;
};

/**
 * Off-package DDR3-1600 per Table 1: 2 channels, 64-bit bus,
 * 800 MHz (DDR 1.6 GHz). Default capacity is the 1/32-scaled 512 MB.
 */
DramConfig ddr3Config(std::uint64_t capacity_bytes = 512ULL << 20);

/**
 * On-package HBM per Table 1: 8 channels, 128-bit bus, 500 MHz
 * (DDR 1.0 GHz). Default capacity is the 1/32-scaled 32 MB.
 */
DramConfig hbmConfig(std::uint64_t capacity_bytes = 32ULL << 20);

/**
 * Reject a malformed device description (zero capacity, zero
 * channels/banks, zero burst time) with std::invalid_argument and
 * an actionable message, before any simulation structure is built
 * on top of it.
 */
void validateDramConfig(const DramConfig &config);

} // namespace ramp

#endif // RAMP_DRAM_CONFIG_HH
