/**
 * @file
 * Resource-reservation DRAM timing model (Ramulator substitute).
 *
 * Each access reserves its bank and channel data bus in arrival
 * order: completion = max(arrival, bank ready, bus ready) + command
 * latency + burst. Row-buffer state is tracked per bank, so row hits
 * are cheaper than activations and streaming access patterns see
 * higher effective bandwidth. The model captures the three behaviours
 * the study depends on — HBM's channel-level parallelism, row-hit vs
 * row-miss latency, and queueing under bandwidth saturation — at a
 * small fraction of the cost of per-command replay (see DESIGN.md).
 */

#ifndef RAMP_DRAM_MEMORY_HH
#define RAMP_DRAM_MEMORY_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "dram/config.hh"

namespace ramp
{

/** Aggregate counters of one memory device. */
struct DramStats
{
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t rowHits = 0;
    std::uint64_t rowMisses = 0;

    /** Total data-bus busy cycles summed over channels. */
    Cycle busBusyCycles = 0;

    /** Sum of read service latencies (arrival to data). */
    Cycle totalReadLatency = 0;

    /** Row-buffer hit ratio in [0, 1]. */
    double rowHitRatio() const;

    /** Mean read latency in cycles. */
    double avgReadLatency() const;

    /** Bus utilisation given the makespan and channel count. */
    double busUtilisation(Cycle makespan,
                          std::uint32_t channels) const;
};

/** One DRAM device (all channels of the HBM or DDR slot). */
class DramMemory
{
  public:
    /** Build an idle device. */
    explicit DramMemory(const DramConfig &config);

    /**
     * Issue one 64 B access.
     *
     * @param now arrival time in core cycles (must be >= 0; arrivals
     *            may be out of order across cores, the model orders
     *            service by reservation)
     * @param addr device-local byte address (frame address)
     * @param is_write true for writebacks/stores
     * @return completion time (data available / write accepted)
     */
    Cycle access(Cycle now, Addr addr, bool is_write);

    /** Earliest cycle the channel owning addr can start a burst. */
    Cycle channelReadyTime(Addr addr) const;

    /** Device geometry. */
    const DramConfig &config() const { return config_; }

    /** Event counters. */
    const DramStats &stats() const { return stats_; }

    /** Reset counters (placement passes reuse one device). */
    void resetStats() { stats_ = DramStats{}; }

  private:
    /** Decomposed device coordinates of an address. */
    struct Coords
    {
        std::uint32_t channel;
        std::uint32_t bank; ///< flattened rank*banksPerRank + bank
        std::uint64_t row;
    };

    Coords decode(Addr addr) const;

    struct BankState
    {
        std::uint64_t openRow = UINT64_MAX;
        Cycle readyAt = 0;
    };

    DramConfig config_;
    std::vector<Cycle> busFree_;            ///< per channel
    std::vector<BankState> banks_;          ///< per channel x bank
    DramStats stats_;
};

} // namespace ramp

#endif // RAMP_DRAM_MEMORY_HH
