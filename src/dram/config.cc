#include "dram/config.hh"

#include "common/logging.hh"

namespace ramp
{

void
validateDramConfig(const DramConfig &config)
{
    const std::string where =
        "memory '" + (config.name.empty() ? "?" : config.name) + "'";
    if (config.name.empty())
        ramp_invalid("memory device has an empty name");
    if (config.capacityBytes < pageSize)
        ramp_invalid(where, ": capacity ", config.capacityBytes,
                     " B is smaller than one ", pageSize,
                     " B page");
    if (config.channels == 0)
        ramp_invalid(where, ": channels must be >= 1");
    if (config.ranksPerChannel == 0)
        ramp_invalid(where, ": ranksPerChannel must be >= 1");
    if (config.banksPerRank == 0)
        ramp_invalid(where, ": banksPerRank must be >= 1");
    if (config.rowBytes < lineSize)
        ramp_invalid(where, ": rowBytes ", config.rowBytes,
                     " is smaller than one ", lineSize, " B line");
    if (config.timing.tBURST == 0)
        ramp_invalid(where, ": tBURST must be >= 1 cycle (it sets "
                            "the peak bandwidth)");
}

double
DramConfig::peakBandwidth() const
{
    if (timing.tBURST == 0)
        return 0.0;
    return static_cast<double>(channels) *
           static_cast<double>(lineSize) /
           static_cast<double>(timing.tBURST);
}

Cycle
DramConfig::idleReadLatency() const
{
    return timing.tCL + timing.tBURST;
}

DramConfig
ddr3Config(std::uint64_t capacity_bytes)
{
    DramConfig config;
    config.name = "DDR3";
    config.id = MemoryId::DDR;
    config.capacityBytes = capacity_bytes;
    config.channels = 2;
    config.ranksPerChannel = 1;
    config.banksPerRank = 8;
    config.rowBytes = 8192;
    // DDR3-1600 (tCK 1.25 ns): 11-11-11, tRAS 35 ns. One 64 B line
    // is 8 beats on the 64-bit bus = 4 bus cycles = 5 ns.
    config.timing.tRCD = nsToCycles(13.75);
    config.timing.tRP = nsToCycles(13.75);
    config.timing.tCL = nsToCycles(13.75);
    config.timing.tCWL = nsToCycles(10.0);
    config.timing.tRAS = nsToCycles(35.0);
    config.timing.tBURST = nsToCycles(5.0);
    return config;
}

DramConfig
hbmConfig(std::uint64_t capacity_bytes)
{
    DramConfig config;
    config.name = "HBM";
    config.id = MemoryId::HBM;
    config.capacityBytes = capacity_bytes;
    config.channels = 8;
    config.ranksPerChannel = 1;
    config.banksPerRank = 8;
    config.rowBytes = 2048;
    // HBM at 500 MHz (DDR 1.0 GHz), 128-bit bus: one 64 B line is
    // 4 beats = 2 bus cycles = 4 ns. Core timings are close to DDR3
    // in absolute terms.
    config.timing.tRCD = nsToCycles(14.0);
    config.timing.tRP = nsToCycles(14.0);
    config.timing.tCL = nsToCycles(14.0);
    config.timing.tCWL = nsToCycles(8.0);
    config.timing.tRAS = nsToCycles(34.0);
    config.timing.tBURST = nsToCycles(4.0);
    return config;
}

} // namespace ramp
