#include "dram/memory.hh"

#include <algorithm>

#include "common/logging.hh"

namespace ramp
{

double
DramStats::rowHitRatio() const
{
    const std::uint64_t total = rowHits + rowMisses;
    if (total == 0)
        return 0.0;
    return static_cast<double>(rowHits) / static_cast<double>(total);
}

double
DramStats::avgReadLatency() const
{
    if (reads == 0)
        return 0.0;
    return static_cast<double>(totalReadLatency) /
           static_cast<double>(reads);
}

double
DramStats::busUtilisation(Cycle makespan, std::uint32_t channels) const
{
    if (makespan == 0 || channels == 0)
        return 0.0;
    return static_cast<double>(busBusyCycles) /
           (static_cast<double>(makespan) *
            static_cast<double>(channels));
}

DramMemory::DramMemory(const DramConfig &config)
    : config_(config)
{
    if (config.channels == 0 || config.banksPerRank == 0 ||
        config.ranksPerChannel == 0)
        ramp_fatal("DRAM config must have channels/ranks/banks > 0");
    if (config.rowBytes % lineSize != 0)
        ramp_fatal("DRAM row size must be a line multiple");
    busFree_.assign(config.channels, 0);
    banks_.assign(static_cast<std::size_t>(config.totalBanks()),
                  BankState{});
}

DramMemory::Coords
DramMemory::decode(Addr addr) const
{
    const LineId line = lineOf(addr);
    const std::uint64_t lines_per_row = config_.rowBytes / lineSize;
    const std::uint32_t banks_per_channel =
        config_.ranksPerChannel * config_.banksPerRank;

    Coords coords;
    coords.channel =
        static_cast<std::uint32_t>(line % config_.channels);
    const std::uint64_t in_channel = line / config_.channels;
    const std::uint64_t row_index = in_channel / lines_per_row;
    coords.bank =
        static_cast<std::uint32_t>(row_index % banks_per_channel);
    coords.row = row_index / banks_per_channel;
    return coords;
}

Cycle
DramMemory::access(Cycle now, Addr addr, bool is_write)
{
    const Coords coords = decode(addr);
    auto &bank = banks_[coords.channel *
                            config_.ranksPerChannel *
                            config_.banksPerRank +
                        coords.bank];
    auto &bus_free = busFree_[coords.channel];
    const DramTiming &t = config_.timing;

    const Cycle start = std::max(now, bank.readyAt);
    const bool row_hit = bank.openRow == coords.row;

    Cycle open_penalty = 0;
    if (row_hit) {
        ++stats_.rowHits;
    } else {
        open_penalty =
            bank.openRow == UINT64_MAX ? t.tRCD : t.tRP + t.tRCD;
        ++stats_.rowMisses;
        bank.openRow = coords.row;
    }
    const Cycle cas_latency = is_write ? t.tCWL : t.tCL;

    // The burst may not start before the CAS resolves and the data
    // bus is free.
    const Cycle burst_start =
        std::max(start + open_penalty + cas_latency, bus_free);
    const Cycle completion = burst_start + t.tBURST;

    bus_free = completion;
    // Column commands to an open row pipeline under the data burst:
    // the bank can accept the next CAS once this burst has drained,
    // so a row-hit stream runs at burst rate, not CAS-latency rate.
    bank.readyAt = std::max(start + open_penalty + t.tBURST,
                            burst_start + t.tBURST - cas_latency);
    stats_.busBusyCycles += t.tBURST;

    if (is_write) {
        ++stats_.writes;
    } else {
        ++stats_.reads;
        stats_.totalReadLatency += completion - now;
    }
    return completion;
}

Cycle
DramMemory::channelReadyTime(Addr addr) const
{
    return busFree_[decode(addr).channel];
}

} // namespace ramp
