#include "cache/hierarchy.hh"

#include "common/logging.hh"
#include "prof/prof.hh"
#include "telemetry/telemetry.hh"

namespace ramp
{

namespace
{

/** Hot-path hit/miss counters, looked up once per process. */
struct HierarchyCounters
{
    telemetry::Counter &l1dHits =
        telemetry::metrics().counter("cache.l1d.hits");
    telemetry::Counter &l1dMisses =
        telemetry::metrics().counter("cache.l1d.misses");
    telemetry::Counter &l1iHits =
        telemetry::metrics().counter("cache.l1i.hits");
    telemetry::Counter &l1iMisses =
        telemetry::metrics().counter("cache.l1i.misses");
    telemetry::Counter &l2Hits =
        telemetry::metrics().counter("cache.l2.hits");
    telemetry::Counter &l2Misses =
        telemetry::metrics().counter("cache.l2.misses");
};

HierarchyCounters &
hierarchyCounters()
{
    static HierarchyCounters counters;
    return counters;
}

/** Record one access outcome into the L1/L2 telemetry counters. */
void
countAccess(const CacheHierarchy::Result &result,
            telemetry::Counter &l1_hits,
            telemetry::Counter &l1_misses)
{
    auto &c = hierarchyCounters();
    if (result.l1Hit) {
        l1_hits.add(1);
        return;
    }
    l1_misses.add(1);
    if (result.l2Hit)
        c.l2Hits.add(1);
    else
        c.l2Misses.add(1);
}

} // namespace

CacheHierarchy::CacheHierarchy(const HierarchyConfig &config)
    : config_(config), l2_(config.l2)
{
    if (config.cores <= 0)
        ramp_fatal("hierarchy needs at least one core");
    l1i_.reserve(static_cast<std::size_t>(config.cores));
    l1d_.reserve(static_cast<std::size_t>(config.cores));
    for (int i = 0; i < config.cores; ++i) {
        l1i_.emplace_back(config.l1i);
        l1d_.emplace_back(config.l1d);
    }
}

CacheHierarchy::Result
CacheHierarchy::accessThroughL2(SetAssocCache &l1, Addr addr,
                                bool is_write)
{
    Result result;
    const auto l1_result = l1.access(addr, is_write);
    if (l1_result.hit) {
        result.l1Hit = true;
        // A dirty L1 victim can't exist on a hit; nothing reaches L2.
        return result;
    }

    // Install the L1 victim's dirty data into the L2 (it was fetched
    // through the L2 earlier, so this is an update, not an allocate
    // in the common case).
    if (l1_result.writeback) {
        const auto wb = l2_.access(l1_result.writebackAddr, true);
        if (wb.writeback) {
            result.accesses[result.numAccesses++] =
                {wb.writebackAddr, true};
        }
    }

    const auto l2_result = l2_.access(addr, false);
    result.l2Hit = l2_result.hit;
    if (!l2_result.hit) {
        result.accesses[result.numAccesses++] = {addr, false};
    }
    if (l2_result.writeback) {
        if (result.numAccesses >= 3)
            ramp_panic("more than three memory accesses in one fill");
        result.accesses[result.numAccesses++] =
            {l2_result.writebackAddr, true};
    }
    return result;
}

CacheHierarchy::Result
CacheHierarchy::accessData(CoreId core, Addr addr, bool is_write)
{
    if (core >= l1d_.size())
        ramp_panic("data access from unknown core ", core);
    // TSC-only: this is a per-access path, too hot for a PMU read.
    RAMP_PROF_SCOPE(access_prof, "cache.access");
    const Result result = accessThroughL2(l1d_[core], addr, is_write);
    RAMP_TELEM(countAccess(result, hierarchyCounters().l1dHits,
                           hierarchyCounters().l1dMisses));
    return result;
}

CacheHierarchy::Result
CacheHierarchy::accessInst(CoreId core, Addr addr)
{
    if (core >= l1i_.size())
        ramp_panic("inst access from unknown core ", core);
    RAMP_PROF_SCOPE(access_prof, "cache.access");
    const Result result = accessThroughL2(l1i_[core], addr, false);
    RAMP_TELEM(countAccess(result, hierarchyCounters().l1iHits,
                           hierarchyCounters().l1iMisses));
    return result;
}

std::vector<CacheHierarchy::MemAccess>
CacheHierarchy::drain()
{
    std::vector<MemAccess> accesses;
    // L1 dirty lines drain through the L2.
    for (auto &l1 : l1d_) {
        for (const Addr addr : l1.flush()) {
            const auto result = l2_.access(addr, true);
            if (result.writeback)
                accesses.push_back({result.writebackAddr, true});
        }
    }
    for (const Addr addr : l2_.flush())
        accesses.push_back({addr, true});
    return accesses;
}

const CacheStats &
CacheHierarchy::l1dStats(CoreId core) const
{
    return l1d_.at(core).stats();
}

const CacheStats &
CacheHierarchy::l1iStats(CoreId core) const
{
    return l1i_.at(core).stats();
}

} // namespace ramp
