#include "cache/filter.hh"

#include <queue>

#include "common/logging.hh"

namespace ramp
{

double
FilterStats::passRatio() const
{
    if (cpuAccesses == 0)
        return 0.0;
    return static_cast<double>(memAccesses) /
           static_cast<double>(cpuAccesses);
}

std::vector<CoreTrace>
filterTraces(const std::vector<CoreTrace> &cpu_traces,
             const HierarchyConfig &config, FilterStats *stats)
{
    if (static_cast<int>(cpu_traces.size()) > config.cores)
        ramp_fatal("more traces than cores in hierarchy config");

    CacheHierarchy hierarchy(config);
    FilterStats local;

    const std::size_t cores = cpu_traces.size();
    std::vector<std::size_t> cursor(cores, 0);
    std::vector<std::uint64_t> retired(cores, 0);
    std::vector<std::uint64_t> pending_gap(cores, 0);
    std::vector<CoreTrace> out(cores);

    // Interleave cores by retired instruction count so the shared L2
    // sees the streams merged the way a real multicore would.
    using Entry = std::pair<std::uint64_t, std::size_t>;
    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> pq;
    for (std::size_t core = 0; core < cores; ++core)
        if (!cpu_traces[core].empty())
            pq.push({cpu_traces[core][0].instructions(), core});

    while (!pq.empty()) {
        const auto [done, core] = pq.top();
        pq.pop();
        const MemRequest &req = cpu_traces[core][cursor[core]];
        ++local.cpuAccesses;

        const auto result = hierarchy.accessData(
            req.core, req.addr, req.isWrite);
        if (result.numAccesses == 0) {
            // Fully absorbed: fold its instructions into the gap of
            // the next surviving record.
            pending_gap[core] += req.instructions();
        } else {
            for (int i = 0; i < result.numAccesses; ++i) {
                const auto &access = result.accesses[i];
                MemRequest mem;
                mem.addr = access.addr;
                mem.isWrite = access.isWrite;
                mem.core = req.core;
                if (i == 0) {
                    const std::uint64_t gap =
                        pending_gap[core] + req.gap;
                    mem.gap = static_cast<std::uint32_t>(
                        std::min<std::uint64_t>(gap, UINT32_MAX));
                    pending_gap[core] = 0;
                } else {
                    mem.gap = 0;
                    ++local.writebacks;
                }
                out[core].push_back(mem);
                ++local.memAccesses;
            }
        }

        retired[core] = done;
        if (++cursor[core] < cpu_traces[core].size()) {
            pq.push({done +
                         cpu_traces[core][cursor[core]].instructions(),
                     core});
        }
    }

    // Teardown: drain dirty lines as trailing writebacks on core 0.
    if (!out.empty()) {
        for (const auto &access : hierarchy.drain()) {
            MemRequest mem;
            mem.addr = access.addr;
            mem.isWrite = true;
            mem.core = 0;
            mem.gap = 0;
            out[0].push_back(mem);
            ++local.memAccesses;
            ++local.writebacks;
        }
    }

    if (stats != nullptr)
        *stats = local;
    return out;
}

} // namespace ramp
