/**
 * @file
 * Set-associative write-back cache model.
 *
 * Building block of the cache-filtering pipeline (Moola substitute,
 * paper Section 3.1): CPU-level access streams pass through L1/L2
 * models and only misses and dirty writebacks reach the memory-level
 * trace consumed by the HMA simulator.
 */

#ifndef RAMP_CACHE_CACHE_HH
#define RAMP_CACHE_CACHE_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace ramp
{

/** Geometry of one cache. */
struct CacheConfig
{
    /** Total capacity in bytes. */
    std::uint64_t sizeBytes = 16 * 1024;

    /** Ways per set. */
    std::uint32_t associativity = 4;

    /** Line size in bytes (64 throughout the paper). */
    std::uint64_t lineBytes = lineSize;

    /** Number of sets implied by the geometry. */
    std::uint64_t numSets() const;
};

/** Event counters of one cache. */
struct CacheStats
{
    std::uint64_t accesses = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t writebacks = 0;

    /** Miss ratio in [0, 1]. */
    double missRatio() const;
};

/**
 * LRU set-associative cache, write-back + write-allocate.
 *
 * The model tracks tags and dirty bits only (no data). Each access
 * reports whether it hit and whether a dirty victim was written back.
 */
class SetAssocCache
{
  public:
    /** Outcome of one access. */
    struct AccessResult
    {
        /** True when the line was present. */
        bool hit = false;

        /** True when a dirty victim was evicted. */
        bool writeback = false;

        /** Line-aligned address of the written-back victim. */
        Addr writebackAddr = 0;
    };

    /** Build an empty cache; the config must be self-consistent. */
    explicit SetAssocCache(const CacheConfig &config);

    /** Look up / fill one address (allocates on miss). */
    AccessResult access(Addr addr, bool is_write);

    /** True when the line is currently resident. */
    bool contains(Addr addr) const;

    /** Invalidate everything, returning dirty lines as writebacks. */
    std::vector<Addr> flush();

    /** Event counters. */
    const CacheStats &stats() const { return stats_; }

    /** Geometry. */
    const CacheConfig &config() const { return config_; }

  private:
    struct Way
    {
        std::uint64_t tag = 0;
        bool valid = false;
        bool dirty = false;
    };

    std::uint64_t setIndex(Addr addr) const;
    std::uint64_t tagOf(Addr addr) const;

    CacheConfig config_;
    /** sets_ is numSets x associativity; index 0 of a set is MRU. */
    std::vector<std::vector<Way>> sets_;
    CacheStats stats_;
};

} // namespace ramp

#endif // RAMP_CACHE_CACHE_HH
