#include "cache/cache.hh"

#include <algorithm>

#include "common/logging.hh"

namespace ramp
{

std::uint64_t
CacheConfig::numSets() const
{
    return sizeBytes / (lineBytes * associativity);
}

double
CacheStats::missRatio() const
{
    if (accesses == 0)
        return 0.0;
    return static_cast<double>(misses) / static_cast<double>(accesses);
}

SetAssocCache::SetAssocCache(const CacheConfig &config)
    : config_(config)
{
    if (config.lineBytes == 0 || config.associativity == 0)
        ramp_fatal("cache line size and associativity must be > 0");
    if (config.sizeBytes %
            (config.lineBytes * config.associativity) != 0)
        ramp_fatal("cache size must be a multiple of line * ways");
    const std::uint64_t sets = config.numSets();
    if (sets == 0)
        ramp_fatal("cache must have at least one set");
    sets_.resize(sets);
    for (auto &set : sets_)
        set.resize(config.associativity);
}

std::uint64_t
SetAssocCache::setIndex(Addr addr) const
{
    return (addr / config_.lineBytes) % sets_.size();
}

std::uint64_t
SetAssocCache::tagOf(Addr addr) const
{
    return (addr / config_.lineBytes) / sets_.size();
}

SetAssocCache::AccessResult
SetAssocCache::access(Addr addr, bool is_write)
{
    ++stats_.accesses;
    auto &set = sets_[setIndex(addr)];
    const std::uint64_t tag = tagOf(addr);

    AccessResult result;
    for (std::size_t way = 0; way < set.size(); ++way) {
        if (set[way].valid && set[way].tag == tag) {
            // Hit: move to MRU, update dirtiness.
            Way line = set[way];
            line.dirty = line.dirty || is_write;
            set.erase(set.begin() + static_cast<std::ptrdiff_t>(way));
            set.insert(set.begin(), line);
            ++stats_.hits;
            result.hit = true;
            return result;
        }
    }

    // Miss: evict LRU, allocate at MRU.
    ++stats_.misses;
    const Way &victim = set.back();
    if (victim.valid) {
        ++stats_.evictions;
        if (victim.dirty) {
            ++stats_.writebacks;
            result.writeback = true;
            result.writebackAddr =
                (victim.tag * sets_.size() + setIndex(addr)) *
                config_.lineBytes;
        }
    }
    set.pop_back();
    Way line;
    line.tag = tag;
    line.valid = true;
    line.dirty = is_write;
    set.insert(set.begin(), line);
    return result;
}

bool
SetAssocCache::contains(Addr addr) const
{
    const auto &set = sets_[setIndex(addr)];
    const std::uint64_t tag = tagOf(addr);
    return std::any_of(set.begin(), set.end(), [&](const Way &way) {
        return way.valid && way.tag == tag;
    });
}

std::vector<Addr>
SetAssocCache::flush()
{
    std::vector<Addr> dirty;
    for (std::uint64_t index = 0; index < sets_.size(); ++index) {
        for (auto &way : sets_[index]) {
            if (way.valid && way.dirty) {
                dirty.push_back((way.tag * sets_.size() + index) *
                                config_.lineBytes);
                ++stats_.writebacks;
            }
            way = Way{};
        }
    }
    return dirty;
}

} // namespace ramp
