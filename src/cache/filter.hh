/**
 * @file
 * Trace filter: CPU-level stream -> memory-level stream.
 *
 * The Moola-equivalent step of the paper's methodology (Section 3.1):
 * a CPU-level trace is replayed through the cache hierarchy and only
 * L2 misses and dirty writebacks survive, with the instruction gaps
 * of absorbed accesses folded into the next surviving record.
 */

#ifndef RAMP_CACHE_FILTER_HH
#define RAMP_CACHE_FILTER_HH

#include <vector>

#include "cache/hierarchy.hh"
#include "trace/trace.hh"

namespace ramp
{

/** Statistics of one filtering run. */
struct FilterStats
{
    std::uint64_t cpuAccesses = 0;
    std::uint64_t memAccesses = 0;
    std::uint64_t writebacks = 0;

    /** Fraction of CPU accesses that reached memory. */
    double passRatio() const;
};

/**
 * Filter per-core CPU-level traces through a shared hierarchy.
 *
 * Cores are interleaved in instruction-count order so the shared L2
 * sees a realistic merged stream. Dirty lines are drained at the end
 * (appended to core 0's stream), mirroring a workload teardown.
 *
 * @param cpu_traces one CPU-level trace per core
 * @param config cache hierarchy geometry
 * @param stats optional out-param for filter statistics
 * @return one memory-level trace per core
 */
std::vector<CoreTrace>
filterTraces(const std::vector<CoreTrace> &cpu_traces,
             const HierarchyConfig &config,
             FilterStats *stats = nullptr);

} // namespace ramp

#endif // RAMP_CACHE_FILTER_HH
