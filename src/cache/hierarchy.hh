/**
 * @file
 * Two-level cache hierarchy: private L1s, one shared L2 (Table 1).
 */

#ifndef RAMP_CACHE_HIERARCHY_HH
#define RAMP_CACHE_HIERARCHY_HH

#include <cstdint>
#include <vector>

#include "cache/cache.hh"
#include "common/types.hh"

namespace ramp
{

/** Geometry of the full hierarchy. */
struct HierarchyConfig
{
    /** Number of cores (private L1 pairs). */
    int cores = 16;

    /** Private instruction cache (32 KB, 2-way in Table 1). */
    CacheConfig l1i{32 * 1024, 2, lineSize};

    /** Private data cache (16 KB, 4-way in Table 1). */
    CacheConfig l1d{16 * 1024, 4, lineSize};

    /**
     * Shared L2. The paper uses 16 MB / 16-way; the scaled default
     * here keeps the paper's L2:HBM capacity ratio (1:64).
     */
    CacheConfig l2{512 * 1024, 16, lineSize};
};

/**
 * Inclusive-of-nothing (non-enforcing) two-level hierarchy model.
 *
 * Data accesses probe the issuing core's L1D, then the shared L2; L1
 * dirty victims are installed into L2; L2 dirty victims become memory
 * writebacks. Instruction fetches use the L1I and then the L2.
 */
class CacheHierarchy
{
  public:
    /** One resulting main-memory access. */
    struct MemAccess
    {
        Addr addr = 0;
        bool isWrite = false;
    };

    /** Outcome of one CPU access. */
    struct Result
    {
        /** True when no memory access was required. */
        bool l1Hit = false;

        /** True when the L2 absorbed the L1 miss. */
        bool l2Hit = false;

        /**
         * Memory traffic generated: up to three accesses when an L1
         * dirty victim's L2 update evicts dirty data, the demand
         * fetch misses, and the L2 fill evicts dirty data too.
         */
        MemAccess accesses[3];

        /** Number of valid entries in accesses. */
        int numAccesses = 0;
    };

    explicit CacheHierarchy(const HierarchyConfig &config);

    /** Perform one data access from a core. */
    Result accessData(CoreId core, Addr addr, bool is_write);

    /** Perform one instruction fetch from a core. */
    Result accessInst(CoreId core, Addr addr);

    /** Drain all dirty lines (end of simulation) to memory accesses. */
    std::vector<MemAccess> drain();

    /** @{ @name Statistics access */
    const CacheStats &l1dStats(CoreId core) const;
    const CacheStats &l1iStats(CoreId core) const;
    const CacheStats &l2Stats() const { return l2_.stats(); }
    /** @} */

  private:
    Result accessThroughL2(SetAssocCache &l1, Addr addr,
                           bool is_write);

    HierarchyConfig config_;
    std::vector<SetAssocCache> l1i_;
    std::vector<SetAssocCache> l1d_;
    SetAssocCache l2_;
};

} // namespace ramp

#endif // RAMP_CACHE_HIERARCHY_HH
