#include "placement/policies.hh"

#include <algorithm>

#include "common/logging.hh"
#include "eventlog/eventlog.hh"

namespace ramp
{

const char *
policyName(StaticPolicy policy)
{
    switch (policy) {
      case StaticPolicy::DdrOnly: return "ddr-only";
      case StaticPolicy::PerfFocused: return "perf-focused";
      case StaticPolicy::ReliabilityFocused: return "rel-focused";
      case StaticPolicy::Balanced: return "balanced";
      case StaticPolicy::WrRatio: return "wr-ratio";
      case StaticPolicy::Wr2Ratio: return "wr2-ratio";
    }
    return "?";
}

namespace
{

/** Fill HBM from an ordered candidate list; the rest go to DDR. */
PlacementMap
fillFromOrder(const std::vector<std::pair<PageId, PageStats>> &order,
              const PageProfile &profile,
              std::uint64_t hbm_capacity_pages,
              std::uint64_t hbm_target_pages,
              eventlog::PolicyId policy)
{
    PlacementMap map(hbm_capacity_pages);
    // Quadrant thresholds are computed once up front so the ledger
    // branch costs nothing per page when recording is off.
    float mean_hot = 0.0F;
    float mean_avf = 0.0F;
    RAMP_EVLOG({
        mean_hot = static_cast<float>(profile.meanHotness());
        mean_avf = static_cast<float>(profile.meanAvf());
    });
    std::uint64_t placed = 0;
    for (const auto &[page, stats] : order) {
        if (placed >= hbm_target_pages)
            break;
        map.place(page, MemoryId::HBM);
        ++placed;
        RAMP_EVLOG({
            eventlog::EventRecord record;
            record.kind = eventlog::EventKind::Place;
            record.policy = policy;
            record.dst = eventlog::Tier::Hbm;
            record.page = page;
            record.hotness = static_cast<float>(stats.hotness());
            record.wrRatio = static_cast<float>(stats.wrRatio());
            record.avf = static_cast<float>(stats.avf);
            record.quadrant = eventlog::quadrantOf(
                record.hotness > mean_hot, record.avf <= mean_avf);
            record.threshHot = mean_hot;
            record.threshRisk = mean_avf;
            eventlog::emit(record);
        });
    }
    // Remaining pages default to DDR; no explicit placement needed,
    // but touch them so frames exist deterministically.
    return map;
}

} // namespace

PlacementMap
buildStaticPlacement(StaticPolicy policy, const PageProfile &profile,
                     std::uint64_t hbm_capacity_pages)
{
    switch (policy) {
      case StaticPolicy::DdrOnly:
        return PlacementMap(hbm_capacity_pages);

      case StaticPolicy::PerfFocused: {
        const auto order = profile.sortedByDescending(
            [](const PageStats &s) { return s.hotness(); });
        return fillFromOrder(order, profile, hbm_capacity_pages,
                             hbm_capacity_pages,
                             eventlog::PolicyId::PerfFocused);
      }

      case StaticPolicy::ReliabilityFocused: {
        // Ascending AVF == descending (1 - AVF).
        const auto order = profile.sortedByDescending(
            [](const PageStats &s) { return 1.0 - s.avf; });
        return fillFromOrder(order, profile, hbm_capacity_pages,
                             hbm_capacity_pages,
                             eventlog::PolicyId::RelFocused);
      }

      case StaticPolicy::Balanced: {
        const double mean_hot = profile.meanHotness();
        const double mean_avf = profile.meanAvf();
        auto order = profile.sortedByDescending(
            [](const PageStats &s) { return s.hotness(); });
        // Restrict to the hot & low-risk quadrant only; this policy
        // is deliberately conservative (Section 5.2) and may leave
        // HBM underfilled.
        std::erase_if(order, [&](const auto &entry) {
            return static_cast<double>(entry.second.hotness()) <=
                       mean_hot ||
                   entry.second.avf > mean_avf;
        });
        return fillFromOrder(order, profile, hbm_capacity_pages,
                             hbm_capacity_pages,
                             eventlog::PolicyId::Balanced);
      }

      case StaticPolicy::WrRatio: {
        const auto order = profile.sortedByDescending(
            [](const PageStats &s) { return s.wrRatio(); });
        return fillFromOrder(order, profile, hbm_capacity_pages,
                             hbm_capacity_pages,
                             eventlog::PolicyId::WrRatio);
      }

      case StaticPolicy::Wr2Ratio: {
        const auto order = profile.sortedByDescending(
            [](const PageStats &s) { return s.wr2Ratio(); });
        return fillFromOrder(order, profile, hbm_capacity_pages,
                             hbm_capacity_pages,
                             eventlog::PolicyId::Wr2Ratio);
      }
    }
    ramp_panic("unknown static policy");
}

PlacementMap
buildBalancedFilledPlacement(const PageProfile &profile,
                             std::uint64_t hbm_capacity_pages)
{
    const double mean_hot = profile.meanHotness();
    const double mean_avf = profile.meanAvf();
    auto order = profile.sortedByDescending(
        [](const PageStats &s) { return s.hotness(); });
    // Stable partition: quadrant pages keep hotness order up front,
    // everything else follows in hotness order.
    std::stable_partition(
        order.begin(), order.end(), [&](const auto &entry) {
            return static_cast<double>(entry.second.hotness()) >
                       mean_hot &&
                   entry.second.avf <= mean_avf;
        });
    return fillFromOrder(order, profile, hbm_capacity_pages,
                         hbm_capacity_pages,
                         eventlog::PolicyId::Balanced);
}

PlacementMap
buildHotFractionPlacement(const PageProfile &profile,
                          std::uint64_t hbm_capacity_pages,
                          double fraction)
{
    if (fraction < 0.0 || fraction > 1.0)
        ramp_fatal("hot fraction must be in [0, 1]");
    const auto order = profile.sortedByDescending(
        [](const PageStats &s) { return s.hotness(); });
    const auto target = static_cast<std::uint64_t>(
        fraction * static_cast<double>(hbm_capacity_pages));
    return fillFromOrder(order, profile, hbm_capacity_pages, target,
                         eventlog::PolicyId::HotFraction);
}

} // namespace ramp
