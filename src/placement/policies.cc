#include "placement/policies.hh"

#include <algorithm>

#include "common/logging.hh"

namespace ramp
{

const char *
policyName(StaticPolicy policy)
{
    switch (policy) {
      case StaticPolicy::DdrOnly: return "ddr-only";
      case StaticPolicy::PerfFocused: return "perf-focused";
      case StaticPolicy::ReliabilityFocused: return "rel-focused";
      case StaticPolicy::Balanced: return "balanced";
      case StaticPolicy::WrRatio: return "wr-ratio";
      case StaticPolicy::Wr2Ratio: return "wr2-ratio";
    }
    return "?";
}

namespace
{

/** Fill HBM from an ordered candidate list; the rest go to DDR. */
PlacementMap
fillFromOrder(const std::vector<std::pair<PageId, PageStats>> &order,
              const PageProfile &profile,
              std::uint64_t hbm_capacity_pages,
              std::uint64_t hbm_target_pages)
{
    PlacementMap map(hbm_capacity_pages);
    std::uint64_t placed = 0;
    for (const auto &[page, stats] : order) {
        if (placed >= hbm_target_pages)
            break;
        map.place(page, MemoryId::HBM);
        ++placed;
    }
    // Remaining pages default to DDR; no explicit placement needed,
    // but touch them so frames exist deterministically.
    (void)profile;
    return map;
}

} // namespace

PlacementMap
buildStaticPlacement(StaticPolicy policy, const PageProfile &profile,
                     std::uint64_t hbm_capacity_pages)
{
    switch (policy) {
      case StaticPolicy::DdrOnly:
        return PlacementMap(hbm_capacity_pages);

      case StaticPolicy::PerfFocused: {
        const auto order = profile.sortedByDescending(
            [](const PageStats &s) { return s.hotness(); });
        return fillFromOrder(order, profile, hbm_capacity_pages,
                             hbm_capacity_pages);
      }

      case StaticPolicy::ReliabilityFocused: {
        // Ascending AVF == descending (1 - AVF).
        const auto order = profile.sortedByDescending(
            [](const PageStats &s) { return 1.0 - s.avf; });
        return fillFromOrder(order, profile, hbm_capacity_pages,
                             hbm_capacity_pages);
      }

      case StaticPolicy::Balanced: {
        const double mean_hot = profile.meanHotness();
        const double mean_avf = profile.meanAvf();
        auto order = profile.sortedByDescending(
            [](const PageStats &s) { return s.hotness(); });
        // Restrict to the hot & low-risk quadrant only; this policy
        // is deliberately conservative (Section 5.2) and may leave
        // HBM underfilled.
        std::erase_if(order, [&](const auto &entry) {
            return static_cast<double>(entry.second.hotness()) <=
                       mean_hot ||
                   entry.second.avf > mean_avf;
        });
        return fillFromOrder(order, profile, hbm_capacity_pages,
                             hbm_capacity_pages);
      }

      case StaticPolicy::WrRatio: {
        const auto order = profile.sortedByDescending(
            [](const PageStats &s) { return s.wrRatio(); });
        return fillFromOrder(order, profile, hbm_capacity_pages,
                             hbm_capacity_pages);
      }

      case StaticPolicy::Wr2Ratio: {
        const auto order = profile.sortedByDescending(
            [](const PageStats &s) { return s.wr2Ratio(); });
        return fillFromOrder(order, profile, hbm_capacity_pages,
                             hbm_capacity_pages);
      }
    }
    ramp_panic("unknown static policy");
}

PlacementMap
buildBalancedFilledPlacement(const PageProfile &profile,
                             std::uint64_t hbm_capacity_pages)
{
    const double mean_hot = profile.meanHotness();
    const double mean_avf = profile.meanAvf();
    auto order = profile.sortedByDescending(
        [](const PageStats &s) { return s.hotness(); });
    // Stable partition: quadrant pages keep hotness order up front,
    // everything else follows in hotness order.
    std::stable_partition(
        order.begin(), order.end(), [&](const auto &entry) {
            return static_cast<double>(entry.second.hotness()) >
                       mean_hot &&
                   entry.second.avf <= mean_avf;
        });
    return fillFromOrder(order, profile, hbm_capacity_pages,
                         hbm_capacity_pages);
}

PlacementMap
buildHotFractionPlacement(const PageProfile &profile,
                          std::uint64_t hbm_capacity_pages,
                          double fraction)
{
    if (fraction < 0.0 || fraction > 1.0)
        ramp_fatal("hot fraction must be in [0, 1]");
    const auto order = profile.sortedByDescending(
        [](const PageStats &s) { return s.hotness(); });
    const auto target = static_cast<std::uint64_t>(
        fraction * static_cast<double>(hbm_capacity_pages));
    return fillFromOrder(order, profile, hbm_capacity_pages, target);
}

} // namespace ramp
