#include "placement/profile.hh"

namespace ramp
{

double
PageStats::wrRatio() const
{
    return static_cast<double>(writes) /
           static_cast<double>(std::max<std::uint64_t>(reads, 1));
}

double
PageStats::wr2Ratio() const
{
    return static_cast<double>(writes) * static_cast<double>(writes) /
           static_cast<double>(std::max<std::uint64_t>(reads, 1));
}

void
PageProfile::recordAccess(PageId page, bool is_write)
{
    auto &stats = pages_[page];
    if (is_write)
        ++stats.writes;
    else
        ++stats.reads;
}

void
PageProfile::setAvf(PageId page, double avf)
{
    pages_[page].avf = avf;
}

void
PageProfile::setStats(PageId page, const PageStats &stats)
{
    pages_[page] = stats;
}

PageStats
PageProfile::statsOf(PageId page) const
{
    const PageStats *stats = find(page);
    return stats == nullptr ? PageStats{} : *stats;
}

const PageStats *
PageProfile::find(PageId page) const
{
    const auto it = pages_.find(page);
    return it == pages_.end() ? nullptr : &it->second;
}

double
PageProfile::meanHotness() const
{
    if (pages_.empty())
        return 0.0;
    double sum = 0;
    for (const auto &[page, stats] : pages_)
        sum += static_cast<double>(stats.hotness());
    return sum / static_cast<double>(pages_.size());
}

double
PageProfile::meanAvf() const
{
    if (pages_.empty())
        return 0.0;
    double sum = 0;
    for (const auto &[page, stats] : pages_)
        sum += stats.avf;
    return sum / static_cast<double>(pages_.size());
}

std::vector<std::pair<PageId, PageStats>>
PageProfile::entries() const
{
    std::vector<std::pair<PageId, PageStats>> result;
    result.reserve(pages_.size());
    for (const auto &entry : pages_)
        result.push_back(entry);
    return result;
}

} // namespace ramp
