#include "placement/map.hh"

#include <algorithm>

#include "common/logging.hh"

namespace ramp
{

PlacementMap::PlacementMap(std::uint64_t hbm_capacity_pages)
    : hbmCapacity_(hbm_capacity_pages)
{
    if (hbm_capacity_pages == 0)
        ramp_fatal("HBM capacity must be at least one page");
}

PlacementMap::Entry &
PlacementMap::entryOf(PageId page)
{
    return entries_[page];
}

std::uint64_t
PlacementMap::allocFrame(MemoryId mem)
{
    auto &free_list = mem == MemoryId::HBM ? freeHbmFrames_
                                           : freeDdrFrames_;
    if (!free_list.empty()) {
        const std::uint64_t frame = free_list.back();
        free_list.pop_back();
        return frame;
    }
    auto &next = mem == MemoryId::HBM ? nextHbmFrame_ : nextDdrFrame_;
    return next++;
}

void
PlacementMap::freeFrame(MemoryId mem, std::uint64_t frame)
{
    auto &free_list = mem == MemoryId::HBM ? freeHbmFrames_
                                           : freeDdrFrames_;
    free_list.push_back(frame);
}

MemoryId
PlacementMap::memoryOf(PageId page) const
{
    const auto it = entries_.find(page);
    return it == entries_.end() ? MemoryId::DDR : it->second.mem;
}

Addr
PlacementMap::deviceAddr(Addr addr)
{
    auto &entry = entryOf(pageOf(addr));
    if (entry.frame == UINT64_MAX)
        entry.frame = allocFrame(entry.mem);
    return entry.frame * pageSize + addr % pageSize;
}

void
PlacementMap::place(PageId page, MemoryId mem)
{
    auto &entry = entryOf(page);
    if (entry.frame != UINT64_MAX)
        ramp_fatal("page ", page, " placed after first access");
    if (mem == MemoryId::HBM) {
        if (hbmUsed_ >= hbmCapacity_)
            ramp_fatal("initial placement exceeds HBM capacity");
        ++hbmUsed_;
    }
    entry.mem = mem;
}

void
PlacementMap::placePinned(PageId page, MemoryId mem)
{
    place(page, mem);
    entryOf(page).pinned = true;
}

bool
PlacementMap::isPinned(PageId page) const
{
    const auto it = entries_.find(page);
    return it != entries_.end() && it->second.pinned;
}

bool
PlacementMap::swap(PageId hbm_page, PageId ddr_page)
{
    auto &hot = entryOf(ddr_page);
    auto &cold = entryOf(hbm_page);
    if (cold.mem != MemoryId::HBM || hot.mem != MemoryId::DDR)
        return false;
    if (cold.pinned || hot.pinned)
        return false;
    std::swap(cold.mem, hot.mem);
    std::swap(cold.frame, hot.frame);
    migrations_ += 2; // two pages move across the HMA
    return true;
}

bool
PlacementMap::evictToDdr(PageId hbm_page)
{
    auto &entry = entryOf(hbm_page);
    if (entry.mem != MemoryId::HBM || entry.pinned)
        return false;
    if (entry.frame != UINT64_MAX) {
        freeFrame(MemoryId::HBM, entry.frame);
        entry.frame = allocFrame(MemoryId::DDR);
    }
    entry.mem = MemoryId::DDR;
    --hbmUsed_;
    ++migrations_;
    return true;
}

bool
PlacementMap::promoteToHbm(PageId ddr_page)
{
    auto &entry = entryOf(ddr_page);
    if (entry.mem != MemoryId::DDR || entry.pinned)
        return false;
    if (hbmUsed_ >= hbmCapacity_)
        return false;
    if (entry.frame != UINT64_MAX) {
        freeFrame(MemoryId::DDR, entry.frame);
        entry.frame = allocFrame(MemoryId::HBM);
    }
    entry.mem = MemoryId::HBM;
    ++hbmUsed_;
    ++migrations_;
    return true;
}

std::vector<PageId>
PlacementMap::movablePages(PageId first, std::uint64_t pages,
                           MemoryId dst) const
{
    std::vector<PageId> movable;
    std::uint64_t budget =
        dst == MemoryId::HBM ? hbmFreePages() : UINT64_MAX;
    for (std::uint64_t i = 0; i < pages && budget > 0; ++i) {
        const PageId page = first + i;
        const auto it = entries_.find(page);
        const MemoryId mem =
            it == entries_.end() ? MemoryId::DDR : it->second.mem;
        if (mem == dst ||
            (it != entries_.end() && it->second.pinned))
            continue;
        movable.push_back(page);
        if (dst == MemoryId::HBM)
            --budget;
    }
    return movable;
}

std::uint64_t
PlacementMap::moveRange(PageId first, std::uint64_t pages,
                        MemoryId dst)
{
    const MemoryId src =
        dst == MemoryId::HBM ? MemoryId::DDR : MemoryId::HBM;
    std::uint64_t budget =
        dst == MemoryId::HBM ? hbmFreePages() : UINT64_MAX;
    std::uint64_t moved = 0;
    for (std::uint64_t i = 0; i < pages && budget > 0; ++i) {
        const PageId page = first + i;
        const auto it = entries_.find(page);
        const MemoryId mem =
            it == entries_.end() ? MemoryId::DDR : it->second.mem;
        if (mem == dst ||
            (it != entries_.end() && it->second.pinned))
            continue;
        Entry &entry = entryOf(page);
        if (entry.frame != UINT64_MAX) {
            freeFrame(src, entry.frame);
            entry.frame = allocFrame(dst);
        }
        entry.mem = dst;
        if (dst == MemoryId::HBM) {
            ++hbmUsed_;
            --budget;
        } else {
            --hbmUsed_;
        }
        ++migrations_;
        ++moved;
    }
    return moved;
}

std::uint64_t
PlacementMap::placeRange(PageId first, std::uint64_t pages,
                         MemoryId mem)
{
    std::uint64_t budget =
        mem == MemoryId::HBM ? hbmFreePages() : UINT64_MAX;
    std::uint64_t placed = 0;
    for (std::uint64_t i = 0; i < pages && budget > 0; ++i) {
        const PageId page = first + i;
        if (entries_.find(page) != entries_.end())
            continue; // already placed (or touched): leave it be
        Entry &entry = entryOf(page);
        entry.mem = mem;
        if (mem == MemoryId::HBM) {
            ++hbmUsed_;
            --budget;
        }
        ++placed;
    }
    return placed;
}

std::uint64_t
PlacementMap::pinRange(PageId first, std::uint64_t pages)
{
    std::uint64_t pinned = 0;
    for (std::uint64_t i = 0; i < pages; ++i) {
        Entry &entry = entryOf(first + i);
        if (entry.pinned)
            continue;
        entry.pinned = true;
        ++pinned;
    }
    return pinned;
}

RetireOutcome
PlacementMap::retirePage(PageId page)
{
    RetireOutcome out;
    if (isRetired(page))
        return out; // a frame dies once
    Entry &entry = entryOf(page);
    // Materialize the frame the error struck so the quarantine has
    // a concrete victim even for never-touched pages.
    if (entry.frame == UINT64_MAX)
        entry.frame = allocFrame(entry.mem);
    out.retired = true;
    out.from = entry.mem;
    auto &quarantine = entry.mem == MemoryId::HBM
                           ? retiredHbmFrames_
                           : retiredDdrFrames_;
    quarantine.insert(entry.frame);
    retiredPages_.insert(page);
    entry.frame = UINT64_MAX; // reallocates on next access

    if (entry.mem == MemoryId::HBM) {
        // The dead frame shrinks the tier; the page leaves with it.
        --hbmCapacity_;
        --hbmUsed_;
        entry.mem = MemoryId::DDR;
        entry.pinned = true;
        out.crossedTier = true;
        ++migrations_;
    } else if (hbmFreePages() > 0) {
        entry.mem = MemoryId::HBM;
        entry.pinned = true;
        ++hbmUsed_;
        out.crossedTier = true;
        ++migrations_;
    }
    // else: HBM full — the page stays in DDR on a fresh frame,
    // unpinned, and the caller retries the promotion with backoff.
    out.to = entry.mem;
    return out;
}

std::uint64_t
PlacementMap::loseCapacity(MemoryId mem, std::uint64_t pages)
{
    if (mem != MemoryId::HBM)
        return 0; // DDR capacity is unbounded in this model
    const std::uint64_t lost = std::min(pages, hbmCapacity_);
    hbmCapacity_ -= lost;
    return lost;
}

bool
PlacementMap::isFrameRetired(MemoryId mem, std::uint64_t frame) const
{
    const auto &quarantine = mem == MemoryId::HBM
                                 ? retiredHbmFrames_
                                 : retiredDdrFrames_;
    return quarantine.count(frame) != 0;
}

std::uint64_t
PlacementMap::retiredFrames(MemoryId mem) const
{
    return mem == MemoryId::HBM ? retiredHbmFrames_.size()
                                : retiredDdrFrames_.size();
}

std::vector<PageId>
PlacementMap::retiredPages() const
{
    std::vector<PageId> pages(retiredPages_.begin(),
                              retiredPages_.end());
    std::sort(pages.begin(), pages.end());
    return pages;
}

std::vector<PageId>
PlacementMap::hbmPages() const
{
    std::vector<PageId> pages;
    pages.reserve(hbmUsed_);
    for (const auto &[page, entry] : entries_)
        if (entry.mem == MemoryId::HBM)
            pages.push_back(page);
    return pages;
}

} // namespace ramp
