/**
 * @file
 * Static (profile-guided) page placement policies.
 *
 * Implements the paper's placement spectrum: performance-focused
 * (Section 4.2), reliability-focused (5.1), balanced (5.2), the
 * Wr / Wr^2 AVF heuristics (5.4), the Figure 1 hot-fraction sweep,
 * and the DDR-only baseline.
 */

#ifndef RAMP_PLACEMENT_POLICIES_HH
#define RAMP_PLACEMENT_POLICIES_HH

#include "placement/map.hh"
#include "placement/profile.hh"

namespace ramp
{

/** The static placement policies evaluated in the paper. */
enum class StaticPolicy
{
    /** Everything in DDR (the reliability/performance baseline). */
    DdrOnly,

    /** Top pages by raw access count fill the HBM. */
    PerfFocused,

    /** Lowest-AVF pages fill the HBM, hotness ignored. */
    ReliabilityFocused,

    /** Hot & low-risk quadrant pages only, by hotness. */
    Balanced,

    /** Top pages by Wr ratio (writes/reads). */
    WrRatio,

    /** Top pages by Wr^2 ratio (writes^2/reads). */
    Wr2Ratio,
};

/** Human-readable policy name. */
const char *policyName(StaticPolicy policy);

/**
 * Build the placement a policy chooses for a profiled workload.
 *
 * Pages not selected for HBM go to DDR. Policies restricted to a
 * subset (Balanced) may leave HBM underfilled; the others fill it.
 */
PlacementMap buildStaticPlacement(StaticPolicy policy,
                                  const PageProfile &profile,
                                  std::uint64_t hbm_capacity_pages);

/**
 * Balanced placement topped up to capacity: hot & low-risk quadrant
 * pages first (by hotness), then the hottest remaining pages. Used
 * as the initial placement of the reliability-aware dynamic schemes
 * ("top hot and low-risk pages", Section 6.2) so a small quadrant
 * does not leave the HBM underfilled at the start of execution.
 */
PlacementMap buildBalancedFilledPlacement(
    const PageProfile &profile, std::uint64_t hbm_capacity_pages);

/**
 * Figure 1 sweep point: place the hottest fraction * capacity pages
 * in HBM (fraction in [0, 1]).
 */
PlacementMap buildHotFractionPlacement(const PageProfile &profile,
                                       std::uint64_t hbm_capacity_pages,
                                       double fraction);

} // namespace ramp

#endif // RAMP_PLACEMENT_POLICIES_HH
