/**
 * @file
 * Page placement map: which memory holds each page.
 *
 * The map is the contract between placement policies, the migration
 * engines, and the HMA simulator: it tracks page residency, assigns
 * device-local frames (so the DRAM models see stable addresses),
 * enforces HBM capacity, and honours pinned pages (the Section 7
 * annotation mechanism marks pages as pinned so migration policies
 * leave them alone).
 */

#ifndef RAMP_PLACEMENT_MAP_HH
#define RAMP_PLACEMENT_MAP_HH

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/types.hh"

namespace ramp
{

/** What PlacementMap::retirePage did (fault response). */
struct RetireOutcome
{
    /** False when the page was already retired (no-op). */
    bool retired = false;

    /** Tier the page occupied when the fault struck. */
    MemoryId from = MemoryId::DDR;

    /** Tier the page lives in after the remap. */
    MemoryId to = MemoryId::DDR;

    /**
     * True when the remap reached the other tier. False means the
     * surviving tier was full: the page got a fresh frame in its own
     * tier and the caller owns retrying the cross-tier move.
     */
    bool crossedTier = false;
};

/** Page-to-memory assignment with frame allocation. */
class PlacementMap
{
  public:
    /** Build an empty map with the given HBM capacity. */
    explicit PlacementMap(std::uint64_t hbm_capacity_pages);

    /** Memory currently holding a page (DDR when never placed). */
    MemoryId memoryOf(PageId page) const;

    /**
     * Device-local byte address of an access, allocating the page's
     * frame on first touch.
     */
    Addr deviceAddr(Addr addr);

    /**
     * Place a page in a memory (initial placement). Placing into a
     * full HBM is a fatal configuration error.
     */
    void place(PageId page, MemoryId mem);

    /** Place and pin (annotation): migrations must not move it. */
    void placePinned(PageId page, MemoryId mem);

    /** True when the page is pinned. */
    bool isPinned(PageId page) const;

    /**
     * Exchange an HBM-resident page with a DDR-resident page (the
     * migration primitive). Returns false — and does nothing — when
     * either page is pinned or residency does not match.
     */
    bool swap(PageId hbm_page, PageId ddr_page);

    /**
     * Move an HBM page to DDR without a partner (eviction when no
     * fill candidate exists). Returns false for pinned/mismatched.
     */
    bool evictToDdr(PageId hbm_page);

    /**
     * Move a DDR page into a free HBM frame. Returns false when the
     * HBM is full or residency does not match.
     */
    bool promoteToHbm(PageId ddr_page);

    /** Pages currently resident in HBM. */
    std::vector<PageId> hbmPages() const;

    /** @{ @name Range/batch operations (region granularity)
     *
     * A region op is one batch, not N independent page moves: the
     * capacity budget is computed once per call, already-resident
     * and pinned pages are skipped, and a full destination yields a
     * partial-success count instead of the single-page fatal path.
     */

    /**
     * The pages of [first, first+pages) that moveRange(dst) would
     * move right now: resident in the other tier, not pinned, and
     * within the destination's remaining capacity. Pure peek — the
     * simulator uses it to capture source addresses before the move.
     */
    std::vector<PageId> movablePages(PageId first,
                                     std::uint64_t pages,
                                     MemoryId dst) const;

    /**
     * Move every movable page of the span into dst.
     * @return pages actually moved (partial when HBM fills)
     */
    std::uint64_t moveRange(PageId first, std::uint64_t pages,
                            MemoryId dst);

    /**
     * Initial bulk placement: place the span's not-yet-placed pages
     * in mem until capacity runs out.
     * @return pages actually placed
     */
    std::uint64_t placeRange(PageId first, std::uint64_t pages,
                             MemoryId mem);

    /**
     * Pin the span where it currently resides.
     * @return pages newly pinned
     */
    std::uint64_t pinRange(PageId first, std::uint64_t pages);
    /** @} */

    /** @{ @name Fault response (retirement and capacity loss)
     *
     * An uncorrected error kills the physical frame, not the page:
     * retirePage quarantines the frame forever (it never re-enters a
     * free list), remaps the page to the other tier when it fits,
     * and pins it there so migration engines leave it alone. Losing
     * an HBM frame shrinks hbmCapacityPages() by one — the budget
     * tracks surviving hardware, so an overfull map is a valid state
     * the caller drains with demotion sweeps.
     */

    /**
     * Retire a page after an uncorrected error. The frame it sat in
     * (allocated now if it was never touched) is quarantined; the
     * page is remapped to the other tier when capacity allows and
     * pinned on a successful cross. A DDR page that finds HBM full
     * stays in DDR on a fresh frame, unpinned, so the caller can
     * retry the promotion later.
     */
    RetireOutcome retirePage(PageId page);

    /**
     * Lose `pages` frames of a tier's capacity (e.g. a dead HBM
     * channel). Only HBM capacity is modelled; the budget may drop
     * below current occupancy — see overfullHbmPages().
     * @return frames actually lost (clamped to remaining capacity)
     */
    std::uint64_t loseCapacity(MemoryId mem, std::uint64_t pages);

    /** Pages resident in HBM beyond the surviving capacity. */
    std::uint64_t overfullHbmPages() const
    {
        return hbmUsed_ > hbmCapacity_ ? hbmUsed_ - hbmCapacity_ : 0;
    }

    /** True when the page has been retired by an uncorrected error. */
    bool isRetired(PageId page) const
    {
        return retiredPages_.count(page) != 0;
    }

    /** True when the frame is quarantined (never reallocated). */
    bool isFrameRetired(MemoryId mem, std::uint64_t frame) const;

    /** Quarantined frame count in a tier. */
    std::uint64_t retiredFrames(MemoryId mem) const;

    /** Retired pages in ascending id order (deterministic). */
    std::vector<PageId> retiredPages() const;
    /** @} */

    /** @{ @name Capacity */
    std::uint64_t hbmCapacityPages() const { return hbmCapacity_; }
    std::uint64_t hbmUsedPages() const { return hbmUsed_; }
    std::uint64_t hbmFreePages() const
    {
        // Saturating: capacity loss can push the budget below the
        // current occupancy (see overfullHbmPages()).
        return hbmUsed_ >= hbmCapacity_ ? 0
                                        : hbmCapacity_ - hbmUsed_;
    }
    /** @} */

    /** Total pages moved across the HMA by swap/evict/promote. */
    std::uint64_t migrations() const { return migrations_; }

  private:
    struct Entry
    {
        MemoryId mem = MemoryId::DDR;
        std::uint64_t frame = UINT64_MAX;
        bool pinned = false;
    };

    Entry &entryOf(PageId page);
    std::uint64_t allocFrame(MemoryId mem);
    void freeFrame(MemoryId mem, std::uint64_t frame);

    std::uint64_t hbmCapacity_;
    std::uint64_t hbmUsed_ = 0;
    std::uint64_t migrations_ = 0;
    std::unordered_map<PageId, Entry> entries_;
    std::unordered_set<PageId> retiredPages_;
    std::unordered_set<std::uint64_t> retiredHbmFrames_;
    std::unordered_set<std::uint64_t> retiredDdrFrames_;
    std::vector<std::uint64_t> freeHbmFrames_;
    std::vector<std::uint64_t> freeDdrFrames_;
    std::uint64_t nextHbmFrame_ = 0;
    std::uint64_t nextDdrFrame_ = 0;
};

} // namespace ramp

#endif // RAMP_PLACEMENT_MAP_HH
