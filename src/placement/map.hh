/**
 * @file
 * Page placement map: which memory holds each page.
 *
 * The map is the contract between placement policies, the migration
 * engines, and the HMA simulator: it tracks page residency, assigns
 * device-local frames (so the DRAM models see stable addresses),
 * enforces HBM capacity, and honours pinned pages (the Section 7
 * annotation mechanism marks pages as pinned so migration policies
 * leave them alone).
 */

#ifndef RAMP_PLACEMENT_MAP_HH
#define RAMP_PLACEMENT_MAP_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/types.hh"

namespace ramp
{

/** Page-to-memory assignment with frame allocation. */
class PlacementMap
{
  public:
    /** Build an empty map with the given HBM capacity. */
    explicit PlacementMap(std::uint64_t hbm_capacity_pages);

    /** Memory currently holding a page (DDR when never placed). */
    MemoryId memoryOf(PageId page) const;

    /**
     * Device-local byte address of an access, allocating the page's
     * frame on first touch.
     */
    Addr deviceAddr(Addr addr);

    /**
     * Place a page in a memory (initial placement). Placing into a
     * full HBM is a fatal configuration error.
     */
    void place(PageId page, MemoryId mem);

    /** Place and pin (annotation): migrations must not move it. */
    void placePinned(PageId page, MemoryId mem);

    /** True when the page is pinned. */
    bool isPinned(PageId page) const;

    /**
     * Exchange an HBM-resident page with a DDR-resident page (the
     * migration primitive). Returns false — and does nothing — when
     * either page is pinned or residency does not match.
     */
    bool swap(PageId hbm_page, PageId ddr_page);

    /**
     * Move an HBM page to DDR without a partner (eviction when no
     * fill candidate exists). Returns false for pinned/mismatched.
     */
    bool evictToDdr(PageId hbm_page);

    /**
     * Move a DDR page into a free HBM frame. Returns false when the
     * HBM is full or residency does not match.
     */
    bool promoteToHbm(PageId ddr_page);

    /** Pages currently resident in HBM. */
    std::vector<PageId> hbmPages() const;

    /** @{ @name Range/batch operations (region granularity)
     *
     * A region op is one batch, not N independent page moves: the
     * capacity budget is computed once per call, already-resident
     * and pinned pages are skipped, and a full destination yields a
     * partial-success count instead of the single-page fatal path.
     */

    /**
     * The pages of [first, first+pages) that moveRange(dst) would
     * move right now: resident in the other tier, not pinned, and
     * within the destination's remaining capacity. Pure peek — the
     * simulator uses it to capture source addresses before the move.
     */
    std::vector<PageId> movablePages(PageId first,
                                     std::uint64_t pages,
                                     MemoryId dst) const;

    /**
     * Move every movable page of the span into dst.
     * @return pages actually moved (partial when HBM fills)
     */
    std::uint64_t moveRange(PageId first, std::uint64_t pages,
                            MemoryId dst);

    /**
     * Initial bulk placement: place the span's not-yet-placed pages
     * in mem until capacity runs out.
     * @return pages actually placed
     */
    std::uint64_t placeRange(PageId first, std::uint64_t pages,
                             MemoryId mem);

    /**
     * Pin the span where it currently resides.
     * @return pages newly pinned
     */
    std::uint64_t pinRange(PageId first, std::uint64_t pages);
    /** @} */

    /** @{ @name Capacity */
    std::uint64_t hbmCapacityPages() const { return hbmCapacity_; }
    std::uint64_t hbmUsedPages() const { return hbmUsed_; }
    std::uint64_t hbmFreePages() const
    {
        return hbmCapacity_ - hbmUsed_;
    }
    /** @} */

    /** Total pages moved across the HMA by swap/evict/promote. */
    std::uint64_t migrations() const { return migrations_; }

  private:
    struct Entry
    {
        MemoryId mem = MemoryId::DDR;
        std::uint64_t frame = UINT64_MAX;
        bool pinned = false;
    };

    Entry &entryOf(PageId page);
    std::uint64_t allocFrame(MemoryId mem);
    void freeFrame(MemoryId mem, std::uint64_t frame);

    std::uint64_t hbmCapacity_;
    std::uint64_t hbmUsed_ = 0;
    std::uint64_t migrations_ = 0;
    std::unordered_map<PageId, Entry> entries_;
    std::vector<std::uint64_t> freeHbmFrames_;
    std::vector<std::uint64_t> freeDdrFrames_;
    std::uint64_t nextHbmFrame_ = 0;
    std::uint64_t nextDdrFrame_ = 0;
};

} // namespace ramp

#endif // RAMP_PLACEMENT_MAP_HH
