/**
 * @file
 * Page profiles: per-page hotness, write mix, and AVF.
 *
 * The static placement policies of Sections 4-5 are profile-guided:
 * a DDR-only profiling pass collects per-page read/write counts and
 * AVF, and the policies rank pages by hotness, AVF, or the Wr/Wr^2
 * heuristic ratios derived here.
 */

#ifndef RAMP_PLACEMENT_PROFILE_HH
#define RAMP_PLACEMENT_PROFILE_HH

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/types.hh"

namespace ramp
{

/** Profiled behaviour of one page. */
struct PageStats
{
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    double avf = 0.0;

    /** Raw access count — the paper's hotness metric. */
    std::uint64_t hotness() const { return reads + writes; }

    /** Wr ratio (Section 5.4.1): writes per read. */
    double wrRatio() const;

    /**
     * Wr^2 ratio (Section 5.4.2): the extra factor of writes biases
     * the heuristic toward pages with high absolute write traffic.
     */
    double wr2Ratio() const;
};

/** Profile of a whole workload's footprint. */
class PageProfile
{
  public:
    /** Record one access during the profiling pass. */
    void recordAccess(PageId page, bool is_write);

    /** Attach the measured AVF of a page. */
    void setAvf(PageId page, double avf);

    /** Install a page's full stats (profile deserialisation). */
    void setStats(PageId page, const PageStats &stats);

    /** Stats of one page (zeros when untouched). */
    PageStats statsOf(PageId page) const;

    /**
     * Stats of one page without the copy (nullptr when untouched).
     * The hot ranking/filter loops use this to avoid churning a
     * PageStats copy per probe.
     */
    const PageStats *find(PageId page) const;

    /** Pre-size the table for an expected footprint (rehash once). */
    void reserve(std::size_t pages) { pages_.reserve(pages); }

    /** The underlying page table. */
    const std::unordered_map<PageId, PageStats> &pages() const
    {
        return pages_;
    }

    /** Number of touched pages. */
    std::size_t footprintPages() const { return pages_.size(); }

    /** @{ @name Population means (the Fig 4 quadrant thresholds). */
    double meanHotness() const;
    double meanAvf() const;
    /** @} */

    /**
     * Pages sorted descending by a metric with deterministic PageId
     * tie-breaking. Used by every static policy.
     */
    template <typename Metric>
    std::vector<std::pair<PageId, PageStats>>
    sortedByDescending(Metric metric) const;

    /** The count of pages plus stats as a flat vector. */
    std::vector<std::pair<PageId, PageStats>> entries() const;

  private:
    std::unordered_map<PageId, PageStats> pages_;
};

template <typename Metric>
std::vector<std::pair<PageId, PageStats>>
PageProfile::sortedByDescending(Metric metric) const
{
    auto result = entries();
    std::sort(result.begin(), result.end(),
              [&](const auto &a, const auto &b) {
                  const auto ma = metric(a.second);
                  const auto mb = metric(b.second);
                  if (ma != mb)
                      return ma > mb;
                  return a.first < b.first;
              });
    return result;
}

} // namespace ramp

#endif // RAMP_PLACEMENT_PROFILE_HH
