/**
 * @file
 * Hotness-risk quadrant analysis (paper Section 4.2, Figure 4).
 *
 * The footprint is split around mean hotness and mean AVF into four
 * quadrants; the paper's key observation is that the hot & low-risk
 * quadrant holds 9-39% of the footprint, making simultaneous
 * performance and reliability optimisation possible.
 */

#ifndef RAMP_PLACEMENT_QUADRANT_HH
#define RAMP_PLACEMENT_QUADRANT_HH

#include <cstdint>

#include "placement/profile.hh"

namespace ramp
{

/** Page counts of the four hotness-risk quadrants. */
struct QuadrantCounts
{
    std::uint64_t hotHighRisk = 0;
    std::uint64_t hotLowRisk = 0;
    std::uint64_t coldHighRisk = 0;
    std::uint64_t coldLowRisk = 0;

    /** Thresholds the split was computed with. */
    double hotnessThreshold = 0;
    double avfThreshold = 0;

    /** Total pages classified. */
    std::uint64_t total() const;

    /** Fraction of the footprint that is hot & low-risk. */
    double hotLowRiskFraction() const;
};

/** Classify every profiled page around the population means. */
QuadrantCounts analyzeQuadrants(const PageProfile &profile);

} // namespace ramp

#endif // RAMP_PLACEMENT_QUADRANT_HH
