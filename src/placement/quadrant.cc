#include "placement/quadrant.hh"

namespace ramp
{

std::uint64_t
QuadrantCounts::total() const
{
    return hotHighRisk + hotLowRisk + coldHighRisk + coldLowRisk;
}

double
QuadrantCounts::hotLowRiskFraction() const
{
    const std::uint64_t all = total();
    if (all == 0)
        return 0.0;
    return static_cast<double>(hotLowRisk) /
           static_cast<double>(all);
}

QuadrantCounts
analyzeQuadrants(const PageProfile &profile)
{
    QuadrantCounts counts;
    counts.hotnessThreshold = profile.meanHotness();
    counts.avfThreshold = profile.meanAvf();
    for (const auto &[page, stats] : profile.pages()) {
        const bool hot = static_cast<double>(stats.hotness()) >
                         counts.hotnessThreshold;
        const bool high_risk = stats.avf > counts.avfThreshold;
        if (hot && high_risk)
            ++counts.hotHighRisk;
        else if (hot)
            ++counts.hotLowRisk;
        else if (high_risk)
            ++counts.coldHighRisk;
        else
            ++counts.coldLowRisk;
    }
    return counts;
}

} // namespace ramp
