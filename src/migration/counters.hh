/**
 * @file
 * Activity-tracking hardware of the dynamic migration schemes.
 *
 * Three structures from Section 6:
 *  - FullCounterTable: per-page saturating read/write counters (the
 *    Meswani-style "Full Counters"; split R/W counters turn the
 *    performance tracker into a risk tracker, Section 6.2/6.3).
 *  - MeaTracker: the Majority Element Algorithm (Misra-Gries) hot
 *    page tracker MemPod uses; recency-favouring, tiny storage
 *    (Section 6.4).
 *  - RemapCache: model of MemPod's remap-table cache; misses charge
 *    a lookup latency penalty on the access path.
 */

#ifndef RAMP_MIGRATION_COUNTERS_HH
#define RAMP_MIGRATION_COUNTERS_HH

#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "common/types.hh"

namespace ramp
{

/** Saturating per-page read/write counters, cleared per interval. */
class FullCounterTable
{
  public:
    /** Per-page counter pair. */
    struct Counts
    {
        std::uint32_t reads = 0;
        std::uint32_t writes = 0;

        /** Raw access count (the hotness metric). */
        std::uint32_t hotness() const { return reads + writes; }

        /** Wr ratio; high values indicate low risk (Section 5.3). */
        double wrRatio() const;
    };

    /** @param bits counter width (the paper uses 8-bit saturating) */
    explicit FullCounterTable(std::uint32_t bits = 8);

    /** Count one access. */
    void onAccess(PageId page, bool is_write);

    /** Counters of one page this interval (zeros if untouched). */
    Counts countsOf(PageId page) const;

    /** All pages touched this interval. */
    const std::unordered_map<PageId, Counts> &touched() const
    {
        return counters_;
    }

    /** Mean hotness over touched pages (the dynamic threshold). */
    double meanHotness() const;

    /** Mean Wr ratio over touched pages (the risk threshold). */
    double meanWrRatio() const;

    /** Clear all counters (interval boundary). */
    void reset();

    /** Saturation limit. */
    std::uint32_t maxCount() const { return maxCount_; }

    /**
     * Hardware storage for tracking a page population, in bytes
     * (Section 6.3: two 8-bit counters per 4 KB page -> 16 bits per
     * page; one combined counter -> 8 bits).
     */
    static std::uint64_t storageBytes(std::uint64_t pages,
                                      std::uint32_t bits,
                                      bool split_read_write);

  private:
    std::uint32_t maxCount_;
    std::unordered_map<PageId, Counts> counters_;
};

/** Misra-Gries majority-element hot-page tracker (32 entries). */
class MeaTracker
{
  public:
    explicit MeaTracker(std::size_t entries = 32);

    /** Observe one access. */
    void onAccess(PageId page);

    /** Current candidate hot pages, highest count first. */
    std::vector<PageId> hotPages() const;

    /** Clear the map (MEA interval boundary). */
    void reset();

    /** Number of map entries (the hardware budget). */
    std::size_t capacity() const { return capacity_; }

    /** Storage cost in bytes (entries x (page id + counter)). */
    static std::uint64_t storageBytes(std::size_t entries);

  private:
    std::size_t capacity_;
    std::unordered_map<PageId, std::uint64_t> map_;
};

/** LRU model of the remap-table cache (64 KB in MemPod). */
class RemapCache
{
  public:
    /**
     * @param entries cached remap entries (64 KB / 8 B = 8192)
     * @param miss_penalty extra access latency on a miss, in cycles
     */
    explicit RemapCache(std::size_t entries = 8192,
                        Cycle miss_penalty = 24);

    /** Look up a page; returns the added latency (0 on hit). */
    Cycle lookup(PageId page);

    /** @{ @name Statistics */
    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    double hitRatio() const;
    /** @} */

    /** Storage cost in bytes (8 B per entry). */
    static std::uint64_t storageBytes(std::size_t entries);

  private:
    std::size_t capacity_;
    Cycle missPenalty_;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::list<PageId> lru_; ///< front = MRU
    std::unordered_map<PageId, std::list<PageId>::iterator> index_;
};

} // namespace ramp

#endif // RAMP_MIGRATION_COUNTERS_HH
