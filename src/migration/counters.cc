#include "migration/counters.hh"

#include <algorithm>

#include "common/logging.hh"

namespace ramp
{

double
FullCounterTable::Counts::wrRatio() const
{
    return static_cast<double>(writes) /
           static_cast<double>(std::max<std::uint32_t>(reads, 1));
}

FullCounterTable::FullCounterTable(std::uint32_t bits)
{
    if (bits == 0 || bits > 31)
        ramp_fatal("counter width must be in [1, 31] bits");
    maxCount_ = (1U << bits) - 1;
}

void
FullCounterTable::onAccess(PageId page, bool is_write)
{
    auto &counts = counters_[page];
    auto &field = is_write ? counts.writes : counts.reads;
    if (field < maxCount_)
        ++field; // saturating: no overflow (Section 6.3)
}

FullCounterTable::Counts
FullCounterTable::countsOf(PageId page) const
{
    const auto it = counters_.find(page);
    return it == counters_.end() ? Counts{} : it->second;
}

double
FullCounterTable::meanHotness() const
{
    if (counters_.empty())
        return 0.0;
    double sum = 0;
    for (const auto &[page, counts] : counters_)
        sum += counts.hotness();
    return sum / static_cast<double>(counters_.size());
}

double
FullCounterTable::meanWrRatio() const
{
    if (counters_.empty())
        return 0.0;
    double sum = 0;
    for (const auto &[page, counts] : counters_)
        sum += counts.wrRatio();
    return sum / static_cast<double>(counters_.size());
}

void
FullCounterTable::reset()
{
    counters_.clear();
}

std::uint64_t
FullCounterTable::storageBytes(std::uint64_t pages, std::uint32_t bits,
                               bool split_read_write)
{
    const std::uint64_t per_page = split_read_write ? 2 * bits : bits;
    return (pages * per_page + 7) / 8;
}

MeaTracker::MeaTracker(std::size_t entries)
    : capacity_(entries)
{
    if (entries == 0)
        ramp_fatal("MEA tracker needs at least one entry");
}

void
MeaTracker::onAccess(PageId page)
{
    const auto it = map_.find(page);
    if (it != map_.end()) {
        ++it->second;
        return;
    }
    if (map_.size() < capacity_) {
        map_.emplace(page, 1);
        return;
    }
    // Misra-Gries step: decrement everyone, drop zeros.
    for (auto entry = map_.begin(); entry != map_.end();) {
        if (--entry->second == 0)
            entry = map_.erase(entry);
        else
            ++entry;
    }
}

std::vector<PageId>
MeaTracker::hotPages() const
{
    std::vector<std::pair<PageId, std::uint64_t>> entries(
        map_.begin(), map_.end());
    std::sort(entries.begin(), entries.end(),
              [](const auto &a, const auto &b) {
                  if (a.second != b.second)
                      return a.second > b.second;
                  return a.first < b.first;
              });
    std::vector<PageId> pages;
    pages.reserve(entries.size());
    for (const auto &[page, count] : entries)
        pages.push_back(page);
    return pages;
}

void
MeaTracker::reset()
{
    map_.clear();
}

std::uint64_t
MeaTracker::storageBytes(std::size_t entries)
{
    // Page number (6 B covers 48-bit addressing) + 2 B counter.
    return entries * 8;
}

RemapCache::RemapCache(std::size_t entries, Cycle miss_penalty)
    : capacity_(entries), missPenalty_(miss_penalty)
{
    if (entries == 0)
        ramp_fatal("remap cache needs at least one entry");
}

Cycle
RemapCache::lookup(PageId page)
{
    const auto it = index_.find(page);
    if (it != index_.end()) {
        lru_.splice(lru_.begin(), lru_, it->second);
        ++hits_;
        return 0;
    }
    ++misses_;
    if (lru_.size() >= capacity_) {
        index_.erase(lru_.back());
        lru_.pop_back();
    }
    lru_.push_front(page);
    index_[page] = lru_.begin();
    return missPenalty_;
}

double
RemapCache::hitRatio() const
{
    const std::uint64_t total = hits_ + misses_;
    if (total == 0)
        return 0.0;
    return static_cast<double>(hits_) / static_cast<double>(total);
}

std::uint64_t
RemapCache::storageBytes(std::size_t entries)
{
    return entries * 8;
}

} // namespace ramp
