#include "migration/engine.hh"

#include <algorithm>

#include "common/logging.hh"
#include "eventlog/eventlog.hh"

namespace ramp
{

namespace
{

/** Ledger record pre-filled with a migration move's common fields. */
eventlog::EventRecord
moveRecord(eventlog::EventKind kind, eventlog::PolicyId policy,
           Cycle now, PageId page)
{
    eventlog::EventRecord record;
    record.kind = kind;
    record.policy = policy;
    record.epoch = now;
    record.page = page;
    switch (kind) {
      case eventlog::EventKind::Promote:
      case eventlog::EventKind::SwapIn:
        record.src = eventlog::Tier::Ddr;
        record.dst = eventlog::Tier::Hbm;
        break;
      default:
        record.src = eventlog::Tier::Hbm;
        record.dst = eventlog::Tier::Ddr;
        break;
    }
    return record;
}

} // namespace

const char *
regionActionName(RegionAction action)
{
    switch (action) {
      case RegionAction::None: return "none";
      case RegionAction::Promote: return "promote";
      case RegionAction::Demote: return "demote";
      case RegionAction::Pin: return "pin";
      case RegionAction::Place: return "place";
    }
    return "?";
}

Cycle
MigrationEngine::remapPenalty(PageId page)
{
    (void)page;
    return 0;
}

void
MigrationEngine::onFault(PageId page, bool uncorrected, Cycle now)
{
    (void)page;
    (void)uncorrected;
    (void)now;
}

// ---------------------------------------------------------------
// PerfFocusedMigration
// ---------------------------------------------------------------

PerfFocusedMigration::PerfFocusedMigration(Cycle interval_cycles,
                                           std::uint32_t cap_pages)
    : interval_(interval_cycles), capPages_(cap_pages)
{
    if (interval_cycles == 0 || cap_pages == 0)
        ramp_fatal("migration interval and cap must be positive");
}

void
PerfFocusedMigration::onAccess(PageId page, bool is_write,
                               MemoryId mem)
{
    (void)mem;
    counters_.onAccess(page, is_write);
}

MigrationDecision
PerfFocusedMigration::onInterval(Cycle now, const PlacementMap &map)
{
    (void)now;
    MigrationDecision decision;
    const double mean = counters_.meanHotness();

    // Hot DDR pages above the dynamic mean threshold are candidates
    // for promotion (Section 6.1, "Hotness Threshold").
    std::vector<std::pair<PageId, std::uint32_t>> candidates;
    for (const auto &[page, counts] : counters_.touched()) {
        if (map.memoryOf(page) == MemoryId::DDR &&
            static_cast<double>(counts.hotness()) > mean &&
            !map.isPinned(page))
            candidates.emplace_back(page, counts.hotness());
    }
    std::sort(candidates.begin(), candidates.end(),
              [](const auto &a, const auto &b) {
                  if (a.second != b.second)
                      return a.second > b.second;
                  return a.first < b.first;
              });

    // HBM victims: coldest first (untouched pages count zero).
    std::vector<std::pair<PageId, std::uint32_t>> victims;
    for (const PageId page : map.hbmPages()) {
        if (!map.isPinned(page))
            victims.emplace_back(page,
                                 counters_.countsOf(page).hotness());
    }
    std::sort(victims.begin(), victims.end(),
              [](const auto &a, const auto &b) {
                  if (a.second != b.second)
                      return a.second < b.second;
                  return a.first < b.first;
              });

    std::size_t candidate_idx = 0;
    std::uint64_t free_frames = map.hbmFreePages();
    while (candidate_idx < candidates.size() && free_frames > 0 &&
           decision.pagesMoved() < capPages_) {
        decision.promotions.push_back(
            candidates[candidate_idx++].first);
        --free_frames;
    }
    for (std::size_t v = 0;
         candidate_idx < candidates.size() && v < victims.size() &&
         decision.pagesMoved() + 1 < capPages_;
         ++v, ++candidate_idx) {
        // Only exchange when the newcomer is genuinely hotter.
        if (candidates[candidate_idx].second <= victims[v].second)
            break;
        decision.swaps.emplace_back(victims[v].first,
                                    candidates[candidate_idx].first);
    }

    RAMP_EVLOG({
        using eventlog::EventKind;
        const auto policy = eventlog::PolicyId::PerfMigration;
        const auto thresh = static_cast<float>(mean);
        const auto scored = [&](EventKind kind, PageId page,
                                PageId partner) {
            auto record = moveRecord(kind, policy, now, page);
            record.partner = partner;
            const auto counts = counters_.countsOf(page);
            record.hotness = static_cast<float>(counts.hotness());
            record.wrRatio = static_cast<float>(counts.wrRatio());
            record.threshHot = thresh;
            eventlog::emit(record);
        };
        for (const PageId page : decision.promotions)
            scored(EventKind::Promote, page, invalidPage);
        for (const auto &[victim, incoming] : decision.swaps) {
            scored(EventKind::SwapOut, victim, incoming);
            scored(EventKind::SwapIn, incoming, victim);
        }
    });

    counters_.reset();
    return decision;
}

std::uint64_t
PerfFocusedMigration::hardwareCostBytes(std::uint64_t total_pages,
                                        std::uint64_t hbm_pages) const
{
    (void)hbm_pages;
    // One combined 8-bit counter per page in the system.
    return FullCounterTable::storageBytes(total_pages, 8, false);
}

// ---------------------------------------------------------------
// FcReliabilityMigration
// ---------------------------------------------------------------

FcReliabilityMigration::FcReliabilityMigration(Cycle interval_cycles,
                                               std::uint32_t cap_pages)
    : interval_(interval_cycles), capPages_(cap_pages)
{
    if (interval_cycles == 0 || cap_pages == 0)
        ramp_fatal("migration interval and cap must be positive");
}

void
FcReliabilityMigration::onAccess(PageId page, bool is_write,
                                 MemoryId mem)
{
    (void)mem;
    counters_.onAccess(page, is_write);
}

MigrationDecision
FcReliabilityMigration::onInterval(Cycle now, const PlacementMap &map)
{
    (void)now;
    MigrationDecision decision;
    const double mean_hot = counters_.meanHotness();
    const double mean_wr = counters_.meanWrRatio();
    constexpr double riskMargin = 1.0;

    // A page is low-risk when its Wr ratio is above the interval
    // mean (many writes per read => short ACE intervals, 5.3).
    const auto low_risk = [&](const FullCounterTable::Counts &c) {
        return c.wrRatio() >= mean_wr;
    };
    const auto hot = [&](const FullCounterTable::Counts &c) {
        return static_cast<double>(c.hotness()) > mean_hot;
    };

    // Fill set: hot AND low-risk DDR pages, hottest first.
    std::vector<std::pair<PageId, std::uint32_t>> fills;
    for (const auto &[page, counts] : counters_.touched()) {
        if (map.memoryOf(page) == MemoryId::DDR && hot(counts) &&
            low_risk(counts) && !map.isPinned(page))
            fills.emplace_back(page, counts.hotness());
    }
    std::sort(fills.begin(), fills.end(),
              [](const auto &a, const auto &b) {
                  if (a.second != b.second)
                      return a.second > b.second;
                  return a.first < b.first;
              });

    // Evict set: HBM pages that are cold OR high-risk; order by
    // badness so the most exposed pages leave first. High-risk
    // pages leave even without a fill partner. The risk test uses a
    // clear margin below the mean so near-uniform populations (e.g.
    // cactusADM's grid functions) are not half-evicted every
    // interval by the mean split.
    struct Victim
    {
        PageId page;
        bool highRisk;
        std::uint32_t hotness;
    };
    std::vector<Victim> victims;
    for (const PageId page : map.hbmPages()) {
        if (map.isPinned(page))
            continue;
        const auto counts = counters_.countsOf(page);
        const bool risky = faulted_.count(page) != 0 ||
                           (counts.hotness() > 0 &&
                            counts.wrRatio() < riskMargin * mean_wr);
        const bool cold = !hot(counts);
        if (risky || cold)
            victims.push_back({page, risky, counts.hotness()});
    }
    std::sort(victims.begin(), victims.end(),
              [](const Victim &a, const Victim &b) {
                  if (a.highRisk != b.highRisk)
                      return a.highRisk > b.highRisk;
                  if (a.hotness != b.hotness)
                      return a.hotness < b.hotness;
                  return a.page < b.page;
              });

    std::size_t fill_idx = 0;
    std::uint64_t free_frames = map.hbmFreePages();
    while (fill_idx < fills.size() && free_frames > 0 &&
           decision.pagesMoved() < capPages_) {
        decision.promotions.push_back(fills[fill_idx++].first);
        --free_frames;
    }
    for (const auto &victim : victims) {
        if (decision.pagesMoved() + 1 >= capPages_)
            break;
        if (fill_idx < fills.size()) {
            decision.swaps.emplace_back(victim.page,
                                        fills[fill_idx++].first);
        } else if (victim.highRisk) {
            decision.evictions.push_back(victim.page);
        }
    }

    RAMP_EVLOG({
        using eventlog::EventKind;
        const auto policy = eventlog::PolicyId::FcMigration;
        const auto scored = [&](EventKind kind, PageId page,
                                PageId partner) {
            auto record = moveRecord(kind, policy, now, page);
            record.partner = partner;
            const auto counts = counters_.countsOf(page);
            record.hotness = static_cast<float>(counts.hotness());
            record.wrRatio = static_cast<float>(counts.wrRatio());
            record.quadrant =
                eventlog::quadrantOf(hot(counts), low_risk(counts));
            record.threshHot = static_cast<float>(mean_hot);
            record.threshRisk = static_cast<float>(mean_wr);
            eventlog::emit(record);
        };
        for (const PageId page : decision.promotions)
            scored(EventKind::Promote, page, invalidPage);
        for (const auto &[victim, incoming] : decision.swaps) {
            scored(EventKind::SwapOut, victim, incoming);
            scored(EventKind::SwapIn, incoming, victim);
        }
        for (const PageId page : decision.evictions)
            scored(EventKind::Evict, page, invalidPage);
    });

    counters_.reset();
    return decision;
}

void
FcReliabilityMigration::onFault(PageId page, bool uncorrected,
                                Cycle now)
{
    (void)uncorrected;
    (void)now;
    // Any strike — correctable burst or uncorrected — makes the
    // page permanently high-risk to the classifier.
    faulted_.insert(page);
}

std::uint64_t
FcReliabilityMigration::hardwareCostBytes(std::uint64_t total_pages,
                                          std::uint64_t hbm_pages) const
{
    (void)hbm_pages;
    // Split 8-bit read + 8-bit write counters per page (Section 6.3).
    return FullCounterTable::storageBytes(total_pages, 8, true);
}

// ---------------------------------------------------------------
// CrossCounterMigration
// ---------------------------------------------------------------

CrossCounterMigration::CrossCounterMigration(
    Cycle mea_interval_cycles, std::uint32_t fc_per_mea,
    std::size_t mea_entries, std::uint32_t promo_cap_pages,
    std::uint32_t fc_evict_cap_pages)
    : meaInterval_(mea_interval_cycles), fcPerMea_(fc_per_mea),
      promoCapPages_(promo_cap_pages),
      fcEvictCapPages_(fc_evict_cap_pages), mea_(mea_entries)
{
    if (mea_interval_cycles == 0 || fc_per_mea == 0)
        ramp_fatal("cross-counter intervals must be positive");
    if (promo_cap_pages == 0 || fc_evict_cap_pages == 0)
        ramp_fatal("cross-counter caps must be positive");
}

void
CrossCounterMigration::onAccess(PageId page, bool is_write,
                                MemoryId mem)
{
    // The performance unit tracks every access (recency); the
    // reliability unit's Full Counters exist only for HBM pages
    // (Section 6.4.2's cost reduction).
    mea_.onAccess(page);
    if (mem == MemoryId::HBM)
        riskCounters_.onAccess(page, is_write);
}

Cycle
CrossCounterMigration::remapPenalty(PageId page)
{
    return remap_.lookup(page);
}

MigrationDecision
CrossCounterMigration::onInterval(Cycle now, const PlacementMap &map)
{
    (void)now;
    MigrationDecision decision;

    ++meaTick_;
    const bool fc_boundary = meaTick_ % fcPerMea_ == 0;

    if (fc_boundary) {
        // Reliability unit: classify HBM pages; high-risk and cold
        // pages leave HBM (coarse-grained risk mitigation).
        const double mean_hot = riskCounters_.meanHotness();
        const double mean_wr = riskCounters_.meanWrRatio();
        pendingEvictions_.clear();
        for (const PageId page : map.hbmPages()) {
            if (map.isPinned(page) || promotedThisRound_.count(page))
                continue;
            const auto counts = riskCounters_.countsOf(page);
            constexpr double riskMargin = 0.5;
            const bool risky =
                faulted_.count(page) != 0 ||
                (counts.hotness() > 0 &&
                 counts.wrRatio() < riskMargin * mean_wr);
            const bool cold =
                static_cast<double>(counts.hotness()) <= mean_hot;
            if (risky &&
                decision.evictions.size() < fcEvictCapPages_) {
                decision.evictions.push_back(page);
                RAMP_EVLOG({
                    auto record = moveRecord(
                        eventlog::EventKind::Evict,
                        eventlog::PolicyId::CcMigration, now, page);
                    record.hotness =
                        static_cast<float>(counts.hotness());
                    record.wrRatio =
                        static_cast<float>(counts.wrRatio());
                    record.quadrant = eventlog::quadrantOf(
                        !cold, !risky);
                    record.threshHot =
                        static_cast<float>(mean_hot);
                    record.threshRisk =
                        static_cast<float>(riskMargin * mean_wr);
                    eventlog::emit(record);
                });
            } else if (cold || risky)
                pendingEvictions_.push_back(page);
        }
        riskCounters_.reset();
        promotedThisRound_.clear();
    }

    // Performance unit: promote up to the budget's worth of hot
    // DDR-resident pages every MEA interval. Victims come from the
    // reliability unit's pending list when one exists; otherwise the
    // unit keeps migrating (Section 6.4.3) by swapping against a
    // rotating HBM slot, MemPod-style.
    std::uint64_t free_frames =
        map.hbmFreePages() + decision.evictions.size();
    std::uint32_t promoted = 0;
    std::vector<PageId> rotation;
    // Pages already leaving HBM this boundary must not be reused as
    // swap victims; the pending list may also hold stale entries
    // from an earlier boundary (pages that have left HBM since).
    std::unordered_set<PageId> used(decision.evictions.begin(),
                                    decision.evictions.end());
    auto pending_victim = [&]() {
        while (!pendingEvictions_.empty()) {
            const PageId candidate = pendingEvictions_.back();
            pendingEvictions_.pop_back();
            if (map.memoryOf(candidate) == MemoryId::HBM &&
                !map.isPinned(candidate) && !used.count(candidate) &&
                !promotedThisRound_.count(candidate))
                return candidate;
        }
        return invalidPage;
    };
    for (const PageId page : mea_.hotPages()) {
        if (promoted >= promoCapPages_)
            break;
        if (map.memoryOf(page) != MemoryId::DDR || map.isPinned(page))
            continue;
        PageId pending = invalidPage;
        if (free_frames > 0) {
            decision.promotions.push_back(page);
            --free_frames;
            RAMP_EVLOG({
                // MEA tracks recency, not counts: the promoted
                // page's hotness is genuinely unmeasured.
                eventlog::emit(moveRecord(
                    eventlog::EventKind::Promote,
                    eventlog::PolicyId::CcMigration, now, page));
            });
        } else if ((pending = pending_victim()) != invalidPage) {
            decision.swaps.emplace_back(pending, page);
            used.insert(pending);
            RAMP_EVLOG({
                auto out = moveRecord(
                    eventlog::EventKind::SwapOut,
                    eventlog::PolicyId::CcMigration, now, pending);
                out.partner = page;
                out.hotness = static_cast<float>(
                    riskCounters_.countsOf(pending).hotness());
                eventlog::emit(out);
                auto in = moveRecord(
                    eventlog::EventKind::SwapIn,
                    eventlog::PolicyId::CcMigration, now, page);
                in.partner = pending;
                eventlog::emit(in);
            });
        } else {
            if (rotation.empty())
                rotation = map.hbmPages();
            // Sample a handful of rotating slots and evict the one
            // the risk counters have seen least — a cheap cold
            // estimate that avoids displacing known-hot pages.
            PageId victim = invalidPage;
            std::uint32_t victim_hotness = UINT32_MAX;
            std::size_t sampled = 0;
            for (std::size_t tries = 0;
                 tries < rotation.size() && sampled < 8; ++tries) {
                if (rotationCursor_ >= rotation.size())
                    rotationCursor_ = 0;
                const PageId candidate =
                    rotation[rotationCursor_++];
                if (map.isPinned(candidate) ||
                    used.count(candidate) ||
                    map.memoryOf(candidate) != MemoryId::HBM ||
                    promotedThisRound_.count(candidate))
                    continue;
                ++sampled;
                const std::uint32_t hotness =
                    riskCounters_.countsOf(candidate).hotness();
                if (hotness < victim_hotness) {
                    victim = candidate;
                    victim_hotness = hotness;
                }
                if (hotness == 0)
                    break; // cannot do better than untouched
            }
            if (victim == invalidPage)
                break; // every slot pinned or freshly promoted
            decision.swaps.emplace_back(victim, page);
            used.insert(victim);
            RAMP_EVLOG({
                auto out = moveRecord(
                    eventlog::EventKind::SwapOut,
                    eventlog::PolicyId::CcMigration, now, victim);
                out.partner = page;
                out.hotness = static_cast<float>(victim_hotness);
                eventlog::emit(out);
                auto in = moveRecord(
                    eventlog::EventKind::SwapIn,
                    eventlog::PolicyId::CcMigration, now, page);
                in.partner = victim;
                eventlog::emit(in);
            });
        }
        promotedThisRound_.insert(page);
        ++promoted;
    }
    mea_.reset();
    return decision;
}

void
CrossCounterMigration::onFault(PageId page, bool uncorrected,
                               Cycle now)
{
    (void)uncorrected;
    (void)now;
    faulted_.insert(page);
}

std::uint64_t
CrossCounterMigration::hardwareCostBytes(std::uint64_t total_pages,
                                         std::uint64_t hbm_pages) const
{
    (void)total_pages;
    // Split 8-bit R/W risk counters for HBM pages only, the MEA map,
    // and the remap-table cache (Section 6.4.2: 512 KB + ~100 KB +
    // 64 KB = 676 KB at paper scale).
    const std::uint64_t mea_unit = 100 * 1024;
    return FullCounterTable::storageBytes(hbm_pages, 8, true) +
           mea_unit + RemapCache::storageBytes(8192);
}

} // namespace ramp
