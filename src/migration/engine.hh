/**
 * @file
 * Dynamic migration engines (paper Section 6).
 *
 * Three schemes share one interface:
 *  - PerfFocusedMigration: Meswani-style interval migration on raw
 *    access counts with a dynamic mean-hotness threshold (6.1). This
 *    is the state-of-the-art baseline the reliability-aware schemes
 *    are normalised against.
 *  - FcReliabilityMigration: Full Counters split into read/write
 *    halves; HBM keeps pages that are hot AND low-risk (6.2).
 *  - CrossCounterMigration: MEA performance unit promoting a few hot
 *    pages every fine interval + a Full-Counter reliability unit
 *    evicting risky/cold HBM pages every coarse interval (6.4).
 */

#ifndef RAMP_MIGRATION_ENGINE_HH
#define RAMP_MIGRATION_ENGINE_HH

#include <cstdint>
#include <memory>
#include <unordered_set>
#include <vector>

#include "common/types.hh"
#include "migration/counters.hh"
#include "placement/map.hh"

namespace ramp
{

/** What a scheme asks to happen to a whole region. */
enum class RegionAction : std::uint8_t
{
    None,
    Promote, ///< move the span DDR -> HBM
    Demote,  ///< move the span HBM -> DDR
    Pin,     ///< promote, then pin where it lands
    Place,   ///< initial bulk placement of the span
};

/** Stable lower-case spelling ("promote", "demote", ...). */
const char *regionActionName(RegionAction action);

/**
 * One region-granularity operation: a whole contiguous span moves
 * (or pins) as a single batch through PlacementMap::moveRange.
 */
struct RegionOp
{
    /** First page of the span. */
    PageId first = 0;

    /** Page count of the span. */
    std::uint64_t pages = 0;

    /** Region index at decision time (for the ledger). */
    std::uint32_t region = 0;

    RegionAction action = RegionAction::None;

    /** @{ @name Score inputs at decision time (for the ledger) */
    float density = 0;
    float avf = 0;
    /** @} */

    /** @{ @name Thresholds the decision compared against */
    float threshHot = 0;
    float threshRisk = 0;
    /** @} */
};

/** Page moves an engine requests at an interval boundary. */
struct MigrationDecision
{
    /** (HBM victim, DDR fill) exchanges. */
    std::vector<std::pair<PageId, PageId>> swaps;

    /** Unpaired HBM -> DDR moves (risk mitigation). */
    std::vector<PageId> evictions;

    /** Unpaired DDR -> HBM moves into free frames. */
    std::vector<PageId> promotions;

    /**
     * Region-granularity batch ops (empty in page mode). Applied in
     * order after the page lists; the emitting scheme engine orders
     * demotions first so they free capacity for the promotions.
     */
    std::vector<RegionOp> regionOps;

    /** Total pages that cross the HMA (upper bound for regions). */
    std::uint64_t pagesMoved() const
    {
        std::uint64_t moved = 2 * swaps.size() + evictions.size() +
                              promotions.size();
        for (const RegionOp &op : regionOps)
            if (op.action != RegionAction::None)
                moved += op.pages;
        return moved;
    }

    bool empty() const
    {
        return swaps.empty() && evictions.empty() &&
               promotions.empty() && regionOps.empty();
    }
};

/** Interface the HMA simulator drives. */
class MigrationEngine
{
  public:
    virtual ~MigrationEngine() = default;

    /** Scheme name for reports. */
    virtual const char *name() const = 0;

    /** Observe one demand access (before it is performed). */
    virtual void onAccess(PageId page, bool is_write,
                          MemoryId mem) = 0;

    /** Finest interval at which onInterval must be called. */
    virtual Cycle interval() const = 0;

    /** Interval boundary: decide migrations for this boundary. */
    virtual MigrationDecision
    onInterval(Cycle now, const PlacementMap &map) = 0;

    /** Extra per-access latency (remap-table lookups); default 0. */
    virtual Cycle remapPenalty(PageId page);

    /**
     * An online fault landed on the page (faults/injector.hh). The
     * default ignores it — the perf-focused baseline is deliberately
     * reliability-blind; the reliability-aware engines mark the page
     * as permanently high-risk so their classifiers see it.
     */
    virtual void onFault(PageId page, bool uncorrected, Cycle now);

    /**
     * Tracking-hardware storage in bytes for a system with the given
     * page populations (Sections 6.3 / 6.4.2 use the paper's
     * unscaled 4.25M total / 262K HBM pages).
     */
    virtual std::uint64_t
    hardwareCostBytes(std::uint64_t total_pages,
                      std::uint64_t hbm_pages) const = 0;
};

/** Performance-focused interval migration (Section 6.1). */
class PerfFocusedMigration : public MigrationEngine
{
  public:
    /**
     * @param interval_cycles migration interval
     * @param cap_pages page-move budget per interval (bandwidth
     *                  guard; see SystemConfig::fcMigrationCapPages)
     */
    explicit PerfFocusedMigration(Cycle interval_cycles,
                                  std::uint32_t cap_pages = 256);

    const char *name() const override { return "perf-migration"; }
    void onAccess(PageId page, bool is_write, MemoryId mem) override;
    Cycle interval() const override { return interval_; }
    MigrationDecision onInterval(Cycle now,
                                 const PlacementMap &map) override;
    std::uint64_t
    hardwareCostBytes(std::uint64_t total_pages,
                      std::uint64_t hbm_pages) const override;

  private:
    Cycle interval_;
    std::uint32_t capPages_;
    FullCounterTable counters_;
};

/** Reliability-aware Full-Counter migration (Section 6.2). */
class FcReliabilityMigration : public MigrationEngine
{
  public:
    /** See PerfFocusedMigration for the cap semantics. */
    explicit FcReliabilityMigration(Cycle interval_cycles,
                                    std::uint32_t cap_pages = 256);

    const char *name() const override { return "fc-migration"; }
    void onAccess(PageId page, bool is_write, MemoryId mem) override;
    Cycle interval() const override { return interval_; }
    MigrationDecision onInterval(Cycle now,
                                 const PlacementMap &map) override;
    void onFault(PageId page, bool uncorrected, Cycle now) override;
    std::uint64_t
    hardwareCostBytes(std::uint64_t total_pages,
                      std::uint64_t hbm_pages) const override;

  private:
    Cycle interval_;
    std::uint32_t capPages_;
    FullCounterTable counters_;
    std::unordered_set<PageId> faulted_; ///< struck pages stay risky
};

/** Cross-Counter migration: MEA + HBM risk counters (Section 6.4). */
class CrossCounterMigration : public MigrationEngine
{
  public:
    /**
     * @param mea_interval_cycles fine performance-unit interval
     * @param fc_per_mea coarse reliability interval, in MEA intervals
     * @param mea_entries MEA map size (32 in MemPod)
     * @param promo_cap_pages promotions per MEA interval
     * @param fc_evict_cap_pages risk evictions per FC boundary
     */
    CrossCounterMigration(Cycle mea_interval_cycles,
                          std::uint32_t fc_per_mea,
                          std::size_t mea_entries = 32,
                          std::uint32_t promo_cap_pages = 8,
                          std::uint32_t fc_evict_cap_pages = 256);

    const char *name() const override { return "cc-migration"; }
    void onAccess(PageId page, bool is_write, MemoryId mem) override;
    Cycle interval() const override { return meaInterval_; }
    MigrationDecision onInterval(Cycle now,
                                 const PlacementMap &map) override;
    Cycle remapPenalty(PageId page) override;
    void onFault(PageId page, bool uncorrected, Cycle now) override;
    std::uint64_t
    hardwareCostBytes(std::uint64_t total_pages,
                      std::uint64_t hbm_pages) const override;

    /** Remap-cache statistics (for reports). */
    const RemapCache &remapCache() const { return remap_; }

  private:
    Cycle meaInterval_;
    std::uint32_t fcPerMea_;
    std::uint32_t promoCapPages_;
    std::uint32_t fcEvictCapPages_;
    std::uint32_t meaTick_ = 0;
    std::size_t rotationCursor_ = 0;
    MeaTracker mea_;
    FullCounterTable riskCounters_; ///< HBM-resident pages only
    RemapCache remap_;
    std::vector<PageId> pendingEvictions_; ///< high-risk HBM pages
    std::unordered_set<PageId> promotedThisRound_;
    std::unordered_set<PageId> faulted_; ///< struck pages stay risky
};

} // namespace ramp

#endif // RAMP_MIGRATION_ENGINE_HH
