/**
 * @file
 * ramp-profile-v1 reader, views, and the profile diff.
 *
 * The profiler (src/prof) writes self-describing profile documents;
 * this is the matching analysis side, used by tools/ramp_prof and
 * the tests. Three views render a loaded document:
 *
 *  - the top table (self-cycle ranking — "where do cycles go"),
 *  - the tree view (indented phase hierarchy with totals),
 *  - the calls view (phase paths + call counts only).
 *
 * The calls view deliberately omits cycles: for a deterministic
 * workload call counts are schedule-independent, so two runs at any
 * --jobs render byte-identical calls views — the invariance CI
 * checks — while raw cycle counts always carry timing noise.
 *
 * diffProfiles() joins two documents by phase path and reports
 * per-phase self-cycle deltas, flagging those that moved beyond a
 * noise threshold. It is the measurement gate of the hot-path
 * optimization campaign: every step is judged by its profile diff
 * against the previous commit's.
 */

#ifndef RAMP_PERF_PROF_REPORT_HH
#define RAMP_PERF_PROF_REPORT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "perf/json.hh"

namespace ramp::perf
{

/** One phase record parsed back from a profile document. */
struct ProfilePhase
{
    std::string path;
    std::string name;
    unsigned depth = 0;
    std::uint64_t calls = 0;
    std::uint64_t totalCycles = 0;
    std::uint64_t selfCycles = 0;

    /** PMU aggregates; pmuCalls == 0 means TSC-only. */
    std::uint64_t pmuCalls = 0;
    std::uint64_t pmuInstructions = 0;
    std::uint64_t pmuLlcMisses = 0;
    std::uint64_t pmuBranchMisses = 0;
    double ipc = 0;
    double llcMissesPerKiloInstruction = 0;
};

/** One parsed ramp-profile-v1 document. */
struct ProfileDoc
{
    std::string tool;
    unsigned jobs = 0;
    std::string cpuModel;
    double tscHz = 0;
    bool pmuAvailable = false;

    /** Phase records in document (path-sorted) order. */
    std::vector<ProfilePhase> phases;
};

/**
 * Parse a profile document from a JSON tree. False (with `error`
 * set) on schema mismatch or missing fields.
 */
bool parseProfileDoc(const JsonValue &json, ProfileDoc &doc,
                     std::string &error);

/** Load and parse a profile file. */
bool loadProfileDoc(const std::string &path, ProfileDoc &doc,
                    std::string &error);

/**
 * The top-self-cycles table: up to `top_n` phases ranked by self
 * cycles (ties broken by path), with cycle shares, per-call costs,
 * and PMU-derived IPC / LLC MPKI where sampled.
 */
std::string renderTopTable(const ProfileDoc &doc,
                           std::size_t top_n);

/** The indented phase-tree view (document order). */
std::string renderTree(const ProfileDoc &doc);

/**
 * The structural view: one `path calls` line per phase, document
 * order. Byte-identical across runs/--jobs for deterministic
 * workloads.
 */
std::string renderCalls(const ProfileDoc &doc);

/** One phase's self-cycle delta between two profiles. */
struct PhaseDelta
{
    std::string path;

    /** Self cycles on each side (0 when the phase is absent). */
    std::uint64_t baseSelf = 0;
    std::uint64_t candSelf = 0;

    /** Present on that side? (A phase can appear or disappear.) */
    bool inBase = false;
    bool inCand = false;

    /** Relative change in percent; +inf when baseSelf == 0. */
    double deltaPct = 0;

    /** |delta| beyond the threshold and the cycle floor. */
    bool significant = false;

    /** significant and candidate is slower. */
    bool regressed = false;
};

/**
 * Join two profiles by phase path (union of both sides) and
 * compute per-phase self-cycle deltas. A delta is significant when
 * it exceeds `threshold_pct` percent of the baseline AND the
 * absolute cycle change exceeds `min_cycles` (the noise floor that
 * keeps sub-microsecond phases from flapping the gate).
 */
std::vector<PhaseDelta>
diffProfiles(const ProfileDoc &base, const ProfileDoc &cand,
             double threshold_pct, std::uint64_t min_cycles);

/** The diff rendered as a verdict table (all phases, sorted by
 * |cycle delta| descending). */
std::string renderDiffTable(const ProfileDoc &base,
                            const ProfileDoc &cand,
                            const std::vector<PhaseDelta> &deltas);

} // namespace ramp::perf

#endif // RAMP_PERF_PROF_REPORT_HH
