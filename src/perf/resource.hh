/**
 * @file
 * Process resource accounting: one-shot readings and a background
 * sampler.
 *
 * readResourceUsage() combines getrusage(RUSAGE_SELF) with
 * /proc/self/status (VmRSS/VmHWM), so it reports both the CPU split
 * and the live/peak resident set. ResourceSampler runs a background
 * thread that takes a reading every period, publishes it as
 * telemetry gauges (proc.rss_bytes, proc.peak_rss_bytes,
 * proc.cpu_user_seconds, proc.cpu_sys_seconds) and a Chrome counter
 * event (an RSS-over-time track in the trace viewer), and folds the
 * RSS series into a RunningStat for the BENCH report. stop() is
 * idempotent and joins the thread promptly (condition-variable
 * sleep, not a busy wait), so a SIGINT-cancelled campaign still
 * winds the sampler down cleanly before the harness flushes its
 * BENCH file.
 */

#ifndef RAMP_PERF_RESOURCE_HH
#define RAMP_PERF_RESOURCE_HH

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>

#include "common/stats.hh"

namespace ramp::perf
{

/** One point-in-time reading of the process's resource usage. */
struct ResourceUsage
{
    /** Live resident set in bytes (0 when /proc is unavailable). */
    std::uint64_t rssBytes = 0;

    /** Peak resident set in bytes (VmHWM, ru_maxrss fallback). */
    std::uint64_t peakRssBytes = 0;

    /** User-mode CPU time consumed so far, in seconds. */
    double userCpuSeconds = 0;

    /** Kernel-mode CPU time consumed so far, in seconds. */
    double sysCpuSeconds = 0;

    /** Major page faults (required I/O) so far. */
    std::uint64_t majorFaults = 0;

    /** Minor page faults (no I/O) so far. */
    std::uint64_t minorFaults = 0;
};

/** Read the calling process's usage (getrusage + /proc). */
ResourceUsage readResourceUsage();

/** What a sampling window observed, for the BENCH report. */
struct ResourceSummary
{
    /** Readings taken (>= 1 once the sampler stopped). */
    std::size_t samples = 0;

    /** Largest peak-RSS reading seen, in bytes. */
    std::uint64_t peakRssBytes = 0;

    /** Mean/min/max of the live-RSS series, in bytes. */
    RunningStat rssSeries;

    /** CPU split of the final reading. */
    double userCpuSeconds = 0;
    double sysCpuSeconds = 0;
    std::uint64_t majorFaults = 0;
    std::uint64_t minorFaults = 0;
};

/** Background thread sampling the process at a fixed period. */
class ResourceSampler
{
  public:
    /** Start sampling immediately. @param period time between reads. */
    explicit ResourceSampler(std::chrono::milliseconds period =
                                 std::chrono::milliseconds(50));

    /** Stops and joins (idempotent). */
    ~ResourceSampler();

    ResourceSampler(const ResourceSampler &) = delete;
    ResourceSampler &operator=(const ResourceSampler &) = delete;

    /**
     * Stop the sampling thread and join it. Takes one final reading
     * so the summary is never empty, even when the campaign ended
     * inside the first period. Idempotent; safe after SIGINT.
     */
    void stop();

    /** The window observed so far (final once stop() returned). */
    ResourceSummary summary() const;

  private:
    void loop();

    /** Take one reading and fold it into the summary. */
    void sampleOnce();

    std::chrono::milliseconds period_;
    mutable std::mutex mutex_;
    std::condition_variable wake_;
    ResourceSummary summary_;
    bool stop_ = false;
    std::thread thread_;
};

} // namespace ramp::perf

#endif // RAMP_PERF_RESOURCE_HH
