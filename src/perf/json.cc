#include "perf/json.hh"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace ramp::perf
{

namespace
{

/** Cursor over the document with position-tagged failure. */
struct Parser
{
    std::string_view text;
    std::size_t pos = 0;
    std::string error;

    bool fail(const std::string &what)
    {
        if (error.empty())
            error = what + " at offset " + std::to_string(pos);
        return false;
    }

    void skipWs()
    {
        while (pos < text.size() &&
               std::isspace(static_cast<unsigned char>(text[pos])))
            ++pos;
    }

    bool atEnd()
    {
        skipWs();
        return pos >= text.size();
    }

    char peek()
    {
        skipWs();
        return pos < text.size() ? text[pos] : '\0';
    }

    bool consume(char c)
    {
        if (peek() != c)
            return fail(std::string("expected '") + c + "'");
        ++pos;
        return true;
    }

    bool literal(std::string_view word)
    {
        if (text.substr(pos, word.size()) != word)
            return fail("unrecognised token");
        pos += word.size();
        return true;
    }

    /** Parse exactly four hex digits of a \\uXXXX escape. */
    bool hexQuad(unsigned long &code)
    {
        if (pos + 4 > text.size())
            return fail("truncated \\u escape");
        code = 0;
        for (int i = 0; i < 4; ++i) {
            const char c = text[pos + i];
            unsigned digit;
            if (c >= '0' && c <= '9')
                digit = static_cast<unsigned>(c - '0');
            else if (c >= 'a' && c <= 'f')
                digit = static_cast<unsigned>(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F')
                digit = static_cast<unsigned>(c - 'A' + 10);
            else
                return fail("bad \\u escape");
            code = (code << 4) | digit;
        }
        pos += 4;
        return true;
    }

    /** Append a Unicode scalar value as UTF-8. */
    static void appendUtf8(std::string &out, unsigned long code)
    {
        if (code < 0x80) {
            out.push_back(static_cast<char>(code));
        } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xc0 | (code >> 6)));
            out.push_back(
                static_cast<char>(0x80 | (code & 0x3f)));
        } else if (code < 0x10000) {
            out.push_back(static_cast<char>(0xe0 | (code >> 12)));
            out.push_back(
                static_cast<char>(0x80 | ((code >> 6) & 0x3f)));
            out.push_back(
                static_cast<char>(0x80 | (code & 0x3f)));
        } else {
            out.push_back(static_cast<char>(0xf0 | (code >> 18)));
            out.push_back(
                static_cast<char>(0x80 | ((code >> 12) & 0x3f)));
            out.push_back(
                static_cast<char>(0x80 | ((code >> 6) & 0x3f)));
            out.push_back(
                static_cast<char>(0x80 | (code & 0x3f)));
        }
    }

    bool parseString(std::string &out)
    {
        if (!consume('"'))
            return false;
        out.clear();
        while (pos < text.size()) {
            const char c = text[pos++];
            if (c == '"')
                return true;
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            if (pos >= text.size())
                break;
            const char esc = text[pos++];
            switch (esc) {
              case '"': out.push_back('"'); break;
              case '\\': out.push_back('\\'); break;
              case '/': out.push_back('/'); break;
              case 'b': out.push_back('\b'); break;
              case 'f': out.push_back('\f'); break;
              case 'n': out.push_back('\n'); break;
              case 'r': out.push_back('\r'); break;
              case 't': out.push_back('\t'); break;
              case 'u': {
                  unsigned long code = 0;
                  if (!hexQuad(code))
                      return false;
                  if (code >= 0xd800 && code <= 0xdbff) {
                      // High surrogate: a low surrogate must
                      // follow for a valid supplementary-plane
                      // character.
                      if (pos + 2 > text.size() ||
                          text[pos] != '\\' || text[pos + 1] != 'u')
                          return fail("lone high surrogate");
                      pos += 2;
                      unsigned long low = 0;
                      if (!hexQuad(low))
                          return false;
                      if (low < 0xdc00 || low > 0xdfff)
                          return fail("bad low surrogate");
                      code = 0x10000 + ((code - 0xd800) << 10) +
                             (low - 0xdc00);
                  } else if (code >= 0xdc00 && code <= 0xdfff) {
                      return fail("lone low surrogate");
                  }
                  appendUtf8(out, code);
                  break;
              }
              default:
                return fail("bad escape character");
            }
        }
        return fail("unterminated string");
    }

    bool parseValue(JsonValue &out)
    {
        switch (peek()) {
          case '{': {
              out.kind = JsonValue::Kind::Object;
              ++pos;
              if (peek() == '}') {
                  ++pos;
                  return true;
              }
              while (true) {
                  std::string key;
                  if (!parseString(key))
                      return false;
                  if (!consume(':'))
                      return false;
                  JsonValue member;
                  if (!parseValue(member))
                      return false;
                  out.object.emplace(std::move(key),
                                     std::move(member));
                  if (peek() == ',') {
                      ++pos;
                      continue;
                  }
                  return consume('}');
              }
          }
          case '[': {
              out.kind = JsonValue::Kind::Array;
              ++pos;
              if (peek() == ']') {
                  ++pos;
                  return true;
              }
              while (true) {
                  JsonValue element;
                  if (!parseValue(element))
                      return false;
                  out.array.push_back(std::move(element));
                  if (peek() == ',') {
                      ++pos;
                      continue;
                  }
                  return consume(']');
              }
          }
          case '"':
            out.kind = JsonValue::Kind::String;
            return parseString(out.string);
          case 't':
            out.kind = JsonValue::Kind::Bool;
            out.boolean = true;
            return literal("true");
          case 'f':
            out.kind = JsonValue::Kind::Bool;
            out.boolean = false;
            return literal("false");
          case 'n':
            out.kind = JsonValue::Kind::Null;
            return literal("null");
          default: {
              skipWs();
              // Copy the token: string_views are not guaranteed
              // null-terminated, which strtod requires.
              const std::string chunk(text.substr(pos, 64));
              char *end = nullptr;
              const double value =
                  std::strtod(chunk.c_str(), &end);
              if (end == chunk.c_str())
                  return fail("unrecognised token");
              out.kind = JsonValue::Kind::Number;
              out.number = value;
              pos += static_cast<std::size_t>(end - chunk.c_str());
              return true;
          }
        }
    }
};

} // namespace

const JsonValue *
JsonValue::find(const std::string &key) const
{
    if (kind != Kind::Object)
        return nullptr;
    const auto it = object.find(key);
    return it == object.end() ? nullptr : &it->second;
}

double
JsonValue::numberOr(const std::string &key, double fallback) const
{
    const JsonValue *member = find(key);
    return member != nullptr && member->isNumber() ? member->number
                                                   : fallback;
}

std::string
JsonValue::stringOr(const std::string &key,
                    const std::string &fallback) const
{
    const JsonValue *member = find(key);
    return member != nullptr && member->isString() ? member->string
                                                   : fallback;
}

bool
JsonValue::boolOr(const std::string &key, bool fallback) const
{
    const JsonValue *member = find(key);
    return member != nullptr && member->kind == Kind::Bool
               ? member->boolean
               : fallback;
}

bool
parseJson(std::string_view text, JsonValue &out, std::string &error)
{
    Parser parser{text, 0, {}};
    out = JsonValue{};
    if (!parser.parseValue(out)) {
        error = parser.error.empty() ? "malformed JSON"
                                     : parser.error;
        return false;
    }
    if (!parser.atEnd()) {
        error = "trailing garbage at offset " +
                std::to_string(parser.pos);
        return false;
    }
    return true;
}

bool
parseJsonFile(const std::string &path, JsonValue &out,
              std::string &error)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        error = "cannot open " + path;
        return false;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const std::string text = buffer.str();
    if (!parseJson(text, out, error)) {
        error = path + ": " + error;
        return false;
    }
    return true;
}

} // namespace ramp::perf
