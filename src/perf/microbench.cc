#include "perf/microbench.hh"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <deque>

#include "common/logging.hh"
#include "common/stats.hh"
#include "prof/prof.hh"
#include "telemetry/telemetry.hh"

namespace ramp::perf
{

namespace
{

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start)
        .count();
}

/** Coefficient of variation of a window of iteration times. */
double
windowCv(const std::deque<double> &window)
{
    RunningStat stat;
    for (const double seconds : window)
        stat.add(seconds);
    const double mean = stat.mean();
    return mean > 0 ? stat.stddev() / mean : 0.0;
}

} // namespace

void
Microbench::add(std::string name, std::string unit,
                std::function<std::uint64_t()> fn)
{
    for (const Case &c : cases_)
        if (c.name == name)
            ramp_panic("microbench case '", name,
                       "' registered twice");
    cases_.push_back(
        {std::move(name), std::move(unit), std::move(fn)});
}

std::vector<std::string>
Microbench::names() const
{
    std::vector<std::string> out;
    out.reserve(cases_.size());
    for (const Case &c : cases_)
        out.push_back(c.name);
    return out;
}

std::vector<BenchResult>
Microbench::run(const BenchOptions &options,
                const std::vector<std::string> &only) const
{
    std::vector<BenchResult> results;
    for (const Case &c : cases_) {
        if (!only.empty() &&
            std::find(only.begin(), only.end(), c.name) ==
                only.end())
            continue;

        RAMP_TELEM_SPAN(case_span, "microbench", "perf",
                        telemetry::traceArg("case", c.name));
        // Every fn() invocation (warmup and timed) runs under a
        // PMU-sampled "kernel.<case>" phase, so profiles attribute
        // cycles, IPC, and LLC misses per hot kernel.
        [[maybe_unused]] const char *prof_name =
            prof::internName("kernel." + c.name);
        BenchResult result;
        result.name = c.name;
        result.unit = c.unit;

        const Clock::time_point budget_start = Clock::now();
        // Leave at least half the budget for the timed phase even
        // when the kernel never stabilises.
        const double warmup_budget = options.maxSecondsPerCase / 2;

        std::deque<double> window;
        while (result.warmupIterations <
               std::max<std::size_t>(options.maxWarmupIterations,
                                     1)) {
            const Clock::time_point start = Clock::now();
            {
                RAMP_PROF_SCOPE_PMU(kernel_prof, prof_name);
                result.itemsPerIteration = c.fn();
            }
            window.push_back(secondsSince(start));
            ++result.warmupIterations;
            if (window.size() > options.warmupWindow)
                window.pop_front();
            if (window.size() == options.warmupWindow &&
                windowCv(window) < options.warmupCv)
                break;
            if (secondsSince(budget_start) > warmup_budget)
                break;
        }

        RunningStat stat;
        for (std::size_t i = 0; i < options.iterations; ++i) {
            const Clock::time_point start = Clock::now();
            {
                RAMP_PROF_SCOPE_PMU(kernel_prof, prof_name);
                result.itemsPerIteration = c.fn();
            }
            stat.add(secondsSince(start));
            if (secondsSince(budget_start) >
                    options.maxSecondsPerCase &&
                stat.count() >= 3)
                break;
        }

        result.iterations = stat.count();
        result.meanSeconds = stat.mean();
        result.stddevSeconds = stat.stddev();
        result.ci95Seconds =
            stat.count() > 1
                ? 1.96 * stat.stddev() /
                      std::sqrt(static_cast<double>(stat.count()))
                : 0.0;
        result.minSeconds = stat.min();
        result.maxSeconds = stat.max();
        result.itemsPerSecond =
            result.minSeconds > 0
                ? static_cast<double>(result.itemsPerIteration) /
                      result.minSeconds
                : 0.0;
        results.push_back(std::move(result));
    }
    return results;
}

} // namespace ramp::perf
