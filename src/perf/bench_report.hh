/**
 * @file
 * BENCH_<tool>.json: the repo's machine-readable performance
 * trajectory.
 *
 * Every harness binary can emit one document per run (--bench-out)
 * with a stable schema ("ramp-bench-v1"): host/build metadata, the
 * campaign wall time, throughput derived from the telemetry
 * counters (accesses/s, FaultSim trials/s, pool tasks/s), the
 * resource sampler's peak-RSS/CPU summary, pass-duration summary
 * statistics, p50/p95/p99 of every telemetry histogram, and — for
 * the microbenchmark suite — the per-kernel BenchResult rows.
 *
 * compareBenchReports() is the regression gate: it joins two parsed
 * documents metric by metric, applies a per-family noise threshold
 * (seconds and RSS regress upward, throughput regresses downward),
 * and reports every comparison so CI can fail a PR with a
 * human-readable table. Committed baselines live at the repo root
 * (BENCH_fig01_pareto.json, BENCH_perf_suite.json).
 */

#ifndef RAMP_PERF_BENCH_REPORT_HH
#define RAMP_PERF_BENCH_REPORT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "perf/json.hh"
#include "perf/microbench.hh"
#include "perf/resource.hh"
#include "telemetry/registry.hh"

namespace ramp::perf
{

/** Schema identifier stamped into (and checked in) every document. */
inline constexpr const char *benchSchema = "ramp-bench-v1";

/** Pass-duration summary the harness aggregates from its report. */
struct BenchPassSummary
{
    /** Recorded passes, and how many completed Ok. */
    std::size_t count = 0;
    std::size_t ok = 0;

    /** Durations of the measured (non-replayed) passes. */
    RunningStat seconds;
};

/** Everything one BENCH document is rendered from. */
struct BenchReportSpec
{
    std::string tool;
    unsigned jobs = 0;

    /** Harness-construction-to-finish wall time, seconds. */
    double wallSeconds = 0;

    /** Resource-sampler period (--sample-ms), stamped into host
     * metadata so a baseline records the cadence it was taken at. */
    unsigned sampleMs = 50;

    /** The resource sampler's window (zero samples = no sampler). */
    ResourceSummary resources;

    /** Merged telemetry snapshot (throughput + percentiles). */
    telemetry::MetricsSnapshot metrics;

    BenchPassSummary passes;

    /** Decision-ledger records accepted this run (0 = disabled). */
    std::uint64_t eventRecords = 0;

    /** Microbenchmark rows (empty for figure binaries). */
    std::vector<BenchResult> microbenchmarks;

    /** Pre-rendered `profile` block (prof::profileBlockJson());
     * "" = profiler off, block omitted. */
    std::string profileBlock;
};

/** Render the BENCH_<tool>.json document. */
std::string renderBenchReport(const BenchReportSpec &spec);

/** One metric comparison of a bench diff. */
struct MetricDiff
{
    /** Dotted metric path ("wall_seconds", "micro.cache.mean"...). */
    std::string name;

    double baseline = 0;
    double candidate = 0;

    /** Relative change in percent ((candidate-baseline)/baseline). */
    double deltaPct = 0;

    /** Allowed noise band in percent. */
    double limitPct = 0;

    /** Direction: throughput regresses down, seconds/RSS up. */
    bool higherIsBetter = false;

    bool regressed = false;
};

/**
 * Per-family noise thresholds, in percent. The defaults are
 * deliberately generous: the committed baselines are gated on
 * shared CI runners whose run-to-run noise is far above a local
 * machine's.
 */
struct DiffOptions
{
    double wallPct = 50;
    double throughputPct = 40;
    double rssPct = 50;
    double percentilePct = 75;
    double microPct = 50;

    /** Decision-ledger family (throughput.events_per_second and
     * eventlog.* percentiles): the ledger's cost scales with how
     * chatty the policies are, so its noise band is wider. */
    double eventlogPct = 60;

    /**
     * Multi-tenant service family (the "service" block emitted by
     * datacenter_service): aggregate accesses/sec regresses
     * downward, p99 slowdown upward, both inside this band. The
     * fairness index is bounded in [0, 1] and nearly noise-free, so
     * it gets its own much tighter band.
     */
    double servicePct = 40;
    double fairnessPct = 5;

    /**
     * Health-monitor family (the "health" block: timeline samples,
     * fired alerts/warns). Counts are deterministic for a fixed
     * workload, but rule sets evolve with the defaults, so the band
     * matches the throughput family rather than an exact gate.
     */
    double healthPct = 40;

    /** Multiplies every threshold (CLI --relax). */
    double relax = 1.0;

    /**
     * Metric-name prefix filters (CLI --family, repeatable). When
     * non-empty, only metrics whose dotted name starts with one of
     * these prefixes are compared — so one family (e.g. "micro.") can
     * be gated or relaxed independently of the others.
     */
    std::vector<std::string> families;

    /** @{ @name Noise floors: skip metrics too small to compare */
    double minSeconds = 1e-3;
    double minBytes = 16.0 * 1024 * 1024;
    double minPerSecond = 1.0;
    /** @} */
};

/**
 * Join two parsed BENCH documents metric by metric. The metric list
 * comes from the baseline; metrics missing (or null / below the
 * noise floor) on either side are skipped rather than flagged.
 * Returns every comparison made; `error` is set (and the result
 * empty) when the documents are not comparable (schema or tool
 * mismatch).
 */
std::vector<MetricDiff>
compareBenchReports(const JsonValue &baseline,
                    const JsonValue &candidate,
                    const DiffOptions &options, std::string &error);

/**
 * Top-level keys of a ramp-bench-v1 document that this build does
 * not know (newer schema additions, e.g. a baseline carrying a
 * block this binary predates). bench_diff notes and skips them
 * instead of erroring, so documents stay comparable across schema
 * growth. Sorted, deduplicated.
 */
std::vector<std::string> unknownBenchBlocks(const JsonValue &doc);

} // namespace ramp::perf

#endif // RAMP_PERF_BENCH_REPORT_HH
