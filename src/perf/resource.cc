#include "perf/resource.hh"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include <sys/resource.h>

#include "telemetry/telemetry.hh"

namespace ramp::perf
{

namespace
{

/**
 * Parse one "VmRSS:   12345 kB" style line of /proc/self/status.
 * Returns 0 when the key is absent (non-Linux hosts).
 */
std::uint64_t
procStatusKb(const char *key)
{
    std::FILE *file = std::fopen("/proc/self/status", "r");
    if (file == nullptr)
        return 0;
    char line[256];
    std::uint64_t kb = 0;
    const std::size_t key_len = std::strlen(key);
    while (std::fgets(line, sizeof(line), file) != nullptr) {
        if (std::strncmp(line, key, key_len) != 0 ||
            line[key_len] != ':')
            continue;
        unsigned long long value = 0;
        if (std::sscanf(line + key_len + 1, "%llu", &value) == 1)
            kb = value;
        break;
    }
    std::fclose(file);
    return kb;
}

double
timevalSeconds(const timeval &tv)
{
    return static_cast<double>(tv.tv_sec) +
           static_cast<double>(tv.tv_usec) * 1e-6;
}

} // namespace

ResourceUsage
readResourceUsage()
{
    ResourceUsage usage;
    rusage ru{};
    if (getrusage(RUSAGE_SELF, &ru) == 0) {
        usage.userCpuSeconds = timevalSeconds(ru.ru_utime);
        usage.sysCpuSeconds = timevalSeconds(ru.ru_stime);
        usage.majorFaults = static_cast<std::uint64_t>(ru.ru_majflt);
        usage.minorFaults = static_cast<std::uint64_t>(ru.ru_minflt);
        // ru_maxrss is kilobytes on Linux; the /proc VmHWM reading
        // below overrides it when available (same unit, finer
        // update cadence on some kernels).
        usage.peakRssBytes =
            static_cast<std::uint64_t>(ru.ru_maxrss) * 1024;
    }
    if (const std::uint64_t rss_kb = procStatusKb("VmRSS"))
        usage.rssBytes = rss_kb * 1024;
    if (const std::uint64_t hwm_kb = procStatusKb("VmHWM"))
        usage.peakRssBytes = hwm_kb * 1024;
    if (usage.rssBytes == 0)
        usage.rssBytes = usage.peakRssBytes;
    return usage;
}

ResourceSampler::ResourceSampler(std::chrono::milliseconds period)
    : period_(period), thread_([this] { loop(); })
{
}

ResourceSampler::~ResourceSampler()
{
    stop();
}

void
ResourceSampler::sampleOnce()
{
    const ResourceUsage usage = readResourceUsage();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        ++summary_.samples;
        summary_.peakRssBytes =
            std::max(summary_.peakRssBytes, usage.peakRssBytes);
        summary_.rssSeries.add(
            static_cast<double>(usage.rssBytes));
        summary_.userCpuSeconds = usage.userCpuSeconds;
        summary_.sysCpuSeconds = usage.sysCpuSeconds;
        summary_.majorFaults = usage.majorFaults;
        summary_.minorFaults = usage.minorFaults;
    }
    RAMP_TELEM({
        auto &registry = telemetry::metrics();
        registry.gauge("proc.rss_bytes")
            .set(static_cast<double>(usage.rssBytes));
        registry.gauge("proc.peak_rss_bytes")
            .set(static_cast<double>(usage.peakRssBytes));
        registry.gauge("proc.cpu_user_seconds")
            .set(usage.userCpuSeconds);
        registry.gauge("proc.cpu_sys_seconds")
            .set(usage.sysCpuSeconds);
        telemetry::counterEvent(
            "proc.rss", "resource", "mb",
            static_cast<double>(usage.rssBytes) / (1024.0 * 1024.0));
    });
}

void
ResourceSampler::loop()
{
    sampleOnce(); // A first reading even for sub-period campaigns.
    std::unique_lock<std::mutex> lock(mutex_);
    while (!stop_) {
        wake_.wait_for(lock, period_, [this] { return stop_; });
        if (stop_)
            break;
        lock.unlock();
        sampleOnce();
        lock.lock();
    }
}

void
ResourceSampler::stop()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (stop_)
            return;
        stop_ = true;
    }
    wake_.notify_all();
    thread_.join();
    sampleOnce(); // Final reading: the summary covers the full run.
}

ResourceSummary
ResourceSampler::summary() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return summary_;
}

} // namespace ramp::perf
