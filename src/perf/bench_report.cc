#include "perf/bench_report.hh"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <thread>

#include <sys/utsname.h>

#include "prof/tsc.hh"
#include "telemetry/telemetry.hh"

namespace ramp::perf
{

namespace
{

using telemetry::jsonEscape;
using telemetry::jsonNumber;

/** Throughput quote: count/wall, null-rendered when unmeasured. */
double
perSecond(std::uint64_t count, double wall_seconds)
{
    if (count == 0 || !(wall_seconds > 0))
        return std::numeric_limits<double>::quiet_NaN();
    return static_cast<double>(count) / wall_seconds;
}

std::string
hostJson(unsigned sample_ms)
{
    utsname uts{};
    const bool have_uname = uname(&uts) == 0;
    std::ostringstream out;
    out << "{\"os\": \""
        << jsonEscape(have_uname ? uts.sysname : "unknown")
        << "\", \"release\": \""
        << jsonEscape(have_uname ? uts.release : "unknown")
        << "\", \"arch\": \""
        << jsonEscape(have_uname ? uts.machine : "unknown")
        << "\", \"cpus\": " << std::thread::hardware_concurrency()
        // Profiles quote cycles; the baseline records which CPU
        // produced them and what a cycle is worth in seconds.
        << ", \"cpu_model\": \""
        << jsonEscape(prof::cpuModelName())
        << "\", \"tsc_hz\": " << jsonNumber(prof::tscHz())
        << ", \"sample_ms\": " << sample_ms << ", \"compiler\": \""
#if defined(__clang__)
        << "clang " << jsonEscape(__clang_version__)
#elif defined(__GNUC__)
        << "gcc " << jsonEscape(__VERSION__)
#else
        << "unknown"
#endif
        << "\", \"build\": \""
#ifdef NDEBUG
        << "release"
#else
        << "debug"
#endif
        << "\"}";
    return out.str();
}

/** Gauge value from a snapshot, NaN when never registered. */
double
gaugeOr(const telemetry::MetricsSnapshot &snap,
        const std::string &name)
{
    const auto it = snap.gauges.find(name);
    return it == snap.gauges.end()
               ? std::numeric_limits<double>::quiet_NaN()
               : it->second;
}

} // namespace

std::string
renderBenchReport(const BenchReportSpec &spec)
{
    const auto &snap = spec.metrics;
    const std::uint64_t accesses =
        snap.counterOr("hma.accesses.hbm") +
        snap.counterOr("hma.accesses.ddr");
    const std::uint64_t trials = snap.counterOr("faultsim.trials");
    const std::uint64_t tasks = snap.counterOr("pool.tasks");

    std::ostringstream out;
    out << "{\n"
        << "  \"schema\": \"" << benchSchema << "\",\n"
        << "  \"tool\": \"" << jsonEscape(spec.tool) << "\",\n"
        << "  \"jobs\": " << spec.jobs << ",\n"
        << "  \"host\": " << hostJson(spec.sampleMs) << ",\n"
        << "  \"wall_seconds\": " << jsonNumber(spec.wallSeconds)
        << ",\n";

    const ResourceSummary &res = spec.resources;
    out << "  \"resources\": {\n"
        << "    \"samples\": " << res.samples << ",\n"
        << "    \"peak_rss_bytes\": " << res.peakRssBytes << ",\n"
        << "    \"mean_rss_bytes\": "
        << jsonNumber(res.rssSeries.mean()) << ",\n"
        << "    \"max_rss_bytes\": "
        << jsonNumber(res.rssSeries.max()) << ",\n"
        << "    \"user_cpu_seconds\": "
        << jsonNumber(res.userCpuSeconds) << ",\n"
        << "    \"sys_cpu_seconds\": "
        << jsonNumber(res.sysCpuSeconds) << ",\n"
        << "    \"major_faults\": " << res.majorFaults << ",\n"
        << "    \"minor_faults\": " << res.minorFaults << "\n"
        << "  },\n";

    out << "  \"throughput\": {\n"
        << "    \"accesses_per_second\": "
        << jsonNumber(perSecond(accesses, spec.wallSeconds)) << ",\n"
        << "    \"trials_per_second\": "
        << jsonNumber(perSecond(trials, spec.wallSeconds)) << ",\n"
        << "    \"tasks_per_second\": "
        << jsonNumber(perSecond(tasks, spec.wallSeconds)) << ",\n"
        << "    \"events_per_second\": "
        << jsonNumber(perSecond(spec.eventRecords,
                                spec.wallSeconds))
        << "\n"
        << "  },\n";

    out << "  \"counters\": {\n"
        << "    \"accesses\": " << accesses << ",\n"
        << "    \"trials\": " << trials << ",\n"
        << "    \"tasks\": " << tasks << ",\n"
        << "    \"events\": " << spec.eventRecords << "\n"
        << "  },\n";

    // The multi-tenant placement service family, present only when
    // the tool ran the service (other tools' documents unchanged).
    if (snap.counterOr("service.streams_admitted") != 0) {
        const std::uint64_t served =
            snap.counterOr("service.requests_served");
        out << "  \"service\": {\n"
            << "    \"tenants\": "
            << snap.counterOr("service.streams_admitted") << ",\n"
            << "    \"shards\": "
            << jsonNumber(gaugeOr(snap, "service.shards")) << ",\n"
            << "    \"arbitration_rounds\": "
            << snap.counterOr("service.arbitration_rounds") << ",\n"
            << "    \"quota_clips\": "
            << snap.counterOr("service.quota_clips") << ",\n"
            << "    \"rebalance_moves\": "
            << snap.counterOr("service.rebalance_moves") << ",\n"
            << "    \"faults_applied\": "
            << snap.counterOr("service.faults_applied") << ",\n"
            << "    \"aggregate_accesses_per_second\": "
            << jsonNumber(perSecond(served, spec.wallSeconds))
            << ",\n"
            << "    \"fairness_index\": "
            << jsonNumber(gaugeOr(snap, "service.fairness_index"))
            << ",\n"
            << "    \"p99_slowdown\": "
            << jsonNumber(gaugeOr(snap, "service.p99_slowdown"))
            << "\n  },\n";
    }

    // The health-monitor family, present only when the timeline
    // recorded at least one sample (other tools' documents
    // unchanged).
    if (snap.counterOr("health.samples") != 0) {
        out << "  \"health\": {\n"
            << "    \"rules\": "
            << jsonNumber(gaugeOr(snap, "health.rules")) << ",\n"
            << "    \"samples\": "
            << snap.counterOr("health.samples") << ",\n"
            << "    \"alerts\": " << snap.counterOr("health.alerts")
            << ",\n"
            << "    \"warns\": " << snap.counterOr("health.warns")
            << "\n  },\n";
    }

    // The cycle-profile summary, present only when the profiler
    // ran (--profile-out); bench_diff skips it.
    if (!spec.profileBlock.empty())
        out << "  \"profile\": " << spec.profileBlock << ",\n";

    const BenchPassSummary &passes = spec.passes;
    out << "  \"passes\": {\n"
        << "    \"count\": " << passes.count << ",\n"
        << "    \"ok\": " << passes.ok << ",\n"
        << "    \"total_seconds\": "
        << jsonNumber(passes.seconds.sum()) << ",\n"
        << "    \"mean_seconds\": "
        << jsonNumber(passes.seconds.mean()) << ",\n"
        << "    \"min_seconds\": "
        << jsonNumber(passes.seconds.min()) << ",\n"
        << "    \"max_seconds\": "
        << jsonNumber(passes.seconds.max()) << "\n"
        << "  },\n";

    out << "  \"percentiles\": {";
    bool first = true;
    for (const auto &[name, hist] : snap.histograms) {
        out << (first ? "\n" : ",\n") << "    \""
            << jsonEscape(name) << "\": {\"p50\": "
            << jsonNumber(hist.p50())
            << ", \"p95\": " << jsonNumber(hist.p95())
            << ", \"p99\": " << jsonNumber(hist.p99())
            << ", \"total\": " << hist.total() << "}";
        first = false;
    }
    out << (first ? "" : "\n  ") << "},\n";

    out << "  \"microbenchmarks\": [";
    for (std::size_t i = 0; i < spec.microbenchmarks.size(); ++i) {
        const BenchResult &r = spec.microbenchmarks[i];
        out << (i == 0 ? "\n" : ",\n") << "    {\"name\": \""
            << jsonEscape(r.name) << "\", \"unit\": \""
            << jsonEscape(r.unit) << "\", \"items_per_iteration\": "
            << r.itemsPerIteration
            << ", \"warmup_iterations\": " << r.warmupIterations
            << ", \"iterations\": " << r.iterations
            << ", \"mean_seconds\": " << jsonNumber(r.meanSeconds)
            << ", \"stddev_seconds\": "
            << jsonNumber(r.stddevSeconds)
            << ", \"ci95_seconds\": " << jsonNumber(r.ci95Seconds)
            << ", \"min_seconds\": " << jsonNumber(r.minSeconds)
            << ", \"max_seconds\": " << jsonNumber(r.maxSeconds)
            << ", \"items_per_second\": "
            << jsonNumber(r.itemsPerSecond) << "}";
    }
    out << (spec.microbenchmarks.empty() ? "" : "\n  ") << "]\n"
        << "}\n";
    return out.str();
}

namespace
{

/** One side's value at an object path, NaN when absent/null. */
double
numberAt(const JsonValue &doc,
         const std::vector<std::string> &path)
{
    const JsonValue *node = &doc;
    for (const std::string &key : path) {
        node = node->find(key);
        if (node == nullptr)
            return std::numeric_limits<double>::quiet_NaN();
    }
    return node->isNumber()
               ? node->number
               : std::numeric_limits<double>::quiet_NaN();
}

/** The microbenchmark row with the given name, or nullptr. */
const JsonValue *
findMicro(const JsonValue &doc, const std::string &name)
{
    const JsonValue *rows = doc.find("microbenchmarks");
    if (rows == nullptr || !rows->isArray())
        return nullptr;
    for (const JsonValue &row : rows->array)
        if (row.stringOr("name", "") == name)
            return &row;
    return nullptr;
}

/** Compare one metric; appends only when both sides measured it. */
void
compareOne(std::vector<MetricDiff> &diffs, const std::string &name,
           double base, double cand, double limit_pct,
           bool higher_is_better, double floor_value)
{
    if (!std::isfinite(base) || !std::isfinite(cand))
        return;
    // Below the noise floor a ratio means nothing (a 2 ms wall
    // time doubling is not a regression signal).
    if (base < floor_value && cand < floor_value)
        return;
    if (!(base > 0))
        return;
    MetricDiff diff;
    diff.name = name;
    diff.baseline = base;
    diff.candidate = cand;
    diff.deltaPct = (cand - base) / base * 100.0;
    diff.limitPct = limit_pct;
    diff.higherIsBetter = higher_is_better;
    diff.regressed = higher_is_better
                         ? diff.deltaPct < -limit_pct
                         : diff.deltaPct > limit_pct;
    diffs.push_back(std::move(diff));
}

} // namespace

std::vector<MetricDiff>
compareBenchReports(const JsonValue &baseline,
                    const JsonValue &candidate,
                    const DiffOptions &options, std::string &error)
{
    std::vector<MetricDiff> diffs;
    const std::string base_schema = baseline.stringOr("schema", "");
    const std::string cand_schema =
        candidate.stringOr("schema", "");
    if (base_schema != benchSchema || cand_schema != benchSchema) {
        error = "not a " + std::string(benchSchema) +
                " document (baseline schema '" + base_schema +
                "', candidate schema '" + cand_schema + "')";
        return diffs;
    }
    const std::string base_tool = baseline.stringOr("tool", "");
    const std::string cand_tool = candidate.stringOr("tool", "");
    if (base_tool != cand_tool) {
        error = "tool mismatch: baseline is '" + base_tool +
                "', candidate is '" + cand_tool + "'";
        return diffs;
    }

    const double relax = options.relax;
    compareOne(diffs, "wall_seconds",
               numberAt(baseline, {"wall_seconds"}),
               numberAt(candidate, {"wall_seconds"}),
               options.wallPct * relax, false, options.minSeconds);
    for (const char *name :
         {"accesses_per_second", "trials_per_second",
          "tasks_per_second"})
        compareOne(diffs, std::string("throughput.") + name,
                   numberAt(baseline, {"throughput", name}),
                   numberAt(candidate, {"throughput", name}),
                   options.throughputPct * relax, true,
                   options.minPerSecond);
    // The decision ledger's own family: absent from pre-eventlog
    // baselines, where the NaN side skips the comparison.
    compareOne(diffs, "throughput.events_per_second",
               numberAt(baseline,
                        {"throughput", "events_per_second"}),
               numberAt(candidate,
                        {"throughput", "events_per_second"}),
               options.eventlogPct * relax, true,
               options.minPerSecond);
    // The multi-tenant service family: absent from non-service
    // documents, where the NaN side skips the comparison.
    compareOne(diffs, "service.aggregate_accesses_per_second",
               numberAt(baseline,
                        {"service", "aggregate_accesses_per_second"}),
               numberAt(candidate,
                        {"service", "aggregate_accesses_per_second"}),
               options.servicePct * relax, true,
               options.minPerSecond);
    compareOne(diffs, "service.fairness_index",
               numberAt(baseline, {"service", "fairness_index"}),
               numberAt(candidate, {"service", "fairness_index"}),
               options.fairnessPct * relax, true, 0.01);
    compareOne(diffs, "service.p99_slowdown",
               numberAt(baseline, {"service", "p99_slowdown"}),
               numberAt(candidate, {"service", "p99_slowdown"}),
               options.servicePct * relax, false, 1e-3);
    // The health-monitor family: absent when no timeline ran. The
    // sample count regresses in either direction (fired-alert
    // deltas are what matter; see tools/bench_diff --health-pct).
    for (const char *name : {"samples", "alerts", "warns"}) {
        const double base =
            numberAt(baseline, {"health", name});
        const double cand =
            numberAt(candidate, {"health", name});
        compareOne(diffs, std::string("health.") + name, base,
                   cand, options.healthPct * relax, false, 1.0);
    }
    compareOne(diffs, "resources.peak_rss_bytes",
               numberAt(baseline, {"resources", "peak_rss_bytes"}),
               numberAt(candidate, {"resources", "peak_rss_bytes"}),
               options.rssPct * relax, false, options.minBytes);

    if (const JsonValue *percentiles =
            baseline.find("percentiles")) {
        for (const auto &[hist, quantiles] :
             percentiles->object) {
            if (!quantiles.isObject())
                continue;
            const double family_pct =
                hist.rfind("eventlog.", 0) == 0
                    ? options.eventlogPct
                    : options.percentilePct;
            for (const char *q : {"p50", "p95", "p99"})
                compareOne(
                    diffs, "percentiles." + hist + "." + q,
                    numberAt(baseline, {"percentiles", hist, q}),
                    numberAt(candidate, {"percentiles", hist, q}),
                    family_pct * relax, false,
                    options.minSeconds);
        }
    }

    if (const JsonValue *rows = baseline.find("microbenchmarks");
        rows != nullptr && rows->isArray()) {
        for (const JsonValue &row : rows->array) {
            const std::string name = row.stringOr("name", "");
            if (name.empty())
                continue;
            const JsonValue *other = findMicro(candidate, name);
            if (other == nullptr)
                continue;
            compareOne(diffs, "micro." + name + ".min_seconds",
                       row.numberOr("min_seconds", NAN),
                       other->numberOr("min_seconds", NAN),
                       options.microPct * relax, false,
                       options.minSeconds / 100);
            compareOne(diffs,
                       "micro." + name + ".items_per_second",
                       row.numberOr("items_per_second", NAN),
                       other->numberOr("items_per_second", NAN),
                       options.microPct * relax, true,
                       options.minPerSecond);
        }
    }

    if (!options.families.empty()) {
        std::erase_if(diffs, [&](const MetricDiff &diff) {
            return std::none_of(
                options.families.begin(), options.families.end(),
                [&](const std::string &family) {
                    return diff.name.rfind(family, 0) == 0;
                });
        });
    }
    return diffs;
}

std::vector<std::string>
unknownBenchBlocks(const JsonValue &doc)
{
    // Every top-level key this build's reader understands; a key
    // outside the set came from a newer (or older, since-removed)
    // schema revision.
    static const char *const known[] = {
        "schema",        "tool",      "jobs",
        "host",          "wall_seconds", "resources",
        "throughput",    "counters",  "service",
        "health",        "profile",   "passes",
        "percentiles",   "microbenchmarks",
    };
    std::vector<std::string> unknown;
    if (!doc.isObject())
        return unknown;
    for (const auto &[key, value] : doc.object) {
        bool found = false;
        for (const char *name : known)
            if (key == name)
                found = true;
        if (!found)
            unknown.push_back(key);
    }
    return unknown;
}

} // namespace ramp::perf
