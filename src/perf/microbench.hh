/**
 * @file
 * Steady-state microbenchmark framework for the simulator's hot
 * kernels.
 *
 * Each case is a callable running one iteration of a kernel and
 * returning how many items (accesses, trials, tasks...) it
 * processed. run() measures every case the same way: a warmup phase
 * that iterates until the iteration time stabilises (coefficient of
 * variation of a sliding window under a threshold) or the warmup
 * budget runs out, then a fixed number of timed iterations folded
 * into a RunningStat. The report quotes mean, stddev, a 95%%
 * confidence half-width, and the min-of-N — the usual
 * noise-resistant estimate of the kernel's true cost — plus the
 * throughput derived from it. Results feed the BENCH_<tool>.json
 * emitter (bench_report.hh) that bench_diff gates regressions on.
 */

#ifndef RAMP_PERF_MICROBENCH_HH
#define RAMP_PERF_MICROBENCH_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace ramp::perf
{

/** Measurement knobs; the defaults suit sub-second kernels. */
struct BenchOptions
{
    /** Timed iterations after warmup. */
    std::size_t iterations = 10;

    /** Warmup iteration cap (stabilisation may stop it earlier). */
    std::size_t maxWarmupIterations = 24;

    /** Sliding-window size the stabilisation check looks at. */
    std::size_t warmupWindow = 4;

    /**
     * Warmup ends once the window's coefficient of variation
     * (stddev/mean) drops below this.
     */
    double warmupCv = 0.05;

    /**
     * Wall-clock budget per case, warmup included; measurement
     * stops early (with fewer iterations) when exhausted.
     */
    double maxSecondsPerCase = 10.0;
};

/** One measured case of the suite. */
struct BenchResult
{
    /** Case name (stable across runs: bench_diff joins on it). */
    std::string name;

    /** What one item is ("accesses", "trials", "tasks"...). */
    std::string unit;

    /** Items processed by one iteration. */
    std::uint64_t itemsPerIteration = 0;

    /** Warmup iterations actually run. */
    std::size_t warmupIterations = 0;

    /** Timed iterations folded into the statistics. */
    std::size_t iterations = 0;

    /** @{ @name Per-iteration wall time, in seconds */
    double meanSeconds = 0;
    double stddevSeconds = 0;

    /** 95%% confidence half-width of the mean (1.96 s / sqrt n). */
    double ci95Seconds = 0;

    /** Fastest iteration: the noise-floor estimate of true cost. */
    double minSeconds = 0;
    double maxSeconds = 0;
    /** @} */

    /** Throughput at the min-of-N iteration time, items/second. */
    double itemsPerSecond = 0;
};

/** An ordered suite of kernel benchmarks. */
class Microbench
{
  public:
    /**
     * Register a case. fn runs one iteration and returns the items
     * it processed (used for the throughput quote; return 1 for
     * pure-latency cases).
     */
    void add(std::string name, std::string unit,
             std::function<std::uint64_t()> fn);

    /** Registered case names, in registration order. */
    std::vector<std::string> names() const;

    /**
     * Measure every case (or only those whose name is in `only`,
     * when non-empty), in registration order. Each case runs under
     * a trace span, so --trace-out shows the suite's timeline.
     */
    std::vector<BenchResult>
    run(const BenchOptions &options = {},
        const std::vector<std::string> &only = {}) const;

  private:
    struct Case
    {
        std::string name;
        std::string unit;
        std::function<std::uint64_t()> fn;
    };

    std::vector<Case> cases_;
};

} // namespace ramp::perf

#endif // RAMP_PERF_MICROBENCH_HH
