/**
 * @file
 * Minimal JSON value parser for the repo's own artifacts.
 *
 * bench_diff must re-read the BENCH_<tool>.json documents the
 * harness writes, and the tests validate every emitted document by
 * parsing it back, so the repo needs a reader to match its writers.
 * This is a small recursive-descent parser over the full JSON
 * grammar (objects, arrays, strings with escapes, numbers, bools,
 * null) — sufficient for machine-written documents; it does not aim
 * to be a general-purpose library (no streaming). \uXXXX escapes
 * decode to UTF-8, including supplementary-plane surrogate pairs.
 */

#ifndef RAMP_PERF_JSON_HH
#define RAMP_PERF_JSON_HH

#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace ramp::perf
{

/** One parsed JSON value (a tree). */
class JsonValue
{
  public:
    enum class Kind
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0;
    std::string string;
    std::vector<JsonValue> array;
    std::map<std::string, JsonValue> object;

    bool isNull() const { return kind == Kind::Null; }
    bool isNumber() const { return kind == Kind::Number; }
    bool isObject() const { return kind == Kind::Object; }
    bool isArray() const { return kind == Kind::Array; }
    bool isString() const { return kind == Kind::String; }

    /** Member of an object, or nullptr (also when not an object). */
    const JsonValue *find(const std::string &key) const;

    /** Member's number, or `fallback` when absent/not a number. */
    double numberOr(const std::string &key, double fallback) const;

    /** Member's string, or `fallback` when absent/not a string. */
    std::string stringOr(const std::string &key,
                         const std::string &fallback) const;

    /** Member's bool, or `fallback` when absent/not a bool. */
    bool boolOr(const std::string &key, bool fallback) const;
};

/**
 * Parse a complete JSON document. Returns false (and fills `error`
 * with a position-annotated message) on malformed input or trailing
 * garbage.
 */
bool parseJson(std::string_view text, JsonValue &out,
               std::string &error);

/** Parse a file; false when unreadable or malformed. */
bool parseJsonFile(const std::string &path, JsonValue &out,
                   std::string &error);

} // namespace ramp::perf

#endif // RAMP_PERF_JSON_HH
