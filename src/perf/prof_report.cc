#include "perf/prof_report.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <map>
#include <sstream>

#include "common/table.hh"
#include "prof/prof.hh"

namespace ramp::perf
{

namespace
{

std::uint64_t
u64Or(const JsonValue &obj, const std::string &key)
{
    const double value = obj.numberOr(key, 0);
    return value > 0 ? static_cast<std::uint64_t>(value) : 0;
}

/** Human cycle quantity: 12.3G / 45.6M / 789k / raw. */
std::string
cycles(std::uint64_t value)
{
    char buffer[32];
    const double v = static_cast<double>(value);
    if (v >= 1e9)
        std::snprintf(buffer, sizeof(buffer), "%.2fG", v / 1e9);
    else if (v >= 1e6)
        std::snprintf(buffer, sizeof(buffer), "%.2fM", v / 1e6);
    else if (v >= 1e3)
        std::snprintf(buffer, sizeof(buffer), "%.1fk", v / 1e3);
    else
        std::snprintf(buffer, sizeof(buffer), "%llu",
                      static_cast<unsigned long long>(value));
    return buffer;
}

std::string
signedCycles(std::int64_t value)
{
    const std::uint64_t magnitude = static_cast<std::uint64_t>(
        value < 0 ? -value : value);
    std::string result = cycles(magnitude);
    result.insert(0, 1, value < 0 ? '-' : '+');
    return result;
}

std::uint64_t
totalSelf(const ProfileDoc &doc)
{
    std::uint64_t total = 0;
    for (const ProfilePhase &phase : doc.phases)
        total += phase.selfCycles;
    return total;
}

} // namespace

bool
parseProfileDoc(const JsonValue &json, ProfileDoc &doc,
                std::string &error)
{
    if (!json.isObject()) {
        error = "profile document is not a JSON object";
        return false;
    }
    const std::string schema = json.stringOr("schema", "");
    if (schema != prof::profileSchema) {
        error = "unsupported profile schema '" + schema +
                "' (want " + std::string(prof::profileSchema) + ")";
        return false;
    }
    doc.tool = json.stringOr("tool", "");
    doc.jobs = static_cast<unsigned>(json.numberOr("jobs", 0));
    if (const JsonValue *host = json.find("host")) {
        doc.cpuModel = host->stringOr("cpu_model", "unknown");
        doc.tscHz = host->numberOr("tsc_hz", 0);
    }
    if (const JsonValue *pmu = json.find("pmu"))
        doc.pmuAvailable = pmu->boolOr("available", false);
    const JsonValue *phases = json.find("phases");
    if (phases == nullptr || !phases->isArray()) {
        error = "profile document has no phases array";
        return false;
    }
    doc.phases.clear();
    for (const JsonValue &row : phases->array) {
        ProfilePhase phase;
        phase.path = row.stringOr("path", "");
        if (phase.path.empty()) {
            error = "phase record without a path";
            return false;
        }
        phase.name = row.stringOr("name", phase.path);
        phase.depth =
            static_cast<unsigned>(row.numberOr("depth", 0));
        phase.calls = u64Or(row, "calls");
        phase.totalCycles = u64Or(row, "total_cycles");
        phase.selfCycles = u64Or(row, "self_cycles");
        if (const JsonValue *pmu = row.find("pmu")) {
            phase.pmuCalls = u64Or(*pmu, "calls");
            phase.pmuInstructions = u64Or(*pmu, "instructions");
            phase.pmuLlcMisses = u64Or(*pmu, "llc_misses");
            phase.pmuBranchMisses = u64Or(*pmu, "branch_misses");
            phase.ipc = pmu->numberOr("ipc", 0);
            phase.llcMissesPerKiloInstruction = pmu->numberOr(
                "llc_misses_per_kilo_instruction", 0);
        }
        doc.phases.push_back(std::move(phase));
    }
    return true;
}

bool
loadProfileDoc(const std::string &path, ProfileDoc &doc,
               std::string &error)
{
    JsonValue json;
    if (!parseJsonFile(path, json, error))
        return false;
    return parseProfileDoc(json, doc, error);
}

std::string
renderTopTable(const ProfileDoc &doc, std::size_t top_n)
{
    std::vector<const ProfilePhase *> ranked;
    ranked.reserve(doc.phases.size());
    for (const ProfilePhase &phase : doc.phases)
        ranked.push_back(&phase);
    std::sort(ranked.begin(), ranked.end(),
              [](const ProfilePhase *a, const ProfilePhase *b) {
                  if (a->selfCycles != b->selfCycles)
                      return a->selfCycles > b->selfCycles;
                  return a->path < b->path;
              });
    if (ranked.size() > top_n)
        ranked.resize(top_n);

    const double total =
        static_cast<double>(std::max<std::uint64_t>(
            totalSelf(doc), 1));
    TextTable table({"phase", "self", "share", "calls",
                     "self/call", "ipc", "llc_mpki"});
    for (const ProfilePhase *phase : ranked) {
        const double per_call =
            phase->calls > 0
                ? static_cast<double>(phase->selfCycles) /
                      static_cast<double>(phase->calls)
                : 0;
        table.addRow(
            {phase->path, cycles(phase->selfCycles),
             TextTable::percent(
                 static_cast<double>(phase->selfCycles) / total),
             std::to_string(phase->calls),
             cycles(static_cast<std::uint64_t>(per_call)),
             phase->pmuCalls > 0 ? TextTable::num(phase->ipc, 2)
                                 : "-",
             phase->pmuCalls > 0
                 ? TextTable::num(
                       phase->llcMissesPerKiloInstruction, 2)
                 : "-"});
    }
    std::ostringstream out;
    table.print(out, doc.tool + ": top self-cycle phases (pmu " +
                         (doc.pmuAvailable ? "on" : "off") + ")");
    return out.str();
}

std::string
renderTree(const ProfileDoc &doc)
{
    TextTable table({"phase", "total", "self", "calls"});
    for (const ProfilePhase &phase : doc.phases) {
        std::string label(2 * phase.depth, ' ');
        label += phase.name;
        table.addRow({label, cycles(phase.totalCycles),
                      cycles(phase.selfCycles),
                      std::to_string(phase.calls)});
    }
    std::ostringstream out;
    table.print(out, doc.tool + ": phase tree");
    return out.str();
}

std::string
renderCalls(const ProfileDoc &doc)
{
    std::ostringstream out;
    for (const ProfilePhase &phase : doc.phases)
        out << phase.path << " " << phase.calls << "\n";
    return out.str();
}

std::vector<PhaseDelta>
diffProfiles(const ProfileDoc &base, const ProfileDoc &cand,
             double threshold_pct, std::uint64_t min_cycles)
{
    // Join by path; std::map keeps the union path-sorted.
    std::map<std::string, PhaseDelta> joined;
    for (const ProfilePhase &phase : base.phases) {
        PhaseDelta &delta = joined[phase.path];
        delta.path = phase.path;
        delta.baseSelf = phase.selfCycles;
        delta.inBase = true;
    }
    for (const ProfilePhase &phase : cand.phases) {
        PhaseDelta &delta = joined[phase.path];
        delta.path = phase.path;
        delta.candSelf = phase.selfCycles;
        delta.inCand = true;
    }

    std::vector<PhaseDelta> deltas;
    deltas.reserve(joined.size());
    for (auto &[path, delta] : joined) {
        const std::int64_t change =
            static_cast<std::int64_t>(delta.candSelf) -
            static_cast<std::int64_t>(delta.baseSelf);
        if (delta.baseSelf > 0) {
            delta.deltaPct =
                100.0 * static_cast<double>(change) /
                static_cast<double>(delta.baseSelf);
        } else {
            delta.deltaPct =
                change > 0
                    ? std::numeric_limits<double>::infinity()
                    : 0.0;
        }
        const std::uint64_t magnitude =
            static_cast<std::uint64_t>(change < 0 ? -change
                                                  : change);
        delta.significant =
            magnitude > min_cycles &&
            std::abs(delta.deltaPct) > threshold_pct;
        delta.regressed = delta.significant && change > 0;
        deltas.push_back(delta);
    }
    return deltas;
}

std::string
renderDiffTable(const ProfileDoc &base, const ProfileDoc &cand,
                const std::vector<PhaseDelta> &deltas)
{
    std::vector<const PhaseDelta *> ranked;
    ranked.reserve(deltas.size());
    for (const PhaseDelta &delta : deltas)
        ranked.push_back(&delta);
    std::sort(ranked.begin(), ranked.end(),
              [](const PhaseDelta *a, const PhaseDelta *b) {
                  const auto magnitude = [](const PhaseDelta *d) {
                      const std::int64_t change =
                          static_cast<std::int64_t>(d->candSelf) -
                          static_cast<std::int64_t>(d->baseSelf);
                      return static_cast<std::uint64_t>(
                          change < 0 ? -change : change);
                  };
                  const std::uint64_t ma = magnitude(a);
                  const std::uint64_t mb = magnitude(b);
                  if (ma != mb)
                      return ma > mb;
                  return a->path < b->path;
              });

    TextTable table({"phase", "base_self", "cand_self", "delta",
                     "delta_pct", "verdict"});
    for (const PhaseDelta *delta : ranked) {
        const std::int64_t change =
            static_cast<std::int64_t>(delta->candSelf) -
            static_cast<std::int64_t>(delta->baseSelf);
        char pct_cell[32];
        if (std::isinf(delta->deltaPct))
            std::snprintf(pct_cell, sizeof(pct_cell), "new");
        else
            std::snprintf(pct_cell, sizeof(pct_cell), "%+.1f%%",
                          delta->deltaPct);
        table.addRow(
            {delta->path,
             delta->inBase ? cycles(delta->baseSelf) : "-",
             delta->inCand ? cycles(delta->candSelf) : "-",
             signedCycles(change), pct_cell,
             delta->regressed      ? "SLOWER"
             : delta->significant  ? "faster"
                                   : "ok"});
    }
    std::ostringstream out;
    table.print(out, "ramp_prof: " + base.tool + " -> " +
                         cand.tool + " profile diff (" +
                         std::to_string(deltas.size()) +
                         " phases joined)");
    return out.str();
}

} // namespace ramp::perf
