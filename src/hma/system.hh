/**
 * @file
 * The HMA system simulator: 16 cores, two memories, one placement.
 *
 * Ties every substrate together: cores replay traces through the
 * placement map onto the two DRAM timing models, the AVF tracker
 * watches the global request stream, an optional migration engine is
 * driven at interval boundaries (its page moves are charged as real
 * line transfers into both memories), and the result carries IPC,
 * per-memory statistics, the measured page profile, and the
 * residency-weighted SER of Equation 2.
 */

#ifndef RAMP_HMA_SYSTEM_HH
#define RAMP_HMA_SYSTEM_HH

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

#include "dram/memory.hh"
#include "faults/injector.hh"
#include "faults/response.hh"
#include "hma/config.hh"
#include "migration/engine.hh"
#include "placement/map.hh"
#include "placement/profile.hh"
#include "reliability/avf.hh"
#include "trace/trace.hh"

namespace ramp
{

/** Everything one simulation run produced. */
struct SimResult
{
    /** Configuration label (policy name). */
    std::string label;

    /** @{ @name Performance */
    Cycle makespan = 0;
    std::uint64_t instructions = 0;
    std::uint64_t requests = 0;
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;

    /** System throughput: instructions per cycle over the run. */
    double ipc = 0;

    /** Memory accesses per kilo-instruction. */
    double mpki = 0;

    /** Mean read latency over both memories, in cycles. */
    double avgReadLatency = 0;

    /** Fraction of demand accesses served by the HBM. */
    double hbmAccessFraction = 0;
    /** @} */

    /** @{ @name Memory-device statistics */
    DramStats hbmStats;
    DramStats ddrStats;
    /** @} */

    /** @{ @name Migration activity */
    std::uint64_t migratedPages = 0;
    std::uint64_t migrationEvents = 0;
    /** @} */

    /** @{ @name Online faults (zero when no injector ran) */
    /** Faults the injector landed on this run. */
    std::uint64_t faultsInjected = 0;

    /** Pages retired by uncorrected errors. */
    std::uint64_t pagesRetired = 0;

    /** HBM frames lost to capacity events. */
    std::uint64_t capacityLostPages = 0;

    /** Pages the fault response moved (remaps + sweeps). */
    std::uint64_t responseMoves = 0;

    /** Remap retry attempts (backoff loop). */
    std::uint64_t responseRetries = 0;

    /** True when the run finished in degraded mode. */
    bool degraded = false;
    /** @} */

    /** @{ @name Reliability */
    /** Per-page counts and AVF measured during this run. */
    PageProfile profile;

    /** Footprint-mean memory AVF. */
    double memoryAvf = 0;

    /** Residency-weighted SER (Equation 2, arbitrary FIT units). */
    double ser = 0;
    /** @} */
};

/** One configured simulator instance; run() is single-shot. */
class HmaSystem
{
  public:
    explicit HmaSystem(const SystemConfig &config);

    /**
     * Simulate a workload under a placement.
     *
     * @param traces per-core memory-level traces
     * @param placement initial page placement (moved in; mutated by
     *                  the engine during the run)
     * @param engine optional dynamic migration engine
     * @param injector optional online fault injector (one fresh
     *                 instance per run); faults it lands are
     *                 responded to inline — retirement, emergency
     *                 sweeps, degraded mode (DESIGN.md §12)
     */
    SimResult run(const std::vector<CoreTrace> &traces,
                  PlacementMap placement,
                  MigrationEngine *engine = nullptr,
                  FaultInjector *injector = nullptr);

    /**
     * run() on a caller-owned placement map that survives the run
     * (run() delegates here with its by-value copy). The placement
     * service replays many per-tenant epoch slices against one
     * shard map, so the map must accumulate mutations — frame
     * allocations, migrations, retirements — across runs.
     */
    SimResult runInPlace(const std::vector<CoreTrace> &traces,
                         PlacementMap &placement,
                         MigrationEngine *engine = nullptr,
                         FaultInjector *injector = nullptr);

    /** The configuration this system was built with. */
    const SystemConfig &config() const { return config_; }

  private:
    /**
     * One line transfer of an in-flight page migration. Transfers
     * are paced (SystemConfig::migLineSpacingCycles) and injected
     * into the memories in time order alongside demand traffic, so
     * migration consumes bandwidth without creating an unrealistic
     * head-of-line burst at the interval boundary.
     */
    struct MigOp
    {
        Cycle when;
        Addr devAddr;
        MemoryId mem;
        bool isWrite;
    };

    /** Per-page HBM residency bookkeeping for the SER integral. */
    struct Residency
    {
        std::unordered_map<PageId, Cycle> enteredAt;
        std::unordered_map<PageId, Cycle> accumulated;

        void enter(PageId page, Cycle now);
        void leave(PageId page, Cycle now);
        double fraction(PageId page, Cycle makespan) const;
    };

    /**
     * Apply a migration decision: move the pages in the map, update
     * residency, and schedule each page's 64 line reads + 64 line
     * writes as paced transfers starting at the boundary.
     */
    void applyDecision(PlacementMap &map,
                       const MigrationDecision &decision, Cycle now,
                       Residency &residency,
                       std::deque<MigOp> &transfers);

    /** Schedule one page copy as paced line transfers. */
    void scheduleTransfer(Cycle &next_slot,
                          const std::vector<Addr> &src_addrs,
                          MemoryId src_mem,
                          const std::vector<Addr> &dst_addrs,
                          MemoryId dst_mem,
                          std::deque<MigOp> &transfers);

    /**
     * One injector epoch: land the epoch's faults (retirements,
     * risk notes, capacity loss), retry owed cross-tier remaps with
     * backoff, and run the bounded emergency-demotion sweep when the
     * HBM is overfull. Every fault and response lands in the ledger.
     */
    void applyFaultEpoch(FaultInjector &injector,
                         std::uint64_t epoch, Cycle now,
                         PlacementMap &map, MigrationEngine *engine,
                         ResponseState &response, SimResult &result,
                         Residency &residency,
                         std::deque<MigOp> &transfers);

    SystemConfig config_;
    DramMemory hbm_;
    DramMemory ddr_;
};

} // namespace ramp

#endif // RAMP_HMA_SYSTEM_HH
