/**
 * @file
 * Trace-driven core timing model.
 *
 * Each core replays its memory-level trace: non-memory instructions
 * retire at the issue width, reads occupy an MSHR until the memory
 * returns, posted writes are fire-and-forget, and a ROB window bounds
 * how far the core may run ahead of its oldest outstanding read.
 * This yields IPC that is sensitive to both memory latency and
 * bandwidth — the property every figure of the paper measures.
 */

#ifndef RAMP_HMA_CORE_MODEL_HH
#define RAMP_HMA_CORE_MODEL_HH

#include <cstdint>
#include <deque>
#include <queue>
#include <vector>

#include "common/types.hh"
#include "trace/trace.hh"

namespace ramp
{

/** Replay state of one core. */
class CoreModel
{
  public:
    /**
     * @param trace the core's request stream (borrowed)
     * @param issue_width non-memory IPC ceiling
     * @param rob_size run-ahead window in instructions
     * @param max_reads outstanding read (MSHR) limit
     */
    CoreModel(const CoreTrace &trace, std::uint32_t issue_width,
              std::uint32_t rob_size, std::uint32_t max_reads);

    /** True when every request has been issued. */
    bool done() const { return next_ >= trace_->size(); }

    /** The request to issue next (undefined when done). */
    const MemRequest &current() const { return (*trace_)[next_]; }

    /**
     * Earliest cycle the next request may issue, given compute time
     * and the MSHR/ROB constraints resolved so far.
     */
    Cycle nextIssueTime() const { return readyTime_; }

    /**
     * Commit the current request as issued at nextIssueTime().
     *
     * @param completion read completion time from the memory model
     *                   (ignored for writes)
     * @return false when the trace is exhausted afterwards
     */
    bool retire(Cycle completion);

    /** Instructions the core has issued. */
    std::uint64_t instructions() const { return instructions_; }

    /** Completion time of the core's last activity. */
    Cycle finishTime() const { return finishTime_; }

  private:
    void computeNextReady();

    const CoreTrace *trace_;
    std::uint32_t issueWidth_;
    std::uint32_t robSize_;
    std::uint32_t maxReads_;

    std::size_t next_ = 0;
    double computeReady_ = 0; ///< fractional compute-limited time
    Cycle readyTime_ = 0;
    std::uint64_t instructions_ = 0;
    Cycle finishTime_ = 0;

    /** Completion times of outstanding reads (min-heap). */
    std::priority_queue<Cycle, std::vector<Cycle>,
                        std::greater<>> outstanding_;

    /** (completion, instruction index) of in-flight reads. */
    std::deque<std::pair<Cycle, std::uint64_t>> robWindow_;
};

} // namespace ramp

#endif // RAMP_HMA_CORE_MODEL_HH
