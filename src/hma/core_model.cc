#include "hma/core_model.hh"

#include <algorithm>

#include "common/logging.hh"

namespace ramp
{

CoreModel::CoreModel(const CoreTrace &trace, std::uint32_t issue_width,
                     std::uint32_t rob_size, std::uint32_t max_reads)
    : trace_(&trace), issueWidth_(issue_width), robSize_(rob_size),
      maxReads_(max_reads)
{
    if (issue_width == 0 || rob_size == 0 || max_reads == 0)
        ramp_fatal("core model parameters must be positive");
    if (!trace.empty())
        computeNextReady();
}

void
CoreModel::computeNextReady()
{
    const MemRequest &req = (*trace_)[next_];

    // Compute-limited time: the gap's instructions retire at the
    // issue width.
    computeReady_ += static_cast<double>(req.gap) /
                     static_cast<double>(issueWidth_);
    Cycle ready = static_cast<Cycle>(computeReady_);

    // Retire reads that have certainly completed by then.
    while (!outstanding_.empty() && outstanding_.top() <= ready)
        outstanding_.pop();

    // MSHR constraint: wait for the oldest read if all slots busy.
    while (outstanding_.size() >= maxReads_) {
        ready = std::max(ready, outstanding_.top());
        outstanding_.pop();
    }

    // ROB constraint: the next instruction may not be more than
    // robSize_ instructions ahead of an incomplete read.
    const std::uint64_t instr_index = instructions_ + req.gap;
    while (!robWindow_.empty()) {
        const auto &[completion, index] = robWindow_.front();
        if (completion <= ready) {
            robWindow_.pop_front();
            continue;
        }
        if (instr_index - index >= robSize_) {
            ready = std::max(ready, completion);
            robWindow_.pop_front();
            continue;
        }
        break;
    }

    computeReady_ = std::max(computeReady_,
                             static_cast<double>(ready));
    readyTime_ = ready;
}

bool
CoreModel::retire(Cycle completion)
{
    const MemRequest &req = (*trace_)[next_];
    instructions_ += req.instructions();

    if (!req.isWrite) {
        outstanding_.push(completion);
        robWindow_.emplace_back(completion, instructions_);
        finishTime_ = std::max(finishTime_, completion);
    } else {
        // Posted write: the core moves on at issue time.
        finishTime_ = std::max(finishTime_, readyTime_);
    }

    if (++next_ >= trace_->size())
        return false;
    computeNextReady();
    return true;
}

} // namespace ramp
