#include "hma/config.hh"

#include <cmath>

#include "common/logging.hh"

namespace ramp
{

void
validateSystemConfig(const SystemConfig &config)
{
    if (config.cores <= 0)
        ramp_invalid("system config: cores must be >= 1, got ",
                     config.cores);
    if (config.issueWidth == 0)
        ramp_invalid("system config: issueWidth must be >= 1");
    if (config.robSize == 0)
        ramp_invalid("system config: robSize must be >= 1");
    if (config.maxOutstandingReads == 0)
        ramp_invalid("system config: maxOutstandingReads must be "
                     ">= 1");

    validateDramConfig(config.hbm);
    validateDramConfig(config.ddr);

    if (!std::isfinite(config.ser.fitUncHbmPerGB) ||
        config.ser.fitUncHbmPerGB < 0)
        ramp_invalid("system config: fitUncHbmPerGB ",
                     config.ser.fitUncHbmPerGB,
                     " must be a finite non-negative FIT rate");
    if (!std::isfinite(config.ser.fitUncDdrPerGB) ||
        config.ser.fitUncDdrPerGB <= 0)
        ramp_invalid("system config: fitUncDdrPerGB ",
                     config.ser.fitUncDdrPerGB,
                     " must be a finite positive FIT rate (it is "
                     "the SER baseline denominator)");

    if (config.fcIntervalCycles == 0)
        ramp_invalid("system config: fcIntervalCycles must be >= 1");
    if (config.meaIntervalCycles == 0)
        ramp_invalid("system config: meaIntervalCycles must be "
                     ">= 1");
    if (config.meaIntervalCycles > config.fcIntervalCycles)
        ramp_invalid("system config: meaIntervalCycles (",
                     config.meaIntervalCycles,
                     ") must not exceed fcIntervalCycles (",
                     config.fcIntervalCycles,
                     "); the cross-counter scheme nests MEA "
                     "intervals inside one FC interval");
    if (config.migLineSpacingCycles == 0)
        ramp_invalid("system config: migLineSpacingCycles must be "
                     ">= 1");
}

} // namespace ramp
