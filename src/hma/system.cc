#include "hma/system.hh"

#include <algorithm>
#include <queue>

#include "common/logging.hh"
#include "eventlog/eventlog.hh"
#include "health/health.hh"
#include "hma/core_model.hh"
#include "prof/prof.hh"
#include "telemetry/telemetry.hh"

namespace ramp
{

namespace
{

/** Telemetry handles of the simulator hot path (one lookup ever). */
struct SystemTelemetry
{
    telemetry::Counter &hbmAccesses =
        telemetry::metrics().counter("hma.accesses.hbm");
    telemetry::Counter &ddrAccesses =
        telemetry::metrics().counter("hma.accesses.ddr");
    telemetry::Counter &runs =
        telemetry::metrics().counter("hma.runs");
    telemetry::Counter &instructions =
        telemetry::metrics().counter("hma.instructions");
    telemetry::Counter &boundaries =
        telemetry::metrics().counter(
            "migration.interval_boundaries");
    telemetry::Counter &epochs =
        telemetry::metrics().counter("migration.epochs");
    telemetry::Counter &promoted =
        telemetry::metrics().counter("migration.pages_promoted");
    telemetry::Counter &demoted =
        telemetry::metrics().counter("migration.pages_demoted");
    telemetry::Counter &swaps =
        telemetry::metrics().counter("migration.swaps");
    telemetry::HistogramMetric &epochPages =
        telemetry::metrics().histogram(
            "migration.epoch_pages",
            telemetry::FixedHistogram::linear(0, 512, 16));
    telemetry::HistogramMetric &epochGap =
        telemetry::metrics().histogram(
            "migration.epoch_gap_intervals",
            telemetry::FixedHistogram::linear(0, 32, 16));
    telemetry::Counter &regionOps =
        telemetry::metrics().counter("region.scheme_actions");
    telemetry::Counter &regionPages =
        telemetry::metrics().counter("region.scheme_pages");
    telemetry::Counter &faultsInjected =
        telemetry::metrics().counter("faults.injected");
    telemetry::Counter &faultsCorrectable =
        telemetry::metrics().counter("faults.correctable");
    telemetry::Counter &faultsUncorrected =
        telemetry::metrics().counter("faults.uncorrected");
    telemetry::Counter &faultsCapacityPages =
        telemetry::metrics().counter("faults.capacity_pages");
    telemetry::Counter &faultsRetired =
        telemetry::metrics().counter("faults.retired");
    telemetry::Counter &faultsRemaps =
        telemetry::metrics().counter("faults.remaps");
    telemetry::Counter &faultsSweepMoves =
        telemetry::metrics().counter("faults.sweep_moves");
    telemetry::Counter &faultsRetries =
        telemetry::metrics().counter("faults.retries");
    telemetry::Counter &faultsDegradedRuns =
        telemetry::metrics().counter("faults.degraded_runs");
};

SystemTelemetry &
systemTelemetry()
{
    static SystemTelemetry telemetry;
    return telemetry;
}

} // namespace

HmaSystem::HmaSystem(const SystemConfig &config)
    : config_(config), hbm_(config.hbm), ddr_(config.ddr)
{
    if (config.cores <= 0)
        ramp_fatal("system needs at least one core");
}

void
HmaSystem::Residency::enter(PageId page, Cycle now)
{
    enteredAt[page] = now;
}

void
HmaSystem::Residency::leave(PageId page, Cycle now)
{
    const auto it = enteredAt.find(page);
    if (it == enteredAt.end())
        return;
    accumulated[page] += now - it->second;
    enteredAt.erase(it);
}

double
HmaSystem::Residency::fraction(PageId page, Cycle makespan) const
{
    if (makespan == 0)
        return 0.0;
    Cycle total = 0;
    const auto acc = accumulated.find(page);
    if (acc != accumulated.end())
        total += acc->second;
    const auto open = enteredAt.find(page);
    if (open != enteredAt.end())
        total += makespan - std::min(makespan, open->second);
    return std::min(1.0, static_cast<double>(total) /
                             static_cast<double>(makespan));
}

namespace
{

/** Device addresses of every line of a page (allocates the frame). */
std::vector<Addr>
pageLineAddrs(PlacementMap &map, PageId page)
{
    std::vector<Addr> addrs;
    addrs.reserve(linesPerPage);
    const Addr base = pageBase(page);
    for (std::uint64_t l = 0; l < linesPerPage; ++l)
        addrs.push_back(map.deviceAddr(base + l * lineSize));
    return addrs;
}

} // namespace

void
HmaSystem::scheduleTransfer(Cycle &next_slot,
                            const std::vector<Addr> &src_addrs,
                            MemoryId src_mem,
                            const std::vector<Addr> &dst_addrs,
                            MemoryId dst_mem,
                            std::deque<MigOp> &transfers)
{
    for (std::size_t i = 0; i < src_addrs.size(); ++i) {
        transfers.push_back({next_slot, src_addrs[i], src_mem,
                             false});
        transfers.push_back({next_slot, dst_addrs[i], dst_mem, true});
        next_slot += config_.migLineSpacingCycles;
    }
}

void
HmaSystem::applyDecision(PlacementMap &map,
                         const MigrationDecision &decision, Cycle now,
                         Residency &residency,
                         std::deque<MigOp> &transfers)
{
    // Pace this decision's copies after any still-draining ones.
    Cycle next_slot = now;
    if (!transfers.empty())
        next_slot = std::max(next_slot, transfers.back().when);

    // Evictions first: they free the frames promotions fill.
    for (const PageId page : decision.evictions) {
        auto src_addrs = pageLineAddrs(map, page);
        if (!map.evictToDdr(page))
            continue;
        residency.leave(page, now);
        scheduleTransfer(next_slot, src_addrs, MemoryId::HBM,
                         pageLineAddrs(map, page), MemoryId::DDR,
                         transfers);
    }

    for (const auto &[hbm_page, ddr_page] : decision.swaps) {
        auto hbm_addrs = pageLineAddrs(map, hbm_page);
        auto ddr_addrs = pageLineAddrs(map, ddr_page);
        if (!map.swap(hbm_page, ddr_page))
            continue;
        residency.leave(hbm_page, now);
        residency.enter(ddr_page, now);
        // Out-of-HBM copy and into-HBM copy; frames were exchanged,
        // so the new device addresses are the old partner's.
        scheduleTransfer(next_slot, hbm_addrs, MemoryId::HBM,
                         pageLineAddrs(map, hbm_page), MemoryId::DDR,
                         transfers);
        scheduleTransfer(next_slot, ddr_addrs, MemoryId::DDR,
                         pageLineAddrs(map, ddr_page), MemoryId::HBM,
                         transfers);
    }

    for (const PageId page : decision.promotions) {
        auto src_addrs = pageLineAddrs(map, page);
        if (!map.promoteToHbm(page))
            continue;
        residency.enter(page, now);
        scheduleTransfer(next_slot, src_addrs, MemoryId::DDR,
                         pageLineAddrs(map, page), MemoryId::HBM,
                         transfers);
    }

    // Region batch ops (already ordered demotions-first by the
    // scheme engine). Each op is one capacity-checked batch move and
    // one ledger record, not N page decisions.
    for (const RegionOp &op : decision.regionOps) {
        if (op.action == RegionAction::None)
            continue;
        const MemoryId dst = op.action == RegionAction::Demote
                                 ? MemoryId::DDR
                                 : MemoryId::HBM;
        const MemoryId src = dst == MemoryId::HBM ? MemoryId::DDR
                                                  : MemoryId::HBM;
        // Two-phase move: peek the movable set to capture source
        // device addresses, batch-move, then capture destinations.
        const auto movable =
            map.movablePages(op.first, op.pages, dst);
        std::vector<std::vector<Addr>> src_addrs;
        src_addrs.reserve(movable.size());
        for (const PageId page : movable)
            src_addrs.push_back(pageLineAddrs(map, page));
        const std::uint64_t moved =
            map.moveRange(op.first, op.pages, dst);
        for (std::size_t i = 0; i < movable.size(); ++i) {
            const PageId page = movable[i];
            if (dst == MemoryId::HBM)
                residency.enter(page, now);
            else
                residency.leave(page, now);
            scheduleTransfer(next_slot, src_addrs[i], src,
                             pageLineAddrs(map, page), dst,
                             transfers);
        }
        if (op.action == RegionAction::Pin)
            map.pinRange(op.first, op.pages);
        RAMP_TELEM({
            auto &tel = systemTelemetry();
            tel.regionOps.add(1);
            tel.regionPages.add(moved);
        });
        RAMP_EVLOG({
            eventlog::EventRecord record;
            record.kind = eventlog::EventKind::Region;
            record.policy = eventlog::PolicyId::RegionMigration;
            record.epoch = now;
            record.page = op.first;
            record.partner = invalidPage;
            record.region = op.region;
            record.span = static_cast<std::uint32_t>(
                std::min<std::uint64_t>(op.pages, UINT32_MAX));
            record.moved = static_cast<std::uint32_t>(
                std::min<std::uint64_t>(moved, UINT32_MAX));
            record.detail = static_cast<std::uint8_t>(op.action);
            record.src = eventlog::tierOf(src);
            record.dst = eventlog::tierOf(dst);
            record.hotness = op.density;
            record.avf = op.avf;
            record.threshHot = op.threshHot;
            record.threshRisk = op.threshRisk;
            eventlog::emit(record);
        });
    }
}

void
HmaSystem::applyFaultEpoch(FaultInjector &injector,
                           std::uint64_t epoch, Cycle now,
                           PlacementMap &map, MigrationEngine *engine,
                           ResponseState &response, SimResult &result,
                           Residency &residency,
                           std::deque<MigOp> &transfers)
{
    const auto faults = injector.onEpoch(epoch);

    // Pace response copies after any still-draining ones, exactly
    // like a migration decision would.
    Cycle next_slot = now;
    if (!transfers.empty())
        next_slot = std::max(next_slot, transfers.back().when);

    // Phase 1: land this epoch's faults.
    for (const InjectedFault &fault : faults) {
        ++result.faultsInjected;

        std::uint64_t capacity_pages = 0;
        if (fault.kind == FaultEventKind::CapacityLoss) {
            capacity_pages = fault.pages;
            if (capacity_pages == 0 && fault.pct > 0)
                capacity_pages = static_cast<std::uint64_t>(
                    static_cast<double>(map.hbmCapacityPages()) *
                    fault.pct / 100.0);
        }
        const MemoryId struck_tier =
            fault.kind == FaultEventKind::CapacityLoss
                ? fault.tier
                : map.memoryOf(fault.page);
        RAMP_TELEM(systemTelemetry().faultsInjected.add(1));
        RAMP_EVLOG({
            eventlog::EventRecord record;
            record.kind = eventlog::EventKind::Inject;
            record.policy = eventlog::PolicyId::FaultInject;
            record.epoch = now;
            record.page = fault.page;
            record.partner = invalidPage;
            record.detail = static_cast<std::uint8_t>(fault.kind);
            record.region = static_cast<std::uint32_t>(fault.source);
            record.span = static_cast<std::uint32_t>(
                std::min<std::uint64_t>(capacity_pages, UINT32_MAX));
            record.moved = static_cast<std::uint32_t>(
                std::min<std::uint64_t>(fault.count, UINT32_MAX));
            record.src = eventlog::tierOf(struck_tier);
            record.dst = eventlog::tierOf(struck_tier);
            eventlog::emit(record);
        });

        switch (fault.kind) {
          case FaultEventKind::Correctable: {
            // Correctable strikes survive ECC; they only raise the
            // page's effective risk for the classifiers.
            RAMP_TELEM(
                systemTelemetry().faultsCorrectable.add(1));
            response.noteCorrectable(fault.page, fault.count);
            if (engine != nullptr)
                engine->onFault(fault.page, false, now);
            break;
          }
          case FaultEventKind::Uncorrected: {
            RAMP_TELEM(
                systemTelemetry().faultsUncorrected.add(1));
            // Capture the dying frame's addresses before the retire
            // drops it — the salvage copy reads from there.
            const auto src_addrs = pageLineAddrs(map, fault.page);
            const RetireOutcome outcome =
                map.retirePage(fault.page);
            if (!outcome.retired) {
                if (engine != nullptr)
                    engine->onFault(fault.page, true, now);
                break; // second strike on an already-retired page
            }
            ++result.pagesRetired;
            RAMP_TELEM(systemTelemetry().faultsRetired.add(1));
            if (outcome.from == MemoryId::HBM &&
                outcome.to == MemoryId::DDR)
                residency.leave(fault.page, now);
            else if (outcome.from == MemoryId::DDR &&
                     outcome.to == MemoryId::HBM)
                residency.enter(fault.page, now);
            // Salvage copy onto the fresh frame (same tier when the
            // survivor was full; the remap is then owed and retried).
            scheduleTransfer(next_slot, src_addrs, outcome.from,
                             pageLineAddrs(map, fault.page),
                             outcome.to, transfers);
            const PageStats *stats =
                result.profile.find(fault.page);
            RAMP_EVLOG({
                eventlog::EventRecord record;
                record.kind = eventlog::EventKind::Retire;
                record.policy = eventlog::PolicyId::FaultInject;
                record.epoch = now;
                record.page = fault.page;
                record.partner = invalidPage;
                record.src = eventlog::tierOf(outcome.from);
                record.dst = eventlog::tierOf(outcome.to);
                record.hotness =
                    stats == nullptr
                        ? 0.0f
                        : static_cast<float>(stats->hotness());
                record.avf = stats == nullptr
                                 ? 0.0f
                                 : static_cast<float>(stats->avf);
                eventlog::emit(record);
            });
            if (outcome.crossedTier) {
                ++result.responseMoves;
                RAMP_TELEM(systemTelemetry().faultsRemaps.add(1));
                RAMP_EVLOG({
                    eventlog::EventRecord record;
                    record.kind = eventlog::EventKind::Remap;
                    record.policy =
                        eventlog::PolicyId::FaultInject;
                    record.epoch = now;
                    record.page = fault.page;
                    record.partner = invalidPage;
                    record.src = eventlog::tierOf(outcome.from);
                    record.dst = eventlog::tierOf(outcome.to);
                    record.detail = 0; // retire
                    eventlog::emit(record);
                });
            } else {
                response.queueRemap(fault.page, epoch);
            }
            if (engine != nullptr)
                engine->onFault(fault.page, true, now);
            break;
          }
          case FaultEventKind::CapacityLoss: {
            const std::uint64_t lost =
                map.loseCapacity(fault.tier, capacity_pages);
            result.capacityLostPages += lost;
            RAMP_TELEM(
                systemTelemetry().faultsCapacityPages.add(lost));
            if (lost > 0) {
                // Losing tier capacity is permanent: the run keeps
                // going, but in degraded mode from here on.
                if (!response.degraded()) {
                    response.setDegraded();
                    RAMP_TELEM(systemTelemetry()
                                   .faultsDegradedRuns.add(1));
                }
                RAMP_EVLOG({
                    eventlog::EventRecord record;
                    record.kind = eventlog::EventKind::Degrade;
                    record.policy =
                        eventlog::PolicyId::FaultInject;
                    record.epoch = now;
                    record.page = invalidPage;
                    record.partner = invalidPage;
                    record.detail = 0; // capacity-backlog
                    record.span = static_cast<std::uint32_t>(
                        std::min<std::uint64_t>(lost, UINT32_MAX));
                    record.moved = 0;
                    record.hotness = static_cast<float>(
                        map.overfullHbmPages());
                    eventlog::emit(record);
                });
            }
            break;
          }
        }
    }

    // Phase 2: retry owed cross-tier remaps (backoff on failure).
    for (const PageId page : response.dueRemaps(epoch)) {
        const auto movable =
            map.movablePages(page, 1, MemoryId::HBM);
        if (!movable.empty()) {
            const auto src_addrs = pageLineAddrs(map, page);
            map.moveRange(page, 1, MemoryId::HBM);
            map.pinRange(page, 1);
            residency.enter(page, now);
            scheduleTransfer(next_slot, src_addrs, MemoryId::DDR,
                             pageLineAddrs(map, page),
                             MemoryId::HBM, transfers);
            response.resolveRemap(page);
            ++result.responseMoves;
            RAMP_TELEM(systemTelemetry().faultsRemaps.add(1));
            RAMP_EVLOG({
                eventlog::EventRecord record;
                record.kind = eventlog::EventKind::Remap;
                record.policy = eventlog::PolicyId::FaultInject;
                record.epoch = now;
                record.page = page;
                record.partner = invalidPage;
                record.src = eventlog::tierOf(MemoryId::DDR);
                record.dst = eventlog::tierOf(MemoryId::HBM);
                record.detail = 2; // retry
                eventlog::emit(record);
            });
        } else {
            RAMP_TELEM(systemTelemetry().faultsRetries.add(1));
            if (response.backoff(page, epoch)) {
                // Out of retries: the page stays where it landed,
                // pinned, and the run is degraded.
                map.pinRange(page, 1);
                if (!response.degraded()) {
                    response.setDegraded();
                    RAMP_TELEM(systemTelemetry()
                                   .faultsDegradedRuns.add(1));
                }
                RAMP_EVLOG({
                    eventlog::EventRecord record;
                    record.kind = eventlog::EventKind::Degrade;
                    record.policy =
                        eventlog::PolicyId::FaultInject;
                    record.epoch = now;
                    record.page = page;
                    record.partner = invalidPage;
                    record.detail = 1; // remap-failed
                    record.hotness = static_cast<float>(
                        response.backlog());
                    eventlog::emit(record);
                });
            }
        }
    }

    // Phase 3: bounded emergency demotion while the HBM is overfull
    // (capacity loss can strand more residents than frames).
    const std::uint64_t backlog = map.overfullHbmPages();
    if (backlog > 0) {
        const std::uint64_t budget = std::min<std::uint64_t>(
            backlog, injector.config().sweepCapPages);
        const auto victims =
            sweepVictims(map, result.profile, budget);
        std::uint64_t swept = 0;
        for (const PageId page : victims) {
            const auto src_addrs = pageLineAddrs(map, page);
            if (map.moveRange(page, 1, MemoryId::DDR) == 0)
                continue;
            residency.leave(page, now);
            scheduleTransfer(next_slot, src_addrs, MemoryId::HBM,
                             pageLineAddrs(map, page),
                             MemoryId::DDR, transfers);
            ++swept;
            ++result.responseMoves;
            RAMP_TELEM(systemTelemetry().faultsSweepMoves.add(1));
            RAMP_EVLOG({
                eventlog::EventRecord record;
                record.kind = eventlog::EventKind::Remap;
                record.policy = eventlog::PolicyId::FaultInject;
                record.epoch = now;
                record.page = page;
                record.partner = invalidPage;
                record.src = eventlog::tierOf(MemoryId::HBM);
                record.dst = eventlog::tierOf(MemoryId::DDR);
                record.detail = 1; // sweep
                eventlog::emit(record);
            });
        }
        const std::uint64_t remaining = map.overfullHbmPages();
        if (remaining > 0) {
            // Budget exhausted with backlog left: note it once per
            // epoch so ramp_explain can chart the drain.
            RAMP_EVLOG({
                eventlog::EventRecord record;
                record.kind = eventlog::EventKind::Degrade;
                record.policy = eventlog::PolicyId::FaultInject;
                record.epoch = now;
                record.page = invalidPage;
                record.partner = invalidPage;
                record.detail = 0; // capacity-backlog
                record.span = 0;
                record.moved = static_cast<std::uint32_t>(
                    std::min<std::uint64_t>(swept, UINT32_MAX));
                record.hotness = static_cast<float>(remaining);
                eventlog::emit(record);
            });
        }
    }
}

SimResult
HmaSystem::run(const std::vector<CoreTrace> &traces,
               PlacementMap placement, MigrationEngine *engine,
               FaultInjector *injector)
{
    return runInPlace(traces, placement, engine, injector);
}

SimResult
HmaSystem::runInPlace(const std::vector<CoreTrace> &traces,
                      PlacementMap &placement,
                      MigrationEngine *engine,
                      FaultInjector *injector)
{
    if (static_cast<int>(traces.size()) > config_.cores)
        ramp_fatal("more traces than configured cores");

    RAMP_TELEM_SPAN(run_span, "hma.run", "sim",
                    telemetry::traceArg(
                        "engine",
                        engine != nullptr ? engine->name()
                                          : "static"));
    RAMP_PROF_SCOPE_PMU(run_prof, "hma.run");

    SimResult result;
    AvfTracker avf;
    Residency residency;

    for (const PageId page : placement.hbmPages())
        residency.enter(page, 0);

    std::vector<CoreModel> cores;
    cores.reserve(traces.size());
    for (const auto &trace : traces)
        cores.emplace_back(trace, config_.issueWidth, config_.robSize,
                           config_.maxOutstandingReads);

    // Global issue order: earliest-ready core first.
    using Entry = std::pair<Cycle, std::size_t>;
    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> pq;
    for (std::size_t i = 0; i < cores.size(); ++i)
        if (!cores[i].done())
            pq.push({cores[i].nextIssueTime(), i});

    Cycle next_boundary =
        engine != nullptr ? engine->interval() : 0;
    Cycle last_epoch = 0; ///< Previous non-empty decision boundary.
    ResponseState response(
        injector != nullptr ? injector->config().maxRetries : 8);
    Cycle next_inject =
        injector != nullptr ? injector->epochCycles() : 0;
    std::uint64_t inject_epoch = 0; ///< 1-based, like FaultEvent.

    // Health timeline: every injector epoch and every non-empty
    // migration boundary hands the recorder one sample with this
    // epoch's deltas (health/health.hh). High-water marks live out
    // here so the deltas survive across boundaries; the capture
    // costs one relaxed load per boundary when the timeline is off.
    [[maybe_unused]] std::uint64_t health_prev_faults = 0;
    [[maybe_unused]] std::uint64_t health_prev_retired = 0;
    [[maybe_unused]] std::uint64_t health_prev_lost = 0;
    [[maybe_unused]] std::uint64_t health_prev_moves = 0;
    [[maybe_unused]] auto health_sample = [&](std::uint64_t epoch,
                                              std::uint64_t churn) {
        health::TimelineSample sample;
        sample.source = "system";
        sample.epoch = epoch;
        sample.moves = churn;
        sample.faultsInjected =
            result.faultsInjected - health_prev_faults;
        sample.pagesRetired =
            result.pagesRetired - health_prev_retired;
        sample.capacityLost =
            result.capacityLostPages - health_prev_lost;
        health_prev_faults = result.faultsInjected;
        health_prev_retired = result.pagesRetired;
        health_prev_lost = result.capacityLostPages;
        sample.backlog =
            static_cast<double>(placement.overfullHbmPages());
        sample.degraded = response.degraded();
        health::ShardSample shard;
        shard.capacityPages = placement.hbmCapacityPages();
        shard.usedPages = placement.hbmUsedPages();
        shard.occupancy =
            shard.capacityPages == 0
                ? health::unmeasured
                : static_cast<double>(shard.usedPages) /
                      static_cast<double>(shard.capacityPages);
        shard.degraded = response.degraded();
        shard.retired = result.pagesRetired;
        sample.shards.push_back(shard);
        health::record(std::move(sample));
    };

    std::deque<MigOp> transfers;
    auto drain_transfers = [&](Cycle up_to) {
        while (!transfers.empty() && transfers.front().when <= up_to) {
            const MigOp op = transfers.front();
            transfers.pop_front();
            DramMemory &dram =
                op.mem == MemoryId::HBM ? hbm_ : ddr_;
            dram.access(op.when, op.devAddr, op.isWrite);
        }
    };

    while (!pq.empty()) {
        const auto [ready, core_idx] = pq.top();
        pq.pop();
        CoreModel &core = cores[core_idx];
        const Cycle issue_t = core.nextIssueTime();

        // Interval boundaries strictly before this issue. Injector
        // epochs interleave with engine boundaries in cycle order;
        // the injector wins ties so fault responses land before a
        // same-cycle migration decision sees the placement.
        while ((engine != nullptr && next_boundary <= issue_t) ||
               (injector != nullptr && next_inject <= issue_t)) {
            const bool engine_due =
                engine != nullptr && next_boundary <= issue_t;
            const bool inject_due =
                injector != nullptr && next_inject <= issue_t;
            if (inject_due &&
                (!engine_due || next_inject <= next_boundary)) {
                drain_transfers(next_inject);
                ++inject_epoch;
                {
                    RAMP_PROF_SCOPE(fault_prof, "hma.fault_epoch");
                    applyFaultEpoch(*injector, inject_epoch,
                                    next_inject, placement, engine,
                                    response, result, residency,
                                    transfers);
                }
                RAMP_HEALTH({
                    health_sample(inject_epoch,
                                  result.responseMoves -
                                      health_prev_moves);
                    health_prev_moves = result.responseMoves;
                });
                next_inject += injector->epochCycles();
                continue;
            }
            drain_transfers(next_boundary);
            RAMP_PROF_SCOPE(epoch_prof, "hma.migration_epoch");
            const auto decision =
                engine->onInterval(next_boundary, placement);
            RAMP_TELEM(systemTelemetry().boundaries.add(1));
            if (!decision.empty()) {
                ++result.migrationEvents;
                RAMP_TELEM({
                    auto &tel = systemTelemetry();
                    tel.epochs.add(1);
                    tel.promoted.add(decision.promotions.size() +
                                     decision.swaps.size());
                    tel.demoted.add(decision.evictions.size() +
                                    decision.swaps.size());
                    tel.swaps.add(decision.swaps.size());
                    tel.epochPages.observe(static_cast<double>(
                        decision.pagesMoved()));
                    tel.epochGap.observe(
                        static_cast<double>(next_boundary -
                                            last_epoch) /
                        static_cast<double>(engine->interval()));
                });
                RAMP_EVLOG({
                    eventlog::EventRecord record;
                    record.kind = eventlog::EventKind::Epoch;
                    record.policy = eventlog::policyIdFromName(
                        engine->name());
                    record.epoch = next_boundary;
                    // Epoch records reuse the score fields as the
                    // boundary's move counts (record.hh).
                    record.hotness = static_cast<float>(
                        decision.promotions.size());
                    record.wrRatio = static_cast<float>(
                        decision.evictions.size());
                    record.avf = static_cast<float>(
                        decision.swaps.size());
                    eventlog::emit(record);
                });
                last_epoch = next_boundary;
                applyDecision(placement, decision, next_boundary,
                              residency, transfers);
                RAMP_HEALTH(health_sample(
                    next_boundary / engine->interval(),
                    decision.pagesMoved()));
            }
            next_boundary += engine->interval();
        }
        drain_transfers(issue_t);

        const MemRequest &req = core.current();
        const PageId page = pageOf(req.addr);
        const MemoryId mem = placement.memoryOf(page);

        if (engine != nullptr)
            engine->onAccess(page, req.isWrite, mem);
        if (injector != nullptr)
            injector->onAccess(page, req.isWrite, mem);
        const Cycle penalty =
            engine != nullptr ? engine->remapPenalty(page) : 0;

        avf.onAccess(req.addr, req.isWrite, issue_t);
        result.profile.recordAccess(page, req.isWrite);

        const Addr dev_addr = placement.deviceAddr(req.addr);
        DramMemory &dram = mem == MemoryId::HBM ? hbm_ : ddr_;
        const Cycle completion =
            dram.access(issue_t + penalty, dev_addr, req.isWrite);

        ++result.requests;
        if (req.isWrite)
            ++result.writes;
        else
            ++result.reads;
        if (mem == MemoryId::HBM)
            ++result.hbmAccessFraction; // normalised below
        RAMP_TELEM(mem == MemoryId::HBM
                       ? systemTelemetry().hbmAccesses.add(1)
                       : systemTelemetry().ddrAccesses.add(1));

        if (core.retire(req.isWrite ? issue_t : completion))
            pq.push({core.nextIssueTime(), core_idx});
    }

    // Finish any still-draining page copies.
    drain_transfers(UINT64_MAX);

    for (const auto &core : cores) {
        result.instructions += core.instructions();
        result.makespan = std::max(result.makespan,
                                   core.finishTime());
    }
    result.makespan = std::max<Cycle>(result.makespan, 1);
    result.ipc = static_cast<double>(result.instructions) /
                 static_cast<double>(result.makespan);
    result.mpki = result.instructions == 0
                      ? 0.0
                      : static_cast<double>(result.requests) *
                            1000.0 /
                            static_cast<double>(result.instructions);
    result.hbmAccessFraction =
        result.requests == 0
            ? 0.0
            : result.hbmAccessFraction /
                  static_cast<double>(result.requests);

    avf.finalize(result.makespan);
    result.memoryAvf = avf.memoryAvf();
    for (const auto &[page, page_avf] : avf.pageAvfs())
        result.profile.setAvf(page, page_avf);

    // Residency-weighted Equation 2.
    const SerParams &ser = config_.ser;
    for (const auto &[page, stats] : result.profile.pages()) {
        const double in_hbm =
            residency.fraction(page, result.makespan);
        result.ser += stats.avf *
                      (ser.fitPerPage(MemoryId::HBM) * in_hbm +
                       ser.fitPerPage(MemoryId::DDR) *
                           (1.0 - in_hbm));
    }

    result.hbmStats = hbm_.stats();
    result.ddrStats = ddr_.stats();
    const std::uint64_t total_reads =
        result.hbmStats.reads + result.ddrStats.reads;
    if (total_reads > 0) {
        result.avgReadLatency =
            static_cast<double>(result.hbmStats.totalReadLatency +
                                result.ddrStats.totalReadLatency) /
            static_cast<double>(total_reads);
    }
    result.migratedPages = placement.migrations();
    result.responseRetries = response.retries();
    result.degraded = response.degraded();
    RAMP_TELEM({
        auto &tel = systemTelemetry();
        tel.runs.add(1);
        tel.instructions.add(result.instructions);
    });
    return result;
}

} // namespace ramp
