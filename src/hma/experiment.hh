/**
 * @file
 * Experiment harness helpers shared by benches, examples, and tests.
 *
 * Encodes the paper's two-phase methodology: a DDR-only profiling
 * pass measures per-page hotness and AVF (Section 4), then policy
 * passes replay the same traces under a placement or migration
 * scheme. The helpers also build the paper-prescribed initial
 * placements for the dynamic schemes (Section 6: performance
 * migration starts from the hot-oracular placement, reliability-
 * aware migration from the hot & low-risk placement).
 */

#ifndef RAMP_HMA_EXPERIMENT_HH
#define RAMP_HMA_EXPERIMENT_HH

#include <memory>
#include <string>
#include <vector>

#include "annotation/annotation.hh"
#include "faults/injector.hh"
#include "hma/system.hh"
#include "placement/policies.hh"
#include "region/engine.hh"
#include "trace/generator.hh"
#include "trace/workload.hh"

namespace ramp
{

/** A workload's spec, layout, and generated traces, bundled. */
struct WorkloadData
{
    WorkloadSpec spec;
    WorkloadLayout layout;
    std::vector<CoreTrace> traces;
};

/** Generate a workload's traces (deterministic in the options). */
WorkloadData prepareWorkload(const WorkloadSpec &spec,
                             const GeneratorOptions &options = {});

/** The DDR-only profiling pass (also the IPC/SER baseline). */
SimResult runDdrOnly(const SystemConfig &config,
                     const WorkloadData &data);

/** One static placement pass driven by a prior profile. */
SimResult runStaticPolicy(const SystemConfig &config,
                          const WorkloadData &data, StaticPolicy policy,
                          const PageProfile &profile);

/** One Figure 1 sweep point (top fraction of hot pages in HBM). */
SimResult runHotFraction(const SystemConfig &config,
                         const WorkloadData &data,
                         const PageProfile &profile, double fraction);

/** The paper's three dynamic schemes. */
enum class DynamicScheme
{
    PerfFocused,   ///< Section 6.1
    FcReliability, ///< Section 6.2
    CrossCounter,  ///< Section 6.4
};

/** Name of a dynamic scheme. */
const char *dynamicSchemeName(DynamicScheme scheme);

/** Build the engine a scheme prescribes, with config intervals. */
std::unique_ptr<MigrationEngine>
makeEngine(DynamicScheme scheme, const SystemConfig &config);

/**
 * One dynamic migration pass. The initial placement follows the
 * paper: PerfFocused starts from the hot-oracular static placement;
 * the reliability-aware schemes start from the balanced (hot &
 * low-risk) oracular placement.
 */
SimResult runDynamic(const SystemConfig &config,
                     const WorkloadData &data, DynamicScheme scheme,
                     const PageProfile &profile);

/**
 * Run a custom engine (ablations): like runDynamic but with a
 * caller-built engine and explicit initial placement policy.
 */
SimResult runWithEngine(const SystemConfig &config,
                        const WorkloadData &data,
                        MigrationEngine &engine,
                        StaticPolicy initial_policy,
                        const PageProfile &profile);

/**
 * runWithEngine starting from the reliability-aware schemes' initial
 * placement (balanced, filled to capacity).
 */
SimResult runWithEngine(const SystemConfig &config,
                        const WorkloadData &data,
                        MigrationEngine &engine,
                        const PageProfile &profile);

/**
 * One static placement pass at region granularity: like
 * runStaticPolicy but the placement is built from profile-seeded
 * regions (buildRegionStaticPlacement). With
 * `region_config.maxRegions >= footprint` the placement — and so the
 * whole run — matches the page-mode pass.
 */
SimResult runRegionStatic(const SystemConfig &config,
                          const WorkloadData &data,
                          StaticPolicy policy,
                          const PageProfile &profile,
                          const RegionConfig &region_config = {});

/**
 * One dynamic pass under the region engine: a profile-seeded
 * RegionMonitor adapted each FC interval, with declarative schemes
 * (defaultRegionSchemes() when empty) emitting region batch moves.
 * Starts from the region-granular balanced placement.
 */
SimResult runRegionDynamic(const SystemConfig &config,
                           const WorkloadData &data,
                           const PageProfile &profile,
                           const RegionConfig &region_config = {},
                           std::vector<RegionScheme> schemes = {});

/**
 * runStaticPolicy under online fault injection: a fresh
 * FaultInjector is built from `faults` for the pass, so identical
 * configs reproduce identical fault schedules.
 */
SimResult runStaticFaulted(const SystemConfig &config,
                           const WorkloadData &data,
                           StaticPolicy policy,
                           const PageProfile &profile,
                           const InjectorConfig &faults);

/** runDynamic under online fault injection (fresh injector). */
SimResult runDynamicFaulted(const SystemConfig &config,
                            const WorkloadData &data,
                            DynamicScheme scheme,
                            const PageProfile &profile,
                            const InjectorConfig &faults);

/** runRegionDynamic under online fault injection (fresh injector). */
SimResult runRegionDynamicFaulted(
    const SystemConfig &config, const WorkloadData &data,
    const PageProfile &profile, const InjectorConfig &faults,
    const RegionConfig &region_config = {},
    std::vector<RegionScheme> schemes = {});

/** Annotation selection for a profiled workload (Section 7). */
AnnotationSelection annotationsFor(const WorkloadData &data,
                                   const PageProfile &profile,
                                   std::uint64_t hbm_capacity_pages);

/** The annotation-pinned static placement pass. */
SimResult runAnnotated(const SystemConfig &config,
                       const WorkloadData &data,
                       const PageProfile &profile);

} // namespace ramp

#endif // RAMP_HMA_EXPERIMENT_HH
