/**
 * @file
 * Full system configuration (Table 1, scaled 1/32 in capacity).
 *
 * One struct gathers the knobs of every subsystem so experiments are
 * reproducible from a single value. Time is in core cycles at
 * 3.2 GHz; the scaled migration intervals keep the paper's ratio of
 * interval length to HBM-turnover time (see DESIGN.md).
 */

#ifndef RAMP_HMA_CONFIG_HH
#define RAMP_HMA_CONFIG_HH

#include <cstdint>

#include "dram/config.hh"
#include "reliability/ser.hh"

namespace ramp
{

/** Everything the HMA simulator needs to run one experiment. */
struct SystemConfig
{
    /** @{ @name Processor (Table 1) */
    int cores = 16;
    std::uint32_t issueWidth = 4;
    std::uint32_t robSize = 128;

    /** Outstanding read misses a core can sustain (MSHR limit). */
    std::uint32_t maxOutstandingReads = 8;
    /** @} */

    /** @{ @name Memories */
    DramConfig hbm = hbmConfig();
    DramConfig ddr = ddr3Config();
    /** @} */

    /** Per-memory uncorrected FIT for the SER model. */
    SerParams ser;

    /** @{ @name Migration intervals (scaled; swept in Fig 13) */
    /** Full-Counter interval (paper: 100 ms). */
    Cycle fcIntervalCycles = 3'200'000;

    /** MEA interval (paper: 50 us). */
    Cycle meaIntervalCycles = 100'000;

    /**
     * Page-move budget per FC interval. The paper's 47K migrations
     * per 100 ms consume ~15% of DDR bandwidth; with the 1/32 scaled
     * capacity (and hence a compressed time axis), the equivalent
     * bandwidth share is this many pages per interval.
     */
    std::uint32_t fcMigrationCapPages = 256;

    /** MEA promotion budget per MEA interval (same reasoning). */
    std::uint32_t ccPromotionCapPages = 8;

    /**
     * Pacing of migration line transfers: one 64 B line every this
     * many cycles (32 = 2 B/cycle, about a quarter of the DDR
     * bandwidth), so page copies interleave with demand traffic
     * instead of bursting at the boundary.
     */
    Cycle migLineSpacingCycles = 32;
    /** @} */

    /** HBM capacity in pages. */
    std::uint64_t hbmPages() const { return hbm.capacityPages(); }

    /** MEA intervals per FC interval for the cross-counter scheme. */
    std::uint32_t fcPerMea() const
    {
        return static_cast<std::uint32_t>(
            fcIntervalCycles / meaIntervalCycles);
    }

    /** The default scaled Table 1 system. */
    static SystemConfig scaledDefault() { return SystemConfig{}; }
};

/**
 * Reject a malformed system configuration (zero cores/intervals,
 * invalid memories, non-finite FIT rates) with
 * std::invalid_argument and an actionable message. The harness
 * validates before profiling, so a sweep binary that drove a knob
 * out of range fails one pass, not the whole process.
 */
void validateSystemConfig(const SystemConfig &config);

} // namespace ramp

#endif // RAMP_HMA_CONFIG_HH
