#include "hma/experiment.hh"

#include "common/logging.hh"
#include "telemetry/telemetry.hh"

namespace ramp
{

WorkloadData
prepareWorkload(const WorkloadSpec &spec,
                const GeneratorOptions &options)
{
    RAMP_TELEM_SPAN(generate_span, "trace.generate", "workload",
                    telemetry::traceArg("workload", spec.name));
    WorkloadData data;
    data.spec = spec;
    validateWorkloadSpec(spec);
    data.layout = buildLayout(spec);
    data.traces = generateTraces(spec, data.layout, options);
    return data;
}

SimResult
runDdrOnly(const SystemConfig &config, const WorkloadData &data)
{
    HmaSystem system(config);
    auto result = system.run(
        data.traces,
        buildStaticPlacement(StaticPolicy::DdrOnly, PageProfile{},
                             config.hbmPages()));
    result.label = policyName(StaticPolicy::DdrOnly);
    return result;
}

SimResult
runStaticPolicy(const SystemConfig &config, const WorkloadData &data,
                StaticPolicy policy, const PageProfile &profile)
{
    HmaSystem system(config);
    auto result = system.run(
        data.traces,
        buildStaticPlacement(policy, profile, config.hbmPages()));
    result.label = policyName(policy);
    return result;
}

SimResult
runHotFraction(const SystemConfig &config, const WorkloadData &data,
               const PageProfile &profile, double fraction)
{
    HmaSystem system(config);
    auto result = system.run(
        data.traces, buildHotFractionPlacement(
                         profile, config.hbmPages(), fraction));
    result.label = "hot-fraction";
    return result;
}

const char *
dynamicSchemeName(DynamicScheme scheme)
{
    switch (scheme) {
      case DynamicScheme::PerfFocused: return "perf-migration";
      case DynamicScheme::FcReliability: return "fc-migration";
      case DynamicScheme::CrossCounter: return "cc-migration";
    }
    return "?";
}

std::unique_ptr<MigrationEngine>
makeEngine(DynamicScheme scheme, const SystemConfig &config)
{
    switch (scheme) {
      case DynamicScheme::PerfFocused:
        return std::make_unique<PerfFocusedMigration>(
            config.fcIntervalCycles, config.fcMigrationCapPages);
      case DynamicScheme::FcReliability:
        return std::make_unique<FcReliabilityMigration>(
            config.fcIntervalCycles, config.fcMigrationCapPages);
      case DynamicScheme::CrossCounter:
        return std::make_unique<CrossCounterMigration>(
            config.meaIntervalCycles, config.fcPerMea(), 32,
            config.ccPromotionCapPages,
            config.fcMigrationCapPages);
    }
    ramp_panic("unknown dynamic scheme");
}

SimResult
runDynamic(const SystemConfig &config, const WorkloadData &data,
           DynamicScheme scheme, const PageProfile &profile)
{
    // Cold-start avoidance (Section 6.1/6.2): begin from the
    // appropriate oracular placement — top-hot for the performance
    // scheme, top hot & low-risk (filled to capacity) for the
    // reliability-aware ones.
    auto initial =
        scheme == DynamicScheme::PerfFocused
            ? buildStaticPlacement(StaticPolicy::PerfFocused, profile,
                                   config.hbmPages())
            : buildBalancedFilledPlacement(profile,
                                           config.hbmPages());

    const auto engine = makeEngine(scheme, config);
    HmaSystem system(config);
    auto result = system.run(data.traces, std::move(initial),
                             engine.get());
    result.label = dynamicSchemeName(scheme);
    return result;
}

SimResult
runWithEngine(const SystemConfig &config, const WorkloadData &data,
              MigrationEngine &engine, StaticPolicy initial_policy,
              const PageProfile &profile)
{
    HmaSystem system(config);
    auto result = system.run(
        data.traces,
        buildStaticPlacement(initial_policy, profile,
                             config.hbmPages()),
        &engine);
    result.label = engine.name();
    return result;
}

SimResult
runWithEngine(const SystemConfig &config, const WorkloadData &data,
              MigrationEngine &engine, const PageProfile &profile)
{
    HmaSystem system(config);
    auto result = system.run(
        data.traces,
        buildBalancedFilledPlacement(profile, config.hbmPages()),
        &engine);
    result.label = engine.name();
    return result;
}

SimResult
runRegionStatic(const SystemConfig &config, const WorkloadData &data,
                StaticPolicy policy, const PageProfile &profile,
                const RegionConfig &region_config)
{
    HmaSystem system(config);
    auto result = system.run(
        data.traces,
        buildRegionStaticPlacement(policy, profile, region_config,
                                   config.hbmPages()));
    result.label = std::string("region-") + policyName(policy);
    return result;
}

SimResult
runRegionDynamic(const SystemConfig &config, const WorkloadData &data,
                 const PageProfile &profile,
                 const RegionConfig &region_config,
                 std::vector<RegionScheme> schemes)
{
    if (schemes.empty())
        schemes = defaultRegionSchemes();
    RegionMigrationEngine engine(config.fcIntervalCycles,
                                 region_config, std::move(schemes));
    engine.seedFromProfile(profile);
    HmaSystem system(config);
    auto result = system.run(
        data.traces,
        buildRegionStaticPlacement(StaticPolicy::Balanced, profile,
                                   region_config,
                                   config.hbmPages()),
        &engine);
    result.label = engine.name();
    return result;
}

SimResult
runStaticFaulted(const SystemConfig &config, const WorkloadData &data,
                 StaticPolicy policy, const PageProfile &profile,
                 const InjectorConfig &faults)
{
    FaultInjector injector(faults);
    HmaSystem system(config);
    auto result = system.run(
        data.traces,
        buildStaticPlacement(policy, profile, config.hbmPages()),
        nullptr, &injector);
    result.label = policyName(policy);
    return result;
}

SimResult
runDynamicFaulted(const SystemConfig &config, const WorkloadData &data,
                  DynamicScheme scheme, const PageProfile &profile,
                  const InjectorConfig &faults)
{
    auto initial =
        scheme == DynamicScheme::PerfFocused
            ? buildStaticPlacement(StaticPolicy::PerfFocused, profile,
                                   config.hbmPages())
            : buildBalancedFilledPlacement(profile,
                                           config.hbmPages());
    FaultInjector injector(faults);
    const auto engine = makeEngine(scheme, config);
    HmaSystem system(config);
    auto result = system.run(data.traces, std::move(initial),
                             engine.get(), &injector);
    result.label = dynamicSchemeName(scheme);
    return result;
}

SimResult
runRegionDynamicFaulted(const SystemConfig &config,
                        const WorkloadData &data,
                        const PageProfile &profile,
                        const InjectorConfig &faults,
                        const RegionConfig &region_config,
                        std::vector<RegionScheme> schemes)
{
    if (schemes.empty())
        schemes = defaultRegionSchemes();
    RegionMigrationEngine engine(config.fcIntervalCycles,
                                 region_config, std::move(schemes));
    engine.seedFromProfile(profile);
    FaultInjector injector(faults);
    HmaSystem system(config);
    auto result = system.run(
        data.traces,
        buildRegionStaticPlacement(StaticPolicy::Balanced, profile,
                                   region_config,
                                   config.hbmPages()),
        &engine, &injector);
    result.label = engine.name();
    return result;
}

AnnotationSelection
annotationsFor(const WorkloadData &data, const PageProfile &profile,
               std::uint64_t hbm_capacity_pages)
{
    const auto structures = profileStructures(data.layout, profile);
    return selectAnnotations(structures, hbm_capacity_pages,
                             profile.meanAvf());
}

SimResult
runAnnotated(const SystemConfig &config, const WorkloadData &data,
             const PageProfile &profile)
{
    const auto selection =
        annotationsFor(data, profile, config.hbmPages());
    HmaSystem system(config);
    auto result = system.run(
        data.traces, buildAnnotatedPlacement(data.layout, selection,
                                             config.hbmPages()));
    result.label = "annotated";
    return result;
}

} // namespace ramp
