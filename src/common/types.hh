/**
 * @file
 * Fundamental types and address arithmetic shared by every RAMP module.
 *
 * The simulator operates on a flat physical address space partitioned
 * into 4 KB pages of 64 B cache lines, matching the granularities used
 * throughout the paper (AVF is tracked per cache line and composed per
 * page; placement and migration operate on pages).
 */

#ifndef RAMP_COMMON_TYPES_HH
#define RAMP_COMMON_TYPES_HH

#include <cstdint>
#include <limits>

namespace ramp
{

/** Byte address in the simulated physical address space. */
using Addr = std::uint64_t;

/** Simulated time, measured in core clock cycles. */
using Cycle = std::uint64_t;

/** Index of a 4 KB page within the address space. */
using PageId = std::uint64_t;

/** Index of a 64 B cache line within the address space. */
using LineId = std::uint64_t;

/** Core (hardware thread) identifier; the paper models 16 cores. */
using CoreId = std::uint16_t;

/** Cache line size in bytes; memory requests move one line. */
constexpr std::uint64_t lineSize = 64;

/** OS page size in bytes; placement/migration granularity. */
constexpr std::uint64_t pageSize = 4096;

/** Number of cache lines per page (64 for 4 KB / 64 B). */
constexpr std::uint64_t linesPerPage = pageSize / lineSize;

/** Number of bits in a page; used by the AVF/SER composition. */
constexpr std::uint64_t pageBits = pageSize * 8;

/** Sentinel for "no page". */
constexpr PageId invalidPage = std::numeric_limits<PageId>::max();

/** Extract the page index of a byte address. */
constexpr PageId
pageOf(Addr addr)
{
    return addr / pageSize;
}

/** Extract the global line index of a byte address. */
constexpr LineId
lineOf(Addr addr)
{
    return addr / lineSize;
}

/** Line index within its page, in [0, linesPerPage). */
constexpr std::uint64_t
lineInPage(Addr addr)
{
    return (addr % pageSize) / lineSize;
}

/** First byte address of a page. */
constexpr Addr
pageBase(PageId page)
{
    return page * pageSize;
}

/** First byte address of a global line index. */
constexpr Addr
lineBase(LineId line)
{
    return line * lineSize;
}

/** Identifies one of the two memories of the HMA system. */
enum class MemoryId : std::uint8_t
{
    /** Fast, low-reliability on-package stacked memory. */
    HBM = 0,
    /** Slow, high-reliability off-package memory. */
    DDR = 1,
};

/** Number of distinct memories in the HMA. */
constexpr int numMemories = 2;

/** Human-readable name of a memory. */
constexpr const char *
memoryName(MemoryId mem)
{
    return mem == MemoryId::HBM ? "HBM" : "DDR";
}

} // namespace ramp

#endif // RAMP_COMMON_TYPES_HH
