/**
 * @file
 * Deterministic pseudo-random number generation for the simulator.
 *
 * Every stochastic component of RAMP (trace synthesis, FaultSim's
 * Monte-Carlo engine) draws from an explicitly seeded Rng so that every
 * experiment is exactly reproducible. The generator is xoshiro256**,
 * seeded through SplitMix64 per its authors' recommendation.
 */

#ifndef RAMP_COMMON_RNG_HH
#define RAMP_COMMON_RNG_HH

#include <cstdint>
#include <vector>

namespace ramp
{

/** xoshiro256** pseudo-random generator with convenience draws. */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded via SplitMix64). */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit draw. */
    std::uint64_t next();

    /** Uniform integer in [0, bound); bound must be > 0. */
    std::uint64_t nextRange(std::uint64_t bound);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Bernoulli draw with probability p of true. */
    bool nextBool(double p);

    /**
     * Poisson draw with the given mean.
     *
     * Uses Knuth multiplication for small means and a normal
     * approximation for large ones; adequate for FaultSim event counts.
     */
    std::uint64_t nextPoisson(double mean);

    /** Exponential draw with the given rate (mean 1/rate). */
    double nextExponential(double rate);

    /** Standard normal draw (Box-Muller). */
    double nextGaussian();

    /** Split off an independent stream (for per-core generators). */
    Rng split();

  private:
    std::uint64_t s_[4];
};

/**
 * Zipf-distributed integer sampler over [0, n).
 *
 * Rank r is drawn with probability proportional to 1 / (r + 1)^alpha.
 * A precomputed inverse-CDF table gives O(log n) sampling; alpha = 0
 * degenerates to the uniform distribution. Used to synthesise the
 * skewed page-hotness populations the paper's placement policies rely
 * on.
 */
class ZipfSampler
{
  public:
    /** Build a sampler over n items with skew alpha >= 0. */
    ZipfSampler(std::uint64_t n, double alpha);

    /** Draw a rank in [0, n); rank 0 is the hottest. */
    std::uint64_t sample(Rng &rng) const;

    /** Number of items. */
    std::uint64_t size() const { return n_; }

    /** Skew parameter. */
    double alpha() const { return alpha_; }

    /** Probability mass of a given rank. */
    double probability(std::uint64_t rank) const;

  private:
    std::uint64_t n_;
    double alpha_;
    /** cdf_[i] = P(rank <= i); monotone, final entry 1.0. */
    std::vector<double> cdf_;
};

} // namespace ramp

#endif // RAMP_COMMON_RNG_HH
