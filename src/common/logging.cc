#include "common/logging.hh"

#include <cstdlib>
#include <iostream>
#include <stdexcept>

namespace ramp
{

namespace
{
bool logQuiet = false;
} // namespace

void
setLogQuiet(bool quiet)
{
    logQuiet = quiet;
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::cerr << "panic: " << msg << " @ " << file << ":" << line
              << std::endl;
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::cerr << "fatal: " << msg << " @ " << file << ":" << line
              << std::endl;
    std::exit(1);
}

void
invalidImpl(const std::string &msg)
{
    throw std::invalid_argument(msg);
}

void
warnImpl(const std::string &msg)
{
    if (!logQuiet)
        std::cerr << "warn: " << msg << std::endl;
}

void
informImpl(const std::string &msg)
{
    if (!logQuiet)
        std::cerr << "info: " << msg << std::endl;
}

} // namespace ramp
