#include "common/logging.hh"

#include <cstdlib>
#include <iostream>
#include <mutex>
#include <stdexcept>
#include <utility>

namespace ramp
{

namespace
{

bool logQuiet = false;

/** Guards the sink pointer and serialises sink invocations. */
std::mutex &
logMutex()
{
    static std::mutex mutex;
    return mutex;
}

LogSink &
logSink()
{
    static LogSink sink; // Empty = defaultLogSink.
    return sink;
}

/** Deliver one line to the configured sink, serialised. */
void
deliver(LogLevel level, const std::string &msg)
{
    std::lock_guard<std::mutex> lock(logMutex());
    if (logSink())
        logSink()(level, msg);
    else
        defaultLogSink(level, msg);
}

} // namespace

void
setLogQuiet(bool quiet)
{
    logQuiet = quiet;
}

void
setLogSink(LogSink sink)
{
    std::lock_guard<std::mutex> lock(logMutex());
    logSink() = std::move(sink);
}

void
defaultLogSink(LogLevel level, const std::string &msg)
{
    // One composed write so concurrent callers (already serialised
    // by the logging mutex) cannot interleave mid-line; stderr is
    // unbuffered, keeping lines out of piped --json stdout.
    std::cerr << (level == LogLevel::Warn ? "warn: " : "info: ")
              << msg << std::endl;
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::cerr << "panic: " << msg << " @ " << file << ":" << line
              << std::endl;
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::cerr << "fatal: " << msg << " @ " << file << ":" << line
              << std::endl;
    std::exit(1);
}

void
invalidImpl(const std::string &msg)
{
    throw std::invalid_argument(msg);
}

void
warnImpl(const std::string &msg)
{
    if (!logQuiet)
        deliver(LogLevel::Warn, msg);
}

void
informImpl(const std::string &msg)
{
    if (!logQuiet)
        deliver(LogLevel::Inform, msg);
}

} // namespace ramp
