/**
 * @file
 * Aligned text-table printer for the benchmark harness.
 *
 * Every bench binary regenerates a paper table/figure as rows on
 * stdout; this printer keeps their formatting consistent (fixed-width
 * columns, a header rule, optional title) so the harness output is
 * directly comparable with EXPERIMENTS.md.
 */

#ifndef RAMP_COMMON_TABLE_HH
#define RAMP_COMMON_TABLE_HH

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace ramp
{

/** Column-aligned table accumulated row-by-row, printed at the end. */
class TextTable
{
  public:
    /** Construct with column headers. */
    explicit TextTable(std::vector<std::string> headers);

    /** Append a row; it must match the header arity. */
    void addRow(std::vector<std::string> cells);

    /** Format a double with fixed precision, for use as a cell. */
    static std::string num(double value, int precision = 3);

    /** Format an integer cell. */
    static std::string num(std::uint64_t value);

    /** Format a ratio as e.g. "1.62x". */
    static std::string ratio(double value, int precision = 2);

    /** Format a fraction as a percentage, e.g. "14.1%". */
    static std::string percent(double fraction, int precision = 1);

    /** Render to a stream with an optional title line. */
    void print(std::ostream &os, const std::string &title = "") const;

    /** Number of data rows added so far. */
    std::size_t numRows() const { return rows_.size(); }

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace ramp

#endif // RAMP_COMMON_TABLE_HH
