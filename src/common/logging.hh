/**
 * @file
 * gem5-style status and error reporting.
 *
 * panic() is for internal invariant violations (simulator bugs) and
 * aborts; fatal() is for user/configuration errors and exits cleanly;
 * warn()/inform() report conditions without stopping the simulation.
 */

#ifndef RAMP_COMMON_LOGGING_HH
#define RAMP_COMMON_LOGGING_HH

#include <functional>
#include <sstream>
#include <string>

namespace ramp
{

/** @{ @name Implementation hooks (see logging.cc). */
[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void invalidImpl(const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);
/** @} */

/** Render a sequence of stream-able values into one string. */
template <typename... Args>
std::string
formatMessage(Args &&...args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

/** Toggle warn()/inform() output (tests silence it). */
void setLogQuiet(bool quiet);

/** Severity of one warn()/inform() line handed to the sink. */
enum class LogLevel
{
    Warn,
    Inform,
};

/**
 * Pluggable destination of warn()/inform() lines. Sinks run under
 * the logging mutex — one warn() is delivered at a time, so lines
 * never interleave — and must not call warn()/inform() themselves.
 */
using LogSink = std::function<void(LogLevel, const std::string &)>;

/** Replace the sink; an empty function restores the default. */
void setLogSink(LogSink sink);

/**
 * The default sink: one serialised "warn:"/"info:" line on stderr
 * per call. Custom sinks (telemetry capture) typically chain it.
 */
void defaultLogSink(LogLevel level, const std::string &msg);

} // namespace ramp

/** Abort on an internal invariant violation (a simulator bug). */
#define ramp_panic(...) \
    ::ramp::panicImpl(__FILE__, __LINE__, ::ramp::formatMessage(__VA_ARGS__))

/** Exit on an unrecoverable user/configuration error. */
#define ramp_fatal(...) \
    ::ramp::fatalImpl(__FILE__, __LINE__, ::ramp::formatMessage(__VA_ARGS__))

/**
 * Reject invalid user input (workload spec, system config) by
 * throwing std::invalid_argument — callers (the runner) contain it
 * instead of the process dying, and the message tells the user what
 * to fix.
 */
#define ramp_invalid(...) \
    ::ramp::invalidImpl(::ramp::formatMessage(__VA_ARGS__))

/** Report a suspicious but non-fatal condition. */
#define ramp_warn(...) \
    ::ramp::warnImpl(::ramp::formatMessage(__VA_ARGS__))

/** Report normal operating status. */
#define ramp_inform(...) \
    ::ramp::informImpl(::ramp::formatMessage(__VA_ARGS__))

#endif // RAMP_COMMON_LOGGING_HH
