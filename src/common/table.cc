#include "common/table.hh"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/logging.hh"

namespace ramp
{

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    if (headers_.empty())
        ramp_fatal("TextTable needs at least one column");
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    if (cells.size() != headers_.size())
        ramp_panic("TextTable row arity ", cells.size(),
                   " != header arity ", headers_.size());
    rows_.push_back(std::move(cells));
}

std::string
TextTable::num(double value, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << value;
    return os.str();
}

std::string
TextTable::num(std::uint64_t value)
{
    return std::to_string(value);
}

std::string
TextTable::ratio(double value, int precision)
{
    return num(value, precision) + "x";
}

std::string
TextTable::percent(double fraction, int precision)
{
    return num(fraction * 100.0, precision) + "%";
}

void
TextTable::print(std::ostream &os, const std::string &title) const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    if (!title.empty())
        os << "== " << title << " ==\n";

    auto emit_row = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            os << std::left << std::setw(static_cast<int>(widths[c]))
               << cells[c];
            os << (c + 1 == cells.size() ? "\n" : "  ");
        }
    };

    emit_row(headers_);
    std::size_t rule = 0;
    for (std::size_t c = 0; c < widths.size(); ++c)
        rule += widths[c] + (c + 1 == widths.size() ? 0 : 2);
    os << std::string(rule, '-') << "\n";
    for (const auto &row : rows_)
        emit_row(row);
}

} // namespace ramp
