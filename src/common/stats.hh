/**
 * @file
 * Statistics helpers used by the motivation studies and the harness.
 *
 * The paper's motivation (Figs 4, 6, 9) is built on summary statistics
 * over page populations: means and Pearson correlation between hotness
 * and AVF, implemented here once and shared by tests, benches, and the
 * quadrant analysis. Binned distributions (write ratios, hotness) use
 * the shared telemetry/histogram.hh FixedHistogram type.
 */

#ifndef RAMP_COMMON_STATS_HH
#define RAMP_COMMON_STATS_HH

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace ramp
{

/** Single-pass accumulator for mean/variance/min/max (Welford). */
class RunningStat
{
  public:
    /** Fold one sample into the accumulator. */
    void add(double x);

    /** Number of samples observed. */
    std::size_t count() const { return count_; }

    /** Sample mean (0 when empty). */
    double mean() const;

    /** Unbiased sample variance (0 with < 2 samples). */
    double variance() const;

    /** Sample standard deviation. */
    double stddev() const;

    /**
     * Smallest observed sample. NaN when empty: an empty
     * accumulator has no extrema, and returning 0 would let an
     * empty-pass metric snapshot masquerade as a real measurement.
     */
    double min() const;

    /** Largest observed sample (NaN when empty; see min()). */
    double max() const;

    /** Sum of all samples. */
    double sum() const { return sum_; }

  private:
    std::size_t count_ = 0;
    double mean_ = 0;
    double m2_ = 0;
    double min_ = 0;
    double max_ = 0;
    double sum_ = 0;
};

/**
 * Pearson correlation coefficient of two equal-length series.
 *
 * Returns 0 when either series is constant or the series are empty —
 * the convention used when quoting the paper's rho values.
 */
double pearsonCorrelation(std::span<const double> xs,
                          std::span<const double> ys);

/** Arithmetic mean of a series (0 when empty). */
double mean(std::span<const double> xs);

/**
 * Geometric mean of a series of positive values.
 *
 * The harness reports cross-workload speedups as geometric means, the
 * usual convention for normalised performance ratios.
 */
double geometricMean(std::span<const double> xs);

} // namespace ramp

#endif // RAMP_COMMON_STATS_HH
