/**
 * @file
 * Statistics helpers used by the motivation studies and the harness.
 *
 * The paper's motivation (Figs 4, 6, 9) is built on summary statistics
 * over page populations: means, Pearson correlation between hotness and
 * AVF, and binned histograms of write ratios. These are implemented
 * here once and shared by tests, benches, and the quadrant analysis.
 */

#ifndef RAMP_COMMON_STATS_HH
#define RAMP_COMMON_STATS_HH

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace ramp
{

/** Single-pass accumulator for mean/variance/min/max (Welford). */
class RunningStat
{
  public:
    /** Fold one sample into the accumulator. */
    void add(double x);

    /** Number of samples observed. */
    std::size_t count() const { return count_; }

    /** Sample mean (0 when empty). */
    double mean() const;

    /** Unbiased sample variance (0 with < 2 samples). */
    double variance() const;

    /** Sample standard deviation. */
    double stddev() const;

    /** Smallest observed sample (0 when empty). */
    double min() const;

    /** Largest observed sample (0 when empty). */
    double max() const;

    /** Sum of all samples. */
    double sum() const { return sum_; }

  private:
    std::size_t count_ = 0;
    double mean_ = 0;
    double m2_ = 0;
    double min_ = 0;
    double max_ = 0;
    double sum_ = 0;
};

/**
 * Pearson correlation coefficient of two equal-length series.
 *
 * Returns 0 when either series is constant or the series are empty —
 * the convention used when quoting the paper's rho values.
 */
double pearsonCorrelation(std::span<const double> xs,
                          std::span<const double> ys);

/** Arithmetic mean of a series (0 when empty). */
double mean(std::span<const double> xs);

/** Fixed-width histogram over [lo, hi) with a given bin count. */
class Histogram
{
  public:
    /** Build an empty histogram; hi must exceed lo, bins >= 1. */
    Histogram(double lo, double hi, std::size_t bins);

    /** Add a sample; values outside [lo, hi) clamp to the end bins. */
    void add(double x);

    /** Count in bin i. */
    std::uint64_t binCount(std::size_t i) const { return counts_[i]; }

    /** Number of bins. */
    std::size_t numBins() const { return counts_.size(); }

    /** Total samples added. */
    std::uint64_t total() const { return total_; }

    /** Inclusive lower edge of bin i. */
    double binLow(std::size_t i) const;

    /** Exclusive upper edge of bin i. */
    double binHigh(std::size_t i) const;

  private:
    double lo_;
    double hi_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t total_ = 0;
};

/**
 * Geometric mean of a series of positive values.
 *
 * The harness reports cross-workload speedups as geometric means, the
 * usual convention for normalised performance ratios.
 */
double geometricMean(std::span<const double> xs);

} // namespace ramp

#endif // RAMP_COMMON_STATS_HH
