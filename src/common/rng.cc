#include "common/rng.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace ramp
{

namespace
{

std::uint64_t
splitMix64(std::uint64_t &state)
{
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &word : s_)
        word = splitMix64(sm);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;

    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);

    return result;
}

std::uint64_t
Rng::nextRange(std::uint64_t bound)
{
    if (bound == 0)
        ramp_panic("nextRange bound must be positive");
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = -bound % bound;
    for (;;) {
        const std::uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

double
Rng::nextDouble()
{
    return (next() >> 11) * 0x1.0p-53;
}

bool
Rng::nextBool(double p)
{
    return nextDouble() < p;
}

std::uint64_t
Rng::nextPoisson(double mean)
{
    if (mean < 0)
        ramp_panic("Poisson mean must be non-negative");
    if (mean == 0)
        return 0;
    if (mean < 30) {
        // Knuth's multiplication method.
        const double limit = std::exp(-mean);
        double product = nextDouble();
        std::uint64_t count = 0;
        while (product > limit) {
            product *= nextDouble();
            ++count;
        }
        return count;
    }
    // Normal approximation with continuity correction.
    const double draw = mean + std::sqrt(mean) * nextGaussian() + 0.5;
    return draw <= 0 ? 0 : static_cast<std::uint64_t>(draw);
}

double
Rng::nextExponential(double rate)
{
    if (rate <= 0)
        ramp_panic("Exponential rate must be positive");
    double u;
    do {
        u = nextDouble();
    } while (u == 0.0);
    return -std::log(u) / rate;
}

double
Rng::nextGaussian()
{
    double u1;
    do {
        u1 = nextDouble();
    } while (u1 == 0.0);
    const double u2 = nextDouble();
    return std::sqrt(-2.0 * std::log(u1)) *
           std::cos(2.0 * M_PI * u2);
}

Rng
Rng::split()
{
    return Rng(next() ^ 0xa0761d6478bd642fULL);
}

ZipfSampler::ZipfSampler(std::uint64_t n, double alpha)
    : n_(n), alpha_(alpha)
{
    if (n == 0)
        ramp_fatal("ZipfSampler needs at least one item");
    if (alpha < 0)
        ramp_fatal("ZipfSampler skew must be non-negative");
    cdf_.resize(n);
    double sum = 0;
    for (std::uint64_t i = 0; i < n; ++i) {
        sum += 1.0 / std::pow(static_cast<double>(i + 1), alpha);
        cdf_[i] = sum;
    }
    for (auto &value : cdf_)
        value /= sum;
    cdf_.back() = 1.0;
}

std::uint64_t
ZipfSampler::sample(Rng &rng) const
{
    const double u = rng.nextDouble();
    const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    return static_cast<std::uint64_t>(it - cdf_.begin());
}

double
ZipfSampler::probability(std::uint64_t rank) const
{
    if (rank >= n_)
        return 0.0;
    const double prev = rank == 0 ? 0.0 : cdf_[rank - 1];
    return cdf_[rank] - prev;
}

} // namespace ramp
