#include "common/stats.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.hh"

namespace ramp
{

void
RunningStat::add(double x)
{
    if (count_ == 0) {
        min_ = x;
        max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++count_;
    sum_ += x;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
}

double
RunningStat::mean() const
{
    return count_ == 0 ? 0.0 : mean_;
}

double
RunningStat::variance() const
{
    return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
}

double
RunningStat::stddev() const
{
    return std::sqrt(variance());
}

double
RunningStat::min() const
{
    return count_ == 0 ? std::numeric_limits<double>::quiet_NaN()
                       : min_;
}

double
RunningStat::max() const
{
    return count_ == 0 ? std::numeric_limits<double>::quiet_NaN()
                       : max_;
}

double
pearsonCorrelation(std::span<const double> xs, std::span<const double> ys)
{
    if (xs.size() != ys.size())
        ramp_panic("pearsonCorrelation: size mismatch");
    const std::size_t n = xs.size();
    if (n < 2)
        return 0.0;

    double mx = 0, my = 0;
    for (std::size_t i = 0; i < n; ++i) {
        mx += xs[i];
        my += ys[i];
    }
    mx /= static_cast<double>(n);
    my /= static_cast<double>(n);

    double sxy = 0, sxx = 0, syy = 0;
    for (std::size_t i = 0; i < n; ++i) {
        const double dx = xs[i] - mx;
        const double dy = ys[i] - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if (sxx == 0.0 || syy == 0.0)
        return 0.0;
    return sxy / std::sqrt(sxx * syy);
}

double
mean(std::span<const double> xs)
{
    if (xs.empty())
        return 0.0;
    double sum = 0;
    for (const double x : xs)
        sum += x;
    return sum / static_cast<double>(xs.size());
}

double
geometricMean(std::span<const double> xs)
{
    if (xs.empty())
        return 0.0;
    double log_sum = 0;
    for (const double x : xs) {
        if (x <= 0)
            ramp_panic("geometricMean requires positive values");
        log_sum += std::log(x);
    }
    return std::exp(log_sum / static_cast<double>(xs.size()));
}

} // namespace ramp
