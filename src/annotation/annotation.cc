#include "annotation/annotation.hh"

#include <algorithm>
#include <map>

#include "common/logging.hh"

namespace ramp
{

double
StructureProfile::hotnessPerPage() const
{
    if (pages == 0)
        return 0.0;
    return static_cast<double>(reads + writes) /
           static_cast<double>(pages);
}

std::vector<StructureProfile>
profileStructures(const WorkloadLayout &layout,
                  const PageProfile &profile)
{
    // Key: program-level identity (benchmark, structure name); every
    // core's instance of the same program aggregates into one entry.
    std::map<std::pair<std::string, std::string>, StructureProfile>
        aggregate;
    std::map<std::pair<std::string, std::string>, double> avf_sum;

    for (const auto &range : layout.ranges) {
        const auto key = std::make_pair(range.benchmark,
                                        range.structure);
        auto &entry = aggregate[key];
        entry.benchmark = range.benchmark;
        entry.structure = range.structure;
        entry.pages += range.pages;
        for (PageId page = range.firstPage; page < range.endPage();
             ++page) {
            const PageStats *stats = profile.find(page);
            if (stats == nullptr)
                continue;
            entry.reads += stats->reads;
            entry.writes += stats->writes;
            avf_sum[key] += stats->avf;
        }
    }

    std::vector<StructureProfile> result;
    result.reserve(aggregate.size());
    for (auto &[key, entry] : aggregate) {
        entry.avgAvf = entry.pages == 0
                           ? 0.0
                           : avf_sum[key] /
                                 static_cast<double>(entry.pages);
        result.push_back(entry);
    }
    return result;
}

AnnotationSelection
selectAnnotations(const std::vector<StructureProfile> &structures,
                  std::uint64_t hbm_capacity_pages, double mean_avf)
{
    // Candidates: low-risk structures, ranked by hotness density
    // (what a profile-guided pass would hand the programmer).
    std::vector<StructureProfile> candidates;
    for (const auto &entry : structures)
        if (entry.avgAvf <= mean_avf && entry.reads + entry.writes > 0)
            candidates.push_back(entry);
    std::sort(candidates.begin(), candidates.end(),
              [](const StructureProfile &a, const StructureProfile &b) {
                  const double ha = a.hotnessPerPage();
                  const double hb = b.hotnessPerPage();
                  if (ha != hb)
                      return ha > hb;
                  if (a.benchmark != b.benchmark)
                      return a.benchmark < b.benchmark;
                  return a.structure < b.structure;
              });

    // Annotations accumulate until they provide a full HBM's worth
    // of hot & low-risk pages (Figure 17); the loader pins pages in
    // selection order and simply stops at capacity, so the last
    // structure may be pinned partially.
    AnnotationSelection selection;
    for (const auto &candidate : candidates) {
        if (selection.pinnedPages >= hbm_capacity_pages)
            break;
        selection.annotations.push_back(candidate);
        selection.pinnedPages +=
            std::min(candidate.pages,
                     hbm_capacity_pages - selection.pinnedPages);
    }
    return selection;
}

PlacementMap
buildAnnotatedPlacement(const WorkloadLayout &layout,
                        const AnnotationSelection &selection,
                        std::uint64_t hbm_capacity_pages)
{
    PlacementMap map(hbm_capacity_pages);
    std::uint64_t pinned = 0;
    for (const auto &annotation : selection.annotations) {
        for (const auto &range : layout.ranges) {
            if (range.benchmark != annotation.benchmark ||
                range.structure != annotation.structure)
                continue;
            for (PageId page = range.firstPage;
                 page < range.endPage(); ++page) {
                if (pinned >= hbm_capacity_pages)
                    return map;
                map.placePinned(page, MemoryId::HBM);
                ++pinned;
            }
        }
    }
    return map;
}

} // namespace ramp
