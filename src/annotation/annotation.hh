/**
 * @file
 * Program-annotation-based data placement (paper Section 7).
 *
 * Annotations name program data structures that are frequently
 * accessed but rarely live for long (hot & low-risk); the ELF loader
 * then pins their pages in HBM, immune to migration. Because RAMP's
 * workloads are generated from explicit structure specs, the layout
 * gives exact page ranges per structure instance: a program-level
 * annotation ("pin srcGrid") pins the structure in every core's
 * instance of that program, mirroring 16 copies of one annotated
 * binary.
 */

#ifndef RAMP_ANNOTATION_ANNOTATION_HH
#define RAMP_ANNOTATION_ANNOTATION_HH

#include <cstdint>
#include <string>
#include <vector>

#include "placement/map.hh"
#include "placement/profile.hh"
#include "trace/workload.hh"

namespace ramp
{

/** Aggregated profile of one program-level structure. */
struct StructureProfile
{
    /** Program the structure belongs to. */
    std::string benchmark;

    /** Source-level structure name. */
    std::string structure;

    /** Pages across all instances (16 copies for homogeneous). */
    std::uint64_t pages = 0;

    /** Aggregate accesses across all instances. */
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;

    /** Page-weighted mean AVF of the structure's pages. */
    double avgAvf = 0;

    /** Accesses per page — the structure-level hotness density. */
    double hotnessPerPage() const;
};

/** One chosen annotation and the bookkeeping of a selection. */
struct AnnotationSelection
{
    /** Chosen structures, in selection (ranking) order. */
    std::vector<StructureProfile> annotations;

    /** Total pages the annotations pin. */
    std::uint64_t pinnedPages = 0;

    /** Number of source-level annotations (Figure 17's metric). */
    std::size_t count() const { return annotations.size(); }
};

/**
 * Aggregate per-page profile data to program-level structures using
 * the workload layout as ground truth.
 */
std::vector<StructureProfile>
profileStructures(const WorkloadLayout &layout,
                  const PageProfile &profile);

/**
 * Pick the structures a programmer (or profile-guided compiler)
 * would annotate: low-risk structures ranked by hotness density,
 * greedily packed until the HBM capacity is reached.
 *
 * @param structures program-level structure profiles
 * @param hbm_capacity_pages pages available for pinning
 * @param mean_avf population AVF threshold separating low-risk
 */
AnnotationSelection
selectAnnotations(const std::vector<StructureProfile> &structures,
                  std::uint64_t hbm_capacity_pages, double mean_avf);

/**
 * Build the placement the annotations induce: every page of every
 * instance of an annotated structure is pinned in HBM (until the
 * capacity is exhausted); all remaining pages go to DDR.
 */
PlacementMap
buildAnnotatedPlacement(const WorkloadLayout &layout,
                        const AnnotationSelection &selection,
                        std::uint64_t hbm_capacity_pages);

} // namespace ramp

#endif // RAMP_ANNOTATION_ANNOTATION_HH
