/**
 * @file
 * Program data-structure specifications for synthetic workloads.
 *
 * RAMP substitutes the paper's PinPlay/SimPoints SPEC traces with
 * synthetic workloads composed of named data structures. A structure
 * is an address range (whole pages) with a characteristic access
 * pattern; the mix of structures in a benchmark profile determines the
 * distributional properties the paper's study depends on: hotness
 * skew, read/write mix, and — through the temporal ordering of reads
 * and writes — per-page AVF. Structures are also the annotation
 * granularity of the Section 7 study.
 */

#ifndef RAMP_TRACE_STRUCTURE_HH
#define RAMP_TRACE_STRUCTURE_HH

#include <cstdint>
#include <string>

namespace ramp
{

/** How accesses are distributed over a structure's pages. */
enum class AccessPattern : std::uint8_t
{
    /**
     * Zipf-distributed page choice with Bernoulli read/write mix.
     * alpha = 0 degenerates to uniform. Models hashed/indexed
     * structures (graphs, tables, heaps). The churn parameter slowly
     * rotates which pages hold the hot ranks, creating the
     * interval-to-interval hot-set drift the migration study needs.
     */
    Zipf,

    /**
     * Sequential passes over the structure: one write pass followed
     * by readPasses read passes, repeated. Models streaming/stencil
     * kernels (lbm, libquantum, cactusADM grid functions). Line AVF
     * follows from the write->read pass distance; hotness is uniform.
     */
    Streaming,
};

/** Static description of one program data structure. */
struct StructureSpec
{
    /** Source-level name (annotation target, e.g. "srcGrid"). */
    std::string name;

    /** Footprint in 4 KB pages (per program instance). */
    std::uint64_t pages = 1;

    /** Relative share of the program's memory accesses. */
    double weight = 1.0;

    /** Page-selection / ordering behaviour. */
    AccessPattern pattern = AccessPattern::Zipf;

    /** @{ @name Zipf-pattern parameters */
    /** Skew of the page popularity distribution (0 = uniform). */
    double zipfAlpha = 0.8;

    /** Probability that an access is a write. */
    double writeFraction = 0.3;

    /**
     * Per-access probability of advancing the hot-set rotation by one
     * page. 0 freezes the hot set for the whole run.
     */
    double churn = 0.0;
    /** @} */

    /** @{ @name Streaming-pattern parameters */
    /** Read passes following each write pass (>= 1). */
    std::uint32_t readPasses = 1;

    /** Lines advanced per access (stride; > 1 skips lines). */
    std::uint64_t strideLines = 1;

    /**
     * Probability that a line position is actually read during a read
     * pass (unread positions are skipped). This models consumers that
     * only revisit part of what a producer pass wrote and is the main
     * AVF dial of streaming structures: unread write->write periods
     * are dead.
     */
    double readProbability = 1.0;
    /** @} */
};

} // namespace ramp

#endif // RAMP_TRACE_STRUCTURE_HH
