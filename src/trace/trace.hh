/**
 * @file
 * Trace containers, summary statistics, and binary trace I/O.
 */

#ifndef RAMP_TRACE_TRACE_HH
#define RAMP_TRACE_TRACE_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/types.hh"
#include "trace/request.hh"

namespace ramp
{

/** Sequence of requests issued by a single core, in program order. */
using CoreTrace = std::vector<MemRequest>;

/** Aggregate statistics of a core trace or workload trace. */
struct TraceStats
{
    std::uint64_t requests = 0;
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t instructions = 0;
    std::uint64_t footprintPages = 0;

    /** Memory accesses per kilo-instruction. */
    double mpki() const;

    /** Fraction of requests that are writes. */
    double writeFraction() const;
};

/** Compute summary statistics over one core trace. */
TraceStats computeStats(const CoreTrace &trace);

/** Compute merged statistics over a set of core traces. */
TraceStats computeStats(const std::vector<CoreTrace> &traces);

/** Set of distinct pages touched by a group of traces. */
std::unordered_set<PageId>
touchedPages(const std::vector<CoreTrace> &traces);

/**
 * @{
 * @name Binary trace serialisation
 *
 * Simple length-prefixed little-endian format so generated traces can
 * be cached on disk and shared across harness runs. The format stores
 * a magic/version header followed by packed records.
 */
void writeTrace(std::ostream &os, const CoreTrace &trace);
CoreTrace readTrace(std::istream &is);

void writeWorkloadTrace(const std::string &path,
                        const std::vector<CoreTrace> &traces);
std::vector<CoreTrace> readWorkloadTrace(const std::string &path);
/** @} */

} // namespace ramp

#endif // RAMP_TRACE_TRACE_HH
