#include "trace/generator.hh"

#include <algorithm>
#include <cmath>
#include <memory>

#include "common/logging.hh"
#include "common/rng.hh"
#include "prof/prof.hh"

namespace ramp
{

namespace
{

/** Runtime state of one structure instance during generation. */
struct StructureState
{
    const StructureSpec *spec = nullptr;

    /** First page of the instance in the physical layout. */
    PageId firstPage = 0;

    /** @{ @name Zipf state */
    std::shared_ptr<const ZipfSampler> zipf;
    std::uint64_t phaseOffset = 0;
    /** @} */

    /** @{ @name Streaming state */
    std::uint64_t cursorLine = 0;
    std::uint32_t passIndex = 0; ///< 0 = write pass, 1.. = read passes
    /** @} */
};

/** Geometric-ish non-memory gap with the profile's mean. */
std::uint32_t
drawGap(Rng &rng, double mean_gap)
{
    if (mean_gap <= 0)
        return 0;
    const double draw = rng.nextExponential(1.0 / mean_gap);
    return static_cast<std::uint32_t>(
        std::min(draw, 1.0e9));
}

/** Produce the next access of a Zipf structure. */
MemRequest
nextZipfAccess(StructureState &state, Rng &rng)
{
    const auto &spec = *state.spec;
    const std::uint64_t rank = state.zipf->sample(rng);
    const PageId page =
        state.firstPage + (rank + state.phaseOffset) % spec.pages;
    const std::uint64_t line = rng.nextRange(linesPerPage);

    MemRequest req;
    req.addr = pageBase(page) + line * lineSize;
    req.isWrite = rng.nextBool(spec.writeFraction);
    if (spec.churn > 0 && rng.nextBool(spec.churn))
        ++state.phaseOffset;
    return req;
}

/** Produce the next access of a Streaming structure. */
MemRequest
nextStreamAccess(StructureState &state, Rng &rng)
{
    const auto &spec = *state.spec;
    const std::uint64_t total_lines = spec.pages * linesPerPage;
    if (spec.strideLines == 0 || spec.strideLines >= total_lines)
        ramp_fatal("structure ", spec.name,
                   " stride must be in [1, lines)");

    for (;;) {
        const std::uint64_t line = state.cursorLine;
        state.cursorLine += spec.strideLines;
        if (state.cursorLine >= total_lines) {
            // Wrap; a stride that does not divide the structure size
            // rotates the phase, spreading coverage across passes.
            state.cursorLine -= total_lines;
            state.passIndex =
                (state.passIndex + 1) % (spec.readPasses + 1);
        }

        const bool write_pass = state.passIndex == 0;
        if (!write_pass && !rng.nextBool(spec.readProbability))
            continue; // line skipped by this consumer pass

        MemRequest req;
        req.addr = state.firstPage * pageSize + line * lineSize;
        req.isWrite = write_pass;
        return req;
    }
}

} // namespace

std::vector<CoreTrace>
generateTraces(const WorkloadSpec &spec, const WorkloadLayout &layout,
               const GeneratorOptions &options)
{
    if (spec.coreBenchmarks.size() != workloadCores)
        ramp_fatal("workload ", spec.name, " must define ",
                   workloadCores, " cores");

    RAMP_PROF_SCOPE_PMU(gen_prof, "trace.generate");

    // Zipf CDF construction is the expensive part of setup; identical
    // (pages, alpha) samplers are shared across cores and structures.
    std::vector<std::shared_ptr<const ZipfSampler>> sampler_cache;
    auto shared_sampler = [&](std::uint64_t pages, double alpha) {
        for (const auto &sampler : sampler_cache)
            if (sampler->size() == pages && sampler->alpha() == alpha)
                return sampler;
        sampler_cache.push_back(
            std::make_shared<const ZipfSampler>(pages, alpha));
        return sampler_cache.back();
    };

    std::vector<CoreTrace> traces(workloadCores);

    for (int core = 0; core < workloadCores; ++core) {
        const auto &profile =
            benchmarkProfile(spec.coreBenchmarks[
                static_cast<std::size_t>(core)]);
        Rng rng(options.seed +
                0x9e3779b97f4a7c15ULL *
                    static_cast<std::uint64_t>(core + 1));

        // Collect this core's structure instances from the layout.
        std::vector<StructureState> states;
        std::vector<double> weight_cdf;
        double weight_sum = 0;
        for (const auto &range : layout.ranges) {
            if (range.core != core)
                continue;
            const auto &st =
                profile.structures[range.structureIndex];
            StructureState state;
            state.spec = &st;
            state.firstPage = range.firstPage;
            if (st.pattern == AccessPattern::Zipf)
                state.zipf = shared_sampler(st.pages, st.zipfAlpha);
            else
                state.cursorLine =
                    rng.nextRange(st.pages * linesPerPage);
            states.push_back(std::move(state));
            weight_sum += st.weight;
            weight_cdf.push_back(weight_sum);
        }
        if (states.empty())
            ramp_panic("core ", core, " has no structures in layout");
        for (auto &weight : weight_cdf)
            weight /= weight_sum;

        const auto requests = static_cast<std::uint64_t>(
            static_cast<double>(profile.requestsPerCore) *
            options.traceScale);
        const double mean_gap =
            std::max(0.0, 1000.0 / profile.mpki - 1.0);

        auto &trace = traces[static_cast<std::size_t>(core)];
        trace.reserve(requests *
                      (options.cpuLevel ? options.hitBurst + 1 : 1));

        for (std::uint64_t i = 0; i < requests; ++i) {
            const double pick = rng.nextDouble();
            const auto it = std::lower_bound(weight_cdf.begin(),
                                             weight_cdf.end(), pick);
            auto &state = states[static_cast<std::size_t>(
                it - weight_cdf.begin())];

            MemRequest req =
                state.spec->pattern == AccessPattern::Zipf
                    ? nextZipfAccess(state, rng)
                    : nextStreamAccess(state, rng);
            req.core = static_cast<CoreId>(core);
            req.gap = drawGap(rng, mean_gap);

            if (options.cpuLevel) {
                // Scatter the instruction gap over a burst of
                // cache-friendly re-accesses so the cache hierarchy
                // can filter the stream back to memory level.
                const std::uint32_t parts = options.hitBurst + 1;
                MemRequest first = req;
                first.gap = req.gap / parts;
                trace.push_back(first);
                for (std::uint32_t b = 0; b < options.hitBurst; ++b) {
                    MemRequest hit = req;
                    const std::uint64_t line =
                        lineInPage(req.addr);
                    const std::uint64_t neighbour =
                        (line + b) % linesPerPage;
                    hit.addr = pageBase(pageOf(req.addr)) +
                               neighbour * lineSize;
                    hit.isWrite = req.isWrite && b == 0;
                    hit.gap = req.gap / parts;
                    trace.push_back(hit);
                }
            } else {
                trace.push_back(req);
            }
        }
    }
    return traces;
}

std::vector<CoreTrace>
generateTraces(const WorkloadSpec &spec, const GeneratorOptions &options)
{
    return generateTraces(spec, buildLayout(spec), options);
}

} // namespace ramp
