#include "trace/trace.hh"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>

#include "common/logging.hh"

namespace ramp
{

namespace
{

constexpr std::uint32_t traceMagic = 0x52414d50; // "RAMP"
constexpr std::uint32_t traceVersion = 1;

template <typename T>
void
writePod(std::ostream &os, const T &value)
{
    os.write(reinterpret_cast<const char *>(&value), sizeof(T));
}

template <typename T>
T
readPod(std::istream &is)
{
    T value{};
    is.read(reinterpret_cast<char *>(&value), sizeof(T));
    if (!is)
        ramp_fatal("trace stream truncated");
    return value;
}

} // namespace

double
TraceStats::mpki() const
{
    if (instructions == 0)
        return 0.0;
    return static_cast<double>(requests) * 1000.0 /
           static_cast<double>(instructions);
}

double
TraceStats::writeFraction() const
{
    if (requests == 0)
        return 0.0;
    return static_cast<double>(writes) / static_cast<double>(requests);
}

TraceStats
computeStats(const CoreTrace &trace)
{
    TraceStats stats;
    std::unordered_set<PageId> pages;
    for (const auto &req : trace) {
        ++stats.requests;
        if (req.isWrite)
            ++stats.writes;
        else
            ++stats.reads;
        stats.instructions += req.instructions();
        pages.insert(pageOf(req.addr));
    }
    stats.footprintPages = pages.size();
    return stats;
}

TraceStats
computeStats(const std::vector<CoreTrace> &traces)
{
    TraceStats stats;
    std::unordered_set<PageId> pages;
    for (const auto &trace : traces) {
        for (const auto &req : trace) {
            ++stats.requests;
            if (req.isWrite)
                ++stats.writes;
            else
                ++stats.reads;
            stats.instructions += req.instructions();
            pages.insert(pageOf(req.addr));
        }
    }
    stats.footprintPages = pages.size();
    return stats;
}

std::unordered_set<PageId>
touchedPages(const std::vector<CoreTrace> &traces)
{
    std::unordered_set<PageId> pages;
    for (const auto &trace : traces)
        for (const auto &req : trace)
            pages.insert(pageOf(req.addr));
    return pages;
}

void
writeTrace(std::ostream &os, const CoreTrace &trace)
{
    writePod(os, static_cast<std::uint64_t>(trace.size()));
    for (const auto &req : trace) {
        writePod(os, req.addr);
        writePod(os, req.gap);
        writePod(os, req.core);
        writePod(os, static_cast<std::uint8_t>(req.isWrite));
    }
}

CoreTrace
readTrace(std::istream &is)
{
    const auto count = readPod<std::uint64_t>(is);
    CoreTrace trace;
    trace.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
        MemRequest req;
        req.addr = readPod<Addr>(is);
        req.gap = readPod<std::uint32_t>(is);
        req.core = readPod<CoreId>(is);
        req.isWrite = readPod<std::uint8_t>(is) != 0;
        trace.push_back(req);
    }
    return trace;
}

void
writeWorkloadTrace(const std::string &path,
                   const std::vector<CoreTrace> &traces)
{
    std::ofstream os(path, std::ios::binary);
    if (!os)
        ramp_fatal("cannot open trace file for writing: ", path);
    writePod(os, traceMagic);
    writePod(os, traceVersion);
    writePod(os, static_cast<std::uint32_t>(traces.size()));
    for (const auto &trace : traces)
        writeTrace(os, trace);
}

std::vector<CoreTrace>
readWorkloadTrace(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        ramp_fatal("cannot open trace file for reading: ", path);
    if (readPod<std::uint32_t>(is) != traceMagic)
        ramp_fatal("bad trace magic in ", path);
    if (readPod<std::uint32_t>(is) != traceVersion)
        ramp_fatal("unsupported trace version in ", path);
    const auto cores = readPod<std::uint32_t>(is);
    std::vector<CoreTrace> traces;
    traces.reserve(cores);
    for (std::uint32_t i = 0; i < cores; ++i)
        traces.push_back(readTrace(is));
    return traces;
}

} // namespace ramp
