/**
 * @file
 * Benchmark profiles, workload specs (Table 2 mixes), address layout.
 *
 * A BenchmarkProfile is the synthetic stand-in for one SPEC CPU2006 /
 * DoE proxy-app program: a set of data structures plus a post-cache
 * memory intensity (MPKI). A WorkloadSpec assigns one program to each
 * of the 16 cores — either 16 copies of one program (the paper's
 * homogeneous workloads) or a Table 2 mix. buildLayout() assigns the
 * pages of every core's structures to disjoint physical ranges, which
 * is also the ground truth consumed by the annotation study.
 */

#ifndef RAMP_TRACE_WORKLOAD_HH
#define RAMP_TRACE_WORKLOAD_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"
#include "trace/structure.hh"

namespace ramp
{

/** Synthetic model of one benchmark program. */
struct BenchmarkProfile
{
    /** Program name (e.g. "mcf"). */
    std::string name;

    /** Post-cache memory accesses per kilo-instruction. */
    double mpki = 10.0;

    /** Memory requests each core running this program issues. */
    std::uint64_t requestsPerCore = 60000;

    /** The program's data structures. */
    std::vector<StructureSpec> structures;

    /** Total footprint of one instance, in pages. */
    std::uint64_t footprintPages() const;
};

/** Number of cores in the simulated system (Table 1). */
constexpr int workloadCores = 16;

/** A 16-core workload: one program per core. */
struct WorkloadSpec
{
    /** Workload name ("mcf", "mix1", ...). */
    std::string name;

    /** Program run on each core, by benchmark name. */
    std::vector<std::string> coreBenchmarks;
};

/**
 * Look up a benchmark profile by name.
 *
 * Registry covers the paper's seven homogeneous SPEC programs, the
 * two DoE proxy apps (XSBench, LULESH), and the additional SPEC
 * programs that appear only inside the Table 2 mixes. Throws
 * std::invalid_argument for an unknown name.
 */
const BenchmarkProfile &benchmarkProfile(const std::string &name);

/**
 * @{ @name Load-time input validation
 * Reject malformed inputs with std::invalid_argument carrying an
 * actionable message (which structure/field and what the legal range
 * is) instead of silently producing nonsense metrics. The runner
 * contains the throw as an InvalidInput pass failure.
 */
void validateStructureSpec(const std::string &context,
                           const StructureSpec &spec);
void validateBenchmarkProfile(const BenchmarkProfile &profile);
void validateWorkloadSpec(const WorkloadSpec &spec);
/** @} */

/** Names of all registered benchmark programs. */
std::vector<std::string> allBenchmarkNames();

/** 16 copies of one program (the paper's homogeneous workloads). */
WorkloadSpec homogeneousWorkload(const std::string &benchmark);

/** One of the five Table 2 datacenter mixes ("mix1".."mix5"). */
WorkloadSpec mixWorkload(const std::string &name);

/**
 * The paper's full workload set, in Figure 2 order: nine homogeneous
 * workloads plus mix1..mix5.
 */
std::vector<WorkloadSpec> standardWorkloads();

/** Reduced set for quick studies (Fig 1 uses astar/cactusADM/mix1). */
std::vector<WorkloadSpec> motivationWorkloads();

/** Physical placement of one structure instance. */
struct StructureRange
{
    /** Core whose program instance owns the range. */
    CoreId core = 0;

    /** Program the instance belongs to. */
    std::string benchmark;

    /** Structure name within the program. */
    std::string structure;

    /** Index of the structure within its profile. */
    std::uint32_t structureIndex = 0;

    /** First page of the range. */
    PageId firstPage = 0;

    /** Length in pages. */
    std::uint64_t pages = 0;

    /** One past the last page of the range. */
    PageId endPage() const { return firstPage + pages; }
};

/** Complete address-space layout of a workload. */
struct WorkloadLayout
{
    /** All structure instances, in layout order. */
    std::vector<StructureRange> ranges;

    /** Total pages spanned by the workload. */
    std::uint64_t totalPages = 0;

    /**
     * Index of the range containing a page, or -1 if unmapped.
     * O(log n) lookup over the sorted ranges.
     */
    int rangeOf(PageId page) const;
};

/** Lay out every core's structures over disjoint page ranges. */
WorkloadLayout buildLayout(const WorkloadSpec &spec);

} // namespace ramp

#endif // RAMP_TRACE_WORKLOAD_HH
