#include "trace/workload.hh"

#include <algorithm>
#include <cmath>
#include <map>
#include <utility>

#include "common/logging.hh"

namespace ramp
{

std::uint64_t
BenchmarkProfile::footprintPages() const
{
    std::uint64_t total = 0;
    for (const auto &spec : structures)
        total += spec.pages;
    return total;
}

namespace
{

/**
 * Global density tuning (see DESIGN.md Section 5). Trace density --
 * mean accesses per page -- controls the AVF floor of cold pages:
 * the paper's simpoints are dense enough that below-mean-hotness
 * pages still have most lines read at least once, which is what
 * gives its Figure 4 scatter the cold & high-AVF population.
 * footprintScale and requestScale set that density for the scaled
 * system.
 */
constexpr double footprintScale = 0.8;
constexpr double requestScale = 3.0;

/**
 * Global memory-intensity scale. Calibrated so the performance-
 * focused placement's IPC gain over DDR-only lands near the paper's
 * 1.6x average: the published MPKI values put the 16-core scaled
 * system deeper into bandwidth saturation than the paper's, which
 * would exaggerate every policy's IPC delta.
 */
constexpr double mpkiScale = 0.70;

std::uint64_t
scaledPages(std::uint64_t pages)
{
    const auto scaled = static_cast<std::uint64_t>(
        static_cast<double>(pages) * footprintScale);
    return scaled == 0 ? 1 : scaled;
}

/** Shorthand builder for a Zipf-pattern structure. */
StructureSpec
zipfStruct(std::string name, std::uint64_t pages, double weight,
           double alpha, double write_fraction, double churn = 0.0)
{
    StructureSpec spec;
    spec.name = std::move(name);
    spec.pages = scaledPages(pages);
    spec.weight = weight;
    spec.pattern = AccessPattern::Zipf;
    spec.zipfAlpha = alpha;
    spec.writeFraction = write_fraction;
    spec.churn = churn;
    return spec;
}

/** Shorthand builder for a Streaming-pattern structure. */
StructureSpec
streamStruct(std::string name, std::uint64_t pages, double weight,
             std::uint32_t read_passes, std::uint64_t stride_lines,
             double read_probability)
{
    StructureSpec spec;
    spec.name = std::move(name);
    spec.pages = scaledPages(pages);
    spec.weight = weight;
    spec.pattern = AccessPattern::Streaming;
    spec.readPasses = read_passes;
    spec.strideLines = stride_lines;
    spec.readProbability = read_probability;
    return spec;
}

/**
 * Build the profile registry.
 *
 * Footprints are scaled 1/32 relative to the paper (HBM is 8192 pages
 * here); MPKI values follow the published memory intensity of each
 * program; the structure mixes are calibrated so the population-level
 * properties in DESIGN.md Section 5 hold (AVF span, correlations,
 * quadrant fractions).
 */
std::map<std::string, BenchmarkProfile>
buildRegistry()
{
    std::map<std::string, BenchmarkProfile> reg;

    // ---- Homogeneous-workload programs (7 SPEC + 2 DoE) ----

    {
        // Pointer-chasing network simplex; very memory intensive,
        // large read-mostly graph with a small hot write-heavy heap.
        BenchmarkProfile p;
        p.name = "mcf";
        p.mpki = 55;
        p.requestsPerCore = 130000;
        p.structures = {
            zipfStruct("nodes", 1400, 0.22, 0.35, 0.25, 2e-5),
            // The arc array is swept read-mostly every simplex
            // iteration: uniform moderate hotness, high AVF.
            streamStruct("arcs", 650, 0.20, 2, 2, 0.5),
            zipfStruct("buckets", 460, 0.52, 0.40, 0.72),
            zipfStruct("basket", 200, 0.06, 0.35, 0.72),
        };
        reg[p.name] = p;
    }
    {
        // Lattice-Boltzmann: two big grids streamed every iteration;
        // uniform hotness, strided line coverage.
        BenchmarkProfile p;
        p.name = "lbm";
        p.mpki = 45;
        p.requestsPerCore = 110000;
        p.structures = {
            streamStruct("srcGrid", 850, 0.56, 1, 4, 0.90),
            streamStruct("dstGrid", 850, 0.40, 1, 4, 0.20),
            zipfStruct("params", 60, 0.04, 0.60, 0.20),
        };
        reg[p.name] = p;
    }
    {
        // Lattice QCD: large nearly-uniform read-dominated field
        // arrays kept live across the run -> highest memory AVF.
        BenchmarkProfile p;
        p.name = "milc";
        p.mpki = 30;
        p.requestsPerCore = 90000;
        p.structures = {
            zipfStruct("lattice", 1700, 0.54, 0.10, 0.30),
            zipfStruct("gauge", 380, 0.12, 0.25, 0.18),
            zipfStruct("tmp_vecs", 460, 0.34, 0.35, 0.72),
        };
        reg[p.name] = p;
    }
    {
        // Path search: heavily skewed accesses into a big graph whose
        // hot core is read-mostly (hot pages are high-risk), most of
        // the footprint written once and dead -> lowest memory AVF.
        BenchmarkProfile p;
        p.name = "astar";
        p.mpki = 2.8;
        p.requestsPerCore = 65000;
        p.structures = {
            zipfStruct("graph", 1100, 0.30, 0.90, 0.20),
            zipfStruct("open_list", 400, 0.34, 0.50, 0.80),
            zipfStruct("workspace", 1100, 0.14, 0.20, 0.78),
            zipfStruct("visited", 350, 0.22, 0.35, 0.92),
        };
        reg[p.name] = p;
    }
    {
        // Simplex LP: sparse matrix read-heavy; dense work vectors
        // write-heavy and hot.
        BenchmarkProfile p;
        p.name = "soplex";
        p.mpki = 27;
        p.requestsPerCore = 100000;
        p.structures = {
            zipfStruct("matrix", 1100, 0.22, 0.30, 0.32, 1e-5),
            zipfStruct("lu_factors", 420, 0.16, 0.30, 0.30),
            zipfStruct("work_vecs", 460, 0.56, 0.35, 0.72),
            zipfStruct("bounds", 120, 0.06, 0.40, 0.25),
        };
        reg[p.name] = p;
    }
    {
        // Quantum register simulation: one flat state vector swept
        // with read-modify-write gates; uniform hotness.
        BenchmarkProfile p;
        p.name = "libquantum";
        p.mpki = 25;
        p.requestsPerCore = 90000;
        p.structures = {
            streamStruct("state_vec", 1500, 0.78, 1, 4, 0.70),
            zipfStruct("gate_cache", 300, 0.22, 0.40, 0.88),
        };
        reg[p.name] = p;
    }
    {
        // Numerical relativity stencil: many same-sized grid
        // functions (the 39-annotation outlier of Fig 17), strided
        // sweeps that favour recency-based tracking (Section 6.4).
        BenchmarkProfile p;
        p.name = "cactusADM";
        p.mpki = 12;
        p.requestsPerCore = 75000;
        const int grid_functions = 40;
        for (int i = 0; i < grid_functions; ++i) {
            const bool write_heavy = i % 3 == 0;
            p.structures.push_back(streamStruct(
                "grid_fn_" + std::to_string(i), 42,
                write_heavy ? 1.5 : 0.8, 1, 8,
                write_heavy ? 0.15 : 0.40));
        }
        p.structures.push_back(
            zipfStruct("coeffs", 60, 2.0, 0.50, 0.10));
        reg[p.name] = p;
    }
    {
        // Monte-Carlo neutron transport: random lookups in large
        // read-only cross-section tables (high AVF), small hot
        // write-mostly tally array.
        BenchmarkProfile p;
        p.name = "xsbench";
        p.mpki = 20;
        p.requestsPerCore = 90000;
        p.structures = {
            zipfStruct("nuclide_grid", 1400, 0.32, 0.25, 0.25),
            zipfStruct("unionized_grid", 450, 0.20, 0.45, 0.25),
            zipfStruct("tallies", 460, 0.52, 0.35, 0.72),
        };
        reg[p.name] = p;
    }
    {
        // Shock hydrodynamics mini-app: mesh-wide streamed state plus
        // skewed element-centred scratch arrays.
        BenchmarkProfile p;
        p.name = "lulesh";
        p.mpki = 10;
        p.requestsPerCore = 70000;
        p.structures = {
            streamStruct("node_fields", 700, 0.26, 1, 6, 0.50),
            streamStruct("elem_fields", 600, 0.22, 1, 6, 0.20),
            zipfStruct("connectivity", 260, 0.16, 0.35, 0.15),
            zipfStruct("scratch", 550, 0.36, 0.40, 0.88),
        };
        reg[p.name] = p;
    }

    // ---- Mix-only programs (Table 2) ----

    {
        BenchmarkProfile p; // discrete event simulation
        p.name = "omnetpp";
        p.mpki = 9;
        p.requestsPerCore = 55000;
        p.structures = {
            zipfStruct("event_heap", 220, 0.46, 0.95, 0.65, 5e-5),
            zipfStruct("messages", 700, 0.32, 0.45, 0.40, 5e-5),
            zipfStruct("topology", 400, 0.22, 0.20, 0.15),
        };
        reg[p.name] = p;
    }
    {
        BenchmarkProfile p; // speech recognition, read-heavy models
        p.name = "sphinx";
        p.mpki = 7;
        p.requestsPerCore = 50000;
        p.structures = {
            zipfStruct("acoustic_model", 900, 0.45, 0.15, 0.12),
            zipfStruct("search_lattice", 260, 0.30, 0.50, 0.55),
            zipfStruct("feature_buf", 250, 0.25, 0.45, 0.72),
        };
        reg[p.name] = p;
    }
    {
        BenchmarkProfile p; // FEM solver, write-heavy assembly
        p.name = "dealII";
        p.mpki = 5;
        p.requestsPerCore = 45000;
        p.structures = {
            zipfStruct("sparse_matrix", 700, 0.33, 0.40, 0.45),
            zipfStruct("dof_vectors", 240, 0.42, 0.40, 0.72),
            zipfStruct("workspace", 500, 0.25, 0.30, 0.70),
        };
        reg[p.name] = p;
    }
    {
        BenchmarkProfile p; // CFD stencil, streamed fields
        p.name = "leslie3d";
        p.mpki = 20;
        p.requestsPerCore = 75000;
        p.structures = {
            streamStruct("flow_a", 650, 0.44, 1, 4, 0.35),
            streamStruct("flow_b", 650, 0.44, 1, 4, 0.22),
            zipfStruct("metrics", 90, 0.12, 0.50, 0.15),
        };
        reg[p.name] = p;
    }
    {
        BenchmarkProfile p; // compiler, pointer-heavy, mostly cold
        p.name = "gcc";
        p.mpki = 4;
        p.requestsPerCore = 38000;
        p.structures = {
            zipfStruct("ir_nodes", 600, 0.40, 0.55, 0.40, 8e-5),
            zipfStruct("symbol_table", 200, 0.25, 0.90, 0.30),
            zipfStruct("obstack", 450, 0.35, 0.25, 0.75),
        };
        reg[p.name] = p;
    }
    {
        BenchmarkProfile p; // FDTD electromagnetic solver
        p.name = "GemsFDTD";
        p.mpki = 22;
        p.requestsPerCore = 75000;
        p.structures = {
            streamStruct("e_field", 600, 0.40, 1, 4, 0.40),
            streamStruct("h_field", 600, 0.40, 1, 4, 0.40),
            zipfStruct("boundary", 180, 0.20, 0.55, 0.35),
        };
        reg[p.name] = p;
    }
    {
        BenchmarkProfile p; // compression: hot small buffers, heavy
        p.name = "bzip";   // writes, low-risk
        p.mpki = 7;
        p.requestsPerCore = 50000;
        p.structures = {
            zipfStruct("block_buf", 300, 0.45, 0.35, 0.68),
            zipfStruct("sort_arrays", 350, 0.40, 0.35, 0.62),
            zipfStruct("huffman_tbl", 120, 0.15, 0.70, 0.20),
        };
        reg[p.name] = p;
    }
    {
        BenchmarkProfile p; // blast-wave CFD, streamed
        p.name = "bwaves";
        p.mpki = 18;
        p.requestsPerCore = 70000;
        p.structures = {
            streamStruct("q_state", 900, 0.55, 1, 4, 0.30),
            streamStruct("rhs", 500, 0.30, 1, 4, 0.18),
            zipfStruct("jacobian", 160, 0.15, 0.45, 0.25),
        };
        reg[p.name] = p;
    }

    for (auto &[name, profile] : reg) {
        profile.requestsPerCore = static_cast<std::uint64_t>(
            static_cast<double>(profile.requestsPerCore) *
            requestScale);
        profile.mpki *= mpkiScale;
    }
    return reg;
}

const std::map<std::string, BenchmarkProfile> &
registry()
{
    static const std::map<std::string, BenchmarkProfile> reg =
        buildRegistry();
    return reg;
}

/** Expand a {benchmark -> copies} table into a 16-core spec. */
WorkloadSpec
makeMix(const std::string &name,
        const std::vector<std::pair<std::string, int>> &parts)
{
    WorkloadSpec spec;
    spec.name = name;
    for (const auto &[bench, copies] : parts)
        for (int i = 0; i < copies; ++i)
            spec.coreBenchmarks.push_back(bench);
    if (spec.coreBenchmarks.size() != workloadCores)
        ramp_panic("mix ", name, " has ", spec.coreBenchmarks.size(),
                   " cores, expected ", workloadCores);
    return spec;
}

} // namespace

const BenchmarkProfile &
benchmarkProfile(const std::string &name)
{
    const auto &reg = registry();
    const auto it = reg.find(name);
    if (it == reg.end())
        ramp_invalid("unknown benchmark '", name,
                     "'; see allBenchmarkNames() for the registry");
    return it->second;
}

void
validateStructureSpec(const std::string &context,
                      const StructureSpec &spec)
{
    if (spec.name.empty())
        ramp_invalid(context, ": structure has an empty name");
    const std::string where = context + ", structure '" + spec.name +
                              "'";
    if (spec.pages == 0)
        ramp_invalid(where, ": footprint is 0 pages; every "
                            "structure needs at least one page");
    if (!std::isfinite(spec.weight) || spec.weight < 0)
        ramp_invalid(where, ": hotness weight ", spec.weight,
                     " must be a finite non-negative number");
    if (!std::isfinite(spec.zipfAlpha) || spec.zipfAlpha < 0)
        ramp_invalid(where, ": zipfAlpha ", spec.zipfAlpha,
                     " must be a finite non-negative number");
    if (!std::isfinite(spec.writeFraction) ||
        spec.writeFraction < 0 || spec.writeFraction > 1)
        ramp_invalid(where, ": writeFraction ", spec.writeFraction,
                     " must lie in [0, 1]");
    if (!std::isfinite(spec.churn) || spec.churn < 0 ||
        spec.churn > 1)
        ramp_invalid(where, ": churn ", spec.churn,
                     " must lie in [0, 1]");
    if (spec.readPasses == 0)
        ramp_invalid(where, ": readPasses must be >= 1");
    if (spec.strideLines == 0)
        ramp_invalid(where, ": strideLines must be >= 1");
    if (!std::isfinite(spec.readProbability) ||
        spec.readProbability < 0 || spec.readProbability > 1)
        ramp_invalid(where, ": readProbability ",
                     spec.readProbability, " must lie in [0, 1]");
}

void
validateBenchmarkProfile(const BenchmarkProfile &profile)
{
    if (profile.name.empty())
        ramp_invalid("benchmark profile has an empty name");
    const std::string where = "benchmark '" + profile.name + "'";
    if (!std::isfinite(profile.mpki) || profile.mpki <= 0)
        ramp_invalid(where, ": mpki ", profile.mpki,
                     " must be a finite positive number");
    if (profile.requestsPerCore == 0)
        ramp_invalid(where, ": requestsPerCore must be >= 1");
    if (profile.structures.empty())
        ramp_invalid(where, ": needs at least one structure");
    for (const auto &spec : profile.structures)
        validateStructureSpec(where, spec);
}

void
validateWorkloadSpec(const WorkloadSpec &spec)
{
    if (spec.name.empty())
        ramp_invalid("workload spec has an empty name");
    if (spec.coreBenchmarks.size() != workloadCores)
        ramp_invalid("workload '", spec.name, "' assigns ",
                     spec.coreBenchmarks.size(),
                     " cores; the system has ", workloadCores);
    for (const auto &bench : spec.coreBenchmarks)
        validateBenchmarkProfile(benchmarkProfile(bench));
}

std::vector<std::string>
allBenchmarkNames()
{
    std::vector<std::string> names;
    for (const auto &[name, profile] : registry())
        names.push_back(name);
    return names;
}

WorkloadSpec
homogeneousWorkload(const std::string &benchmark)
{
    benchmarkProfile(benchmark); // validate
    WorkloadSpec spec;
    spec.name = benchmark;
    spec.coreBenchmarks.assign(workloadCores, benchmark);
    return spec;
}

WorkloadSpec
mixWorkload(const std::string &name)
{
    // Table 2 of the paper.
    if (name == "mix1") {
        return makeMix(name, {{"mcf", 3}, {"lbm", 2}, {"milc", 2},
                              {"omnetpp", 1}, {"astar", 2},
                              {"sphinx", 1}, {"soplex", 2},
                              {"libquantum", 2}, {"gcc", 1}});
    }
    if (name == "mix2") {
        return makeMix(name, {{"mcf", 2}, {"lbm", 3}, {"soplex", 3},
                              {"dealII", 3}, {"GemsFDTD", 2},
                              {"bzip", 1}, {"cactusADM", 2}});
    }
    if (name == "mix3") {
        return makeMix(name, {{"omnetpp", 2}, {"astar", 1},
                              {"sphinx", 2}, {"dealII", 1},
                              {"libquantum", 1}, {"leslie3d", 2},
                              {"gcc", 2}, {"GemsFDTD", 2}, {"bzip", 1},
                              {"cactusADM", 2}});
    }
    if (name == "mix4") {
        return makeMix(name, {{"mcf", 1}, {"lbm", 1}, {"milc", 1},
                              {"soplex", 3}, {"dealII", 1},
                              {"libquantum", 3}, {"leslie3d", 1},
                              {"gcc", 1}, {"GemsFDTD", 1}, {"bzip", 2},
                              {"cactusADM", 1}});
    }
    if (name == "mix5") {
        return makeMix(name, {{"dealII", 3}, {"leslie3d", 3},
                              {"GemsFDTD", 1}, {"bzip", 3},
                              {"bwaves", 1}, {"cactusADM", 5}});
    }
    ramp_invalid("unknown mix workload '", name,
                 "'; the Table 2 mixes are mix1..mix5");
}

std::vector<WorkloadSpec>
standardWorkloads()
{
    std::vector<WorkloadSpec> specs;
    for (const char *name :
         {"mcf", "lbm", "milc", "astar", "soplex", "libquantum",
          "cactusADM", "xsbench", "lulesh"})
        specs.push_back(homogeneousWorkload(name));
    for (const char *name : {"mix1", "mix2", "mix3", "mix4", "mix5"})
        specs.push_back(mixWorkload(name));
    return specs;
}

std::vector<WorkloadSpec>
motivationWorkloads()
{
    return {homogeneousWorkload("astar"),
            homogeneousWorkload("cactusADM"), mixWorkload("mix1")};
}

int
WorkloadLayout::rangeOf(PageId page) const
{
    // Ranges are laid out contiguously in ascending order.
    int lo = 0;
    int hi = static_cast<int>(ranges.size()) - 1;
    while (lo <= hi) {
        const int mid = lo + (hi - lo) / 2;
        const auto &range = ranges[static_cast<std::size_t>(mid)];
        if (page < range.firstPage)
            hi = mid - 1;
        else if (page >= range.endPage())
            lo = mid + 1;
        else
            return mid;
    }
    return -1;
}

WorkloadLayout
buildLayout(const WorkloadSpec &spec)
{
    if (spec.coreBenchmarks.size() != workloadCores)
        ramp_invalid("workload '", spec.name, "' must define ",
                     workloadCores, " cores");
    WorkloadLayout layout;
    PageId next = 0;
    for (std::size_t core = 0; core < spec.coreBenchmarks.size();
         ++core) {
        const auto &profile = benchmarkProfile(spec.coreBenchmarks[core]);
        for (std::size_t s = 0; s < profile.structures.size(); ++s) {
            const auto &st = profile.structures[s];
            StructureRange range;
            range.core = static_cast<CoreId>(core);
            range.benchmark = profile.name;
            range.structure = st.name;
            range.structureIndex = static_cast<std::uint32_t>(s);
            range.firstPage = next;
            range.pages = st.pages;
            layout.ranges.push_back(range);
            next += st.pages;
        }
    }
    layout.totalPages = next;
    return layout;
}

} // namespace ramp
