/**
 * @file
 * Memory request record — the unit of every trace in RAMP.
 *
 * Mirrors the paper's trace format (Section 3.1): each record carries
 * the number of intervening non-memory instructions, the address, and
 * the request type. Traces are memory-level (post-L2) unless produced
 * by the CPU-level generator mode for the cache-filter pipeline.
 */

#ifndef RAMP_TRACE_REQUEST_HH
#define RAMP_TRACE_REQUEST_HH

#include <cstdint>

#include "common/types.hh"

namespace ramp
{

/** One memory access of a core's instruction stream. */
struct MemRequest
{
    /** Byte address touched (one 64 B line is moved). */
    Addr addr = 0;

    /** Non-memory instructions executed since the previous request. */
    std::uint32_t gap = 0;

    /** Issuing core. */
    CoreId core = 0;

    /** True for stores/writebacks, false for loads/fetches. */
    bool isWrite = false;

    /** Total instructions this record accounts for (gap + itself). */
    std::uint64_t instructions() const { return gap + 1ULL; }
};

} // namespace ramp

#endif // RAMP_TRACE_REQUEST_HH
