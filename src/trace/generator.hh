/**
 * @file
 * Synthetic trace generator (the PinPlay/SimPoints substitute).
 *
 * Produces deterministic per-core memory request streams from a
 * WorkloadSpec. The default output is memory-level (post-L2) traffic,
 * calibrated directly by the benchmark profiles; the CPU-level mode
 * produces a denser pre-cache stream for the cache-filter pipeline
 * (Moola substitute in src/cache).
 */

#ifndef RAMP_TRACE_GENERATOR_HH
#define RAMP_TRACE_GENERATOR_HH

#include <cstdint>
#include <vector>

#include "trace/trace.hh"
#include "trace/workload.hh"

namespace ramp
{

/** Knobs of a generation run. */
struct GeneratorOptions
{
    /** Master seed; identical options produce identical traces. */
    std::uint64_t seed = 1;

    /** Multiplies every profile's requestsPerCore (tests use < 1). */
    double traceScale = 1.0;

    /**
     * Emit a CPU-level stream: every memory-level access is preceded
     * by hitBurst cache-friendly re-accesses of nearby lines, so that
     * a cache hierarchy filters the stream back down.
     */
    bool cpuLevel = false;

    /** Cache-hit accesses injected per request in CPU-level mode. */
    std::uint32_t hitBurst = 3;
};

/**
 * Generate the per-core traces of a workload.
 *
 * @param spec workload (validated against the profile registry)
 * @param layout address layout from buildLayout(spec)
 * @param options generation knobs
 * @return one program-ordered trace per core
 */
std::vector<CoreTrace> generateTraces(const WorkloadSpec &spec,
                                      const WorkloadLayout &layout,
                                      const GeneratorOptions &options);

/** Convenience overload that builds the layout internally. */
std::vector<CoreTrace> generateTraces(const WorkloadSpec &spec,
                                      const GeneratorOptions &options);

} // namespace ramp

#endif // RAMP_TRACE_GENERATOR_HH
