/**
 * @file
 * Cycle source for the hot-path profiler.
 *
 * On x86-64 readCycles() is one RDTSC (the modern invariant TSC
 * ticks at a constant rate regardless of frequency scaling, so
 * deltas are meaningful wall-cycle counts). Elsewhere it falls back
 * to steady_clock nanoseconds, which keeps every downstream formula
 * valid — "cycles" just means nanoseconds and tscHz() reports 1e9.
 *
 * tscHz() calibrates the counter against steady_clock once, on
 * first use, over a ~20 ms window; the result is cached for the
 * process lifetime and stamped into profiles and BENCH host blocks
 * so cycle counts stay attributable to the hardware that produced
 * them.
 */

#ifndef RAMP_PROF_TSC_HH
#define RAMP_PROF_TSC_HH

#include <chrono>
#include <cstdint>
#include <string>

#if defined(__x86_64__) || defined(_M_X64)
#include <x86intrin.h>
#endif

namespace ramp::prof
{

namespace detail
{

using CycleSource = std::uint64_t (*)();

/**
 * Install a deterministic cycle source (tests); nullptr restores
 * the hardware counter. Takes effect for all threads.
 */
void setCycleSourceForTest(CycleSource source);

/** The installed test source, or nullptr (hot path peeks at this). */
CycleSource cycleSourceForTest();

} // namespace detail

/** steady_clock nanoseconds (the non-x86 "cycle" unit). */
inline std::uint64_t
steadyNanos()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

/** Raw cycle counter (RDTSC, or steady_clock ns off x86-64). */
inline std::uint64_t
readTsc()
{
#if defined(__x86_64__) || defined(_M_X64)
    return __rdtsc();
#else
    return steadyNanos();
#endif
}

/**
 * The profiler's cycle read: the test source when one is installed,
 * readTsc() otherwise.
 */
inline std::uint64_t
readCycles()
{
    if (detail::CycleSource source = detail::cycleSourceForTest())
        return source();
    return readTsc();
}

/**
 * Measured counter frequency in Hz (calibrated once, cached).
 * Converts profile cycle counts into seconds.
 */
double tscHz();

/**
 * The CPU "model name" line from /proc/cpuinfo, or "unknown" when
 * the file is unreadable (non-Linux, locked-down container).
 */
std::string cpuModelName();

} // namespace ramp::prof

#endif // RAMP_PROF_TSC_HH
