#include "prof/pmu.hh"

#include <atomic>
#include <cstdlib>
#include <cstring>

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace ramp::prof
{

namespace
{

std::atomic<bool> forcedUnavailable{false};

#if defined(__linux__)

/** Group layout: leader + 3 siblings, fixed order. */
constexpr int groupSize = 4;

struct EventSpec
{
    std::uint32_t type;
    std::uint64_t config;
};

constexpr EventSpec groupSpecs[groupSize] = {
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_MISSES},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_BRANCH_MISSES},
};

long
perfEventOpen(perf_event_attr *attr, pid_t pid, int cpu,
              int group_fd, unsigned long flags)
{
    return syscall(SYS_perf_event_open, attr, pid, cpu, group_fd,
                   flags);
}

/** The calling thread's counter group; fds live until thread exit. */
struct ThreadGroup
{
    int leader = -1;
    int fds[groupSize] = {-1, -1, -1, -1};
    bool failed = false;

    ~ThreadGroup()
    {
        for (int fd : fds)
            if (fd >= 0)
                close(fd);
    }

    bool open()
    {
        for (int i = 0; i < groupSize; ++i) {
            perf_event_attr attr;
            std::memset(&attr, 0, sizeof(attr));
            attr.type = groupSpecs[i].type;
            attr.size = sizeof(attr);
            attr.config = groupSpecs[i].config;
            attr.disabled = i == 0 ? 1 : 0;
            attr.exclude_kernel = 1;
            attr.exclude_hv = 1;
            attr.read_format = PERF_FORMAT_GROUP |
                               PERF_FORMAT_TOTAL_TIME_ENABLED |
                               PERF_FORMAT_TOTAL_TIME_RUNNING;
            const long fd = perfEventOpen(
                &attr, 0, -1, i == 0 ? -1 : leader, 0);
            if (fd < 0)
                return false;
            fds[i] = static_cast<int>(fd);
            if (i == 0)
                leader = fds[0];
        }
        ioctl(leader, PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP);
        ioctl(leader, PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP);
        return true;
    }
};

ThreadGroup &
threadGroup()
{
    thread_local ThreadGroup group;
    return group;
}

bool
probePmu()
{
    // A probe group on the probing thread; success means the
    // kernel grants unprivileged self-profiling here.
    ThreadGroup probe;
    return probe.open();
}

#endif // __linux__

bool
pmuEnvDisabled()
{
    static const bool disabled = [] {
        const char *value = std::getenv("RAMP_PROF_PMU");
        return value != nullptr &&
               (std::strcmp(value, "off") == 0 ||
                std::strcmp(value, "0") == 0);
    }();
    return disabled;
}

} // namespace

bool
pmuAvailable()
{
    if (forcedUnavailable.load(std::memory_order_acquire))
        return false;
    if (pmuEnvDisabled())
        return false;
#if defined(__linux__)
    static const bool available = probePmu();
    return available;
#else
    return false;
#endif
}

PmuSample
pmuRead()
{
    PmuSample sample;
    if (!pmuAvailable())
        return sample;
#if defined(__linux__)
    ThreadGroup &group = threadGroup();
    if (group.failed)
        return sample;
    if (group.leader < 0 && !group.open()) {
        group.failed = true;
        return sample;
    }

    // PERF_FORMAT_GROUP layout: nr, time_enabled, time_running,
    // then one value per group member in creation order.
    std::uint64_t buffer[3 + groupSize];
    const ssize_t wanted = sizeof(buffer);
    if (read(group.leader, buffer, sizeof(buffer)) != wanted)
        return sample;
    const std::uint64_t nr = buffer[0];
    const std::uint64_t enabled = buffer[1];
    const std::uint64_t running = buffer[2];
    if (nr != groupSize || running == 0)
        return sample;
    // Multiplex scaling: counts are extrapolated to the full
    // enabled window when the kernel time-shared the PMU.
    const double scale = running == enabled
                             ? 1.0
                             : static_cast<double>(enabled) /
                                   static_cast<double>(running);
    auto scaled = [&](int i) {
        return static_cast<std::uint64_t>(
            static_cast<double>(buffer[3 + i]) * scale);
    };
    sample.cycles = scaled(0);
    sample.instructions = scaled(1);
    sample.llcMisses = scaled(2);
    sample.branchMisses = scaled(3);
    sample.valid = true;
#endif
    return sample;
}

void
pmuForceUnavailableForTest(bool forced)
{
    forcedUnavailable.store(forced, std::memory_order_release);
}

} // namespace ramp::prof
