#include "prof/tsc.hh"

#include <atomic>
#include <cstdio>
#include <cstring>
#include <thread>

namespace ramp::prof
{

namespace detail
{

namespace
{

std::atomic<CycleSource> testSource{nullptr};

} // namespace

void
setCycleSourceForTest(CycleSource source)
{
    testSource.store(source, std::memory_order_release);
}

CycleSource
cycleSourceForTest()
{
    return testSource.load(std::memory_order_acquire);
}

} // namespace detail

namespace
{

/**
 * Measure RDTSC against steady_clock over a short sleep. 20 ms is
 * long enough that scheduler jitter stays well under 1% while first
 * use (harness construction or first profile render) barely
 * notices.
 */
double
calibrateTscHz()
{
#if defined(__x86_64__) || defined(_M_X64)
    using Clock = std::chrono::steady_clock;
    const std::uint64_t tsc0 = readTsc();
    const Clock::time_point t0 = Clock::now();
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    const std::uint64_t tsc1 = readTsc();
    const Clock::time_point t1 = Clock::now();
    const double seconds =
        std::chrono::duration<double>(t1 - t0).count();
    if (seconds <= 0 || tsc1 <= tsc0)
        return 1e9; // non-monotonic TSC: treat cycles as ns
    return static_cast<double>(tsc1 - tsc0) / seconds;
#else
    return 1e9; // "cycles" are steady_clock nanoseconds
#endif
}

} // namespace

double
tscHz()
{
    static const double hz = calibrateTscHz();
    return hz;
}

std::string
cpuModelName()
{
    static const std::string model = [] {
        std::FILE *file = std::fopen("/proc/cpuinfo", "r");
        if (file == nullptr)
            return std::string("unknown");
        std::string name = "unknown";
        char line[512];
        while (std::fgets(line, sizeof(line), file) != nullptr) {
            if (std::strncmp(line, "model name", 10) != 0)
                continue;
            const char *colon = std::strchr(line, ':');
            if (colon == nullptr)
                continue;
            ++colon;
            while (*colon == ' ' || *colon == '\t')
                ++colon;
            name = colon;
            while (!name.empty() && (name.back() == '\n' ||
                                     name.back() == '\r'))
                name.pop_back();
            break;
        }
        std::fclose(file);
        return name;
    }();
    return model;
}

} // namespace ramp::prof
