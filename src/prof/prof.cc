#include "prof/prof.hh"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <sstream>

#include "prof/tsc.hh"
#include "telemetry/telemetry.hh"

namespace ramp::prof
{

namespace detail
{

std::atomic<bool> profEnabled{false};

/** One phase in a thread's call tree; owned by its parent. */
struct PhaseNode
{
    const char *name = "";
    PhaseNode *parent = nullptr;
    std::vector<std::unique_ptr<PhaseNode>> children;

    std::uint64_t calls = 0;
    std::uint64_t totalCycles = 0;

    std::uint64_t pmuCalls = 0;
    std::uint64_t pmuCycles = 0;
    std::uint64_t pmuInstructions = 0;
    std::uint64_t pmuLlcMisses = 0;
    std::uint64_t pmuBranchMisses = 0;
};

/**
 * One thread's tree and cursor. The owner mutates under the mutex;
 * snapshot() and reset() read/zero from other threads under it.
 */
struct ThreadProf
{
    std::mutex mutex;
    PhaseNode root;
    PhaseNode *current = &root;
};

} // namespace detail

namespace
{

struct Collector
{
    std::mutex mutex;
    std::vector<std::shared_ptr<detail::ThreadProf>> states;
};

Collector &
collector()
{
    static Collector instance;
    return instance;
}

/**
 * The calling thread's tree, registered on first use. Only enabled
 * scopes call this, so a disabled run registers nothing.
 */
detail::ThreadProf &
threadState()
{
    thread_local std::shared_ptr<detail::ThreadProf> state = [] {
        auto fresh = std::make_shared<detail::ThreadProf>();
        Collector &c = collector();
        std::lock_guard<std::mutex> lock(c.mutex);
        c.states.push_back(fresh);
        return fresh;
    }();
    return *state;
}

std::uint64_t
saturatingDelta(std::uint64_t start, std::uint64_t stop)
{
    return stop >= start ? stop - start : 0;
}

/** Merged (cross-thread) tree, keyed by phase-name content. */
struct MergeNode
{
    std::uint64_t calls = 0;
    std::uint64_t totalCycles = 0;
    std::uint64_t pmuCalls = 0;
    std::uint64_t pmuCycles = 0;
    std::uint64_t pmuInstructions = 0;
    std::uint64_t pmuLlcMisses = 0;
    std::uint64_t pmuBranchMisses = 0;

    /** std::map keeps children name-sorted for determinism. */
    std::map<std::string, MergeNode> children;
};

void
mergeInto(MergeNode &dst, const detail::PhaseNode &src)
{
    dst.calls += src.calls;
    dst.totalCycles += src.totalCycles;
    dst.pmuCalls += src.pmuCalls;
    dst.pmuCycles += src.pmuCycles;
    dst.pmuInstructions += src.pmuInstructions;
    dst.pmuLlcMisses += src.pmuLlcMisses;
    dst.pmuBranchMisses += src.pmuBranchMisses;
    for (const auto &child : src.children)
        mergeInto(dst.children[child->name], *child);
}

bool
subtreeRan(const MergeNode &node)
{
    if (node.calls > 0)
        return true;
    for (const auto &[name, child] : node.children)
        if (subtreeRan(child))
            return true;
    return false;
}

void
flatten(const MergeNode &node, const std::string &prefix,
        unsigned depth, std::vector<PhaseStat> &out)
{
    for (const auto &[name, child] : node.children) {
        if (!subtreeRan(child))
            continue;
        // Local copy: `out` reallocates as the recursion appends, so
        // a reference into it would dangle.
        const std::string path =
            prefix.empty() ? name : prefix + ";" + name;
        PhaseStat stat;
        stat.path = path;
        stat.name = name;
        stat.depth = depth;
        stat.calls = child.calls;
        stat.totalCycles = child.totalCycles;
        std::uint64_t children_total = 0;
        for (const auto &[cname, grandchild] : child.children)
            children_total += grandchild.totalCycles;
        stat.selfCycles =
            saturatingDelta(children_total, child.totalCycles);
        stat.pmuCalls = child.pmuCalls;
        stat.pmuCycles = child.pmuCycles;
        stat.pmuInstructions = child.pmuInstructions;
        stat.pmuLlcMisses = child.pmuLlcMisses;
        stat.pmuBranchMisses = child.pmuBranchMisses;
        out.push_back(std::move(stat));
        flatten(child, path, depth + 1, out);
    }
}

void
zeroTree(detail::PhaseNode &node)
{
    node.calls = 0;
    node.totalCycles = 0;
    node.pmuCalls = 0;
    node.pmuCycles = 0;
    node.pmuInstructions = 0;
    node.pmuLlcMisses = 0;
    node.pmuBranchMisses = 0;
    for (auto &child : node.children)
        zeroTree(*child);
}

} // namespace

void
setEnabled(bool on)
{
    detail::profEnabled.store(on, std::memory_order_relaxed);
}

const char *
internName(std::string_view name)
{
    static std::mutex mutex;
    // std::set nodes are stable, so the c_str pointers live for
    // the process lifetime.
    static std::set<std::string> names;
    std::lock_guard<std::mutex> lock(mutex);
    return names.emplace(name).first->c_str();
}

void
ScopedPhase::begin(const char *name, bool with_pmu)
{
    active_ = true;
    pmuActive_ = false;
    state_ = &threadState();
    {
        std::lock_guard<std::mutex> lock(state_->mutex);
        detail::PhaseNode *parent = state_->current;
        detail::PhaseNode *child = nullptr;
        for (const auto &candidate : parent->children) {
            if (candidate->name == name ||
                std::strcmp(candidate->name, name) == 0) {
                child = candidate.get();
                break;
            }
        }
        if (child == nullptr) {
            parent->children.push_back(
                std::make_unique<detail::PhaseNode>());
            child = parent->children.back().get();
            child->name = name;
            child->parent = parent;
        }
        state_->current = child;
        node_ = child;
    }
    if (with_pmu) {
        const PmuSample start = pmuRead();
        pmuActive_ = start.valid;
        pmuStartCycles_ = start.cycles;
        pmuStartInstructions_ = start.instructions;
        pmuStartLlcMisses_ = start.llcMisses;
        pmuStartBranchMisses_ = start.branchMisses;
    }
    // Last, so the phase never charges itself for its own setup.
    startCycles_ = readCycles();
}

void
ScopedPhase::end()
{
    const std::uint64_t stop = readCycles();
    PmuSample pmu_stop;
    if (pmuActive_)
        pmu_stop = pmuRead();

    std::lock_guard<std::mutex> lock(state_->mutex);
    node_->calls += 1;
    node_->totalCycles += saturatingDelta(startCycles_, stop);
    if (pmuActive_ && pmu_stop.valid) {
        node_->pmuCalls += 1;
        node_->pmuCycles +=
            saturatingDelta(pmuStartCycles_, pmu_stop.cycles);
        node_->pmuInstructions += saturatingDelta(
            pmuStartInstructions_, pmu_stop.instructions);
        node_->pmuLlcMisses += saturatingDelta(
            pmuStartLlcMisses_, pmu_stop.llcMisses);
        node_->pmuBranchMisses += saturatingDelta(
            pmuStartBranchMisses_, pmu_stop.branchMisses);
    }
    state_->current = node_->parent;
}

ProfileSnapshot
snapshot()
{
    std::vector<std::shared_ptr<detail::ThreadProf>> states;
    {
        Collector &c = collector();
        std::lock_guard<std::mutex> lock(c.mutex);
        states = c.states;
    }
    MergeNode merged;
    for (const auto &state : states) {
        std::lock_guard<std::mutex> lock(state->mutex);
        for (const auto &child : state->root.children)
            mergeInto(merged.children[child->name], *child);
    }
    ProfileSnapshot result;
    result.pmuAvailable = pmuAvailable();
    flatten(merged, "", 0, result.phases);
    return result;
}

std::string
profileJson(const std::string &tool, unsigned jobs)
{
    using telemetry::jsonEscape;
    using telemetry::jsonNumber;

    const ProfileSnapshot snap = snapshot();
    const double hz = tscHz();

    std::ostringstream out;
    out << "{\n";
    out << "  \"schema\": \"" << profileSchema << "\",\n";
    out << "  \"tool\": \"" << jsonEscape(tool) << "\",\n";
    out << "  \"jobs\": " << jobs << ",\n";
    out << "  \"host\": {\"cpu_model\": \""
        << jsonEscape(cpuModelName())
        << "\", \"tsc_hz\": " << jsonNumber(hz) << "},\n";
    out << "  \"pmu\": {\"available\": "
        << (snap.pmuAvailable ? "true" : "false")
        << ", \"counters\": [\"cycles\", \"instructions\", "
           "\"llc_misses\", \"branch_misses\"]},\n";
    out << "  \"phases\": [\n";
    for (std::size_t i = 0; i < snap.phases.size(); ++i) {
        const PhaseStat &phase = snap.phases[i];
        out << "    {\"path\": \"" << jsonEscape(phase.path)
            << "\", \"name\": \"" << jsonEscape(phase.name)
            << "\", \"depth\": " << phase.depth
            << ", \"calls\": " << phase.calls
            << ", \"total_cycles\": " << phase.totalCycles
            << ", \"self_cycles\": " << phase.selfCycles
            << ", \"total_seconds\": "
            << jsonNumber(static_cast<double>(phase.totalCycles) /
                          hz)
            << ", \"self_seconds\": "
            << jsonNumber(static_cast<double>(phase.selfCycles) /
                          hz);
        if (phase.pmuCalls > 0) {
            const double instructions =
                static_cast<double>(phase.pmuInstructions);
            const double ipc =
                phase.pmuCycles > 0
                    ? instructions /
                          static_cast<double>(phase.pmuCycles)
                    : 0.0;
            const double per_kilo = instructions > 0
                                        ? 1000.0 / instructions
                                        : 0.0;
            out << ", \"pmu\": {\"calls\": " << phase.pmuCalls
                << ", \"cycles\": " << phase.pmuCycles
                << ", \"instructions\": " << phase.pmuInstructions
                << ", \"llc_misses\": " << phase.pmuLlcMisses
                << ", \"branch_misses\": " << phase.pmuBranchMisses
                << ", \"ipc\": " << jsonNumber(ipc)
                << ", \"llc_misses_per_kilo_instruction\": "
                << jsonNumber(
                       static_cast<double>(phase.pmuLlcMisses) *
                       per_kilo)
                << ", \"branch_misses_per_kilo_instruction\": "
                << jsonNumber(
                       static_cast<double>(phase.pmuBranchMisses) *
                       per_kilo)
                << "}";
        }
        out << "}" << (i + 1 < snap.phases.size() ? "," : "")
            << "\n";
    }
    out << "  ]\n";
    out << "}\n";
    return out.str();
}

std::string
foldedStacks()
{
    const ProfileSnapshot snap = snapshot();
    std::ostringstream out;
    for (const PhaseStat &phase : snap.phases)
        if (phase.selfCycles > 0)
            out << phase.path << " " << phase.selfCycles << "\n";
    return out.str();
}

std::string
profileBlockJson()
{
    using telemetry::jsonEscape;

    const ProfileSnapshot snap = snapshot();
    if (snap.phases.empty())
        return "";

    std::uint64_t total = 0;
    for (const PhaseStat &phase : snap.phases)
        if (phase.depth == 0)
            total += phase.totalCycles;

    // Top self-cycle phases, path-sorted within equal cycles so
    // the block is deterministic.
    std::vector<const PhaseStat *> top;
    for (const PhaseStat &phase : snap.phases)
        top.push_back(&phase);
    std::sort(top.begin(), top.end(),
              [](const PhaseStat *a, const PhaseStat *b) {
                  if (a->selfCycles != b->selfCycles)
                      return a->selfCycles > b->selfCycles;
                  return a->path < b->path;
              });
    if (top.size() > 5)
        top.resize(5);

    std::ostringstream out;
    out << "{\n";
    out << "    \"schema\": \"" << profileSchema << "\",\n";
    out << "    \"pmu_available\": "
        << (snap.pmuAvailable ? "true" : "false") << ",\n";
    out << "    \"phases\": " << snap.phases.size() << ",\n";
    out << "    \"total_cycles\": " << total << ",\n";
    out << "    \"top_self\": [\n";
    for (std::size_t i = 0; i < top.size(); ++i) {
        out << "      {\"path\": \"" << jsonEscape(top[i]->path)
            << "\", \"self_cycles\": " << top[i]->selfCycles
            << ", \"calls\": " << top[i]->calls << "}"
            << (i + 1 < top.size() ? "," : "") << "\n";
    }
    out << "    ]\n";
    out << "  }";
    return out.str();
}

void
reset()
{
    std::vector<std::shared_ptr<detail::ThreadProf>> states;
    {
        Collector &c = collector();
        std::lock_guard<std::mutex> lock(c.mutex);
        states = c.states;
    }
    // Zero counters but keep the nodes: live threads hold cursor
    // pointers into their trees, and those must stay valid.
    for (const auto &state : states) {
        std::lock_guard<std::mutex> lock(state->mutex);
        zeroTree(state->root);
    }
}

std::size_t
threadStateCountForTest()
{
    Collector &c = collector();
    std::lock_guard<std::mutex> lock(c.mutex);
    return c.states.size();
}

} // namespace ramp::prof
