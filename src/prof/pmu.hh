/**
 * @file
 * Hardware PMU counters for the profiler, via perf_event_open.
 *
 * Each thread that samples opens one counter group on itself —
 * leader = cycles, siblings = instructions, LLC misses, branch
 * misses — read in a single syscall with
 * PERF_FORMAT_GROUP | TOTAL_TIME_ENABLED | TOTAL_TIME_RUNNING, so
 * multiplexed counts are scaled back to full-speed estimates.
 *
 * Availability is probed once: CI containers and locked-down hosts
 * reject perf_event_open (EPERM/EACCES/ENOSYS), in which case every
 * sample comes back invalid and the profiler degrades to TSC-only.
 * RAMP_PROF_PMU=off forces that path (the CI fallback smoke uses
 * it), and pmuForceUnavailableForTest() does the same from tests.
 */

#ifndef RAMP_PROF_PMU_HH
#define RAMP_PROF_PMU_HH

#include <cstdint>

namespace ramp::prof
{

/** One multiplex-scaled reading of the per-thread counter group. */
struct PmuSample
{
    bool valid = false;
    std::uint64_t cycles = 0;
    std::uint64_t instructions = 0;
    std::uint64_t llcMisses = 0;
    std::uint64_t branchMisses = 0;
};

/**
 * True when perf_event_open works here (probed on first call;
 * honours RAMP_PROF_PMU=off and the test override).
 */
bool pmuAvailable();

/**
 * Read the calling thread's counter group, opening it on first use.
 * sample.valid is false when the PMU is unavailable or the read
 * failed; callers must only difference two valid samples.
 */
PmuSample pmuRead();

/** Force pmuAvailable() == false (tests); false restores probing. */
void pmuForceUnavailableForTest(bool forced);

} // namespace ramp::prof

#endif // RAMP_PROF_PMU_HH
