/**
 * @file
 * Cycle-level hot-path profiler.
 *
 * RAMP_PROF_SCOPE(var, "phase") opens a scoped phase timer: on
 * entry it reads the TSC (prof/tsc.hh) and descends into the
 * calling thread's hierarchical phase tree, on exit it accumulates
 * the cycle delta and call count into that tree node. Nested scopes
 * build real call trees, so snapshots can report both total cycles
 * (including children) and self cycles (excluding them) per phase
 * path. RAMP_PROF_SCOPE_PMU additionally samples the hardware PMU
 * group (prof/pmu.hh) at entry and exit, attributing cycles,
 * instructions, LLC misses, and branch misses to the phase; when
 * the PMU is unavailable (CI containers) those scopes silently
 * degrade to TSC-only.
 *
 * Each thread owns its tree (mutations under a per-thread mutex the
 * way telemetry trace buffers do) and snapshot() merges all trees
 * exactly, keyed by phase-name content — like the metrics registry,
 * totals are schedule-independent for deterministic workloads: the
 * same phases run the same number of times at any --jobs, only the
 * raw cycle counts carry timing noise.
 *
 * Gating follows the house pattern: a disabled site costs one
 * relaxed atomic load and a branch (and allocates nothing — thread
 * state is only created by enabled scopes), and defining
 * RAMP_PROF_DISABLED compiles the sites out entirely.
 *
 * Exports: profileJson() renders the self-describing
 * ramp-profile-v1 document, foldedStacks() the matching
 * `path;to;phase self_cycles` flamegraph lines, and
 * profileBlockJson() the conditional `profile` block embedded in
 * ramp-bench-v1 documents. The harness wires all three behind
 * --profile-out / RAMP_PROF_OUT.
 */

#ifndef RAMP_PROF_PROF_HH
#define RAMP_PROF_PROF_HH

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "prof/pmu.hh"

namespace ramp::prof
{

/** Schema identifier stamped into profile documents. */
inline constexpr const char *profileSchema = "ramp-profile-v1";

namespace detail
{

/** Backing flag for enabled(); flip through setEnabled() only. */
extern std::atomic<bool> profEnabled;

} // namespace detail

/**
 * True when profiling scopes should record (default off). Inline so
 * a disabled site in a per-access loop is one relaxed load and a
 * branch, with no function call.
 */
inline bool
enabled()
{
    return detail::profEnabled.load(std::memory_order_relaxed);
}

/** Toggle recording at runtime. */
void setEnabled(bool on);

/**
 * Intern a dynamic phase name (e.g. "kernel." + microbench case)
 * into a process-lifetime string usable with RAMP_PROF_SCOPE.
 */
const char *internName(std::string_view name);

/** One phase path in a merged snapshot. */
struct PhaseStat
{
    /** Semicolon-joined path from the root, e.g. "hma.run;hma.migration_epoch". */
    std::string path;

    /** Leaf phase name (last path component). */
    std::string name;

    /** 0 for top-level phases. */
    unsigned depth = 0;

    std::uint64_t calls = 0;

    /** Cycles inside the phase, children included. */
    std::uint64_t totalCycles = 0;

    /** totalCycles minus the children's totals (saturating). */
    std::uint64_t selfCycles = 0;

    /** Calls that captured a valid PMU delta (0 = TSC-only). */
    std::uint64_t pmuCalls = 0;
    std::uint64_t pmuCycles = 0;
    std::uint64_t pmuInstructions = 0;
    std::uint64_t pmuLlcMisses = 0;
    std::uint64_t pmuBranchMisses = 0;
};

/** All threads' phase trees, merged exactly and path-sorted. */
struct ProfileSnapshot
{
    /** pmuAvailable() at snapshot time. */
    bool pmuAvailable = false;

    std::vector<PhaseStat> phases;
};

/**
 * Merge every thread's tree (children sorted by name, so the
 * result is independent of thread registration order) and compute
 * self cycles. Phases whose subtree never ran are omitted.
 */
ProfileSnapshot snapshot();

/**
 * The ramp-profile-v1 document: schema/tool/jobs header, host block
 * (cpu_model, tsc_hz), pmu availability, and one record per phase
 * path with cycle totals, seconds (via the calibrated TSC
 * frequency), and PMU-derived rates (IPC, misses per kilo-
 * instruction) where sampled.
 */
std::string profileJson(const std::string &tool, unsigned jobs);

/**
 * Flamegraph folded-stack lines: `root;child;leaf self_cycles`, one
 * per phase path with nonzero self cycles.
 */
std::string foldedStacks();

/**
 * The `profile` block for ramp-bench-v1 documents (object value,
 * no trailing newline), or "" when nothing was profiled.
 */
std::string profileBlockJson();

/** Zero every registered tree's counters (tests). */
void reset();

/** Registered per-thread states (tests: disabled path adds none). */
std::size_t threadStateCountForTest();

namespace detail
{

struct ThreadProf;
struct PhaseNode;

} // namespace detail

/**
 * RAII phase timer; use through RAMP_PROF_SCOPE /
 * RAMP_PROF_SCOPE_PMU. Captures enabled() at entry and commits at
 * exit even if profiling is toggled off mid-scope, so trees stay
 * balanced.
 */
class ScopedPhase
{
  public:
    ScopedPhase(const char *name, bool with_pmu)
    {
        if (!enabled())
            return;
        begin(name, with_pmu);
    }

    ~ScopedPhase()
    {
        if (active_)
            end();
    }

    ScopedPhase(const ScopedPhase &) = delete;
    ScopedPhase &operator=(const ScopedPhase &) = delete;

  private:
    void begin(const char *name, bool with_pmu);
    void end();

    // Only active_ carries a default: a disabled construction must
    // cost one byte store beyond the enabled() check, so the other
    // members (including the PMU start values, stored raw rather
    // than as a PmuSample whose default constructor would zero
    // them) stay uninitialized until begin() runs.
    bool active_ = false;
    bool pmuActive_;
    detail::ThreadProf *state_;
    detail::PhaseNode *node_;
    std::uint64_t startCycles_;
    std::uint64_t pmuStartCycles_;
    std::uint64_t pmuStartInstructions_;
    std::uint64_t pmuStartLlcMisses_;
    std::uint64_t pmuStartBranchMisses_;
};

} // namespace ramp::prof

/**
 * Open a TSC-only phase scope for the rest of the block:
 *
 *   RAMP_PROF_SCOPE(prof_scope, "cache.access");
 */
#ifndef RAMP_PROF_DISABLED
#define RAMP_PROF_SCOPE(var, name) \
    ::ramp::prof::ScopedPhase var((name), false)
#define RAMP_PROF_SCOPE_PMU(var, name) \
    ::ramp::prof::ScopedPhase var((name), true)
#else
#define RAMP_PROF_SCOPE(var, name) \
    do { \
    } while (0)
#define RAMP_PROF_SCOPE_PMU(var, name) \
    do { \
    } while (0)
#endif

#endif // RAMP_PROF_PROF_HH
