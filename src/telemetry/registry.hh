/**
 * @file
 * Metrics registry: named counters, gauges, and histograms.
 *
 * The hot path is one relaxed atomic add into a per-thread shard —
 * no locks, no shared cache line between threads. Counters and
 * histogram buckets are striped across `numShards` cache-line-
 * aligned slots indexed by a per-thread shard id; snapshot() merges
 * the shards into plain numbers. Because every mutation is an
 * unconditional add, the merged totals are exact and independent of
 * how work was scheduled across threads — a parallel campaign
 * snapshots the same metrics as a serial one.
 *
 * Metric objects live as long as the registry (the process):
 * call sites look a metric up once (function-local static reference)
 * and keep the handle. Lookup is mutex-protected; mutation is not.
 */

#ifndef RAMP_TELEMETRY_REGISTRY_HH
#define RAMP_TELEMETRY_REGISTRY_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "telemetry/histogram.hh"

namespace ramp::telemetry
{

/** Shard stripes per metric; power of two. */
constexpr std::size_t numShards = 16;

/** Stable shard index of the calling thread. */
std::size_t threadShard();

/** One cache-line-aligned accumulator slot. */
struct alignas(64) ShardSlot
{
    std::atomic<std::uint64_t> value{0};
};

/** Monotonic event counter (sharded; add is a relaxed atomic add). */
class Counter
{
  public:
    void add(std::uint64_t n = 1)
    {
        shards_[threadShard()].value.fetch_add(
            n, std::memory_order_relaxed);
    }

    /** Sum over all shards (exact once writers are quiescent). */
    std::uint64_t total() const;

    /** Zero every shard (tests). */
    void reset();

  private:
    ShardSlot shards_[numShards];
};

/** Last-write-wins scalar (interval lengths, configured sizes). */
class Gauge
{
  public:
    void set(double value)
    {
        value_.store(value, std::memory_order_relaxed);
    }

    double value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

    void reset() { set(0); }

  private:
    std::atomic<double> value_{0};
};

/**
 * Fixed-bucket histogram metric: the layout is immutable, each
 * bucket is a sharded counter, observe() is bucket lookup plus one
 * relaxed add.
 */
class HistogramMetric
{
  public:
    explicit HistogramMetric(FixedHistogram layout);

    void observe(double x, std::uint64_t count = 1)
    {
        const std::size_t cell =
            layout_.bucketOf(x) * numShards + threadShard();
        cells_[cell].value.fetch_add(count,
                                     std::memory_order_relaxed);
    }

    /** The (empty) bucket layout this metric was built with. */
    const FixedHistogram &layout() const { return layout_; }

    /** Merge the shards into a plain histogram. */
    FixedHistogram snapshot() const;

    /** Zero every bucket (tests). */
    void reset();

  private:
    FixedHistogram layout_;
    std::unique_ptr<ShardSlot[]> cells_;
};

/** Point-in-time merged view of every registered metric. */
struct MetricsSnapshot
{
    std::map<std::string, std::uint64_t> counters;
    std::map<std::string, double> gauges;
    std::map<std::string, FixedHistogram> histograms;

    /** Counter value, or `fallback` when never registered. */
    std::uint64_t counterOr(const std::string &name,
                            std::uint64_t fallback = 0) const;

    /**
     * Quantile of the named histogram (FixedHistogram::percentile);
     * NaN when the histogram was never registered or is empty.
     */
    double histogramPercentile(const std::string &name,
                               double q) const;

    /** Render as a JSON object (counters/gauges/histograms keys). */
    std::string toJson(int indent = 0) const;
};

/** Process-wide named-metric table. */
class MetricsRegistry
{
  public:
    /** The counter registered under `name` (created on demand). */
    Counter &counter(const std::string &name);

    /** The gauge registered under `name` (created on demand). */
    Gauge &gauge(const std::string &name);

    /**
     * The histogram registered under `name`, created with `layout`
     * on first use. A second registration with a different layout
     * is a bug (panics): one name means one bucketing.
     */
    HistogramMetric &histogram(const std::string &name,
                               const FixedHistogram &layout);

    /** Merge every metric into a snapshot (sorted by name). */
    MetricsSnapshot snapshot() const;

    /** Zero every registered metric, keeping handles valid. */
    void resetValues();

  private:
    mutable std::mutex mutex_;
    std::unordered_map<std::string, std::unique_ptr<Counter>>
        counters_;
    std::unordered_map<std::string, std::unique_ptr<Gauge>> gauges_;
    std::unordered_map<std::string, std::unique_ptr<HistogramMetric>>
        histograms_;
};

/** The process-wide registry every instrumentation site uses. */
MetricsRegistry &metrics();

} // namespace ramp::telemetry

#endif // RAMP_TELEMETRY_REGISTRY_HH
