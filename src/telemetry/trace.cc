#include "telemetry/trace.hh"

#include <chrono>
#include <memory>
#include <mutex>
#include <sstream>

#include "telemetry/telemetry.hh"

namespace ramp::telemetry
{

namespace
{

using Clock = std::chrono::steady_clock;

/** Fixed at first telemetry use; all timestamps are relative. */
Clock::time_point
epoch()
{
    static const Clock::time_point start = Clock::now();
    return start;
}

/** Event buffer of one thread; appended only by its owner. */
struct ThreadBuffer
{
    std::mutex mutex; ///< Owner appends, the collector reads.
    std::vector<TraceEvent> events;
    std::uint32_t tid = 0;
};

struct Collector
{
    std::mutex mutex;
    std::vector<std::shared_ptr<ThreadBuffer>> buffers;
    std::uint32_t nextTid = 1;
};

Collector &
collector()
{
    static Collector instance;
    return instance;
}

/** The calling thread's buffer, registered on first use. */
ThreadBuffer &
threadBuffer()
{
    thread_local std::shared_ptr<ThreadBuffer> buffer = [] {
        auto fresh = std::make_shared<ThreadBuffer>();
        Collector &c = collector();
        std::lock_guard<std::mutex> lock(c.mutex);
        fresh->tid = c.nextTid++;
        c.buffers.push_back(fresh);
        return fresh;
    }();
    return *buffer;
}

} // namespace

std::int64_t
nowMicros()
{
    return std::chrono::duration_cast<std::chrono::microseconds>(
               Clock::now() - epoch())
        .count();
}

std::string
traceArg(const std::string &key, const std::string &value)
{
    return "{\"" + jsonEscape(key) + "\": \"" + jsonEscape(value) +
           "\"}";
}

std::string
traceArgNumber(const std::string &key, double value)
{
    return "{\"" + jsonEscape(key) + "\": " + jsonNumber(value) +
           "}";
}

void
emitEvent(TraceEvent event)
{
    if (!enabled())
        return;
    ThreadBuffer &buffer = threadBuffer();
    std::lock_guard<std::mutex> lock(buffer.mutex);
    event.tid = buffer.tid;
    buffer.events.push_back(std::move(event));
}

void
instant(const std::string &name, const std::string &cat,
        const std::string &args_json)
{
    if (!enabled())
        return;
    TraceEvent event;
    event.name = name;
    event.cat = cat;
    event.phase = 'i';
    event.tsMicros = nowMicros();
    event.argsJson = args_json;
    emitEvent(std::move(event));
}

void
counterEvent(const std::string &name, const std::string &cat,
             const std::string &series, double value)
{
    if (!enabled())
        return;
    TraceEvent event;
    event.name = name;
    event.cat = cat;
    event.phase = 'C';
    event.tsMicros = nowMicros();
    event.argsJson = traceArgNumber(series, value);
    emitEvent(std::move(event));
}

ScopedSpan::ScopedSpan(const char *name, const char *cat,
                       std::string args_json)
    : active_(enabled()), name_(name), cat_(cat)
{
    if (!active_)
        return;
    TraceEvent event;
    event.name = name_;
    event.cat = cat_;
    event.phase = 'B';
    event.tsMicros = nowMicros();
    event.argsJson = std::move(args_json);
    emitEvent(std::move(event));
}

ScopedSpan::~ScopedSpan()
{
    if (!active_)
        return;
    TraceEvent event;
    event.name = name_;
    event.cat = cat_;
    event.phase = 'E';
    event.tsMicros = nowMicros();
    // Emit the E even if telemetry was toggled off mid-span, so
    // the B opened above is always closed.
    ThreadBuffer &buffer = threadBuffer();
    std::lock_guard<std::mutex> lock(buffer.mutex);
    event.tid = buffer.tid;
    buffer.events.push_back(std::move(event));
}

std::vector<TraceEvent>
collectEvents()
{
    std::vector<std::shared_ptr<ThreadBuffer>> buffers;
    {
        Collector &c = collector();
        std::lock_guard<std::mutex> lock(c.mutex);
        buffers = c.buffers;
    }
    std::vector<TraceEvent> events;
    for (const auto &buffer : buffers) {
        std::lock_guard<std::mutex> lock(buffer->mutex);
        events.insert(events.end(), buffer->events.begin(),
                      buffer->events.end());
    }
    return events;
}

std::string
traceJson()
{
    const auto events = collectEvents();
    std::ostringstream out;
    out << "{\"traceEvents\": [\n";
    for (std::size_t i = 0; i < events.size(); ++i) {
        const TraceEvent &event = events[i];
        out << "  {\"name\": \"" << jsonEscape(event.name)
            << "\", \"cat\": \"" << jsonEscape(event.cat)
            << "\", \"ph\": \"" << event.phase
            << "\", \"ts\": " << event.tsMicros
            << ", \"pid\": 1, \"tid\": " << event.tid;
        if (event.phase == 'i')
            out << ", \"s\": \"t\"";
        if (!event.argsJson.empty())
            out << ", \"args\": " << event.argsJson;
        out << "}" << (i + 1 < events.size() ? "," : "") << "\n";
    }
    out << "], \"displayTimeUnit\": \"ms\"}\n";
    return out.str();
}

void
clearEvents()
{
    std::vector<std::shared_ptr<ThreadBuffer>> buffers;
    {
        Collector &c = collector();
        std::lock_guard<std::mutex> lock(c.mutex);
        buffers = c.buffers;
    }
    for (const auto &buffer : buffers) {
        std::lock_guard<std::mutex> lock(buffer->mutex);
        buffer->events.clear();
    }
}

} // namespace ramp::telemetry
