/**
 * @file
 * Fixed-bucket histogram shared by the telemetry registry and the
 * bench binaries.
 *
 * One value type covers both uses: the registry wraps it with
 * sharded atomic bins for hot-path observation, and the figure
 * binaries bin page populations (write ratios, hotness shares) with
 * it directly instead of hand-rolling bucket arithmetic. Buckets
 * are defined by an explicit edge vector (edges[i], edges[i+1]) —
 * linear() builds the common equal-width layout — and samples
 * outside the range clamp to the end buckets, matching the
 * convention the paper's write-ratio figures use.
 */

#ifndef RAMP_TELEMETRY_HISTOGRAM_HH
#define RAMP_TELEMETRY_HISTOGRAM_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ramp::telemetry
{

/** Value-type fixed-bucket histogram (bucket i is [edge i, edge i+1)). */
class FixedHistogram
{
  public:
    /** Build from explicit, strictly increasing edges (>= 2). */
    explicit FixedHistogram(std::vector<double> edges);

    /** Equal-width layout over [lo, hi) with `bins` buckets. */
    static FixedHistogram linear(double lo, double hi,
                                 std::size_t bins);

    /** Add a sample; out-of-range values clamp to the end buckets. */
    void add(double x, std::uint64_t count = 1);

    /** Bucket index a sample falls into (clamped). */
    std::size_t bucketOf(double x) const;

    /** Count in bucket i. */
    std::uint64_t bucketCount(std::size_t i) const
    {
        return counts_[i];
    }

    /** Number of buckets (edges() - 1). */
    std::size_t numBuckets() const { return counts_.size(); }

    /** Total samples added. */
    std::uint64_t total() const { return total_; }

    /** Inclusive lower edge of bucket i. */
    double bucketLow(std::size_t i) const { return edges_[i]; }

    /** Exclusive upper edge of bucket i. */
    double bucketHigh(std::size_t i) const { return edges_[i + 1]; }

    /** The edge vector (numBuckets() + 1 entries). */
    const std::vector<double> &edges() const { return edges_; }

    /** Raw bucket counts, in bucket order. */
    const std::vector<std::uint64_t> &counts() const
    {
        return counts_;
    }

    /**
     * Value at quantile q in [0, 1], linearly interpolated inside
     * the bucket holding the q-th sample (the usual fixed-bucket
     * estimate: exact at bucket edges, linear between them). NaN
     * when the histogram is empty — an empty distribution has no
     * quantiles, and emitters render NaN as JSON null.
     */
    double percentile(double q) const;

    /** @{ @name Common latency quantiles (percentile shorthands) */
    double p50() const { return percentile(0.50); }
    double p95() const { return percentile(0.95); }
    double p99() const { return percentile(0.99); }
    /** @} */

    /**
     * Fold another histogram's counts into this one. The layouts
     * must match exactly (panics otherwise): merge is for shards
     * and per-workload partials of one metric, not unit conversion.
     */
    void merge(const FixedHistogram &other);

    /** True when the bucket edges are identical. */
    bool sameLayout(const FixedHistogram &other) const
    {
        return edges_ == other.edges_;
    }

    /** Zero every bucket. */
    void reset();

  private:
    std::vector<double> edges_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t total_ = 0;
};

} // namespace ramp::telemetry

#endif // RAMP_TELEMETRY_HISTOGRAM_HH
