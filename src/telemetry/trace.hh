/**
 * @file
 * Chrome trace-event collection: scoped spans and instant events.
 *
 * Events accumulate in per-thread buffers (one short lock on the
 * owning thread per event, no cross-thread contention on the hot
 * path) registered with a process-wide collector. traceJson()
 * merges every buffer into one Chrome trace-event document that
 * chrome://tracing and Perfetto load directly: B/E duration pairs
 * for spans, "i" events for instants, timestamps in microseconds
 * since the first telemetry use.
 *
 * Spans are scoped objects, so B/E pairs are well-nested per thread
 * by construction. All emission is gated on telemetry::enabled():
 * a disabled build records nothing and pays one branch per site.
 */

#ifndef RAMP_TELEMETRY_TRACE_HH
#define RAMP_TELEMETRY_TRACE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace ramp::telemetry
{

/** One Chrome trace event ("B", "E", "i", or "C"). */
struct TraceEvent
{
    std::string name;

    /** Category string shown in the viewer's filter UI. */
    std::string cat;

    /** Chrome phase: 'B' begin, 'E' end, 'i' instant, 'C' counter. */
    char phase = 'i';

    /** Microseconds since the process's telemetry epoch. */
    std::int64_t tsMicros = 0;

    /** Small stable id of the emitting thread. */
    std::uint32_t tid = 0;

    /**
     * Pre-rendered JSON object for the "args" field ("" = none).
     * Use traceArg() to build escaped single-entry objects.
     */
    std::string argsJson;
};

/** Microseconds since the telemetry epoch (steady clock). */
std::int64_t nowMicros();

/** Render one {"key": "value"} args object with escaping. */
std::string traceArg(const std::string &key,
                     const std::string &value);

/** Render one {"key": number} args object (null when non-finite). */
std::string traceArgNumber(const std::string &key, double value);

/** Append an event to the calling thread's buffer (when enabled). */
void emitEvent(TraceEvent event);

/** Emit an instant event (thread scope) when enabled. */
void instant(const std::string &name, const std::string &cat,
             const std::string &args_json = "");

/**
 * Emit a Chrome counter event ('C' phase) when enabled: the viewer
 * plots the named series as a value-over-time track. The resource
 * sampler emits one per sample (RSS over time).
 */
void counterEvent(const std::string &name, const std::string &cat,
                  const std::string &series, double value);

/**
 * RAII span: emits a B event at construction and the matching E at
 * destruction. When telemetry is disabled at construction the span
 * is inert (and stays inert even if telemetry is enabled before it
 * closes, so pairs never go unmatched).
 */
class ScopedSpan
{
  public:
    ScopedSpan(const char *name, const char *cat,
               std::string args_json = "");
    ~ScopedSpan();

    ScopedSpan(const ScopedSpan &) = delete;
    ScopedSpan &operator=(const ScopedSpan &) = delete;

  private:
    bool active_;
    const char *name_;
    const char *cat_;
};

/** Every event collected so far, across all thread buffers. */
std::vector<TraceEvent> collectEvents();

/**
 * The merged Chrome trace-event JSON document
 * ({"traceEvents": [...]}) of everything collected so far.
 */
std::string traceJson();

/** Drop every collected event (tests, campaign boundaries). */
void clearEvents();

} // namespace ramp::telemetry

#endif // RAMP_TELEMETRY_TRACE_HH
