#include "telemetry/histogram.hh"

#include <algorithm>
#include <limits>

#include "common/logging.hh"

namespace ramp::telemetry
{

FixedHistogram::FixedHistogram(std::vector<double> edges)
    : edges_(std::move(edges))
{
    if (edges_.size() < 2)
        ramp_fatal("FixedHistogram needs at least two edges");
    for (std::size_t i = 1; i < edges_.size(); ++i)
        if (!(edges_[i] > edges_[i - 1]))
            ramp_fatal("FixedHistogram edges must be strictly "
                       "increasing");
    counts_.assign(edges_.size() - 1, 0);
}

FixedHistogram
FixedHistogram::linear(double lo, double hi, std::size_t bins)
{
    if (bins == 0)
        ramp_fatal("FixedHistogram needs at least one bucket");
    if (!(hi > lo))
        ramp_fatal("FixedHistogram range must be non-empty");
    std::vector<double> edges;
    edges.reserve(bins + 1);
    const double width = (hi - lo) / static_cast<double>(bins);
    for (std::size_t i = 0; i < bins; ++i)
        edges.push_back(lo + width * static_cast<double>(i));
    edges.push_back(hi); // Exact upper edge, no rounding drift.
    return FixedHistogram(std::move(edges));
}

std::size_t
FixedHistogram::bucketOf(double x) const
{
    // First edge greater than x starts the next bucket; clamp the
    // out-of-range tails onto the end buckets.
    const auto it =
        std::upper_bound(edges_.begin(), edges_.end(), x);
    const auto idx = it - edges_.begin();
    if (idx <= 0)
        return 0;
    return std::min<std::size_t>(static_cast<std::size_t>(idx - 1),
                                 counts_.size() - 1);
}

void
FixedHistogram::add(double x, std::uint64_t count)
{
    counts_[bucketOf(x)] += count;
    total_ += count;
}

double
FixedHistogram::percentile(double q) const
{
    if (total_ == 0)
        return std::numeric_limits<double>::quiet_NaN();
    q = std::clamp(q, 0.0, 1.0);
    // The continuous rank the quantile lands on; walk the
    // cumulative counts to the bucket containing it.
    const double target = q * static_cast<double>(total_);
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        if (counts_[i] == 0)
            continue;
        const double before = static_cast<double>(cumulative);
        cumulative += counts_[i];
        if (static_cast<double>(cumulative) < target)
            continue;
        const double fraction =
            (target - before) / static_cast<double>(counts_[i]);
        return edges_[i] +
               (edges_[i + 1] - edges_[i]) *
                   std::clamp(fraction, 0.0, 1.0);
    }
    // All samples sit below the target rank only through rounding;
    // the quantile is the top of the last occupied bucket.
    for (std::size_t i = counts_.size(); i-- > 0;)
        if (counts_[i] != 0)
            return edges_[i + 1];
    return std::numeric_limits<double>::quiet_NaN();
}

void
FixedHistogram::merge(const FixedHistogram &other)
{
    if (!sameLayout(other))
        ramp_panic("FixedHistogram::merge: bucket layouts differ");
    for (std::size_t i = 0; i < counts_.size(); ++i)
        counts_[i] += other.counts_[i];
    total_ += other.total_;
}

void
FixedHistogram::reset()
{
    std::fill(counts_.begin(), counts_.end(), 0);
    total_ = 0;
}

} // namespace ramp::telemetry
