#include "telemetry/histogram.hh"

#include <algorithm>

#include "common/logging.hh"

namespace ramp::telemetry
{

FixedHistogram::FixedHistogram(std::vector<double> edges)
    : edges_(std::move(edges))
{
    if (edges_.size() < 2)
        ramp_fatal("FixedHistogram needs at least two edges");
    for (std::size_t i = 1; i < edges_.size(); ++i)
        if (!(edges_[i] > edges_[i - 1]))
            ramp_fatal("FixedHistogram edges must be strictly "
                       "increasing");
    counts_.assign(edges_.size() - 1, 0);
}

FixedHistogram
FixedHistogram::linear(double lo, double hi, std::size_t bins)
{
    if (bins == 0)
        ramp_fatal("FixedHistogram needs at least one bucket");
    if (!(hi > lo))
        ramp_fatal("FixedHistogram range must be non-empty");
    std::vector<double> edges;
    edges.reserve(bins + 1);
    const double width = (hi - lo) / static_cast<double>(bins);
    for (std::size_t i = 0; i < bins; ++i)
        edges.push_back(lo + width * static_cast<double>(i));
    edges.push_back(hi); // Exact upper edge, no rounding drift.
    return FixedHistogram(std::move(edges));
}

std::size_t
FixedHistogram::bucketOf(double x) const
{
    // First edge greater than x starts the next bucket; clamp the
    // out-of-range tails onto the end buckets.
    const auto it =
        std::upper_bound(edges_.begin(), edges_.end(), x);
    const auto idx = it - edges_.begin();
    if (idx <= 0)
        return 0;
    return std::min<std::size_t>(static_cast<std::size_t>(idx - 1),
                                 counts_.size() - 1);
}

void
FixedHistogram::add(double x, std::uint64_t count)
{
    counts_[bucketOf(x)] += count;
    total_ += count;
}

void
FixedHistogram::merge(const FixedHistogram &other)
{
    if (!sameLayout(other))
        ramp_panic("FixedHistogram::merge: bucket layouts differ");
    for (std::size_t i = 0; i < counts_.size(); ++i)
        counts_[i] += other.counts_[i];
    total_ += other.total_;
}

void
FixedHistogram::reset()
{
    std::fill(counts_.begin(), counts_.end(), 0);
    total_ = 0;
}

} // namespace ramp::telemetry
