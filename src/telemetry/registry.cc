#include "telemetry/registry.hh"

#include <limits>
#include <sstream>

#include "common/logging.hh"
#include "telemetry/telemetry.hh"

namespace ramp::telemetry
{

std::size_t
threadShard()
{
    // Threads are assigned round-robin shard slots on first use;
    // the pool's long-lived workers therefore land on distinct
    // stripes (modulo numShards) instead of hashing collisions.
    static std::atomic<std::size_t> next{0};
    thread_local const std::size_t shard =
        next.fetch_add(1, std::memory_order_relaxed) %
        numShards;
    return shard;
}

std::uint64_t
Counter::total() const
{
    std::uint64_t sum = 0;
    for (const auto &shard : shards_)
        sum += shard.value.load(std::memory_order_relaxed);
    return sum;
}

void
Counter::reset()
{
    for (auto &shard : shards_)
        shard.value.store(0, std::memory_order_relaxed);
}

HistogramMetric::HistogramMetric(FixedHistogram layout)
    : layout_(std::move(layout)),
      cells_(new ShardSlot[layout_.numBuckets() * numShards])
{
    layout_.reset(); // The layout carries edges, never counts.
}

FixedHistogram
HistogramMetric::snapshot() const
{
    FixedHistogram merged = layout_;
    for (std::size_t bucket = 0; bucket < merged.numBuckets();
         ++bucket) {
        std::uint64_t sum = 0;
        for (std::size_t shard = 0; shard < numShards; ++shard)
            sum += cells_[bucket * numShards + shard].value.load(
                std::memory_order_relaxed);
        if (sum > 0)
            merged.add(merged.bucketLow(bucket), sum);
    }
    return merged;
}

void
HistogramMetric::reset()
{
    const std::size_t cells = layout_.numBuckets() * numShards;
    for (std::size_t i = 0; i < cells; ++i)
        cells_[i].value.store(0, std::memory_order_relaxed);
}

std::uint64_t
MetricsSnapshot::counterOr(const std::string &name,
                           std::uint64_t fallback) const
{
    const auto it = counters.find(name);
    return it == counters.end() ? fallback : it->second;
}

double
MetricsSnapshot::histogramPercentile(const std::string &name,
                                     double q) const
{
    const auto it = histograms.find(name);
    return it == histograms.end()
               ? std::numeric_limits<double>::quiet_NaN()
               : it->second.percentile(q);
}

std::string
MetricsSnapshot::toJson(int indent) const
{
    const std::string pad(static_cast<std::size_t>(indent), ' ');
    const std::string in1 = pad + "  ";
    const std::string in2 = pad + "    ";
    std::ostringstream out;

    out << "{\n" << in1 << "\"counters\": {";
    bool first = true;
    for (const auto &[name, value] : counters) {
        out << (first ? "\n" : ",\n") << in2 << '"'
            << jsonEscape(name) << "\": " << value;
        first = false;
    }
    out << (first ? "" : "\n" + in1) << "},\n";

    out << in1 << "\"gauges\": {";
    first = true;
    for (const auto &[name, value] : gauges) {
        out << (first ? "\n" : ",\n") << in2 << '"'
            << jsonEscape(name) << "\": " << jsonNumber(value);
        first = false;
    }
    out << (first ? "" : "\n" + in1) << "},\n";

    out << in1 << "\"histograms\": {";
    first = true;
    for (const auto &[name, hist] : histograms) {
        out << (first ? "\n" : ",\n") << in2 << '"'
            << jsonEscape(name) << "\": {\"edges\": [";
        for (std::size_t i = 0; i < hist.edges().size(); ++i)
            out << (i > 0 ? ", " : "")
                << jsonNumber(hist.edges()[i]);
        out << "], \"counts\": [";
        for (std::size_t i = 0; i < hist.numBuckets(); ++i)
            out << (i > 0 ? ", " : "") << hist.bucketCount(i);
        out << "], \"total\": " << hist.total() << "}";
        first = false;
    }
    out << (first ? "" : "\n" + in1) << "}\n" << pad << "}";
    return out.str();
}

Counter &
MetricsRegistry::counter(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = counters_[name];
    if (slot == nullptr)
        slot = std::make_unique<Counter>();
    return *slot;
}

Gauge &
MetricsRegistry::gauge(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = gauges_[name];
    if (slot == nullptr)
        slot = std::make_unique<Gauge>();
    return *slot;
}

HistogramMetric &
MetricsRegistry::histogram(const std::string &name,
                           const FixedHistogram &layout)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = histograms_[name];
    if (slot == nullptr)
        slot = std::make_unique<HistogramMetric>(layout);
    else if (!slot->layout().sameLayout(layout))
        ramp_panic("telemetry histogram '", name,
                   "' registered twice with different bucket "
                   "layouts");
    return *slot;
}

MetricsSnapshot
MetricsRegistry::snapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    MetricsSnapshot snap;
    for (const auto &[name, counter] : counters_)
        snap.counters.emplace(name, counter->total());
    for (const auto &[name, gauge] : gauges_)
        snap.gauges.emplace(name, gauge->value());
    for (const auto &[name, hist] : histograms_)
        snap.histograms.emplace(name, hist->snapshot());
    return snap;
}

void
MetricsRegistry::resetValues()
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto &[name, counter] : counters_)
        counter->reset();
    for (const auto &[name, gauge] : gauges_)
        gauge->reset();
    for (const auto &[name, hist] : histograms_)
        hist->reset();
}

MetricsRegistry &
metrics()
{
    static MetricsRegistry registry;
    return registry;
}

} // namespace ramp::telemetry
