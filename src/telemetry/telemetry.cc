#include "telemetry/telemetry.hh"

#include <atomic>
#include <cmath>
#include <cstdio>
#include <mutex>
#include <sstream>

#include "common/logging.hh"

namespace ramp::telemetry
{

namespace
{
std::atomic<bool> telemetryEnabled{false};
} // namespace

bool
enabled()
{
    return telemetryEnabled.load(std::memory_order_relaxed);
}

void
setEnabled(bool on)
{
    telemetryEnabled.store(on, std::memory_order_relaxed);
}

void
captureLogEvents()
{
    static std::once_flag once;
    std::call_once(once, [] {
        setLogSink([](LogLevel level, const std::string &msg) {
            defaultLogSink(level, msg);
            instant(level == LogLevel::Warn ? "warn" : "inform",
                    "log", traceArg("message", msg));
        });
    });
}

void
resetAll()
{
    metrics().resetValues();
    clearEvents();
}

std::string
jsonEscape(std::string_view text)
{
    std::string out;
    out.reserve(text.size() + 2);
    for (const char c : text) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buffer[8];
                std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
                out += buffer;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
jsonNumber(double value)
{
    if (!std::isfinite(value))
        return "null";
    std::ostringstream out;
    out.precision(17);
    out << value;
    return out.str();
}

} // namespace ramp::telemetry
