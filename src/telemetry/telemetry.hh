/**
 * @file
 * Telemetry subsystem front door: runtime toggle, instrumentation
 * macros, and log capture.
 *
 * Instrumentation sites use the macros below so that telemetry
 * which is compiled in but disabled at runtime costs exactly one
 * relaxed atomic load and branch. Defining RAMP_TELEMETRY_DISABLED
 * at compile time removes the sites entirely (the subsystem still
 * links, snapshots are just empty).
 *
 * Everything is process-global and thread-safe: metrics() is the
 * shared registry (registry.hh), spans and instants land in
 * per-thread buffers (trace.hh), and captureLogEvents() tees
 * warn()/inform() lines into the trace as instant events without
 * touching their stderr output.
 */

#ifndef RAMP_TELEMETRY_TELEMETRY_HH
#define RAMP_TELEMETRY_TELEMETRY_HH

#include <string>
#include <string_view>

#include "telemetry/histogram.hh"
#include "telemetry/registry.hh"
#include "telemetry/trace.hh"

namespace ramp::telemetry
{

/** True when instrumentation sites should record (default off). */
bool enabled();

/** Toggle recording at runtime (the harness flips this on). */
void setEnabled(bool on);

/**
 * Tee warn()/inform() lines into the trace buffer as instant
 * events (category "log") on top of the current log sink.
 * Idempotent; stderr output is unchanged.
 */
void captureLogEvents();

/** Reset every metric value and drop all trace events (tests). */
void resetAll();

/** @{ @name Small JSON helpers shared by the emitters */
/** Escape a string for embedding in a JSON string literal. */
std::string jsonEscape(std::string_view text);

/**
 * Finite JSON number rendering. JSON has no NaN/Inf tokens, and
 * non-finite values are reachable (RunningStat::min()/max() and
 * FixedHistogram::percentile() are NaN when empty), so they render
 * as `null` — "not measured" — instead of masquerading as 0.
 */
std::string jsonNumber(double value);
/** @} */

} // namespace ramp::telemetry

/**
 * Run one or more statements only when telemetry is enabled. The
 * statements typically add to cached metric handles:
 *
 *   static auto &hits = ramp::telemetry::metrics().counter("x.hits");
 *   RAMP_TELEM(hits.add(1));
 */
#ifndef RAMP_TELEMETRY_DISABLED
#define RAMP_TELEM(...) \
    do { \
        if (::ramp::telemetry::enabled()) { \
            __VA_ARGS__; \
        } \
    } while (0)
#else
#define RAMP_TELEM(...) \
    do { \
    } while (0)
#endif

#define RAMP_TELEM_CONCAT2(a, b) a##b
#define RAMP_TELEM_CONCAT(a, b) RAMP_TELEM_CONCAT2(a, b)

/**
 * Scoped trace span covering the rest of the enclosing block:
 * RAMP_TELEM_SPAN(span, "hma.run", "sim"); the named variable can
 * be ignored or used to keep the span alive explicitly. Inert (one
 * branch) while telemetry is disabled.
 */
#ifndef RAMP_TELEMETRY_DISABLED
#define RAMP_TELEM_SPAN(var, ...) \
    ::ramp::telemetry::ScopedSpan var(__VA_ARGS__)
#else
#define RAMP_TELEM_SPAN(var, ...) \
    do { \
    } while (0)
#endif

#endif // RAMP_TELEMETRY_TELEMETRY_HH
