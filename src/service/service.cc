#include "service/service.hh"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <numeric>
#include <string>

#include "eventlog/eventlog.hh"
#include "health/health.hh"
#include "prof/prof.hh"
#include "telemetry/telemetry.hh"

namespace ramp::service
{

namespace
{

/** Telemetry handles of the service layer (one lookup ever). */
struct ServiceTelemetry
{
    telemetry::Counter &admitted =
        telemetry::metrics().counter("service.streams_admitted");
    telemetry::Counter &rejected =
        telemetry::metrics().counter("service.streams_rejected");
    telemetry::Counter &rounds =
        telemetry::metrics().counter("service.arbitration_rounds");
    telemetry::Counter &clips =
        telemetry::metrics().counter("service.quota_clips");
    telemetry::Counter &epochs =
        telemetry::metrics().counter("service.epochs");
    telemetry::Counter &moves =
        telemetry::metrics().counter("service.rebalance_moves");
    telemetry::Counter &faults =
        telemetry::metrics().counter("service.faults_applied");
    telemetry::Counter &solos =
        telemetry::metrics().counter("service.solo_runs");
    telemetry::Counter &requests =
        telemetry::metrics().counter("service.requests_served");
};

ServiceTelemetry &
serviceTelemetry()
{
    static ServiceTelemetry telemetry;
    return telemetry;
}

std::uint64_t
splitmix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

std::uint64_t
nextU64(std::uint64_t &state)
{
    state += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

double
next01(std::uint64_t &state)
{
    return static_cast<double>(nextU64(state) >> 11) * 0x1.0p-53;
}

/** One core's slice [len*e/E, len*(e+1)/E) of every trace. */
std::vector<CoreTrace>
epochSlice(const std::vector<CoreTrace> &traces, unsigned epoch,
           unsigned epochs)
{
    std::vector<CoreTrace> slice(traces.size());
    for (std::size_t c = 0; c < traces.size(); ++c) {
        const CoreTrace &full = traces[c];
        const std::size_t lo = full.size() * epoch / epochs;
        const std::size_t hi = full.size() * (epoch + 1) / epochs;
        slice[c].assign(full.begin() + static_cast<std::ptrdiff_t>(lo),
                        full.begin() + static_cast<std::ptrdiff_t>(hi));
    }
    return slice;
}

std::uint64_t
sliceRequests(const std::vector<CoreTrace> &slice)
{
    std::uint64_t total = 0;
    for (const CoreTrace &trace : slice)
        total += trace.size();
    return total;
}

} // namespace

const char *
reliabilityClassName(ReliabilityClass cls)
{
    switch (cls) {
      case ReliabilityClass::Tolerant:
        return "tolerant";
      case ReliabilityClass::Standard:
        return "standard";
      case ReliabilityClass::Critical:
        return "critical";
    }
    return "standard";
}

double
reliabilityClassWeight(ReliabilityClass cls)
{
    switch (cls) {
      case ReliabilityClass::Tolerant:
        return 0.5;
      case ReliabilityClass::Standard:
        return 1.0;
      case ReliabilityClass::Critical:
        return 2.0;
    }
    return 1.0;
}

bool
parseReliabilityClass(std::string_view text, ReliabilityClass &cls)
{
    if (text == "tolerant") {
        cls = ReliabilityClass::Tolerant;
        return true;
    }
    if (text == "standard") {
        cls = ReliabilityClass::Standard;
        return true;
    }
    if (text == "critical") {
        cls = ReliabilityClass::Critical;
        return true;
    }
    return false;
}

const char *
arbiterPolicyName(ArbiterPolicy policy)
{
    switch (policy) {
      case ArbiterPolicy::FairShare:
        return "fair-share";
      case ArbiterPolicy::ReliabilityWeighted:
        return "reliability-weighted";
    }
    return "fair-share";
}

bool
parseArbiterPolicy(std::string_view text, ArbiterPolicy &policy)
{
    if (text == "fair-share") {
        policy = ArbiterPolicy::FairShare;
        return true;
    }
    if (text == "reliability-weighted") {
        policy = ArbiterPolicy::ReliabilityWeighted;
        return true;
    }
    return false;
}

std::vector<std::uint64_t>
arbitrate(ArbiterPolicy policy, std::uint64_t capacity_pages,
          const std::vector<TenantDemand> &demands,
          std::uint64_t *clips)
{
    std::vector<std::uint64_t> grants(demands.size(), 0);
    if (demands.empty())
        return grants;

    if (policy == ArbiterPolicy::FairShare) {
        // Strict quotas: quota_t = floor(capacity * qf_t), with the
        // fractions renormalised when oversubscribed so the quotas
        // themselves can never exceed the shard.
        double sum_qf = 0;
        for (const TenantDemand &d : demands)
            sum_qf += std::max(0.0, d.quotaFraction);
        const double scale = sum_qf > 1.0 ? 1.0 / sum_qf : 1.0;
        for (std::size_t i = 0; i < demands.size(); ++i) {
            const double qf =
                std::max(0.0, demands[i].quotaFraction) * scale;
            const auto quota = static_cast<std::uint64_t>(
                static_cast<double>(capacity_pages) * qf);
            grants[i] = std::min(demands[i].demandPages, quota);
        }
    } else {
        // Credit_t = qf_t * classWeight_t * (1 + meanAvf_t): a
        // critical or high-AVF tenant's pages carry more expected
        // failure cost in the risky tier (Equation 2), so they buy
        // proportionally more of the reliable one.
        std::vector<double> credits(demands.size(), 0);
        double sum_credit = 0;
        for (std::size_t i = 0; i < demands.size(); ++i) {
            const TenantDemand &d = demands[i];
            credits[i] = std::max(0.0, d.quotaFraction) *
                         std::max(0.0, d.classWeight) *
                         (1.0 + std::max(0.0, d.meanAvf));
            sum_credit += credits[i];
        }
        if (sum_credit > 0) {
            for (std::size_t i = 0; i < demands.size(); ++i) {
                const auto quota = static_cast<std::uint64_t>(
                    static_cast<double>(capacity_pages) *
                    credits[i] / sum_credit);
                grants[i] =
                    std::min(demands[i].demandPages, quota);
            }
            // Water-fill the slack left by under-demanding tenants
            // into clipped ones, highest credit first.
            std::uint64_t granted = std::accumulate(
                grants.begin(), grants.end(), std::uint64_t{0});
            std::uint64_t leftover =
                capacity_pages > granted ? capacity_pages - granted
                                         : 0;
            std::vector<std::size_t> order(demands.size());
            std::iota(order.begin(), order.end(), std::size_t{0});
            std::sort(order.begin(), order.end(),
                      [&](std::size_t a, std::size_t b) {
                          if (credits[a] != credits[b])
                              return credits[a] > credits[b];
                          if (demands[a].priority !=
                              demands[b].priority)
                              return demands[a].priority >
                                     demands[b].priority;
                          return demands[a].id < demands[b].id;
                      });
            for (const std::size_t i : order) {
                if (leftover == 0)
                    break;
                const std::uint64_t want =
                    demands[i].demandPages - grants[i];
                const std::uint64_t extra =
                    std::min(leftover, want);
                grants[i] += extra;
                leftover -= extra;
            }
        }
    }

    if (clips != nullptr)
        for (std::size_t i = 0; i < demands.size(); ++i)
            if (grants[i] < demands[i].demandPages)
                ++*clips;
    return grants;
}

unsigned
shardOf(std::uint32_t tenant_id, unsigned shards, std::uint64_t salt)
{
    if (shards <= 1)
        return 0;
    return static_cast<unsigned>(splitmix64(tenant_id ^ salt) %
                                 shards);
}

PageId
tenantBasePage(std::uint32_t tenant_id)
{
    return static_cast<PageId>(tenant_id) << 24;
}

std::uint32_t
tenantOfPage(PageId page)
{
    return static_cast<std::uint32_t>(page >> 24);
}

std::vector<CoreTrace>
buildTenantTrace(const TenantSpec &spec)
{
    const std::uint32_t cores = std::max<std::uint32_t>(1, spec.cores);
    std::vector<CoreTrace> traces(cores);
    for (CoreTrace &trace : traces)
        trace.reserve(spec.requests / cores + 1);

    const std::uint64_t footprint =
        std::max<std::uint64_t>(1, spec.footprintPages);
    const double skew = std::clamp(spec.zipfSkew, 0.0, 0.99);
    // u^k rank mapping: k = 1 is uniform; higher k concentrates the
    // mass on low ranks (a cheap deterministic Zipf stand-in).
    const double k = 1.0 + 9.0 * skew;
    const PageId base = tenantBasePage(spec.id);
    std::uint64_t state = splitmix64(
        spec.seed ^ (static_cast<std::uint64_t>(spec.id) << 32));

    for (std::uint64_t r = 0; r < spec.requests; ++r) {
        const double u = next01(state);
        auto rank = static_cast<std::uint64_t>(
            std::pow(u, k) * static_cast<double>(footprint));
        if (rank >= footprint)
            rank = footprint - 1;
        const std::uint64_t line = nextU64(state) % linesPerPage;
        const bool is_write = next01(state) < spec.writeFraction;
        MemRequest req;
        req.addr = (base + rank) * pageSize + line * lineSize;
        req.gap = static_cast<std::uint32_t>(nextU64(state) % 8);
        req.core = static_cast<CoreId>(r % cores);
        req.isWrite = is_write;
        traces[r % cores].push_back(req);
    }
    return traces;
}

PageProfile
profileTenantTrace(const std::vector<CoreTrace> &traces)
{
    PageProfile profile;
    for (const CoreTrace &trace : traces)
        for (const MemRequest &req : trace)
            profile.recordAccess(pageOf(req.addr), req.isWrite);
    // Pseudo-AVF rises with the page's write share — the Figure 9
    // Wr-AVF correlation — so risk ranking needs no simulation pass.
    for (const auto &[page, stats] : profile.entries()) {
        const auto hot = static_cast<double>(stats.hotness());
        const double write_share =
            hot > 0 ? static_cast<double>(stats.writes) / hot : 0.0;
        profile.setAvf(page, 0.1 + 0.8 * write_share);
    }
    return profile;
}

/** Per-tenant state; touched only by the home shard's task. */
struct PlacementService::Tenant
{
    TenantSpec spec;
    unsigned shard = 0;

    std::vector<CoreTrace> traces;
    PageProfile profile;
    std::vector<std::pair<PageId, PageStats>> ranking;
    double meanAvf = 0;

    /** Demand of the next arbitration round (previous working set). */
    std::uint64_t demand = 0;
    std::uint64_t grant = 0;

    std::uint64_t requests = 0;
    std::uint64_t instructions = 0;
    Cycle makespan = 0;
    Cycle soloMakespan = 0;
    double ser = 0;
    double hbmPagesSum = 0;
    double hbmShareSum = 0;
    std::uint64_t clips = 0;
    std::uint64_t moved = 0;
    std::uint64_t retired = 0;
    bool degraded = false;

    /** @{ @name Per-epoch history, folded into the health timeline */
    std::vector<std::uint64_t> residentByEpoch;
    std::vector<std::uint64_t> grantByEpoch;
    std::vector<double> shareByEpoch;
    std::vector<Cycle> makespanByEpoch;
    std::vector<Cycle> soloMakespanByEpoch;
    /** @} */
};

/** Per-shard state; owned by exactly one pool task for the run. */
struct PlacementService::Shard
{
    explicit Shard(std::uint64_t capacity_pages)
        : map(capacity_pages)
    {
    }

    PlacementMap map;
    std::vector<std::size_t> tenantIdx;
    std::uint64_t rounds = 0;
    std::uint64_t clips = 0;
    std::uint64_t moves = 0;
    std::uint64_t faults = 0;
    std::uint64_t retired = 0;
    std::uint64_t capacityLost = 0;
    bool degraded = false;

    /** @{ @name Per-epoch history (cumulative at each boundary) */
    std::vector<std::uint64_t> usedByEpoch;
    std::vector<std::uint64_t> capacityByEpoch;
    std::vector<std::uint64_t> backlogByEpoch;
    std::vector<std::uint64_t> retiredByEpoch;
    std::vector<std::uint64_t> faultsByEpoch;
    std::vector<std::uint64_t> lostByEpoch;
    std::vector<std::uint64_t> movedByEpoch;
    std::vector<std::uint8_t> degradedByEpoch;
    /** @} */
};

namespace
{

using Tenant = PlacementService::Tenant;

/** The tenant's hot set: pages at or above the mean hotness. */
std::uint64_t
hotSetPages(const Tenant &tenant)
{
    const double mean = tenant.profile.meanHotness();
    std::uint64_t hot = 0;
    for (const auto &entry : tenant.ranking) {
        if (static_cast<double>(entry.second.hotness()) < mean)
            break; // ranking is hotness-descending
        ++hot;
    }
    return std::max<std::uint64_t>(1, hot);
}

void
emitMoveRecord(eventlog::EventKind kind, PageId page,
               const PageStats &stats, unsigned epoch)
{
    RAMP_EVLOG({
        eventlog::EventRecord record;
        record.kind = kind;
        record.policy = eventlog::PolicyId::Service;
        record.epoch = epoch;
        record.page = page;
        record.partner = invalidPage;
        record.src = kind == eventlog::EventKind::Promote
                         ? eventlog::Tier::Ddr
                         : eventlog::Tier::Hbm;
        record.dst = kind == eventlog::EventKind::Promote
                         ? eventlog::Tier::Hbm
                         : eventlog::Tier::Ddr;
        record.hotness = static_cast<float>(stats.hotness());
        record.wrRatio = static_cast<float>(stats.wrRatio());
        record.avf = static_cast<float>(stats.avf);
        eventlog::emit(record);
    });
}

/**
 * Drive one tenant's HBM set toward the first `grant` entries of its
 * hotness ranking, demotions (coldest first, freeing frames) before
 * promotions (hottest first), each capped by its budget.
 */
std::uint64_t
rebalanceTenant(PlacementMap &map, Tenant &tenant,
                std::uint64_t grant, std::uint64_t promote_budget,
                std::uint64_t demote_budget, unsigned epoch)
{
    const std::size_t target = std::min<std::size_t>(
        grant, tenant.ranking.size());
    std::uint64_t moved = 0;

    std::uint64_t demotes = 0;
    for (std::size_t i = tenant.ranking.size();
         i-- > target && demotes < demote_budget;) {
        const PageId page = tenant.ranking[i].first;
        if (map.memoryOf(page) != MemoryId::HBM ||
            map.isPinned(page))
            continue;
        if (map.moveRange(page, 1, MemoryId::DDR) == 1) {
            ++demotes;
            ++moved;
            emitMoveRecord(eventlog::EventKind::Evict, page,
                           tenant.ranking[i].second, epoch);
        }
    }

    std::uint64_t promotes = 0;
    for (std::size_t i = 0;
         i < target && promotes < promote_budget; ++i) {
        const PageId page = tenant.ranking[i].first;
        if (map.memoryOf(page) == MemoryId::HBM ||
            map.isRetired(page))
            continue;
        if (map.hbmFreePages() == 0)
            break;
        if (map.moveRange(page, 1, MemoryId::HBM) == 1) {
            ++promotes;
            ++moved;
            emitMoveRecord(eventlog::EventKind::Promote, page,
                           tenant.ranking[i].second, epoch);
        }
    }
    return moved;
}

/** Initial placement: the grant prefix of the ranking goes to HBM. */
void
placeTenantInitial(PlacementMap &map, Tenant &tenant,
                   std::uint64_t grant)
{
    const std::size_t target = std::min<std::size_t>(
        grant, tenant.ranking.size());
    for (std::size_t i = 0; i < target; ++i) {
        if (map.hbmFreePages() == 0)
            break;
        const auto &[page, stats] = tenant.ranking[i];
        map.place(page, MemoryId::HBM);
        RAMP_EVLOG({
            eventlog::EventRecord record;
            record.kind = eventlog::EventKind::Place;
            record.policy = eventlog::PolicyId::Service;
            record.dst = eventlog::Tier::Hbm;
            record.page = page;
            record.hotness = static_cast<float>(stats.hotness());
            record.wrRatio = static_cast<float>(stats.wrRatio());
            record.avf = static_cast<float>(stats.avf);
            eventlog::emit(record);
        });
    }
}

/** The tenant's currently HBM-resident page count. */
std::uint64_t
residentHbmPages(const PlacementMap &map, const Tenant &tenant)
{
    std::uint64_t resident = 0;
    for (const auto &entry : tenant.ranking)
        if (map.memoryOf(entry.first) == MemoryId::HBM)
            ++resident;
    return resident;
}

double
jainIndex(const std::vector<double> &xs)
{
    double sum = 0;
    double sum_sq = 0;
    for (const double x : xs) {
        sum += x;
        sum_sq += x * x;
    }
    if (sum_sq <= 0 || xs.empty())
        return 1.0;
    return sum * sum /
           (static_cast<double>(xs.size()) * sum_sq);
}

/** p99 of a sample set (NaN when empty). */
double
p99Of(std::vector<double> xs)
{
    if (xs.empty())
        return std::numeric_limits<double>::quiet_NaN();
    std::sort(xs.begin(), xs.end());
    const std::size_t idx = std::min(
        xs.size() - 1,
        static_cast<std::size_t>(std::ceil(
            0.99 * static_cast<double>(xs.size()))) -
            1);
    return xs[idx];
}

} // namespace

PlacementService::PlacementService(const SystemConfig &system,
                                   ServiceConfig config)
    : system_(system), config_(std::move(config))
{
    if (config_.shards == 0)
        config_.shards = 1;
    if (config_.epochs == 0)
        config_.epochs = 1;
}

PlacementService::~PlacementService() = default;

std::size_t
PlacementService::tenantCount() const
{
    return tenants_.size();
}

std::uint64_t
PlacementService::shardCapacity() const
{
    if (config_.hbmPagesPerShard != 0)
        return config_.hbmPagesPerShard;
    return std::max<std::uint64_t>(
        1, system_.hbmPages() / config_.shards);
}

bool
PlacementService::admit(TenantSpec spec)
{
    const bool duplicate =
        std::any_of(tenants_.begin(), tenants_.end(),
                    [&](const Tenant &t) {
                        return t.spec.id == spec.id;
                    });
    if (spec.id == 0 || duplicate || spec.footprintPages == 0 ||
        spec.requests == 0 || spec.cores == 0 ||
        spec.cores > static_cast<std::uint32_t>(system_.cores) ||
        !(spec.hbmQuotaFraction > 0.0) ||
        spec.hbmQuotaFraction > 1.0) {
        RAMP_TELEM(serviceTelemetry().rejected.add(1));
        return false;
    }
    if (spec.name.empty())
        spec.name = "t" + std::to_string(spec.id);
    Tenant tenant;
    tenant.shard =
        shardOf(spec.id, config_.shards, config_.routingSalt);
    tenant.spec = std::move(spec);
    tenants_.push_back(std::move(tenant));
    RAMP_TELEM(serviceTelemetry().admitted.add(1));
    return true;
}

unsigned
PlacementService::shardOfTenant(std::uint32_t tenant_id) const
{
    for (const Tenant &tenant : tenants_)
        if (tenant.spec.id == tenant_id)
            return tenant.shard;
    return shardOf(tenant_id, config_.shards, config_.routingSalt);
}

ServiceResult
PlacementService::run(runner::ThreadPool &pool)
{
    ServiceResult result;
    if (tenants_.empty())
        return result;

    // Results are published in tenant-id order regardless of the
    // admission order; within a shard this is also the arbitration
    // and rebalance order, so the whole run is schedule-independent.
    std::sort(tenants_.begin(), tenants_.end(),
              [](const Tenant &a, const Tenant &b) {
                  return a.spec.id < b.spec.id;
              });

    std::vector<Shard> shards;
    shards.reserve(config_.shards);
    for (unsigned s = 0; s < config_.shards; ++s)
        shards.emplace_back(shardCapacity());
    for (std::size_t i = 0; i < tenants_.size(); ++i)
        shards[tenants_[i].shard].tenantIdx.push_back(i);

    // One pool task per shard owns the shard's map and its tenants'
    // state for the whole run — DAOS-style single-threaded shards.
    pool.runIndexed(shards.size(), [&](std::size_t s) {
        runShard(shards[s], static_cast<unsigned>(s));
    });

    if (config_.soloBaselines) {
        pool.runIndexed(tenants_.size(), [&](std::size_t i) {
            runSolo(tenants_[i]);
        });
    }

    // Fold the per-shard and per-tenant state into the result (the
    // pool has drained; everything below is single-threaded).
    std::vector<double> hbm_means;
    std::vector<double> slowdowns;
    hbm_means.reserve(tenants_.size());
    for (Tenant &tenant : tenants_) {
        TenantResult tr;
        tr.name = tenant.spec.name;
        tr.id = tenant.spec.id;
        tr.shard = tenant.shard;
        tr.requests = tenant.requests;
        tr.instructions = tenant.instructions;
        tr.makespan = tenant.makespan;
        tr.soloMakespan = tenant.soloMakespan;
        tr.slowdown =
            tenant.soloMakespan > 0
                ? static_cast<double>(tenant.makespan) /
                      static_cast<double>(tenant.soloMakespan)
                : std::numeric_limits<double>::quiet_NaN();
        tr.ipc = tenant.makespan > 0
                     ? static_cast<double>(tenant.instructions) /
                           static_cast<double>(tenant.makespan)
                     : 0.0;
        tr.meanHbmShare =
            tenant.hbmShareSum / config_.epochs;
        tr.meanHbmPages =
            tenant.hbmPagesSum / config_.epochs;
        tr.grantedPages = tenant.grant;
        tr.demandPages = tenant.demand;
        tr.quotaClips = tenant.clips;
        tr.movedPages = tenant.moved;
        tr.pagesRetired = tenant.retired;
        tr.ser = tenant.ser;
        tr.meanAvf = tenant.meanAvf;
        tr.degraded = tenant.degraded;
        result.totalRequests += tenant.requests;
        result.totalInstructions += tenant.instructions;
        result.quotaClips += tenant.clips;
        result.rebalanceMoves += tenant.moved;
        hbm_means.push_back(tr.meanHbmPages);
        if (tenant.soloMakespan > 0)
            slowdowns.push_back(tr.slowdown);
        result.tenants.push_back(std::move(tr));
    }
    for (std::size_t s = 0; s < shards.size(); ++s) {
        const Shard &shard = shards[s];
        ShardResult sr;
        sr.shard = static_cast<unsigned>(s);
        sr.tenants = shard.tenantIdx.size();
        sr.hbmCapacityPages = shard.map.hbmCapacityPages();
        sr.hbmUsedPages = shard.map.hbmUsedPages();
        sr.faultsApplied = shard.faults;
        sr.capacityLostPages = shard.capacityLost;
        sr.pagesRetired = shard.retired;
        sr.degraded = shard.degraded;
        result.arbitrationRounds += shard.rounds;
        result.shards.push_back(sr);
        RAMP_TELEM({
            const std::string prefix =
                "service.shard" + std::to_string(s);
            telemetry::metrics()
                .gauge(prefix + ".hbm_used")
                .set(static_cast<double>(sr.hbmUsedPages));
            telemetry::metrics()
                .gauge(prefix + ".hbm_capacity")
                .set(static_cast<double>(sr.hbmCapacityPages));
        });
    }

    result.fairnessIndex = jainIndex(hbm_means);
    result.p99Slowdown = p99Of(std::move(slowdowns));

    // Per-global-epoch trajectory, folded from the histories the
    // (single-threaded) shard tasks recorded — schedule-independent
    // by construction. The gauges walk the trajectory epoch by
    // epoch; the run-level values set below win as the last write.
    for (unsigned e = 0; e < config_.epochs; ++e) {
        std::vector<double> epoch_pages;
        std::vector<double> epoch_slowdowns;
        for (const Tenant &tenant : tenants_) {
            if (e < tenant.residentByEpoch.size())
                epoch_pages.push_back(static_cast<double>(
                    tenant.residentByEpoch[e]));
            if (e < tenant.makespanByEpoch.size() &&
                e < tenant.soloMakespanByEpoch.size() &&
                tenant.soloMakespanByEpoch[e] > 0)
                epoch_slowdowns.push_back(
                    static_cast<double>(
                        tenant.makespanByEpoch[e]) /
                    static_cast<double>(
                        tenant.soloMakespanByEpoch[e]));
        }
        result.fairnessByEpoch.push_back(jainIndex(epoch_pages));
        result.p99ByEpoch.push_back(
            p99Of(std::move(epoch_slowdowns)));
        RAMP_TELEM({
            telemetry::metrics()
                .gauge("service.fairness_index")
                .set(result.fairnessByEpoch.back());
            telemetry::metrics()
                .gauge("service.p99_slowdown")
                .set(result.p99ByEpoch.back());
        });
    }

    // Health timeline: one service-source sample per global epoch,
    // assembled from the same fold so it is jobs-invariant.
    [[maybe_unused]] auto epoch_sample = [&](unsigned e) {
        health::TimelineSample sample;
        sample.source = "service";
        sample.epoch = e + 1;
        sample.fairness = result.fairnessByEpoch[e];
        sample.p99Slowdown = result.p99ByEpoch[e];
        for (const Tenant &tenant : tenants_) {
            if (e >= tenant.residentByEpoch.size())
                continue;
            health::TenantSample ts;
            ts.id = tenant.spec.id;
            ts.shard = tenant.shard;
            ts.resident = tenant.residentByEpoch[e];
            ts.grant = tenant.grantByEpoch[e];
            ts.hbmShare = tenant.shareByEpoch[e];
            if (e < tenant.makespanByEpoch.size() &&
                e < tenant.soloMakespanByEpoch.size() &&
                tenant.soloMakespanByEpoch[e] > 0)
                ts.slowdown =
                    static_cast<double>(
                        tenant.makespanByEpoch[e]) /
                    static_cast<double>(
                        tenant.soloMakespanByEpoch[e]);
            sample.tenants.push_back(ts);
        }
        double backlog = 0;
        for (std::size_t s = 0; s < shards.size(); ++s) {
            const Shard &shard = shards[s];
            if (e >= shard.usedByEpoch.size())
                continue;
            health::ShardSample ss;
            ss.shard = static_cast<std::uint32_t>(s);
            ss.capacityPages = shard.capacityByEpoch[e];
            ss.usedPages = shard.usedByEpoch[e];
            ss.occupancy =
                ss.capacityPages == 0
                    ? health::unmeasured
                    : static_cast<double>(ss.usedPages) /
                          static_cast<double>(ss.capacityPages);
            ss.degraded = shard.degradedByEpoch[e] != 0;
            ss.retired = shard.retiredByEpoch[e];
            sample.shards.push_back(ss);
            backlog +=
                static_cast<double>(shard.backlogByEpoch[e]);
            sample.degraded = sample.degraded || ss.degraded;
            const auto delta = [&](const auto &history) {
                return history[e] - (e > 0 ? history[e - 1] : 0);
            };
            sample.faultsInjected += delta(shard.faultsByEpoch);
            sample.pagesRetired += delta(shard.retiredByEpoch);
            sample.capacityLost += delta(shard.lostByEpoch);
            sample.moves += delta(shard.movedByEpoch);
        }
        sample.backlog = backlog;
        return sample;
    };
    RAMP_HEALTH({
        eventlog::RunScope health_scope("svc/health");
        for (unsigned e = 0; e < config_.epochs; ++e)
            health::record(epoch_sample(e));
    });

    RAMP_TELEM({
        auto &tel = serviceTelemetry();
        tel.requests.add(result.totalRequests);
        telemetry::metrics()
            .gauge("service.tenants")
            .set(static_cast<double>(result.tenants.size()));
        telemetry::metrics()
            .gauge("service.shards")
            .set(static_cast<double>(result.shards.size()));
        telemetry::metrics()
            .gauge("service.fairness_index")
            .set(result.fairnessIndex);
        // Set even when NaN (no solo baselines): the non-finite
        // path renders null instead of leaking a stale value.
        telemetry::metrics()
            .gauge("service.p99_slowdown")
            .set(result.p99Slowdown);
    });
    return result;
}

void
PlacementService::applyShardFaults(Shard &shard, unsigned shard_index,
                                   unsigned global_epoch)
{
    if (shard_index != config_.faultShard)
        return;
    eventlog::RunScope scope("svc/shard" +
                             std::to_string(shard_index) + "/storm");
    for (const FaultEvent &event : config_.faultPlan) {
        const std::uint64_t fire_epoch =
            std::max<std::uint64_t>(1, event.epoch);
        if (fire_epoch != global_epoch)
            continue;
        ++shard.faults;
        RAMP_TELEM(serviceTelemetry().faults.add(1));
        switch (event.kind) {
          case FaultEventKind::Correctable: {
            RAMP_EVLOG({
                eventlog::EventRecord record;
                record.kind = eventlog::EventKind::Inject;
                record.policy = eventlog::PolicyId::Service;
                record.epoch = global_epoch;
                record.page = event.page;
                record.partner = invalidPage;
                record.detail =
                    static_cast<std::uint8_t>(event.kind);
                record.src = eventlog::Tier::Hbm;
                record.dst = eventlog::Tier::Hbm;
                eventlog::emit(record);
            });
            break;
          }
          case FaultEventKind::Uncorrected: {
            const std::uint64_t strikes =
                std::max<std::uint64_t>(1, event.count);
            for (std::uint64_t c = 0; c < strikes; ++c) {
                // Strike a live frame: the plan's page indexes the
                // shard's current (sorted) HBM population, so a plan
                // written without knowledge of the routing still
                // lands on resident pages.
                auto population = shard.map.hbmPages();
                if (population.empty())
                    break;
                std::sort(population.begin(), population.end());
                const PageId victim =
                    population[(event.page + c) %
                               population.size()];
                const std::uint32_t owner = tenantOfPage(victim);
                eventlog::TenantScope tenant_scope(owner);
                const RetireOutcome outcome =
                    shard.map.retirePage(victim);
                if (!outcome.retired)
                    continue;
                ++shard.retired;
                for (const std::size_t idx : shard.tenantIdx) {
                    if (tenants_[idx].spec.id == owner) {
                        ++tenants_[idx].retired;
                        break;
                    }
                }
                RAMP_EVLOG({
                    eventlog::EventRecord record;
                    record.kind = eventlog::EventKind::Retire;
                    record.policy = eventlog::PolicyId::Service;
                    record.epoch = global_epoch;
                    record.page = victim;
                    record.partner = invalidPage;
                    record.src = eventlog::tierOf(outcome.from);
                    record.dst = eventlog::tierOf(outcome.to);
                    eventlog::emit(record);
                });
            }
            break;
          }
          case FaultEventKind::CapacityLoss: {
            std::uint64_t pages = event.pages;
            if (pages == 0 && event.pct > 0)
                pages = static_cast<std::uint64_t>(
                    static_cast<double>(
                        shard.map.hbmCapacityPages()) *
                    event.pct / 100.0);
            const std::uint64_t lost =
                shard.map.loseCapacity(MemoryId::HBM, pages);
            shard.capacityLost += lost;
            if (lost > 0)
                shard.degraded = true;
            RAMP_EVLOG({
                eventlog::EventRecord record;
                record.kind = eventlog::EventKind::Degrade;
                record.policy = eventlog::PolicyId::Service;
                record.epoch = global_epoch;
                record.page = invalidPage;
                record.partner = invalidPage;
                record.span = static_cast<std::uint32_t>(
                    std::min<std::uint64_t>(lost, UINT32_MAX));
                record.hotness = static_cast<float>(
                    shard.map.overfullHbmPages());
                eventlog::emit(record);
            });
            // Emergency sweep: demote the coldest residents across
            // the shard's tenants (id order) until within budget.
            for (auto it = shard.tenantIdx.rbegin();
                 it != shard.tenantIdx.rend() &&
                 shard.map.overfullHbmPages() > 0;
                 ++it) {
                Tenant &tenant = tenants_[*it];
                eventlog::TenantScope tenant_scope(
                    tenant.spec.id);
                for (std::size_t i = tenant.ranking.size();
                     i-- > 0 &&
                     shard.map.overfullHbmPages() > 0;) {
                    const PageId page = tenant.ranking[i].first;
                    if (shard.map.memoryOf(page) !=
                            MemoryId::HBM ||
                        shard.map.isPinned(page))
                        continue;
                    if (shard.map.moveRange(page, 1,
                                            MemoryId::DDR) == 1) {
                        ++tenant.moved;
                        emitMoveRecord(eventlog::EventKind::Evict,
                                       page,
                                       tenant.ranking[i].second,
                                       global_epoch);
                    }
                }
            }
            break;
          }
        }
    }
}

void
PlacementService::runShard(Shard &shard, unsigned shard_index)
{
    if (shard.tenantIdx.empty())
        return;

    // Prepare every tenant stream once: trace, profile, ranking.
    for (const std::size_t idx : shard.tenantIdx) {
        Tenant &tenant = tenants_[idx];
        eventlog::TenantScope tenant_scope(tenant.spec.id);
        eventlog::RunScope scope("svc/" + tenant.spec.name +
                                 "/prepare");
        tenant.traces = buildTenantTrace(tenant.spec);
        tenant.profile = profileTenantTrace(tenant.traces);
        tenant.ranking = tenant.profile.sortedByDescending(
            [](const PageStats &stats) { return stats.hotness(); });
        tenant.meanAvf = tenant.profile.meanAvf();
        tenant.demand = hotSetPages(tenant);
    }

    for (unsigned epoch = 0; epoch < config_.epochs; ++epoch) {
        RAMP_PROF_SCOPE_PMU(epoch_prof, "service.global_epoch");
        RAMP_TELEM(serviceTelemetry().epochs.add(1));
        applyShardFaults(shard, shard_index, epoch + 1);

        // Arbitrate the surviving capacity across the shard's
        // tenants, then steer each tenant's HBM set toward its
        // grant under the per-epoch move budgets.
        std::vector<TenantDemand> demands;
        demands.reserve(shard.tenantIdx.size());
        for (const std::size_t idx : shard.tenantIdx) {
            const Tenant &tenant = tenants_[idx];
            TenantDemand demand;
            demand.id = tenant.spec.id;
            demand.demandPages = tenant.demand;
            demand.quotaFraction = tenant.spec.hbmQuotaFraction;
            demand.classWeight =
                reliabilityClassWeight(tenant.spec.relClass);
            demand.meanAvf = tenant.meanAvf;
            demand.priority = tenant.spec.priority;
            demands.push_back(demand);
        }
        std::uint64_t clipped = 0;
        const std::vector<std::uint64_t> grants =
            arbitrate(config_.arbiter,
                      shard.map.hbmCapacityPages(), demands,
                      &clipped);
        ++shard.rounds;
        shard.clips += clipped;
        RAMP_TELEM({
            serviceTelemetry().rounds.add(1);
            serviceTelemetry().clips.add(clipped);
        });

        for (std::size_t t = 0; t < shard.tenantIdx.size(); ++t) {
            Tenant &tenant = tenants_[shard.tenantIdx[t]];
            eventlog::TenantScope tenant_scope(tenant.spec.id);
            tenant.grant = grants[t];
            if (grants[t] < demands[t].demandPages)
                ++tenant.clips;

            {
                eventlog::RunScope scope(
                    "svc/" + tenant.spec.name + "/epoch" +
                    std::to_string(epoch));
                std::uint64_t moved = 0;
                if (epoch == 0) {
                    placeTenantInitial(shard.map, tenant,
                                       tenant.grant);
                } else {
                    moved = rebalanceTenant(
                        shard.map, tenant, tenant.grant,
                        config_.promoteBudgetPages,
                        config_.demoteBudgetPages, epoch);
                }
                tenant.moved += moved;
                RAMP_TELEM(serviceTelemetry().moves.add(moved));

                const std::uint64_t resident =
                    residentHbmPages(shard.map, tenant);
                const double share =
                    tenant.ranking.empty()
                        ? 0.0
                        : static_cast<double>(resident) /
                              static_cast<double>(
                                  tenant.ranking.size());
                tenant.hbmPagesSum +=
                    static_cast<double>(resident);
                tenant.hbmShareSum += share;
                tenant.residentByEpoch.push_back(resident);
                tenant.grantByEpoch.push_back(tenant.grant);
                tenant.shareByEpoch.push_back(share);
                RAMP_EVLOG({
                    eventlog::EventRecord record;
                    record.kind = eventlog::EventKind::Tenant;
                    record.policy = eventlog::PolicyId::Service;
                    record.epoch = epoch;
                    record.page = invalidPage;
                    record.partner = invalidPage;
                    record.region = shard_index;
                    record.span = static_cast<std::uint32_t>(
                        std::min<std::uint64_t>(tenant.grant,
                                                UINT32_MAX));
                    record.moved = static_cast<std::uint32_t>(
                        std::min<std::uint64_t>(resident,
                                                UINT32_MAX));
                    record.hotness = static_cast<float>(
                        tenant.ranking.empty()
                            ? 0.0
                            : static_cast<double>(resident) /
                                  static_cast<double>(
                                      tenant.ranking.size()));
                    record.avf =
                        static_cast<float>(tenant.meanAvf);
                    eventlog::emit(record);
                });

                const std::vector<CoreTrace> slice = epochSlice(
                    tenant.traces, epoch, config_.epochs);
                Cycle epoch_makespan = 0;
                if (sliceRequests(slice) > 0) {
                    HmaSystem system(system_);
                    const SimResult epoch_result =
                        system.runInPlace(slice, shard.map,
                                          nullptr, nullptr);
                    epoch_makespan = epoch_result.makespan;
                    tenant.makespan += epoch_result.makespan;
                    tenant.requests += epoch_result.requests;
                    tenant.instructions +=
                        epoch_result.instructions;
                    tenant.ser += epoch_result.ser;
                    tenant.demand = std::max<std::uint64_t>(
                        1,
                        epoch_result.profile.footprintPages());
                }
                tenant.makespanByEpoch.push_back(epoch_makespan);
            }
            tenant.degraded =
                tenant.degraded || shard.degraded;
        }

        // Epoch-boundary shard history: cumulative counts that the
        // post-drain fold differences into the health timeline.
        std::uint64_t shard_moved = 0;
        for (const std::size_t idx : shard.tenantIdx)
            shard_moved += tenants_[idx].moved;
        shard.usedByEpoch.push_back(shard.map.hbmUsedPages());
        shard.capacityByEpoch.push_back(
            shard.map.hbmCapacityPages());
        shard.backlogByEpoch.push_back(
            shard.map.overfullHbmPages());
        shard.retiredByEpoch.push_back(shard.retired);
        shard.faultsByEpoch.push_back(shard.faults);
        shard.lostByEpoch.push_back(shard.capacityLost);
        shard.movedByEpoch.push_back(shard_moved);
        shard.degradedByEpoch.push_back(shard.degraded ? 1 : 0);
    }
}

void
PlacementService::runSolo(Tenant &tenant)
{
    RAMP_TELEM(serviceTelemetry().solos.add(1));
    eventlog::TenantScope tenant_scope(tenant.spec.id);
    PlacementMap map(shardCapacity());
    std::uint64_t demand = hotSetPages(tenant);
    for (unsigned epoch = 0; epoch < config_.epochs; ++epoch) {
        eventlog::RunScope scope("svc-solo/" + tenant.spec.name +
                                 "/epoch" + std::to_string(epoch));
        const std::uint64_t grant =
            std::min(demand, map.hbmCapacityPages());
        if (epoch == 0)
            placeTenantInitial(map, tenant, grant);
        else
            rebalanceTenant(map, tenant, grant,
                            config_.promoteBudgetPages,
                            config_.demoteBudgetPages, epoch);
        const std::vector<CoreTrace> slice =
            epochSlice(tenant.traces, epoch, config_.epochs);
        if (sliceRequests(slice) == 0) {
            tenant.soloMakespanByEpoch.push_back(0);
            continue;
        }
        HmaSystem system(system_);
        const SimResult epoch_result =
            system.runInPlace(slice, map, nullptr, nullptr);
        tenant.soloMakespan += epoch_result.makespan;
        tenant.soloMakespanByEpoch.push_back(epoch_result.makespan);
        demand = std::max<std::uint64_t>(
            1, epoch_result.profile.footprintPages());
    }
}

} // namespace ramp::service
