/**
 * @file
 * Multi-tenant placement service: sharded HMA metadata serving
 * concurrent tenant streams.
 *
 * The paper evaluates one workload on one HmaSystem at a time; the
 * service generalises that to a datacenter-shaped setting in which
 * many tenants compete for one scarce reliable tier. A
 * PlacementService owns N shards. Each shard is self-contained — a
 * PlacementMap plus the HmaSystem runs replaying its tenants'
 * substreams — and every shard's work executes as one runner-pool
 * task per global epoch, so shard metadata is single-threaded by
 * construction (DAOS-style per-target ownership: no shard state is
 * ever touched by two threads at once, and results are collected in
 * shard order, so any --jobs width reproduces the serial run
 * bit-exactly).
 *
 * Tenants are admitted as TenantSpec streams and routed to a home
 * shard by a deterministic hash of the tenant id (the routing block
 * is the whole tenant footprint, so a fault storm on one shard
 * degrades only the tenants mapped there). A cross-tenant HBM
 * arbiter re-runs at every global epoch boundary with pluggable
 * policies — fair-share (strict per-tenant quotas, no
 * redistribution) and reliability-weighted (quota credit scaled by
 * the tenant's annotation class and measured AVF, with leftover
 * capacity water-filled to clipped tenants in credit order) — and
 * the resulting per-tenant grants flow down to each shard's epoch
 * rebalancer as promote/demote budgets.
 *
 * Everything wires through the existing layers: per-tenant RunScope
 * labels plus the ramp-events-v2 `tenant` ledger field
 * (eventlog::TenantScope), service.* telemetry counters, and the
 * PlacementMap fault-response API (retirePage/loseCapacity) for the
 * per-shard fault composition. See DESIGN.md §13.
 */

#ifndef RAMP_SERVICE_SERVICE_HH
#define RAMP_SERVICE_SERVICE_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "faults/plan.hh"
#include "hma/config.hh"
#include "hma/system.hh"
#include "placement/profile.hh"
#include "runner/pool.hh"
#include "trace/trace.hh"

namespace ramp::service
{

/** HRM-style application tolerance class of a tenant's pages. */
enum class ReliabilityClass : std::uint8_t
{
    /** Crash-tolerant data; cheapest to serve from the risky tier. */
    Tolerant,

    /** No annotation either way (weight 1). */
    Standard,

    /** Crash-intolerant data; wins HBM arbitration credit. */
    Critical,
};

/** Stable spelling ("tolerant", "standard", "critical"). */
const char *reliabilityClassName(ReliabilityClass cls);

/** Arbitration credit multiplier of a class (0.5 / 1.0 / 2.0). */
double reliabilityClassWeight(ReliabilityClass cls);

/** Parse a class name; returns false on an unknown spelling. */
bool parseReliabilityClass(std::string_view text,
                           ReliabilityClass &cls);

/** Cross-tenant HBM arbitration policy. */
enum class ArbiterPolicy : std::uint8_t
{
    /** Strict per-tenant quotas; unused quota is never loaned. */
    FairShare,

    /** Quota credit scaled by class weight and measured AVF;
     * leftover capacity water-fills clipped tenants. */
    ReliabilityWeighted,
};

/** Stable spelling ("fair-share", "reliability-weighted"). */
const char *arbiterPolicyName(ArbiterPolicy policy);

/** Parse an arbiter name; returns false on an unknown spelling. */
bool parseArbiterPolicy(std::string_view text, ArbiterPolicy &policy);

/** One tenant workload stream offered to the service. */
struct TenantSpec
{
    /** Display name; defaults to "t<id>" when empty. */
    std::string name;

    /** Unique non-zero id; also the ledger `tenant` field. */
    std::uint32_t id = 0;

    /** Distinct pages the stream touches. */
    std::uint64_t footprintPages = 4096;

    /** Total memory requests across the stream's cores. */
    std::uint64_t requests = 1 << 16;

    /** Cores the stream is interleaved over (<= SystemConfig cores). */
    std::uint32_t cores = 4;

    /** Popularity skew in [0, 1): 0 uniform, higher concentrates
     * traffic on low page ranks (Zipf-shaped working set). */
    double zipfSkew = 0.8;

    /** Fraction of requests that are writes. */
    double writeFraction = 0.3;

    /** Stream rng seed (same seed => same trace at any --jobs). */
    std::uint64_t seed = 1;

    /** Share of the home shard's HBM this tenant may reserve. */
    double hbmQuotaFraction = 0.25;

    /** Scheduling priority (recorded; higher breaks grant ties). */
    int priority = 0;

    ReliabilityClass relClass = ReliabilityClass::Standard;
};

/** Service-wide knobs. */
struct ServiceConfig
{
    /** Shard count (>= 1); each shard owns capacity and tenants. */
    unsigned shards = 2;

    /** Global epochs; arbitration re-runs at every boundary. */
    unsigned epochs = 4;

    ArbiterPolicy arbiter = ArbiterPolicy::FairShare;

    /** HBM pages per shard (0 = SystemConfig::hbmPages() / shards). */
    std::uint64_t hbmPagesPerShard = 0;

    /** Per-tenant page-move budgets of one epoch rebalance. */
    std::uint64_t promoteBudgetPages = 512;
    std::uint64_t demoteBudgetPages = 512;

    /** Salt of the tenant -> shard routing hash. */
    std::uint64_t routingSalt = 0x9e3779b97f4a7c15ULL;

    /**
     * Fault storm composed onto one shard: events fire at the start
     * of their (1-based) global epoch. Page strikes select the
     * event's `page` modulo the shard's current HBM population, so a
     * plan written without knowledge of the routing always lands on
     * live frames of the struck shard.
     */
    std::vector<FaultEvent> faultPlan;

    /** Shard the fault plan lands on. */
    unsigned faultShard = 0;

    /**
     * Also run every tenant alone (same slicing and budgets, full
     * shard capacity, no faults) to measure per-tenant slowdown.
     */
    bool soloBaselines = false;
};

/** Arbitration input of one tenant. */
struct TenantDemand
{
    std::uint32_t id = 0;
    std::uint64_t demandPages = 0;
    double quotaFraction = 0.25;
    double classWeight = 1.0;
    double meanAvf = 0.0;
    int priority = 0;
};

/**
 * Grant HBM pages to tenants competing for one shard's capacity.
 * Returns one grant per demand, in input order. Invariants (locked
 * by tests): the grants sum to at most `capacity_pages`, and no
 * grant exceeds its tenant's demand. Fair-share additionally never
 * exceeds the tenant's strict quota; reliability-weighted may exceed
 * the base quota only by water-filled leftover capacity.
 * `clips`, when non-null, accrues the number of tenants whose
 * demand was clipped by their quota.
 */
std::vector<std::uint64_t>
arbitrate(ArbiterPolicy policy, std::uint64_t capacity_pages,
          const std::vector<TenantDemand> &demands,
          std::uint64_t *clips = nullptr);

/** Home shard of a tenant (splitmix hash of id and salt). */
unsigned shardOf(std::uint32_t tenant_id, unsigned shards,
                 std::uint64_t salt);

/** First global page id of a tenant's private page range. */
PageId tenantBasePage(std::uint32_t tenant_id);

/** Owning tenant of a global page id (0 = outside any tenant). */
std::uint32_t tenantOfPage(PageId page);

/**
 * Deterministic synthetic stream of a tenant: `spec.requests`
 * Zipf-skewed accesses over the tenant's private page range,
 * interleaved over `spec.cores` cores. Same spec => same trace.
 */
std::vector<CoreTrace> buildTenantTrace(const TenantSpec &spec);

/**
 * Trace-derived profile of a tenant stream: per-page read/write
 * counts, plus a deterministic pseudo-AVF correlated with the
 * page's write share (the paper's Figure 9 Wr-AVF correlation), so
 * the reliability-weighted arbiter and the placement ranking see
 * the risk signal without a profiling simulation pass.
 */
PageProfile profileTenantTrace(const std::vector<CoreTrace> &traces);

/** Outcome of one tenant's service run. */
struct TenantResult
{
    std::string name;
    std::uint32_t id = 0;

    /** Home shard the router chose. */
    unsigned shard = 0;

    std::uint64_t requests = 0;
    std::uint64_t instructions = 0;

    /** Sum of the tenant's per-epoch makespans. */
    Cycle makespan = 0;

    /** Solo-run makespan (0 when soloBaselines is off). */
    Cycle soloMakespan = 0;

    /** makespan / soloMakespan (NaN without a solo baseline). */
    double slowdown = 0;

    double ipc = 0;

    /** Mean over epochs of (HBM-resident pages / footprint). */
    double meanHbmShare = 0;

    /** Mean over epochs of HBM-resident pages. */
    double meanHbmPages = 0;

    /** Final-epoch grant and demand. */
    std::uint64_t grantedPages = 0;
    std::uint64_t demandPages = 0;

    /** Epoch boundaries where demand exceeded the grant. */
    std::uint64_t quotaClips = 0;

    /** Pages the epoch rebalancer moved for this tenant. */
    std::uint64_t movedPages = 0;

    /** Pages of this tenant retired by the fault composition. */
    std::uint64_t pagesRetired = 0;

    /** Summed per-epoch residency-weighted SER. */
    double ser = 0;

    /** Mean pseudo-AVF of the tenant's footprint. */
    double meanAvf = 0;

    /** True when the tenant's home shard ran degraded. */
    bool degraded = false;
};

/** Outcome of one shard. */
struct ShardResult
{
    unsigned shard = 0;
    std::uint64_t tenants = 0;

    /** Surviving HBM capacity and final occupancy. */
    std::uint64_t hbmCapacityPages = 0;
    std::uint64_t hbmUsedPages = 0;

    std::uint64_t faultsApplied = 0;
    std::uint64_t capacityLostPages = 0;
    std::uint64_t pagesRetired = 0;
    bool degraded = false;
};

/** Outcome of a whole service run. */
struct ServiceResult
{
    /** Per-tenant outcomes in tenant-id order. */
    std::vector<TenantResult> tenants;

    /** Per-shard outcomes in shard order. */
    std::vector<ShardResult> shards;

    std::uint64_t arbitrationRounds = 0;
    std::uint64_t quotaClips = 0;
    std::uint64_t rebalanceMoves = 0;
    std::uint64_t totalRequests = 0;
    std::uint64_t totalInstructions = 0;

    /** Jain index over per-tenant mean HBM pages (1 = fair). */
    double fairnessIndex = 1.0;

    /** p99 over per-tenant slowdowns (NaN without solos). */
    double p99Slowdown = 0;

    /** @{ @name Per-global-epoch trajectory (health timeline) */
    /** Jain index over per-tenant resident pages at each epoch. */
    std::vector<double> fairnessByEpoch;
    /** p99 per-epoch slowdown vs solo (NaN without solos). */
    std::vector<double> p99ByEpoch;
    /** @} */
};

/**
 * The sharded multi-tenant placement service front-end.
 *
 * Usage: admit() every tenant stream, then run() once. admit()
 * validates the spec, routes the tenant to its home shard, and
 * counts it in service.streams_admitted; run() executes the global
 * epoch loop — arbitrate, rebalance under budgets, replay every
 * tenant's epoch slice on its shard — and returns per-tenant and
 * per-shard outcomes that are invariant under the pool's --jobs
 * width.
 */
class PlacementService
{
  public:
    /** Opaque per-tenant / per-shard run state (defined in the cc). */
    struct Tenant;
    struct Shard;

    PlacementService(const SystemConfig &system, ServiceConfig config);

    /** Out-of-line: Tenant is incomplete at the class definition. */
    ~PlacementService();

    /**
     * Admit one tenant stream. Returns false (and counts the
     * rejection) when the spec is invalid: zero/duplicate id, empty
     * footprint or request stream, more cores than the system has,
     * or a quota fraction outside (0, 1].
     */
    bool admit(TenantSpec spec);

    /** Admitted tenant count (out-of-line: Tenant is incomplete). */
    std::size_t tenantCount() const;

    /** The shard a given admitted tenant routed to. */
    unsigned shardOfTenant(std::uint32_t tenant_id) const;

    /** Run the service campaign on the pool. */
    ServiceResult run(runner::ThreadPool &pool);

  private:
    SystemConfig system_;
    ServiceConfig config_;
    std::vector<Tenant> tenants_;

    std::uint64_t shardCapacity() const;

    /** Run one shard's full epoch loop (one pool task). */
    void runShard(Shard &shard, unsigned shard_index);

    /** Run one tenant alone at full shard capacity (solo baseline). */
    void runSolo(Tenant &tenant);

    /** Land the epoch's composed faults on the struck shard. */
    void applyShardFaults(Shard &shard, unsigned shard_index,
                          unsigned global_epoch);
};

} // namespace ramp::service

#endif // RAMP_SERVICE_SERVICE_HH
