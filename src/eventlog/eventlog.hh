/**
 * @file
 * Decision ledger: the event-log subsystem front door.
 *
 * Every placement and migration decision (and every attributed
 * fault landing) can be recorded as a compact EventRecord
 * (record.hh). Instrumentation sites are gated exactly like the
 * telemetry macros: recording disabled at runtime costs one relaxed
 * atomic load and branch per site, and defining
 * RAMP_EVENTLOG_DISABLED at compile time removes the sites entirely
 * (the subsystem still links; drains are just empty).
 *
 * Records land in per-thread ring buffers (one short uncontended
 * lock per record on the owning thread). A full ring drains into
 * the process-wide store in one batch, so the central mutex is
 * touched once per `ringCapacity` records, not once per record.
 * Within one thread — and therefore within one RunScope, since a
 * run never migrates threads — drain order preserves emission
 * order, and each record carries a per-run sequence number, so a
 * run's stream can always be totally ordered regardless of how
 * passes were scheduled across the pool.
 *
 * RunScope attributes records to a labelled run (one simulation
 * pass, one FaultSim shard). Scopes nest per thread; emit() stamps
 * the innermost scope's run id and next sequence number. Records
 * emitted outside any scope belong to the reserved "unattributed"
 * run 0.
 *
 * Draining: toJsonl() renders everything collected so far as a
 * self-describing JSONL document (a header line, then one record
 * per line — see DESIGN.md §10 for the schema);
 * postMortemJsonl() renders only the trailing `n` records, which
 * the harness writes on SIGINT/SIGTERM so an interrupted campaign
 * leaves its final decisions behind for inspection.
 */

#ifndef RAMP_EVENTLOG_EVENTLOG_HH
#define RAMP_EVENTLOG_EVENTLOG_HH

#include <cstdint>
#include <string>
#include <vector>

#include "eventlog/record.hh"

namespace ramp::eventlog
{

/** Records one full per-thread ring holds before draining. */
inline constexpr std::size_t ringCapacity = 4096;

/** True when instrumentation sites should record (default off). */
bool enabled();

/** Toggle recording at runtime (the harness flips this on). */
void setEnabled(bool on);

/** Ledger volume counters. */
struct LogStats
{
    /** Records accepted into the ledger. */
    std::uint64_t recorded = 0;

    /** Records dropped at the capacity limit. */
    std::uint64_t dropped = 0;
};

LogStats stats();

namespace detail
{

/** Per-thread run attribution state (RunScope implementation). */
struct RunContext
{
    std::uint32_t run = 0;
    std::uint32_t seq = 0;
};

} // namespace detail

/**
 * Cap the ledger at `max_records` (0 = unlimited, the default).
 * Past the cap new records are dropped and counted, never silently:
 * the JSONL header reports the drop count. RAMP_EVENTS_LIMIT sets
 * this from the environment via the harness.
 */
void setCapacity(std::uint64_t max_records);

/**
 * Attribute this thread's records to a labelled run until the scope
 * closes. Labels should be unique and deterministic per run (the
 * harness uses "<workload>/<pass label>", FaultSim uses
 * "<config>/shard<index>") — analyzers order runs by label, which
 * keeps timelines independent of pool scheduling. Scopes nest; the
 * innermost wins. Inert (and free) when recording is disabled at
 * construction, mirroring telemetry's ScopedSpan.
 */
class RunScope
{
  public:
    explicit RunScope(const std::string &label);
    ~RunScope();

    RunScope(const RunScope &) = delete;
    RunScope &operator=(const RunScope &) = delete;

  private:
    bool active_;
    detail::RunContext context_;
    detail::RunContext *previous_ = nullptr;
};

/**
 * Attribute this thread's records to a tenant until the scope
 * closes (the multi-tenant placement service wraps each tenant's
 * work in one). Scopes nest; the innermost wins; records emitted
 * outside any scope carry tenant 0 and render exactly as before,
 * so single-tenant tools never see the field.
 */
class TenantScope
{
  public:
    explicit TenantScope(std::uint32_t tenant);
    ~TenantScope();

    TenantScope(const TenantScope &) = delete;
    TenantScope &operator=(const TenantScope &) = delete;

  private:
    std::uint32_t previous_;
};

/**
 * Record one event (when enabled): stamps the calling thread's run
 * scope and sequence number, then appends to the thread's ring.
 */
void emit(EventRecord record);

/** The label of a run id ("unattributed" for 0 / unknown ids). */
std::string runLabel(std::uint32_t run);

/**
 * The label of the calling thread's innermost RunScope
 * ("unattributed" outside any scope). The health timeline stamps
 * its samples with this, keying them to the same run streams as the
 * ledger.
 */
std::string currentRunLabel();

/** Every record collected so far, in drain order (tests). */
std::vector<EventRecord> collect();

/** One record rendered as a single JSONL line (no newline). */
std::string recordJson(const EventRecord &record);

/**
 * The full ledger as a JSONL document: one header object line
 * ({"schema": "ramp-events-v1", "tool": ..., "records": N,
 * "dropped": D}) followed by one record object per line.
 */
std::string toJsonl(const std::string &tool);

/** The trailing `n` records as a JSONL document (post-mortem). */
std::string postMortemJsonl(const std::string &tool, std::size_t n);

/**
 * Schema identifier stamped into (and checked in) the header. v2
 * adds the optional per-record `tenant` key (absent when 0); every
 * v1 key is unchanged, so v1 readers that ignore unknown keys parse
 * v2 documents unmodified.
 */
inline constexpr const char *eventsSchema = "ramp-events-v2";

/** Drop all records, run labels, stats, and the cap (tests). */
void reset();

} // namespace ramp::eventlog

/**
 * Run one or more statements only when the ledger is recording:
 *
 *   RAMP_EVLOG({
 *       ramp::eventlog::EventRecord record;
 *       ...
 *       ramp::eventlog::emit(record);
 *   });
 */
#ifndef RAMP_EVENTLOG_DISABLED
#define RAMP_EVLOG(...) \
    do { \
        if (::ramp::eventlog::enabled()) { \
            __VA_ARGS__; \
        } \
    } while (0)
#else
#define RAMP_EVLOG(...) \
    do { \
    } while (0)
#endif

#endif // RAMP_EVENTLOG_EVENTLOG_HH
