#include "eventlog/record.hh"

namespace ramp::eventlog
{

const char *
eventKindName(EventKind kind)
{
    switch (kind) {
      case EventKind::Place: return "place";
      case EventKind::Promote: return "promote";
      case EventKind::Evict: return "evict";
      case EventKind::SwapIn: return "swap-in";
      case EventKind::SwapOut: return "swap-out";
      case EventKind::Epoch: return "epoch";
      case EventKind::Fault: return "fault";
      case EventKind::Region: return "region";
      case EventKind::RegionMerge: return "region-merge";
      case EventKind::RegionSplit: return "region-split";
      case EventKind::Inject: return "inject";
      case EventKind::Retire: return "retire";
      case EventKind::Remap: return "remap";
      case EventKind::Degrade: return "degrade";
      case EventKind::Tenant: return "tenant";
      case EventKind::Alert: return "alert";
    }
    return "?";
}

const char *
policyIdName(PolicyId policy)
{
    switch (policy) {
      case PolicyId::Unknown: return "unknown";
      case PolicyId::DdrOnly: return "ddr-only";
      case PolicyId::PerfFocused: return "perf-focused";
      case PolicyId::RelFocused: return "rel-focused";
      case PolicyId::Balanced: return "balanced";
      case PolicyId::WrRatio: return "wr-ratio";
      case PolicyId::Wr2Ratio: return "wr2-ratio";
      case PolicyId::HotFraction: return "hot-fraction";
      case PolicyId::Annotated: return "annotated";
      case PolicyId::PerfMigration: return "perf-migration";
      case PolicyId::FcMigration: return "fc-migration";
      case PolicyId::CcMigration: return "cc-migration";
      case PolicyId::FaultSim: return "faultsim";
      case PolicyId::RegionMigration: return "region-migration";
      case PolicyId::FaultInject: return "fault-inject";
      case PolicyId::Service: return "service";
    }
    return "?";
}

PolicyId
policyIdFromName(std::string_view name)
{
    // Every known id round-trips through its own name; novel
    // policy strings degrade to Unknown rather than erroring so
    // third-party engines can still be logged.
    for (int i = 0;
         i <= static_cast<int>(PolicyId::Service); ++i) {
        const auto id = static_cast<PolicyId>(i);
        if (name == policyIdName(id))
            return id;
    }
    return PolicyId::Unknown;
}

const char *
tierName(Tier tier)
{
    switch (tier) {
      case Tier::None: return "none";
      case Tier::Hbm: return "hbm";
      case Tier::Ddr: return "ddr";
    }
    return "?";
}

const char *
quadrantName(Quadrant quadrant)
{
    switch (quadrant) {
      case Quadrant::Unknown: return "unknown";
      case Quadrant::HotLowRisk: return "hot-low";
      case Quadrant::HotHighRisk: return "hot-high";
      case Quadrant::ColdLowRisk: return "cold-low";
      case Quadrant::ColdHighRisk: return "cold-high";
    }
    return "?";
}

const char *
regionActionName(std::uint8_t detail)
{
    static const char *const names[] = {"none", "promote", "demote",
                                        "pin", "place"};
    if (detail < sizeof(names) / sizeof(names[0]))
        return names[detail];
    return "?";
}

} // namespace ramp::eventlog
