/**
 * @file
 * The decision ledger's record vocabulary.
 *
 * One EventRecord captures one placement or migration decision (or
 * a decision-adjacent fact: an epoch boundary, a fault landing) with
 * the inputs that produced it — the page, the tiers involved, the
 * deciding policy, and the score inputs the policy compared against
 * its thresholds. Records are compact PODs so the per-thread ring
 * buffers stay cache-friendly; string rendering happens only when a
 * log is drained to JSONL (eventlog.hh).
 *
 * Field reuse: Epoch records describe a whole interval boundary, so
 * the score fields carry the boundary's move counts instead
 * (hotness = promotions, wrRatio = evictions, avf = swaps); Fault
 * records carry the fault mode in `detail` and the struck tier in
 * `dst`. The JSONL writer renders each kind with its own keys, so
 * the reuse never leaks into the file format.
 */

#ifndef RAMP_EVENTLOG_RECORD_HH
#define RAMP_EVENTLOG_RECORD_HH

#include <cstdint>
#include <limits>
#include <string_view>

#include "common/types.hh"

namespace ramp::eventlog
{

/** What happened to the page (or at the boundary). */
enum class EventKind : std::uint8_t
{
    /** Static policy selected the page for HBM at load time. */
    Place,

    /** Unpaired DDR -> HBM move into a free frame. */
    Promote,

    /** Unpaired HBM -> DDR move (risk/cold mitigation). */
    Evict,

    /** DDR page entering HBM as the fill half of a swap. */
    SwapIn,

    /** HBM victim leaving as the out half of a swap. */
    SwapOut,

    /** Interval boundary with a non-empty decision (counts). */
    Epoch,

    /** FaultSim fault landing attributed to a page/tier. */
    Fault,

    /** Scheme action applied to a whole region (span move/pin). */
    Region,

    /** Monitor merged a neighbour region into this one. */
    RegionMerge,

    /** Monitor split this region; partner is the new right half. */
    RegionSplit,

    /** Online injector landed a fault on a live run. */
    Inject,

    /** Uncorrected error retired the page (frame quarantined). */
    Retire,

    /** Fault response moved a page (retire/sweep/retry remap). */
    Remap,

    /** Run entered (or stayed in) degraded mode. */
    Degrade,

    /**
     * Per-tenant epoch summary from the placement service: region
     * carries the home shard, span the arbiter's grant, moved the
     * HBM-resident page count, hotness the resident share, and avf
     * the tenant's mean AVF.
     */
    Tenant,

    /**
     * Health monitor rule fired (health/health.hh): span carries
     * the rule index, region the signal index, detail the severity,
     * moved the shard index + 1 (0 = run-wide), hotness the
     * measured value, and threshHot the rule's threshold.
     */
    Alert,
};

/** Stable lower-case name ("place", "promote", ...). */
const char *eventKindName(EventKind kind);

/** The policy (static or dynamic) that made the decision. */
enum class PolicyId : std::uint8_t
{
    Unknown,
    DdrOnly,
    PerfFocused,
    RelFocused,
    Balanced,
    WrRatio,
    Wr2Ratio,
    HotFraction,
    Annotated,
    PerfMigration,
    FcMigration,
    CcMigration,
    FaultSim,
    RegionMigration,
    FaultInject,
    Service,
};

/** Stable name, matching policyName()/engine name() spellings. */
const char *policyIdName(PolicyId policy);

/** PolicyId of a policy/engine name string (Unknown when novel). */
PolicyId policyIdFromName(std::string_view name);

/** A memory tier, or no tier (static placement has no source). */
enum class Tier : std::uint8_t
{
    None,
    Hbm,
    Ddr,
};

/** Stable lower-case name ("none", "hbm", "ddr"). */
const char *tierName(Tier tier);

/** The tier of a simulator memory id. */
constexpr Tier
tierOf(MemoryId mem)
{
    return mem == MemoryId::HBM ? Tier::Hbm : Tier::Ddr;
}

/** Figure 4 hotness-risk quadrant of the page at decision time. */
enum class Quadrant : std::uint8_t
{
    Unknown,
    HotLowRisk,
    HotHighRisk,
    ColdLowRisk,
    ColdHighRisk,
};

/** Stable name ("hot-low", "hot-high", "cold-low", "cold-high"). */
const char *quadrantName(Quadrant quadrant);

/**
 * Scheme-action spelling of a Region record's `detail` field
 * ("none", "promote", "demote", "pin", "place").
 */
const char *regionActionName(std::uint8_t detail);

/** Classify a page from its hot/low-risk verdicts. */
constexpr Quadrant
quadrantOf(bool hot, bool low_risk)
{
    if (hot)
        return low_risk ? Quadrant::HotLowRisk
                        : Quadrant::HotHighRisk;
    return low_risk ? Quadrant::ColdLowRisk : Quadrant::ColdHighRisk;
}

/** "Not measured" marker for the float score fields. */
inline constexpr float unmeasured =
    std::numeric_limits<float>::quiet_NaN();

/**
 * One ledger entry. `run` and `seq` are filled by emit(): the run is
 * the enclosing RunScope's registered label, and seq increases by
 * one per record within the run, so a run's records form a total
 * order that is independent of thread scheduling.
 */
struct EventRecord
{
    /** Run-label table index (0 = unattributed). */
    std::uint32_t run = 0;

    /** Position within the run's record stream. */
    std::uint32_t seq = 0;

    /**
     * Owning tenant (0 = no tenant). Stamped by emit() from the
     * thread's enclosing TenantScope; rendered to JSONL only when
     * non-zero, so ramp-events-v1 readers are unaffected.
     */
    std::uint32_t tenant = 0;

    EventKind kind = EventKind::Place;
    PolicyId policy = PolicyId::Unknown;

    /** Tier the page left / entered (None when not applicable). */
    Tier src = Tier::None;
    Tier dst = Tier::None;

    Quadrant quadrant = Quadrant::Unknown;

    /** Kind-specific extra (Fault: FaultMode index). */
    std::uint8_t detail = 0;

    /** Decision time in cycles (Fault: trial index in its shard). */
    Cycle epoch = 0;

    /** Subject page (invalidPage for Epoch records). */
    PageId page = invalidPage;

    /** Swap partner page (invalidPage when unpaired). */
    PageId partner = invalidPage;

    /** @{ @name Region records (Region/RegionMerge/RegionSplit) */
    /** Region index at decision time. */
    std::uint32_t region = 0;
    /** Page span of the (surviving/left) region. */
    std::uint32_t span = 0;
    /** Pages actually moved by a Region scheme action. */
    std::uint32_t moved = 0;
    /** @} */

    /** @{ @name Score inputs (Epoch: promoted/evicted/swapped) */
    float hotness = unmeasured;
    float wrRatio = unmeasured;
    float avf = unmeasured;
    /** @} */

    /** @{ @name Thresholds the decision compared against */
    float threshHot = unmeasured;
    float threshRisk = unmeasured;
    /** @} */
};

} // namespace ramp::eventlog

#endif // RAMP_EVENTLOG_RECORD_HH
