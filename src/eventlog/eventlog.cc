#include "eventlog/eventlog.hh"

#include <atomic>
#include <cmath>
#include <cstdio>
#include <memory>
#include <mutex>
#include <sstream>
#include <unordered_map>

namespace ramp::eventlog
{

namespace
{

std::atomic<bool> enabledFlag{false};

/**
 * Process-wide ledger: drained ring batches in arrival order plus
 * the run-label table. Run ids are assigned in registration order,
 * which depends on pool scheduling — that is fine because the JSONL
 * writer denormalizes the *label* into every line and analyzers
 * order by (label, seq), never by id or file position.
 */
struct Store
{
    std::mutex mutex;
    std::vector<EventRecord> records;
    std::vector<std::string> runLabels{"unattributed"};
    std::unordered_map<std::string, std::uint32_t> runIds;

    /** Records accepted (admission ticket; includes ring-pending). */
    std::atomic<std::uint64_t> recorded{0};
    std::atomic<std::uint64_t> dropped{0};
    std::atomic<std::uint64_t> capacity{0}; ///< 0 = unlimited

    /** Sequence source for records emitted outside any RunScope. */
    std::atomic<std::uint32_t> unscopedSeq{0};
};

Store &
store()
{
    static Store instance;
    return instance;
}

/** Ring buffer of one thread; appended only by its owner. */
struct ThreadRing
{
    std::mutex mutex; ///< Owner appends, collect()/reset() drain.
    std::vector<EventRecord> records;
};

struct Registry
{
    std::mutex mutex;
    std::vector<std::shared_ptr<ThreadRing>> rings;
};

Registry &
registry()
{
    static Registry instance;
    return instance;
}

/** The calling thread's ring, registered on first use. */
ThreadRing &
threadRing()
{
    thread_local std::shared_ptr<ThreadRing> ring = [] {
        auto fresh = std::make_shared<ThreadRing>();
        fresh->records.reserve(ringCapacity);
        Registry &r = registry();
        std::lock_guard<std::mutex> lock(r.mutex);
        r.rings.push_back(fresh);
        return fresh;
    }();
    return *ring;
}

/** Move a full (or draining) ring's batch into the central store. */
void
drainRing(ThreadRing &ring)
{
    std::vector<EventRecord> batch;
    {
        std::lock_guard<std::mutex> lock(ring.mutex);
        if (ring.records.empty())
            return;
        batch.swap(ring.records);
        ring.records.reserve(ringCapacity);
    }
    Store &s = store();
    std::lock_guard<std::mutex> lock(s.mutex);
    s.records.insert(s.records.end(), batch.begin(), batch.end());
}

/** Innermost RunScope context of the calling thread. */
thread_local detail::RunContext *currentContext = nullptr;

/** Innermost TenantScope tenant of the calling thread (0 = none). */
thread_local std::uint32_t currentTenant = 0;

std::string
escape(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (unsigned char c : text) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    return out;
}

/** Score value as JSON: null when unmeasured, else shortest-ish. */
std::string
number(float value)
{
    if (!std::isfinite(value))
        return "null";
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.9g",
                  static_cast<double>(value));
    return buf;
}

/** FaultMode spellings (reliability/fault.hh order). */
const char *
faultDetailName(std::uint8_t detail)
{
    static const char *const names[] = {"bit",  "word", "column",
                                        "row",  "bank", "rank"};
    if (detail < sizeof(names) / sizeof(names[0]))
        return names[detail];
    return "?";
}

/** Injected-fault kind spellings (faults/plan.hh order). */
const char *
injectKindName(std::uint8_t detail)
{
    static const char *const names[] = {"correctable",
                                        "uncorrected", "capacity"};
    if (detail < sizeof(names) / sizeof(names[0]))
        return names[detail];
    return "?";
}

/** Injected-fault source spellings (faults/injector.hh order). */
const char *
injectSourceName(std::uint32_t source)
{
    static const char *const names[] = {"script", "poisson",
                                        "hammer"};
    if (source < sizeof(names) / sizeof(names[0]))
        return names[source];
    return "?";
}

/** Why a Remap record moved its page. */
const char *
remapReasonName(std::uint8_t detail)
{
    static const char *const names[] = {"retire", "sweep", "retry"};
    if (detail < sizeof(names) / sizeof(names[0]))
        return names[detail];
    return "?";
}

/** Why a Degrade record fired. */
const char *
degradeReasonName(std::uint8_t detail)
{
    static const char *const names[] = {"capacity-backlog",
                                        "remap-failed"};
    if (detail < sizeof(names) / sizeof(names[0]))
        return names[detail];
    return "?";
}

/** Alert severity spellings (health/rules.hh order). */
const char *
alertSeverityName(std::uint8_t detail)
{
    static const char *const names[] = {"warn", "alert"};
    if (detail < sizeof(names) / sizeof(names[0]))
        return names[detail];
    return "?";
}

/** Alert signal spellings (health/rules.hh order). */
const char *
alertSignalName(std::uint32_t signal)
{
    static const char *const names[] = {
        "p99_slowdown", "fairness",  "fault_backlog",
        "churn",        "degraded",  "slowdown",
        "hbm_share",    "shard_occupancy", "shard_degraded"};
    if (signal < sizeof(names) / sizeof(names[0]))
        return names[signal];
    return "?";
}

std::string
headerJson(const std::string &tool, std::uint64_t records,
           std::uint64_t dropped)
{
    std::ostringstream out;
    out << "{\"schema\": \"" << eventsSchema << "\", \"tool\": \""
        << escape(tool) << "\", \"records\": " << records
        << ", \"dropped\": " << dropped << "}";
    return out.str();
}

std::string
renderJsonl(const std::string &tool,
            const std::vector<EventRecord> &records,
            std::uint64_t dropped)
{
    std::ostringstream out;
    out << headerJson(tool, records.size(), dropped) << "\n";
    for (const EventRecord &record : records)
        out << recordJson(record) << "\n";
    return out.str();
}

} // namespace

bool
enabled()
{
    return enabledFlag.load(std::memory_order_relaxed);
}

void
setEnabled(bool on)
{
    enabledFlag.store(on, std::memory_order_relaxed);
}

LogStats
stats()
{
    Store &s = store();
    LogStats out;
    out.recorded = s.recorded.load(std::memory_order_relaxed);
    out.dropped = s.dropped.load(std::memory_order_relaxed);
    return out;
}

void
setCapacity(std::uint64_t max_records)
{
    store().capacity.store(max_records, std::memory_order_relaxed);
}

RunScope::RunScope(const std::string &label) : active_(enabled())
{
    if (!active_)
        return;
    Store &s = store();
    {
        std::lock_guard<std::mutex> lock(s.mutex);
        auto [it, inserted] = s.runIds.try_emplace(
            label,
            static_cast<std::uint32_t>(s.runLabels.size()));
        if (inserted)
            s.runLabels.push_back(label);
        context_.run = it->second;
    }
    previous_ = currentContext;
    currentContext = &context_;
}

RunScope::~RunScope()
{
    if (!active_)
        return;
    currentContext = previous_;
}

TenantScope::TenantScope(std::uint32_t tenant)
    : previous_(currentTenant)
{
    currentTenant = tenant;
}

TenantScope::~TenantScope()
{
    currentTenant = previous_;
}

void
emit(EventRecord record)
{
    if (!enabled())
        return;
    Store &s = store();
    const std::uint64_t cap =
        s.capacity.load(std::memory_order_relaxed);
    if (cap != 0) {
        // Admission ticket: accepted records keep their slot even
        // if they are still sitting in a ring; late arrivals are
        // dropped-newest and counted for the JSONL header.
        std::uint64_t seen =
            s.recorded.load(std::memory_order_relaxed);
        while (true) {
            if (seen >= cap) {
                s.dropped.fetch_add(1, std::memory_order_relaxed);
                return;
            }
            if (s.recorded.compare_exchange_weak(
                    seen, seen + 1, std::memory_order_relaxed))
                break;
        }
    } else {
        s.recorded.fetch_add(1, std::memory_order_relaxed);
    }

    record.tenant = currentTenant;
    detail::RunContext *context = currentContext;
    if (context != nullptr) {
        record.run = context->run;
        record.seq = context->seq++;
    } else {
        record.run = 0;
        record.seq =
            s.unscopedSeq.fetch_add(1, std::memory_order_relaxed);
    }

    ThreadRing &ring = threadRing();
    bool full = false;
    {
        std::lock_guard<std::mutex> lock(ring.mutex);
        ring.records.push_back(record);
        full = ring.records.size() >= ringCapacity;
    }
    if (full)
        drainRing(ring);
}

std::string
currentRunLabel()
{
    detail::RunContext *context = currentContext;
    return runLabel(context != nullptr ? context->run : 0);
}

std::string
runLabel(std::uint32_t run)
{
    Store &s = store();
    std::lock_guard<std::mutex> lock(s.mutex);
    if (run < s.runLabels.size())
        return s.runLabels[run];
    return s.runLabels[0];
}

std::vector<EventRecord>
collect()
{
    std::vector<std::shared_ptr<ThreadRing>> rings;
    {
        Registry &r = registry();
        std::lock_guard<std::mutex> lock(r.mutex);
        rings = r.rings;
    }
    for (const auto &ring : rings)
        drainRing(*ring);
    Store &s = store();
    std::lock_guard<std::mutex> lock(s.mutex);
    return s.records;
}

std::string
recordJson(const EventRecord &record)
{
    std::ostringstream out;
    out << "{\"run\": \"" << escape(runLabel(record.run))
        << "\", \"seq\": " << record.seq << ", \"kind\": \""
        << eventKindName(record.kind) << "\", \"policy\": \""
        << policyIdName(record.policy)
        << "\", \"epoch\": " << record.epoch;
    // v2 addition; omitted when 0 so v1-era output is unchanged.
    if (record.tenant != 0)
        out << ", \"tenant\": " << record.tenant;
    switch (record.kind) {
      case EventKind::Epoch:
        // Score fields carry the boundary's move counts.
        out << ", \"promoted\": " << number(record.hotness)
            << ", \"evicted\": " << number(record.wrRatio)
            << ", \"swapped\": " << number(record.avf)
            << ", \"moved\": "
            << number(record.hotness + record.wrRatio +
                      2.0F * record.avf);
        break;
      case EventKind::Fault:
        out << ", \"page\": " << record.page << ", \"tier\": \""
            << tierName(record.dst) << "\", \"mode\": \""
            << faultDetailName(record.detail) << "\"";
        break;
      case EventKind::Region:
        out << ", \"region\": " << record.region
            << ", \"page\": " << record.page
            << ", \"span\": " << record.span
            << ", \"moved\": " << record.moved
            << ", \"action\": \""
            << regionActionName(record.detail) << "\", \"src\": \""
            << tierName(record.src) << "\", \"dst\": \""
            << tierName(record.dst)
            << "\", \"density\": " << number(record.hotness)
            << ", \"avf\": " << number(record.avf)
            << ", \"thresh_hot\": " << number(record.threshHot)
            << ", \"thresh_risk\": " << number(record.threshRisk);
        break;
      case EventKind::RegionMerge:
      case EventKind::RegionSplit:
        out << ", \"region\": " << record.region
            << ", \"page\": " << record.page
            << ", \"span\": " << record.span
            << ", \"partner\": " << record.partner
            << ", \"density\": " << number(record.hotness)
            << ", \"avf\": " << number(record.avf);
        break;
      case EventKind::Inject:
        // `detail` is the injected FaultEventKind, `region` the
        // FaultSource, `span` the capacity pages lost (0 for page
        // strikes), `moved` the correctable burst count.
        out << ", \"page\": " << record.page << ", \"tier\": \""
            << tierName(record.dst) << "\", \"fault\": \""
            << injectKindName(record.detail) << "\", \"source\": \""
            << injectSourceName(record.region)
            << "\", \"span\": " << record.span
            << ", \"count\": " << record.moved;
        break;
      case EventKind::Retire:
        out << ", \"page\": " << record.page << ", \"src\": \""
            << tierName(record.src) << "\", \"dst\": \""
            << tierName(record.dst)
            << "\", \"hotness\": " << number(record.hotness)
            << ", \"avf\": " << number(record.avf);
        break;
      case EventKind::Remap:
        out << ", \"page\": " << record.page << ", \"src\": \""
            << tierName(record.src) << "\", \"dst\": \""
            << tierName(record.dst) << "\", \"reason\": \""
            << remapReasonName(record.detail) << "\"";
        break;
      case EventKind::Tenant:
        // Per-tenant epoch summary from the placement service:
        // `region` = home shard, `span` = arbiter grant pages,
        // `moved` = HBM-resident pages, `hotness` = resident share.
        out << ", \"shard\": " << record.region
            << ", \"grant\": " << record.span
            << ", \"resident\": " << record.moved
            << ", \"hbm_share\": " << number(record.hotness)
            << ", \"avf\": " << number(record.avf);
        break;
      case EventKind::Alert:
        // `span` = rule index, `region` = signal index, `detail` =
        // severity, `moved` = shard index + 1 (0 = run-wide),
        // `hotness` = measured value, `threshHot` = threshold.
        out << ", \"severity\": \""
            << alertSeverityName(record.detail)
            << "\", \"rule\": " << record.span
            << ", \"signal\": \"" << alertSignalName(record.region)
            << "\"";
        if (record.moved != 0)
            out << ", \"shard\": " << record.moved - 1;
        out << ", \"value\": " << number(record.hotness)
            << ", \"threshold\": " << number(record.threshHot);
        break;
      case EventKind::Degrade:
        // `span` = capacity pages lost so far, `moved` = pages
        // evacuated by sweeps, `hotness` = remaining backlog.
        out << ", \"reason\": \""
            << degradeReasonName(record.detail)
            << "\", \"span\": " << record.span
            << ", \"moved\": " << record.moved
            << ", \"backlog\": " << number(record.hotness);
        break;
      default:
        out << ", \"page\": " << record.page;
        if (record.partner != invalidPage)
            out << ", \"partner\": " << record.partner;
        out << ", \"src\": \"" << tierName(record.src)
            << "\", \"dst\": \"" << tierName(record.dst)
            << "\", \"quadrant\": \""
            << quadrantName(record.quadrant)
            << "\", \"hotness\": " << number(record.hotness)
            << ", \"wr_ratio\": " << number(record.wrRatio)
            << ", \"avf\": " << number(record.avf)
            << ", \"thresh_hot\": " << number(record.threshHot)
            << ", \"thresh_risk\": " << number(record.threshRisk);
        break;
    }
    out << "}";
    return out.str();
}

std::string
toJsonl(const std::string &tool)
{
    const auto records = collect();
    return renderJsonl(tool, records,
                       stats().dropped);
}

std::string
postMortemJsonl(const std::string &tool, std::size_t n)
{
    std::vector<EventRecord> records = collect();
    if (records.size() > n)
        records.erase(records.begin(),
                      records.end() - static_cast<long>(n));
    return renderJsonl(tool, records, stats().dropped);
}

void
reset()
{
    std::vector<std::shared_ptr<ThreadRing>> rings;
    {
        Registry &r = registry();
        std::lock_guard<std::mutex> lock(r.mutex);
        rings = r.rings;
    }
    for (const auto &ring : rings) {
        std::lock_guard<std::mutex> lock(ring->mutex);
        ring->records.clear();
    }
    Store &s = store();
    std::lock_guard<std::mutex> lock(s.mutex);
    s.records.clear();
    s.runLabels.assign(1, "unattributed");
    s.runIds.clear();
    s.recorded.store(0, std::memory_order_relaxed);
    s.dropped.store(0, std::memory_order_relaxed);
    s.unscopedSeq.store(0, std::memory_order_relaxed);
    s.capacity.store(0, std::memory_order_relaxed);
}

} // namespace ramp::eventlog
