/**
 * @file
 * Figure 11: Wr^2-ratio heuristic placement (biases towards pages
 * with high absolute write counts, avoiding cold pages). Paper:
 * SER / 1.6 at only -1% IPC vs performance-focused.
 */

#include "static_policy_report.hh"

int
main(int argc, char **argv)
{
    return ramp::bench::reportStaticPolicy(
        ramp::StaticPolicy::Wr2Ratio,
        "Figure 11: Wr^2-ratio placement (paper: SER/1.6, IPC -1%)",
        "fig11_wr2_static", argc, argv);
}
