/**
 * @file
 * Figure 14: reliability-aware migration with Full Counters.
 * Paper: SER / 1.8 at -6% IPC vs performance-focused migration;
 * milc shows a slight speedup (fewer migrations).
 */

#include "dynamic_report.hh"

int
main(int argc, char **argv)
{
    return ramp::bench::reportDynamicScheme(
        ramp::DynamicScheme::FcReliability,
        "Figure 14: FC reliability-aware migration "
        "(paper: SER/1.8, IPC -6%)",
        "fig14_fc_migration", argc, argv);
}
