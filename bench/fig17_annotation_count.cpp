/**
 * @file
 * Figure 17: number of annotated program structures per workload.
 *
 * Paper: one annotation suffices for most workloads (average ~8);
 * cactusADM and mix1 are outliers needing 39 and 45 because their
 * hot & low-risk footprint is spread over many small structures.
 */

#include <iostream>

#include "bench_common.hh"

using namespace ramp;
using namespace ramp::bench;

int
main(int argc, char **argv)
{
    return benchMain("fig17_annotation_count", [&] {
        Harness harness("fig17_annotation_count", argc, argv);
        const SystemConfig &config = harness.config();

        const auto profiled = harness.profileAll(standardWorkloads());
        const auto selections = harness.mapWorkloads(
            profiled, [&](const ProfiledWorkloadPtr &wl) {
                return annotationsFor(wl->data, wl->profile(),
                                      config.hbmPages());
            });

        TextTable table({"workload", "annotations", "pinned pages",
                         "pinned MB", "HBM fill"});
        double total = 0;

        for (std::size_t i = 0; i < profiled.size(); ++i) {
            const auto &wl = *profiled[i];
            const auto &selection = selections[i];
            total += static_cast<double>(selection.count());
            table.addRow({
                wl.name(),
                TextTable::num(
                    static_cast<std::uint64_t>(selection.count())),
                TextTable::num(selection.pinnedPages),
                TextTable::num(
                    static_cast<double>(selection.pinnedPages *
                                        pageSize) /
                        (1 << 20),
                    1),
                TextTable::percent(
                    static_cast<double>(selection.pinnedPages) /
                    static_cast<double>(config.hbmPages())),
            });
        }
        table.print(std::cout,
                    "Figure 17: annotated structures per workload "
                    "(paper: avg ~8; outliers cactusADM 39, mix1 45)");
        std::cout << "\naverage annotations: "
                  << TextTable::num(
                         total /
                             static_cast<double>(profiled.size()),
                         1)
                  << "\n";
        return harness.finish();
    });
}
