/**
 * @file
 * Figure 17: number of annotated program structures per workload.
 *
 * Paper: one annotation suffices for most workloads (average ~8);
 * cactusADM and mix1 are outliers needing 39 and 45 because their
 * hot & low-risk footprint is spread over many small structures.
 */

#include <iostream>

#include "bench_common.hh"

using namespace ramp;
using namespace ramp::bench;

int
main()
{
    const SystemConfig config = SystemConfig::scaledDefault();

    TextTable table({"workload", "annotations", "pinned pages",
                     "pinned MB", "HBM fill"});
    double total = 0;
    std::size_t count = 0;

    for (const auto &spec : standardWorkloads()) {
        const auto wl = profileWorkload(config, spec);
        const auto selection = annotationsFor(
            wl.data, wl.profile(), config.hbmPages());
        total += static_cast<double>(selection.count());
        ++count;
        table.addRow({
            wl.name(),
            TextTable::num(
                static_cast<std::uint64_t>(selection.count())),
            TextTable::num(selection.pinnedPages),
            TextTable::num(static_cast<double>(
                               selection.pinnedPages * pageSize) /
                               (1 << 20),
                           1),
            TextTable::percent(
                static_cast<double>(selection.pinnedPages) /
                static_cast<double>(config.hbmPages())),
        });
    }
    table.print(std::cout,
                "Figure 17: annotated structures per workload "
                "(paper: avg ~8; outliers cactusADM 39, mix1 45)");
    std::cout << "\naverage annotations: "
              << TextTable::num(total / static_cast<double>(count), 1)
              << "\n";
    return 0;
}
