/**
 * @file
 * Section 3.2: FaultSim campaigns for the two memory organisations.
 *
 * Reproduces the paper's reliability inputs: the probability of
 * uncorrected errors under SEC-DED (die-stacked) and single-ChipKill
 * (off-package DDR), from field-study transient FIT rates. The paper
 * runs 100K trials for SEC-DED and 1M for ChipKill; ChipKill's
 * pair-dominated failures additionally use rare-event acceleration
 * here (fitBoost, analytically rescaled — see faultsim.hh).
 *
 * Also sweeps the stacked-memory FIT scaling factor, the ablation
 * behind the HBM reliability assumption of Section 2.2.
 *
 * Monte-Carlo trials shard across the runner thread pool; shard
 * seeds depend only on the campaign seed and shard index, so the
 * rates are identical at any --jobs value.
 */

#include <iostream>

#include "common/table.hh"
#include "reliability/faultsim.hh"
#include "reliability/ser.hh"
#include "runner/harness.hh"

using namespace ramp;

int
main(int argc, char **argv)
{
    return runner::benchMain("faultsim_rates", [&] {
        // The Harness provides the pool and the telemetry
        // exporters; the Monte-Carlo campaigns are not SimResult
        // passes, so the JSON pass report stays empty.
        runner::Harness harness("faultsim_rates", argc, argv);
        runner::ThreadPool &pool = harness.pool();

        TextTable table({"configuration", "trials", "P(UE)/horizon",
                         "FIT_unc per rank", "FIT_unc per GB"});

        auto report = [&](const FaultSimConfig &config,
                          std::uint64_t trials) {
            const FaultSim sim(config);
            const auto result = sim.run(trials, /*seed=*/42, &pool);
            table.addRow(
                {config.name, TextTable::num(trials),
                 TextTable::num(result.pUncorrected, 8),
                 TextTable::num(result.fitUncorrectedPerRank, 4),
                 TextTable::num(result.fitUncorrectedPerGB, 4)});
            return result;
        };

        const auto hbm = report(FaultSimConfig::hbmSecDed(), 100000);

        auto ddr_config = FaultSimConfig::ddrChipKill();
        ddr_config.fitBoost = 30.0; // rare-event acceleration
        const auto ddr = report(ddr_config, 1000000);

        table.print(std::cout,
                    "FaultSim: uncorrected-error rates "
                    "(Section 3.2)");
        std::cout << "\nHBM/DDR uncorrected FIT-per-GB ratio: "
                  << TextTable::ratio(hbm.fitUncorrectedPerGB /
                                          ddr.fitUncorrectedPerGB,
                                      0)
                  << " (SerParams default: "
                  << TextTable::ratio(
                         SerParams::calibratedDefault().fitRatio(),
                         0)
                  << ")\n\n";

        // Ablation: stacked-memory FIT scaling factor.
        TextTable sweep({"stacked FIT factor", "FIT_unc per GB",
                         "ratio vs ChipKill DDR"});
        for (const double factor : {1.0, 2.0, 3.0, 5.0}) {
            const FaultSim sim(FaultSimConfig::hbmSecDed(factor));
            const auto result = sim.run(100000, 42, &pool);
            sweep.addRow(
                {TextTable::num(factor, 1),
                 TextTable::num(result.fitUncorrectedPerGB, 4),
                 TextTable::ratio(result.fitUncorrectedPerGB /
                                      ddr.fitUncorrectedPerGB,
                                  0)});
        }
        sweep.print(std::cout,
                    "Ablation: die-stacked density/TSV FIT scaling");
        return harness.finish();
    });
}
