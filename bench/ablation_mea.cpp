/**
 * @file
 * Ablation: cross-counter performance-unit sizing (Section 6.4).
 *
 * Sweeps the MEA map size (MemPod uses 32 entries) and the
 * per-MEA-interval promotion budget, on the striding workload the
 * paper calls out (cactusADM) and on mix1.
 */

#include <iostream>

#include "bench_common.hh"

using namespace ramp;
using namespace ramp::bench;

int
main(int argc, char **argv)
{
    return benchMain("ablation_mea", [&] {
        Harness harness("ablation_mea", argc, argv);
        const SystemConfig &config = harness.config();

        const std::vector<WorkloadSpec> specs = {
            homogeneousWorkload("cactusADM"), mixWorkload("mix1")};
        const auto profiled = harness.profileAll(specs);

        // The perf-focused migration baseline does not depend on the
        // swept MEA parameters: one pass per workload.
        const auto perf = harness.mapWorkloads(
            profiled, [&](const ProfiledWorkloadPtr &wl) {
                return runDynamic(config, wl->data,
                                  DynamicScheme::PerfFocused,
                                  wl->profile());
            });
        for (std::size_t w = 0; w < profiled.size(); ++w)
            harness.record(profiled[w]->name(), perf[w]);

        const std::vector<std::size_t> entry_counts = {8, 16, 32,
                                                       64};
        const std::vector<std::uint32_t> caps = {4, 8, 16};
        struct Point
        {
            std::size_t entries;
            std::uint32_t cap;
            std::size_t workload;
        };
        std::vector<Point> points;
        for (const std::size_t entries : entry_counts)
            for (const std::uint32_t cap : caps)
                for (std::size_t w = 0; w < profiled.size(); ++w)
                    points.push_back({entries, cap, w});

        struct Pass
        {
            SimResult result;
            double remapHitRatio = 0;
        };
        const auto passes =
            harness.pool().map(points, [&](const Point &point) {
                const auto &wl = *profiled[point.workload];
                CrossCounterMigration engine(
                    config.meaIntervalCycles, config.fcPerMea(),
                    point.entries, point.cap,
                    config.fcMigrationCapPages);
                Pass out;
                out.result = runWithEngine(config, wl.data, engine,
                                           wl.profile());
                out.result.label +=
                    "@mea" + std::to_string(point.entries) + "x" +
                    std::to_string(point.cap);
                out.remapHitRatio = engine.remapCache().hitRatio();
                return out;
            });

        TextTable table({"MEA entries", "promo cap", "workload",
                         "IPC vs perf-mig", "SER reduction",
                         "remap hit ratio"});
        for (std::size_t i = 0; i < points.size(); ++i) {
            const Point &point = points[i];
            const auto &wl = *profiled[point.workload];
            const auto &result =
                harness.record(wl.name(), passes[i].result);
            table.addRow({
                TextTable::num(
                    static_cast<std::uint64_t>(point.entries)),
                TextTable::num(
                    static_cast<std::uint64_t>(point.cap)),
                wl.name(),
                TextTable::ratio(result.ipc /
                                 perf[point.workload].ipc),
                TextTable::ratio(
                    perf[point.workload].ser / result.ser, 1),
                TextTable::percent(passes[i].remapHitRatio),
            });
        }
        table.print(std::cout,
                    "Ablation: MEA entries x promotion budget");
        return harness.finish();
    });
}
