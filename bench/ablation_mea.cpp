/**
 * @file
 * Ablation: cross-counter performance-unit sizing (Section 6.4).
 *
 * Sweeps the MEA map size (MemPod uses 32 entries) and the
 * per-MEA-interval promotion budget, on the striding workload the
 * paper calls out (cactusADM) and on mix1.
 */

#include <iostream>

#include "bench_common.hh"

using namespace ramp;
using namespace ramp::bench;

int
main()
{
    const SystemConfig config = SystemConfig::scaledDefault();
    const std::vector<WorkloadSpec> specs = {
        homogeneousWorkload("cactusADM"), mixWorkload("mix1")};
    const auto profiled = profileAll(config, specs);

    TextTable table({"MEA entries", "promo cap", "workload",
                     "IPC vs perf-mig", "SER reduction",
                     "remap hit ratio"});

    for (const std::size_t entries : {8UL, 16UL, 32UL, 64UL}) {
        for (const std::uint32_t cap : {4U, 8U, 16U}) {
            for (const auto &wl : profiled) {
                const auto perf = runDynamic(
                    config, wl.data, DynamicScheme::PerfFocused,
                    wl.profile());
                CrossCounterMigration engine(
                    config.meaIntervalCycles, config.fcPerMea(),
                    entries, cap, config.fcMigrationCapPages);
                const auto result = runWithEngine(
                    config, wl.data, engine, wl.profile());
                table.addRow({
                    TextTable::num(
                        static_cast<std::uint64_t>(entries)),
                    TextTable::num(static_cast<std::uint64_t>(cap)),
                    wl.name(),
                    TextTable::ratio(result.ipc / perf.ipc),
                    TextTable::ratio(perf.ser / result.ser, 1),
                    TextTable::percent(
                        engine.remapCache().hitRatio()),
                });
            }
        }
    }
    table.print(std::cout,
                "Ablation: MEA entries x promotion budget");
    return 0;
}
