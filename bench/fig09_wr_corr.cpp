/**
 * @file
 * Figure 9: the write-ratio heuristic's basis.
 *
 * (a) Write ratio vs AVF of mix1's hot pages: a clear negative
 *     correlation (paper: rho = -0.32) because dead intervals end in
 *     writes.
 * (b) Histogram of write ratios over the footprint: mostly
 *     read-heavy pages with a write-heavy tail.
 */

#include <iostream>

#include "bench_common.hh"

using namespace ramp;
using namespace ramp::bench;

int
main(int argc, char **argv)
{
    return benchMain("fig09_wr_corr", [&] {
        Harness harness("fig09_wr_corr", argc, argv);
        const auto wl = harness.profile(mixWorkload("mix1"));

        // (a) correlation over the top-1000 hot pages and the
        // footprint.
        const auto order = wl->profile().sortedByDescending(
            [](const PageStats &s) { return s.hotness(); });
        const std::size_t top =
            std::min<std::size_t>(1000, order.size());
        std::vector<double> wr_top, avf_top;
        for (std::size_t i = 0; i < top; ++i) {
            wr_top.push_back(order[i].second.wrRatio());
            avf_top.push_back(order[i].second.avf);
        }
        std::vector<double> wr_all, avf_all;
        for (const auto &[page, stats] : wl->profile().pages()) {
            wr_all.push_back(stats.wrRatio());
            avf_all.push_back(stats.avf);
        }
        std::cout << "Figure 9a: correlation(write ratio, AVF)\n"
                  << "  top-1000 hot pages: "
                  << TextTable::num(
                         pearsonCorrelation(wr_top, avf_top), 3)
                  << "\n  whole footprint:    "
                  << TextTable::num(
                         pearsonCorrelation(wr_all, avf_all), 3)
                  << "  (paper: -0.32)\n\n";

        // (b) write-ratio histogram, as write fraction of all
        // accesses, binned 0-20%, 21-40%, ... like the paper.
        auto histogram = writeShareHistogram();
        addWriteShares(histogram, wl->profile());
        printWriteShareTable(
            histogram,
            "Figure 9b: write-ratio histogram of mix1 pages");
        return harness.finish();
    });
}
