/**
 * @file
 * Figure 13: migration-interval sweep.
 *
 * The paper sweeps the Full-Counter migration interval over three
 * workloads of low/medium/high memory intensity and finds 100 ms
 * best; MemPod-style MEA mechanisms prefer much smaller intervals
 * (Section 6.4.3). Here both sweeps run at the scaled time axis
 * (SystemConfig defaults correspond to the paper's 100 ms / 50 us).
 */

#include <iostream>
#include <string>

#include "bench_common.hh"

using namespace ramp;
using namespace ramp::bench;

int
main(int argc, char **argv)
{
    return benchMain("fig13_interval_sweep", [&] {
        Harness harness("fig13_interval_sweep", argc, argv);
        const SystemConfig config = harness.config();

        // Low / medium / high memory intensity.
        const std::vector<WorkloadSpec> specs = {
            homogeneousWorkload("astar"),
            homogeneousWorkload("lulesh"),
            homogeneousWorkload("mcf")};
        const auto profiled = harness.profileAll(specs);

        const std::vector<Cycle> fc_intervals = {
            800'000, 1'600'000, 3'200'000, 6'400'000, 12'800'000};
        struct Point
        {
            std::size_t sweep;
            std::size_t workload;
        };
        std::vector<Point> fc_points;
        std::vector<PassDesc> fc_descs;
        for (std::size_t s = 0; s < fc_intervals.size(); ++s)
            for (std::size_t w = 0; w < profiled.size(); ++w) {
                fc_points.push_back({s, w});
                fc_descs.push_back(
                    {profiled[w]->name(),
                     Harness::passKey(
                         profiled[w],
                         "fc@" +
                             std::to_string(fc_intervals[s]))});
            }

        const auto fc_outcomes = harness.runPasses(
            fc_descs, [&](std::size_t i) {
                const Point &point = fc_points[i];
                SystemConfig swept = config;
                swept.fcIntervalCycles = fc_intervals[point.sweep];
                const auto &wl = *profiled[point.workload];
                SimResult result =
                    runDynamic(swept, wl.data,
                               DynamicScheme::PerfFocused,
                               wl.profile());
                result.label +=
                    "@fc" + std::to_string(swept.fcIntervalCycles);
                return result;
            });

        TextTable fc_table({"FC interval (cycles)", "astar IPC",
                            "lulesh IPC", "mcf IPC",
                            "mean vs default"});
        std::vector<double> defaults;
        for (std::size_t s = 0; s < fc_intervals.size(); ++s) {
            std::vector<std::string> row = {TextTable::num(
                static_cast<std::uint64_t>(fc_intervals[s]))};
            std::vector<double> ipcs;
            bool complete = true;
            for (std::size_t w = 0; w < profiled.size(); ++w) {
                const auto &out =
                    fc_outcomes[s * profiled.size() + w];
                if (!out.ok()) {
                    complete = false;
                    row.push_back(statusCell(out));
                    continue;
                }
                ipcs.push_back(out.result.ipc);
                row.push_back(TextTable::num(out.result.ipc, 2));
            }
            if (complete &&
                fc_intervals[s] == config.fcIntervalCycles)
                defaults = ipcs;
            RatioColumn rel;
            if (complete && !defaults.empty())
                for (std::size_t w = 0; w < ipcs.size(); ++w)
                    rel.add(ipcs[w] / defaults[w]);
            row.push_back(rel.averageCell());
            fc_table.addRow(row);
        }
        fc_table.print(std::cout,
                       "Figure 13: FC migration interval sweep "
                       "(default = scaled 100 ms)");

        const std::vector<Cycle> mea_intervals = {25'000, 50'000,
                                                  100'000, 200'000};
        std::vector<Point> mea_points;
        std::vector<PassDesc> mea_descs;
        for (std::size_t s = 0; s < mea_intervals.size(); ++s)
            for (std::size_t w = 0; w < profiled.size(); ++w) {
                mea_points.push_back({s, w});
                mea_descs.push_back(
                    {profiled[w]->name(),
                     Harness::passKey(
                         profiled[w],
                         "mea@" +
                             std::to_string(mea_intervals[s]))});
            }

        const auto mea_outcomes = harness.runPasses(
            mea_descs, [&](std::size_t i) {
                const Point &point = mea_points[i];
                SystemConfig swept = config;
                swept.meaIntervalCycles = mea_intervals[point.sweep];
                const auto &wl = *profiled[point.workload];
                SimResult result =
                    runDynamic(swept, wl.data,
                               DynamicScheme::CrossCounter,
                               wl.profile());
                result.label +=
                    "@mea" + std::to_string(swept.meaIntervalCycles);
                return result;
            });

        TextTable mea_table({"MEA interval (cycles)", "astar IPC",
                             "lulesh IPC", "mcf IPC"});
        for (std::size_t s = 0; s < mea_intervals.size(); ++s) {
            std::vector<std::string> row = {TextTable::num(
                static_cast<std::uint64_t>(mea_intervals[s]))};
            for (std::size_t w = 0; w < profiled.size(); ++w) {
                const auto &out =
                    mea_outcomes[s * profiled.size() + w];
                row.push_back(out.ok()
                                  ? TextTable::num(out.result.ipc, 2)
                                  : statusCell(out));
            }
            mea_table.addRow(row);
        }
        std::cout << "\n";
        mea_table.print(
            std::cout,
            "Figure 13 (cont.): MEA interval sweep for the "
            "cross-counter scheme (default = scaled 50 us)");
        return harness.finish();
    });
}
