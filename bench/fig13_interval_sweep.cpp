/**
 * @file
 * Figure 13: migration-interval sweep.
 *
 * The paper sweeps the Full-Counter migration interval over three
 * workloads of low/medium/high memory intensity and finds 100 ms
 * best; MemPod-style MEA mechanisms prefer much smaller intervals
 * (Section 6.4.3). Here both sweeps run at the scaled time axis
 * (SystemConfig defaults correspond to the paper's 100 ms / 50 us).
 */

#include <iostream>

#include "bench_common.hh"

using namespace ramp;
using namespace ramp::bench;

int
main()
{
    SystemConfig config = SystemConfig::scaledDefault();

    // Low / medium / high memory intensity.
    const std::vector<WorkloadSpec> specs = {
        homogeneousWorkload("astar"), homogeneousWorkload("lulesh"),
        homogeneousWorkload("mcf")};
    const auto profiled = profileAll(config, specs);

    TextTable fc_table({"FC interval (cycles)", "astar IPC",
                        "lulesh IPC", "mcf IPC", "mean vs default"});
    std::vector<double> defaults;
    for (const Cycle interval :
         {800'000ULL, 1'600'000ULL, 3'200'000ULL, 6'400'000ULL,
          12'800'000ULL}) {
        SystemConfig swept = config;
        swept.fcIntervalCycles = interval;
        std::vector<std::string> row = {TextTable::num(
            static_cast<std::uint64_t>(interval))};
        std::vector<double> ipcs;
        for (const auto &wl : profiled) {
            const auto result =
                runDynamic(swept, wl.data, DynamicScheme::PerfFocused,
                           wl.profile());
            ipcs.push_back(result.ipc);
            row.push_back(TextTable::num(result.ipc, 2));
        }
        if (interval == config.fcIntervalCycles)
            defaults = ipcs;
        double rel = 0;
        if (!defaults.empty()) {
            for (std::size_t i = 0; i < ipcs.size(); ++i)
                rel += ipcs[i] / defaults[i];
            rel /= static_cast<double>(ipcs.size());
        }
        row.push_back(defaults.empty() ? "-"
                                       : TextTable::ratio(rel));
        fc_table.addRow(row);
    }
    fc_table.print(std::cout,
                   "Figure 13: FC migration interval sweep "
                   "(default = scaled 100 ms)");

    TextTable mea_table({"MEA interval (cycles)", "astar IPC",
                         "lulesh IPC", "mcf IPC"});
    for (const Cycle interval :
         {25'000ULL, 50'000ULL, 100'000ULL, 200'000ULL}) {
        SystemConfig swept = config;
        swept.meaIntervalCycles = interval;
        std::vector<std::string> row = {TextTable::num(
            static_cast<std::uint64_t>(interval))};
        for (const auto &wl : profiled) {
            const auto result =
                runDynamic(swept, wl.data, DynamicScheme::CrossCounter,
                           wl.profile());
            row.push_back(TextTable::num(result.ipc, 2));
        }
        mea_table.addRow(row);
    }
    std::cout << "\n";
    mea_table.print(std::cout,
                    "Figure 13 (cont.): MEA interval sweep for the "
                    "cross-counter scheme (default = scaled 50 us)");
    return 0;
}
