/**
 * @file
 * Figure 2: average memory AVF per workload on a DDR-only system.
 *
 * The paper reports AVF between 1.7% (astar) and 22.5% (milc),
 * motivating AVF-aware, application-specific placement. Also prints
 * the Table 2 mix composition for reference.
 */

#include <algorithm>
#include <iostream>

#include "bench_common.hh"

using namespace ramp;
using namespace ramp::bench;

int
main(int argc, char **argv)
{
    return benchMain("fig02_avf", [&] {
        Harness harness("fig02_avf", argc, argv);
        auto profiled = harness.profileAll(standardWorkloads());

        std::sort(profiled.begin(), profiled.end(),
                  [](const ProfiledWorkloadPtr &a,
                     const ProfiledWorkloadPtr &b) {
                      return a->base.memoryAvf < b->base.memoryAvf;
                  });

        TextTable table({"workload", "memory AVF", "MPKI",
                         "footprint (pages)"});
        for (const auto &wl : profiled) {
            table.addRow({wl->name(),
                          TextTable::percent(wl->base.memoryAvf),
                          TextTable::num(wl->base.mpki, 1),
                          TextTable::num(static_cast<std::uint64_t>(
                              wl->profile().footprintPages()))});
        }
        table.print(std::cout,
                    "Figure 2: memory AVF per workload (DDR-only, "
                    "ascending)");

        TextTable mixes({"mix", "composition"});
        for (const char *name :
             {"mix1", "mix2", "mix3", "mix4", "mix5"}) {
            const auto spec = mixWorkload(name);
            std::string parts;
            std::string last;
            int count = 0;
            auto flush = [&]() {
                if (count > 0)
                    parts +=
                        last + " x" + std::to_string(count) + "  ";
            };
            for (const auto &bench : spec.coreBenchmarks) {
                if (bench != last) {
                    flush();
                    last = bench;
                    count = 0;
                }
                ++count;
            }
            flush();
            mixes.addRow({name, parts});
        }
        std::cout << "\n";
        mixes.print(std::cout, "Table 2: mixed workload composition");
        return harness.finish();
    });
}
