/**
 * @file
 * Figure 4: hotness-risk quadrant distribution of the footprint.
 *
 * Splits every workload's pages around mean hotness and mean AVF.
 * The paper highlights lbm, astar, cactusADM, and mix1 as scatter
 * plots and reports that hot & low-risk pages are 9-39% of the
 * footprint (29.4% / 1.66 GB of 5.64 GB for mix1).
 */

#include <iostream>

#include "bench_common.hh"
#include "placement/quadrant.hh"

using namespace ramp;
using namespace ramp::bench;

int
main(int argc, char **argv)
{
    return benchMain("fig04_quadrants", [&] {
        Harness harness("fig04_quadrants", argc, argv);

        TextTable table({"workload", "hot&high", "hot&low",
                         "cold&high", "cold&low", "hot&low MB",
                         "footprint MB"});

        // Per-workload write-share partials, merged below into one
        // footprint-wide view (same layout, so merge() is exact).
        auto write_shares = writeShareHistogram();

        for (const auto &wl :
             harness.profileAll(standardWorkloads())) {
            auto partial = writeShareHistogram();
            addWriteShares(partial, wl->profile());
            write_shares.merge(partial);

            const auto quadrants = analyzeQuadrants(wl->profile());
            const double total =
                static_cast<double>(quadrants.total());
            auto frac = [&](std::uint64_t count) {
                return TextTable::percent(
                    static_cast<double>(count) / total);
            };
            table.addRow({
                wl->name(),
                frac(quadrants.hotHighRisk),
                frac(quadrants.hotLowRisk),
                frac(quadrants.coldHighRisk),
                frac(quadrants.coldLowRisk),
                TextTable::num(
                    static_cast<double>(quadrants.hotLowRisk) *
                        pageSize / (1 << 20),
                    1),
                TextTable::num(total * pageSize / (1 << 20), 1),
            });
        }
        table.print(std::cout,
                    "Figure 4: page distribution across hotness-risk "
                    "quadrants (mean splits)");
        std::cout << "\n";
        printWriteShareTable(write_shares,
                             "Write-share context: all standard "
                             "workloads merged");
        return harness.finish();
    });
}
