/**
 * @file
 * fault_storm: graceful degradation under online fault injection.
 *
 * Replays the motivation workloads under every placement policy —
 * the five profile-driven static placements and the three dynamic
 * migration schemes — twice each: once clean, once under a scripted
 * fault storm (correctable bursts, uncorrected strikes that retire
 * pages, and a 25% HBM capacity loss mid-run). The table reports
 * each policy's survival status (ok vs degraded), the slowdown the
 * storm cost it, pages retired, response moves (retirement remaps +
 * emergency sweeps), and the SER it ended at relative to its clean
 * run. Every run completes: capacity loss degrades, never aborts
 * (DESIGN.md §12).
 *
 * The storm is deterministic: the same plan and seed produce the
 * same fault schedule, ledger, and table at any --jobs width.
 *
 * Flags (in addition to the shared harness flags):
 *   --inject PLAN   scripted fault plan (plan.hh grammar; default
 *                   is the standard storm below)
 *   --fault-seed N  injector rng seed (default 7; only the Poisson
 *                   and hammer sources consume it)
 */

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "eventlog/eventlog.hh"
#include "faults/plan.hh"

using namespace ramp;
using namespace ramp::bench;

namespace
{

/**
 * The default storm: a correctable burst early, two uncorrected
 * strikes (one before, one after the capacity event), and a 25% HBM
 * capacity loss in the middle. Epochs are injector epochs (one MEA
 * interval each, set below), so the whole script lands within the
 * first FC interval of every workload.
 */
constexpr const char *defaultStorm =
    "correctable:page=64,count=8,epoch=2;"
    "uncorrected:page=128,epoch=3;"
    "capacity:tier=hbm,pct=25,epoch=5;"
    "uncorrected:page=512,epoch=6;"
    "correctable:page=256,count=4,epoch=8";

struct StormOptions
{
    std::vector<FaultEvent> plan;
    std::uint64_t seed = 7;
};

StormOptions
parseStormOptions(const std::vector<std::string> &positional)
{
    StormOptions options;
    std::string plan_text = defaultStorm;
    for (std::size_t i = 0; i < positional.size(); ++i) {
        const std::string &arg = positional[i];
        if (arg == "--inject") {
            plan_text =
                flagValue("fault_storm", "--inject", positional, i);
        } else if (arg == "--fault-seed") {
            options.seed = parseUnsignedFlag(
                "fault_storm", "--fault-seed",
                flagValue("fault_storm", "--fault-seed", positional,
                          i));
        } else {
            std::cerr << "fault_storm: unknown argument '" << arg
                      << "'\n";
            std::exit(2);
        }
    }
    std::string error;
    options.plan = parseFaultPlan(plan_text, error);
    if (!error.empty()) {
        std::cerr << "fault_storm: --inject: " << error << "\n";
        std::exit(2);
    }
    return options;
}

} // namespace

int
main(int argc, char **argv)
{
    return benchMain("fault_storm", [&] {
        Harness harness("fault_storm", argc, argv);
        const SystemConfig &config = harness.config();
        const StormOptions options =
            parseStormOptions(harness.options().positional);

        InjectorConfig faults;
        faults.script = options.plan;
        faults.seed = options.seed;
        // One injector epoch per MEA interval: the scripted storm
        // lands inside every workload's first FC interval.
        faults.epochCycles = config.meaIntervalCycles;

        const auto cases = policyCases();
        const auto profiled =
            harness.profileAll(motivationWorkloads());

        struct PolicyPasses
        {
            SimResult clean;
            SimResult storm;
        };
        const auto passes = harness.mapWorkloads(
            profiled, [&](const ProfiledWorkloadPtr &wl) {
                std::vector<PolicyPasses> out;
                for (const PolicyCase &pc : cases) {
                    PolicyPasses pair;
                    pair.clean = runPolicyCase(
                        config, wl->data, pc, wl->profile(),
                        wl->name() + "/" + pc.label + "/clean");
                    pair.storm = runPolicyCaseFaulted(
                        config, wl->data, pc, wl->profile(), faults,
                        wl->name() + "/" + pc.label + "/storm");
                    pair.storm.label += "+storm";
                    out.push_back(std::move(pair));
                }
                return out;
            });

        TextTable table({"workload", "policy", "status", "slowdown",
                         "retired", "resp moves", "SER x"});
        RatioColumn slowdown_all;
        std::uint64_t retired_total = 0;
        std::uint64_t degraded_runs = 0;

        for (std::size_t i = 0; i < profiled.size(); ++i) {
            const auto &wl = *profiled[i];
            for (std::size_t c = 0; c < cases.size(); ++c) {
                const auto &clean = harness.record(
                    wl.name(), passes[i][c].clean);
                const auto &storm = harness.record(
                    wl.name(), passes[i][c].storm);
                const double slowdown =
                    static_cast<double>(storm.makespan) /
                    static_cast<double>(clean.makespan);
                slowdown_all.add(slowdown);
                retired_total += storm.pagesRetired;
                if (storm.degraded)
                    ++degraded_runs;
                table.addRow({
                    wl.name(),
                    cases[c].label,
                    storm.degraded ? "degraded" : "ok",
                    TextTable::ratio(slowdown),
                    TextTable::num(storm.pagesRetired),
                    TextTable::num(storm.responseMoves),
                    TextTable::ratio(storm.ser / clean.ser, 1),
                });
            }
        }
        table.print(std::cout,
                    "Fault storm: every policy completes under "
                    "live faults (" +
                        TextTable::num(options.plan.size()) +
                        " scripted events, 25% HBM loss)");
        std::cout << "\nmean slowdown "
                  << TextTable::ratio(slowdown_all.mean())
                  << ", pages retired "
                  << TextTable::num(retired_total)
                  << ", degraded runs "
                  << TextTable::num(degraded_runs) << "/"
                  << TextTable::num(profiled.size() * cases.size())
                  << "\n";
        return harness.finish();
    });
}
