/**
 * @file
 * Shared context for the figure/table harness binaries.
 *
 * Every bench binary regenerates one paper table or figure on the
 * src/runner subsystem: a Harness parses the shared flags (--jobs,
 * --json, --cache-dir, --checkpoint, --pass-timeout), profiles
 * workloads through the process-wide (and optionally on-disk)
 * profile cache, fans the policy passes out over the thread pool
 * with deterministic, ordered, fault-contained results, and records
 * every pass into the JSON report. main() wraps its body in
 * runner::benchMain, which installs the SIGINT/SIGTERM handlers and
 * maps failures onto exit codes (usage 2, cancelled 128+signal,
 * anything else 1; Harness::finish() returns 3 when a pass failed).
 * See DESIGN.md Section 3 for the experiment index and
 * EXPERIMENTS.md for paper-vs-measured values.
 */

#ifndef RAMP_BENCH_BENCH_COMMON_HH
#define RAMP_BENCH_BENCH_COMMON_HH

#include <cctype>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "common/table.hh"
#include "hma/experiment.hh"
#include "runner/harness.hh"

namespace ramp::bench
{

using runner::Harness;
using runner::PassDesc;
using runner::PassOutcome;
using runner::ProfiledWorkload;
using runner::ProfiledWorkloadPtr;
using runner::RatioColumn;
using runner::benchMain;
using runner::meanRatio;

/** Table cell for a pass that produced no metrics ("FAILED"...). */
inline std::string
statusCell(const PassOutcome &outcome)
{
    std::string name = runner::passStatusName(outcome.status);
    for (auto &c : name)
        c = static_cast<char>(
            std::toupper(static_cast<unsigned char>(c)));
    return name;
}

} // namespace ramp::bench

#endif // RAMP_BENCH_BENCH_COMMON_HH
