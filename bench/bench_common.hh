/**
 * @file
 * Shared context for the figure/table harness binaries.
 *
 * Every bench binary regenerates one paper table or figure on the
 * src/runner subsystem: a Harness parses the shared flags (--jobs,
 * --json, --cache-dir, --checkpoint, --pass-timeout), profiles
 * workloads through the process-wide (and optionally on-disk)
 * profile cache, fans the policy passes out over the thread pool
 * with deterministic, ordered, fault-contained results, and records
 * every pass into the JSON report. main() wraps its body in
 * runner::benchMain, which installs the SIGINT/SIGTERM handlers and
 * maps failures onto exit codes (usage 2, cancelled 128+signal,
 * anything else 1; Harness::finish() returns 3 when a pass failed).
 * See DESIGN.md Section 3 for the experiment index and
 * EXPERIMENTS.md for paper-vs-measured values.
 */

#ifndef RAMP_BENCH_BENCH_COMMON_HH
#define RAMP_BENCH_BENCH_COMMON_HH

#include <algorithm>
#include <cctype>
#include <iostream>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "common/table.hh"
#include "hma/experiment.hh"
#include "perf/microbench.hh"
#include "placement/profile.hh"
#include "runner/harness.hh"
#include "telemetry/histogram.hh"

namespace ramp::bench
{

using runner::Harness;
using runner::PassDesc;
using runner::PassOutcome;
using runner::ProfiledWorkload;
using runner::ProfiledWorkloadPtr;
using runner::RatioColumn;
using runner::benchMain;
using runner::meanRatio;

/**
 * The paper's write-share bucketing: five equal bins over [0, 1]
 * (0-20%, 21-40%, ...). The epsilon keeps a pure-write page (share
 * exactly 1.0) in the last bin instead of clamping past it.
 */
inline telemetry::FixedHistogram
writeShareHistogram()
{
    return telemetry::FixedHistogram::linear(0.0, 1.0 + 1e-9, 5);
}

/** Bin every page's write share of accesses into `histogram`. */
inline void
addWriteShares(telemetry::FixedHistogram &histogram,
               const PageProfile &profile)
{
    for (const auto &[page, stats] : profile.pages()) {
        const double total = static_cast<double>(stats.hotness());
        histogram.add(total == 0 ? 0.0
                                 : static_cast<double>(stats.writes) /
                                       total);
    }
}

/** Print a write-share histogram as the standard two-column table. */
inline void
printWriteShareTable(const telemetry::FixedHistogram &histogram,
                     const std::string &title)
{
    TextTable table({"write share bin", "pages"});
    for (std::size_t bin = 0; bin < histogram.numBuckets(); ++bin) {
        table.addRow(
            {TextTable::percent(histogram.bucketLow(bin), 0) +
                 " - " +
                 TextTable::percent(
                     std::min(1.0, histogram.bucketHigh(bin)), 0),
             TextTable::num(histogram.bucketCount(bin))});
    }
    table.print(std::cout, title);
}

/** Table cell for a pass that produced no metrics ("FAILED"...). */
inline std::string
statusCell(const PassOutcome &outcome)
{
    std::string name = runner::passStatusName(outcome.status);
    for (auto &c : name)
        c = static_cast<char>(
            std::toupper(static_cast<unsigned char>(c)));
    return name;
}

/** Print microbenchmark rows as the standard table. */
inline void
printMicrobenchTable(const std::vector<perf::BenchResult> &rows,
                     const std::string &title)
{
    TextTable table({"benchmark", "unit", "mean", "stddev",
                     "ci95", "min", "items/s"});
    for (const auto &r : rows) {
        table.addRow(
            {r.name, r.unit, TextTable::num(r.meanSeconds * 1e3, 3),
             TextTable::num(r.stddevSeconds * 1e3, 3),
             TextTable::num(r.ci95Seconds * 1e3, 3),
             TextTable::num(r.minSeconds * 1e3, 3),
             TextTable::num(r.itemsPerSecond, 0)});
    }
    table.print(std::cout, title + " (times in ms)");
}

/**
 * Run a microbenchmark suite under the harness: positional
 * arguments select cases (all when none given), results print as a
 * table and fold into the --bench-out document.
 */
inline std::vector<perf::BenchResult>
runMicrobenchSuite(Harness &harness, const perf::Microbench &suite,
                   const perf::BenchOptions &options = {})
{
    const auto results =
        suite.run(options, harness.options().positional);
    harness.addMicrobenchResults(results);
    return results;
}

} // namespace ramp::bench

#endif // RAMP_BENCH_BENCH_COMMON_HH
