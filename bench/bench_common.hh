/**
 * @file
 * Shared context for the figure/table harness binaries.
 *
 * Every bench binary regenerates one paper table or figure on the
 * src/runner subsystem: a Harness parses the shared flags (--jobs,
 * --json, --cache-dir, --checkpoint, --pass-timeout), profiles
 * workloads through the process-wide (and optionally on-disk)
 * profile cache, fans the policy passes out over the thread pool
 * with deterministic, ordered, fault-contained results, and records
 * every pass into the JSON report. main() wraps its body in
 * runner::benchMain, which installs the SIGINT/SIGTERM handlers and
 * maps failures onto exit codes (usage 2, cancelled 128+signal,
 * anything else 1; Harness::finish() returns 3 when a pass failed).
 * See DESIGN.md Section 3 for the experiment index and
 * EXPERIMENTS.md for paper-vs-measured values.
 */

#ifndef RAMP_BENCH_BENCH_COMMON_HH
#define RAMP_BENCH_BENCH_COMMON_HH

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "common/table.hh"
#include "eventlog/eventlog.hh"
#include "hma/experiment.hh"
#include "perf/microbench.hh"
#include "placement/profile.hh"
#include "runner/harness.hh"
#include "telemetry/histogram.hh"

namespace ramp::bench
{

using runner::Harness;
using runner::PassDesc;
using runner::PassOutcome;
using runner::ProfiledWorkload;
using runner::ProfiledWorkloadPtr;
using runner::RatioColumn;
using runner::benchMain;
using runner::meanRatio;

/**
 * The paper's write-share bucketing: five equal bins over [0, 1]
 * (0-20%, 21-40%, ...). The epsilon keeps a pure-write page (share
 * exactly 1.0) in the last bin instead of clamping past it.
 */
inline telemetry::FixedHistogram
writeShareHistogram()
{
    return telemetry::FixedHistogram::linear(0.0, 1.0 + 1e-9, 5);
}

/** Bin every page's write share of accesses into `histogram`. */
inline void
addWriteShares(telemetry::FixedHistogram &histogram,
               const PageProfile &profile)
{
    for (const auto &[page, stats] : profile.pages()) {
        const double total = static_cast<double>(stats.hotness());
        histogram.add(total == 0 ? 0.0
                                 : static_cast<double>(stats.writes) /
                                       total);
    }
}

/** Print a write-share histogram as the standard two-column table. */
inline void
printWriteShareTable(const telemetry::FixedHistogram &histogram,
                     const std::string &title)
{
    TextTable table({"write share bin", "pages"});
    for (std::size_t bin = 0; bin < histogram.numBuckets(); ++bin) {
        table.addRow(
            {TextTable::percent(histogram.bucketLow(bin), 0) +
                 " - " +
                 TextTable::percent(
                     std::min(1.0, histogram.bucketHigh(bin)), 0),
             TextTable::num(histogram.bucketCount(bin))});
    }
    table.print(std::cout, title);
}

/** Table cell for a pass that produced no metrics ("FAILED"...). */
inline std::string
statusCell(const PassOutcome &outcome)
{
    std::string name = runner::passStatusName(outcome.status);
    for (auto &c : name)
        c = static_cast<char>(
            std::toupper(static_cast<unsigned char>(c)));
    return name;
}

/** Print microbenchmark rows as the standard table. */
inline void
printMicrobenchTable(const std::vector<perf::BenchResult> &rows,
                     const std::string &title)
{
    TextTable table({"benchmark", "unit", "mean", "stddev",
                     "ci95", "min", "items/s"});
    for (const auto &r : rows) {
        table.addRow(
            {r.name, r.unit, TextTable::num(r.meanSeconds * 1e3, 3),
             TextTable::num(r.stddevSeconds * 1e3, 3),
             TextTable::num(r.ci95Seconds * 1e3, 3),
             TextTable::num(r.minSeconds * 1e3, 3),
             TextTable::num(r.itemsPerSecond, 0)});
    }
    table.print(std::cout, title + " (times in ms)");
}

/**
 * One placement policy under test: a static placement or a dynamic
 * migration scheme. The policy-sweep benches (fault_storm,
 * datacenter_service's per-tenant arbitration table) iterate one
 * case list instead of hand-rolling parallel static/dynamic loops.
 */
struct PolicyCase
{
    std::string label;
    bool isDynamic = false;
    StaticPolicy policy = StaticPolicy::Balanced;
    DynamicScheme scheme = DynamicScheme::PerfFocused;
};

/** The standard sweep: five static placements, three engines. */
inline std::vector<PolicyCase>
policyCases()
{
    std::vector<PolicyCase> cases;
    for (const StaticPolicy policy :
         {StaticPolicy::PerfFocused, StaticPolicy::ReliabilityFocused,
          StaticPolicy::Balanced, StaticPolicy::WrRatio,
          StaticPolicy::Wr2Ratio})
        cases.push_back({policyName(policy), false, policy, {}});
    for (const DynamicScheme scheme :
         {DynamicScheme::PerfFocused, DynamicScheme::FcReliability,
          DynamicScheme::CrossCounter})
        cases.push_back(
            {dynamicSchemeName(scheme), true, {}, scheme});
    return cases;
}

/**
 * Run one policy case clean, under a deterministic ledger scope.
 * mapWorkloads does not label ledger runs the way runPasses does,
 * so the scope label keeps fault/decision records sorting
 * schedule-independently.
 */
inline SimResult
runPolicyCase(const SystemConfig &config, const WorkloadData &data,
              const PolicyCase &pc, const PageProfile &profile,
              const std::string &scope_label)
{
    eventlog::RunScope scope(scope_label);
    return pc.isDynamic
               ? runDynamic(config, data, pc.scheme, profile)
               : runStaticPolicy(config, data, pc.policy, profile);
}

/** Run one policy case under online fault injection. */
inline SimResult
runPolicyCaseFaulted(const SystemConfig &config,
                     const WorkloadData &data, const PolicyCase &pc,
                     const PageProfile &profile,
                     const InjectorConfig &faults,
                     const std::string &scope_label)
{
    eventlog::RunScope scope(scope_label);
    return pc.isDynamic
               ? runDynamicFaulted(config, data, pc.scheme, profile,
                                   faults)
               : runStaticFaulted(config, data, pc.policy, profile,
                                  faults);
}

/**
 * Parse a non-negative integer flag value or exit with usage
 * status 2 — the shared shape of every bench's ad-hoc flag loop.
 */
inline std::uint64_t
parseUnsignedFlag(const std::string &tool, const char *flag,
                  const std::string &text)
{
    char *end = nullptr;
    const unsigned long long parsed =
        std::strtoull(text.c_str(), &end, 10);
    if (end == text.c_str() || *end != '\0') {
        std::cerr << tool << ": " << flag
                  << " needs a non-negative integer, got '" << text
                  << "'\n";
        std::exit(2);
    }
    return parsed;
}

/** Fetch the value of flag i from a positional list, or exit 2. */
inline const std::string &
flagValue(const std::string &tool, const char *flag,
          const std::vector<std::string> &positional, std::size_t &i)
{
    if (i + 1 >= positional.size()) {
        std::cerr << tool << ": " << flag << " needs a value\n";
        std::exit(2);
    }
    return positional[++i];
}

/**
 * Run a microbenchmark suite under the harness: positional
 * arguments select cases (all when none given), results print as a
 * table and fold into the --bench-out document.
 */
inline std::vector<perf::BenchResult>
runMicrobenchSuite(Harness &harness, const perf::Microbench &suite,
                   const perf::BenchOptions &options = {})
{
    const auto results =
        suite.run(options, harness.options().positional);
    harness.addMicrobenchResults(results);
    return results;
}

} // namespace ramp::bench

#endif // RAMP_BENCH_BENCH_COMMON_HH
