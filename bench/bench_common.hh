/**
 * @file
 * Shared context for the figure/table harness binaries.
 *
 * Every bench binary regenerates one paper table or figure on the
 * src/runner subsystem: a Harness parses the shared flags (--jobs,
 * --json, --cache-dir), profiles workloads through the process-wide
 * (and optionally on-disk) profile cache, fans the policy passes out
 * over the thread pool with deterministic, ordered results, and
 * records every pass into the JSON report. See DESIGN.md Section 3
 * for the experiment index and EXPERIMENTS.md for paper-vs-measured
 * values.
 */

#ifndef RAMP_BENCH_BENCH_COMMON_HH
#define RAMP_BENCH_BENCH_COMMON_HH

#include <string>
#include <vector>

#include "common/stats.hh"
#include "common/table.hh"
#include "hma/experiment.hh"
#include "runner/harness.hh"

namespace ramp::bench
{

using runner::Harness;
using runner::ProfiledWorkload;
using runner::ProfiledWorkloadPtr;
using runner::RatioColumn;
using runner::meanRatio;

} // namespace ramp::bench

#endif // RAMP_BENCH_BENCH_COMMON_HH
