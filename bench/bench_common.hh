/**
 * @file
 * Shared helpers for the figure/table harness binaries.
 *
 * Every bench binary regenerates one paper table or figure: it runs
 * the required simulation passes and prints the same rows/series the
 * paper reports (see DESIGN.md Section 3 for the experiment index
 * and EXPERIMENTS.md for paper-vs-measured values).
 */

#ifndef RAMP_BENCH_BENCH_COMMON_HH
#define RAMP_BENCH_BENCH_COMMON_HH

#include <string>
#include <vector>

#include "common/stats.hh"
#include "common/table.hh"
#include "hma/experiment.hh"

namespace ramp::bench
{

/** A profiled workload: traces plus the DDR-only baseline pass. */
struct ProfiledWorkload
{
    WorkloadData data;

    /** DDR-only pass; its profile drives the static policies. */
    SimResult base;

    const PageProfile &profile() const { return base.profile; }
    const std::string &name() const { return data.spec.name; }
};

/** Run the profiling pass for one workload. */
inline ProfiledWorkload
profileWorkload(const SystemConfig &config, const WorkloadSpec &spec)
{
    ProfiledWorkload out;
    out.data = prepareWorkload(spec);
    out.base = runDdrOnly(config, out.data);
    return out;
}

/** Profile every workload in a set. */
inline std::vector<ProfiledWorkload>
profileAll(const SystemConfig &config,
           const std::vector<WorkloadSpec> &specs)
{
    std::vector<ProfiledWorkload> out;
    out.reserve(specs.size());
    for (const auto &spec : specs)
        out.push_back(profileWorkload(config, spec));
    return out;
}

/** Arithmetic mean of a vector of ratios. */
inline double
meanRatio(const std::vector<double> &ratios)
{
    return mean(std::span<const double>(ratios));
}

} // namespace ramp::bench

#endif // RAMP_BENCH_BENCH_COMMON_HH
