/**
 * @file
 * datacenter_service: the sharded multi-tenant placement service at
 * datacenter footprints.
 *
 * Admits N tenant streams (deterministically varied footprints,
 * write mixes, quotas, priorities, and reliability classes), routes
 * them across M shards by the service's tenant hash, and runs the
 * global epoch loop — cross-tenant HBM arbitration, budgeted
 * rebalancing, per-tenant epoch replay — on the harness pool, one
 * task per shard. Reports aggregate accesses/sec, per-tenant p99
 * slowdown against solo-run baselines, HBM-share fairness (Jain
 * index), and the per-shard outcome; the totals land in the
 * --bench-out document (committed baseline
 * BENCH_datacenter_service.json, gated by bench_diff's `service`
 * family). Per-tenant results are invariant under --jobs.
 *
 * Flags (in addition to the shared harness flags):
 *   --tenants N     tenant streams           (default 64)
 *   --shards N      service shards           (default 4)
 *   --arbiter NAME  fair-share | reliability-weighted
 *   --epochs N      global epochs            (default 4)
 *   --pages N       total footprint pages    (default 1,000,000)
 *   --requests N    total requests           (default 2,000,000)
 *   --inject PLAN   fault plan composed onto --fault-shard
 *   --fault-shard N shard the plan strikes   (default 0)
 *   --no-solo       skip the solo baselines (no slowdown column)
 */

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "common/table.hh"
#include "faults/plan.hh"
#include "service/service.hh"

using namespace ramp;
using namespace ramp::bench;

namespace
{

struct ServiceBenchOptions
{
    std::uint64_t tenants = 64;
    unsigned shards = 4;
    service::ArbiterPolicy arbiter =
        service::ArbiterPolicy::FairShare;
    unsigned epochs = 4;
    std::uint64_t pages = 1'000'000;
    std::uint64_t requests = 2'000'000;
    std::vector<FaultEvent> plan;
    unsigned faultShard = 0;
    bool solo = true;
};

ServiceBenchOptions
parseServiceOptions(const std::vector<std::string> &positional)
{
    const std::string tool = "datacenter_service";
    ServiceBenchOptions options;
    for (std::size_t i = 0; i < positional.size(); ++i) {
        const std::string &arg = positional[i];
        if (arg == "--tenants") {
            options.tenants = parseUnsignedFlag(
                tool, "--tenants",
                flagValue(tool, "--tenants", positional, i));
        } else if (arg == "--shards") {
            options.shards =
                static_cast<unsigned>(parseUnsignedFlag(
                    tool, "--shards",
                    flagValue(tool, "--shards", positional, i)));
        } else if (arg == "--arbiter") {
            const std::string &name =
                flagValue(tool, "--arbiter", positional, i);
            if (!service::parseArbiterPolicy(name,
                                             options.arbiter)) {
                std::cerr << tool << ": --arbiter: unknown policy '"
                          << name
                          << "' (fair-share, "
                             "reliability-weighted)\n";
                std::exit(2);
            }
        } else if (arg == "--epochs") {
            options.epochs =
                static_cast<unsigned>(parseUnsignedFlag(
                    tool, "--epochs",
                    flagValue(tool, "--epochs", positional, i)));
        } else if (arg == "--pages") {
            options.pages = parseUnsignedFlag(
                tool, "--pages",
                flagValue(tool, "--pages", positional, i));
        } else if (arg == "--requests") {
            options.requests = parseUnsignedFlag(
                tool, "--requests",
                flagValue(tool, "--requests", positional, i));
        } else if (arg == "--inject") {
            std::string error;
            options.plan = parseFaultPlan(
                flagValue(tool, "--inject", positional, i), error);
            if (!error.empty()) {
                std::cerr << tool << ": --inject: " << error
                          << "\n";
                std::exit(2);
            }
        } else if (arg == "--fault-shard") {
            options.faultShard =
                static_cast<unsigned>(parseUnsignedFlag(
                    tool, "--fault-shard",
                    flagValue(tool, "--fault-shard", positional,
                              i)));
        } else if (arg == "--no-solo") {
            options.solo = false;
        } else {
            std::cerr << tool << ": unknown argument '" << arg
                      << "'\n";
            std::exit(2);
        }
    }
    if (options.tenants == 0 || options.shards == 0 ||
        options.epochs == 0 || options.pages == 0 ||
        options.requests == 0) {
        std::cerr << tool << ": counts must be positive\n";
        std::exit(2);
    }
    return options;
}

/**
 * Deterministic tenant population: footprints vary 0.5x-1.25x
 * around the per-tenant mean, write mixes sweep 10%-45%, quotas
 * oversubscribe the shard ~2x so arbitration has real work, and
 * priority/reliability classes cycle so both arbiters differ.
 */
std::vector<service::TenantSpec>
buildTenants(const ServiceBenchOptions &options)
{
    std::vector<service::TenantSpec> specs;
    specs.reserve(options.tenants);
    const std::uint64_t per_pages =
        std::max<std::uint64_t>(64,
                                options.pages / options.tenants);
    const std::uint64_t per_requests = std::max<std::uint64_t>(
        256, options.requests / options.tenants);
    const double tenants_per_shard =
        static_cast<double>(options.tenants) /
        static_cast<double>(options.shards);
    for (std::uint64_t t = 1; t <= options.tenants; ++t) {
        service::TenantSpec spec;
        spec.id = static_cast<std::uint32_t>(t);
        spec.footprintPages =
            std::max<std::uint64_t>(64,
                                    per_pages * (2 + t % 4) / 4);
        spec.requests = per_requests;
        spec.cores = 4;
        spec.zipfSkew = 0.6 + 0.1 * static_cast<double>(t % 4);
        spec.writeFraction =
            0.10 + 0.05 * static_cast<double>(t % 8);
        spec.seed = 2018 + t;
        spec.hbmQuotaFraction =
            std::min(1.0, 2.0 / tenants_per_shard);
        spec.priority = static_cast<int>(t % 3);
        spec.relClass = static_cast<service::ReliabilityClass>(
            t % 3); // tolerant, standard, critical round-robin
        specs.push_back(std::move(spec));
    }
    return specs;
}

} // namespace

int
main(int argc, char **argv)
{
    return benchMain("datacenter_service", [&] {
        Harness harness("datacenter_service", argc, argv);
        const ServiceBenchOptions options =
            parseServiceOptions(harness.options().positional);

        service::ServiceConfig config;
        config.shards = options.shards;
        config.epochs = options.epochs;
        config.arbiter = options.arbiter;
        config.faultPlan = options.plan;
        config.faultShard = options.faultShard;
        config.soloBaselines = options.solo;

        service::PlacementService placement_service(
            harness.config(), config);
        std::uint64_t admitted = 0;
        for (service::TenantSpec &spec : buildTenants(options))
            if (placement_service.admit(std::move(spec)))
                ++admitted;

        const auto started = std::chrono::steady_clock::now();
        const service::ServiceResult result =
            placement_service.run(harness.pool());
        const double seconds =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - started)
                .count();

        TextTable shard_table({"shard", "tenants", "hbm cap",
                               "hbm used", "faults", "retired",
                               "status"});
        for (const service::ShardResult &shard : result.shards) {
            shard_table.addRow({
                TextTable::num(std::uint64_t{shard.shard}),
                TextTable::num(shard.tenants),
                TextTable::num(shard.hbmCapacityPages),
                TextTable::num(shard.hbmUsedPages),
                TextTable::num(shard.faultsApplied),
                TextTable::num(shard.pagesRetired),
                shard.degraded ? "degraded" : "ok",
            });
        }
        shard_table.print(
            std::cout,
            "Shards (" +
                std::string(
                    service::arbiterPolicyName(options.arbiter)) +
                " arbitration, " + TextTable::num(admitted) +
                " tenants)");

        // Reliability-class rollup: the visible difference between
        // the two arbiters is where the HBM share lands.
        TextTable class_table({"class", "tenants", "mean HBM share",
                               "mean slowdown", "clips"});
        for (int cls = 0; cls < 3; ++cls) {
            std::uint64_t count = 0;
            std::uint64_t clips = 0;
            RunningStat share;
            RunningStat slowdown;
            for (const service::TenantResult &tenant :
                 result.tenants) {
                if (static_cast<int>(tenant.id % 3) != cls)
                    continue;
                ++count;
                clips += tenant.quotaClips;
                share.add(tenant.meanHbmShare);
                if (tenant.slowdown == tenant.slowdown)
                    slowdown.add(tenant.slowdown);
            }
            class_table.addRow({
                service::reliabilityClassName(
                    static_cast<service::ReliabilityClass>(cls)),
                TextTable::num(count),
                TextTable::percent(share.mean(), 1),
                slowdown.count() > 0
                    ? TextTable::ratio(slowdown.mean())
                    : std::string("-"),
                TextTable::num(clips),
            });
        }
        class_table.print(std::cout, "Reliability classes");

        // The worst-served tenants, slowest first (deterministic:
        // slowdown ties break by tenant id via stable ordering).
        std::vector<const service::TenantResult *> worst;
        worst.reserve(result.tenants.size());
        for (const service::TenantResult &tenant : result.tenants)
            worst.push_back(&tenant);
        std::stable_sort(
            worst.begin(), worst.end(),
            [](const auto *a, const auto *b) {
                const double sa =
                    a->slowdown == a->slowdown ? a->slowdown : 0.0;
                const double sb =
                    b->slowdown == b->slowdown ? b->slowdown : 0.0;
                return sa > sb;
            });
        TextTable tenant_table({"tenant", "shard", "class",
                                "HBM share", "slowdown", "clips",
                                "moved", "retired"});
        const std::size_t rows =
            std::min<std::size_t>(8, worst.size());
        for (std::size_t i = 0; i < rows; ++i) {
            const service::TenantResult &tenant = *worst[i];
            tenant_table.addRow({
                tenant.name,
                TextTable::num(std::uint64_t{tenant.shard}),
                service::reliabilityClassName(
                    static_cast<service::ReliabilityClass>(
                        tenant.id % 3)),
                TextTable::percent(tenant.meanHbmShare, 1),
                tenant.slowdown == tenant.slowdown
                    ? TextTable::ratio(tenant.slowdown)
                    : std::string("-"),
                TextTable::num(tenant.quotaClips),
                TextTable::num(tenant.movedPages),
                TextTable::num(tenant.pagesRetired),
            });
        }
        tenant_table.print(std::cout, "Slowest tenants");

        std::cout << "\ntenants " << TextTable::num(admitted)
                  << ", shards "
                  << TextTable::num(std::uint64_t{
                         result.shards.size()})
                  << ", arbitration rounds "
                  << TextTable::num(result.arbitrationRounds)
                  << ", quota clips "
                  << TextTable::num(result.quotaClips)
                  << ", rebalance moves "
                  << TextTable::num(result.rebalanceMoves) << "\n";
        std::cout << "aggregate "
                  << TextTable::num(
                         seconds > 0
                             ? static_cast<double>(
                                   result.totalRequests) /
                                   seconds
                             : 0.0,
                         0)
                  << " accesses/sec over "
                  << TextTable::num(result.totalRequests)
                  << " requests in " << TextTable::num(seconds, 2)
                  << "s\n";
        std::cout << "fairness (Jain over mean HBM pages) "
                  << TextTable::num(result.fairnessIndex, 4);
        if (result.p99Slowdown == result.p99Slowdown)
            std::cout << ", p99 slowdown vs solo "
                      << TextTable::ratio(result.p99Slowdown);
        std::cout << "\n";
        return harness.finish();
    });
}
