/**
 * @file
 * Figure 12: performance-focused dynamic migration (Meswani-style
 * Full Counters, dynamic mean-hotness threshold).
 *
 * Paper: IPC 1.52x and SER 268x relative to DDR-only — i.e. the
 * dynamic scheme recovers most of the static oracle's performance
 * (1.6x) without prior profiling, and inherits almost all of its
 * reliability exposure. Also reports migrations per interval
 * (paper: ~47K at unscaled capacity).
 */

#include <iostream>

#include "bench_common.hh"

using namespace ramp;
using namespace ramp::bench;

int
main()
{
    const SystemConfig config = SystemConfig::scaledDefault();

    TextTable table({"workload", "IPC vs DDR-only", "SER vs DDR-only",
                     "IPC vs perf-static", "pages moved/interval"});
    std::vector<double> ipc_ratios, ser_ratios, vs_static;

    for (const auto &spec : standardWorkloads()) {
        const auto wl = profileWorkload(config, spec);
        const auto perf_static = runStaticPolicy(
            config, wl.data, StaticPolicy::PerfFocused, wl.profile());
        const auto result = runDynamic(
            config, wl.data, DynamicScheme::PerfFocused, wl.profile());

        const double intervals =
            static_cast<double>(result.makespan) /
            static_cast<double>(config.fcIntervalCycles);
        ipc_ratios.push_back(result.ipc / wl.base.ipc);
        ser_ratios.push_back(result.ser / wl.base.ser);
        vs_static.push_back(result.ipc / perf_static.ipc);
        table.addRow({wl.name(),
                      TextTable::ratio(ipc_ratios.back()),
                      TextTable::ratio(ser_ratios.back(), 1),
                      TextTable::ratio(vs_static.back()),
                      TextTable::num(static_cast<std::uint64_t>(
                          static_cast<double>(result.migratedPages) /
                          std::max(1.0, intervals)))});
    }
    table.addRow({"average", TextTable::ratio(meanRatio(ipc_ratios)),
                  TextTable::ratio(meanRatio(ser_ratios), 1),
                  TextTable::ratio(meanRatio(vs_static)), "-"});
    table.print(std::cout,
                "Figure 12: performance-focused migration "
                "(paper: 1.52x IPC, 268x SER vs DDR-only)");
    return 0;
}
