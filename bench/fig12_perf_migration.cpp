/**
 * @file
 * Figure 12: performance-focused dynamic migration (Meswani-style
 * Full Counters, dynamic mean-hotness threshold).
 *
 * Paper: IPC 1.52x and SER 268x relative to DDR-only — i.e. the
 * dynamic scheme recovers most of the static oracle's performance
 * (1.6x) without prior profiling, and inherits almost all of its
 * reliability exposure. Also reports migrations per interval
 * (paper: ~47K at unscaled capacity).
 */

#include <algorithm>
#include <iostream>

#include "bench_common.hh"

using namespace ramp;
using namespace ramp::bench;

int
main(int argc, char **argv)
{
    return benchMain("fig12_perf_migration", [&] {
        Harness harness("fig12_perf_migration", argc, argv);
        const SystemConfig &config = harness.config();

        const auto profiled =
            harness.profileAll(standardWorkloads());

        // Two passes per workload: even index = perf-focused static
        // reference, odd index = the dynamic scheme.
        std::vector<PassDesc> descs;
        for (const auto &wl : profiled) {
            descs.push_back(
                {wl->name(), Harness::passKey(wl, "perf-static")});
            descs.push_back(
                {wl->name(),
                 Harness::passKey(wl, "perf-migration")});
        }
        const auto outcomes = harness.runPasses(
            descs, [&](std::size_t i) {
                const auto &wl = *profiled[i / 2];
                if (i % 2 == 0)
                    return runStaticPolicy(config, wl.data,
                                           StaticPolicy::PerfFocused,
                                           wl.profile());
                return runDynamic(config, wl.data,
                                  DynamicScheme::PerfFocused,
                                  wl.profile());
            });

        TextTable table({"workload", "IPC vs DDR-only",
                         "SER vs DDR-only", "IPC vs perf-static",
                         "pages moved/interval"});
        RatioColumn ipc_ratios, ser_ratios, vs_static;

        for (std::size_t i = 0; i < profiled.size(); ++i) {
            const auto &wl = *profiled[i];
            const auto &static_out = outcomes[2 * i];
            const auto &dynamic_out = outcomes[2 * i + 1];
            if (!static_out.ok() || !dynamic_out.ok()) {
                table.addRow({wl.name(),
                              statusCell(static_out.ok()
                                             ? dynamic_out
                                             : static_out),
                              "-", "-", "-"});
                continue;
            }
            const auto &perf_static = static_out.result;
            const auto &result = dynamic_out.result;

            const double intervals =
                static_cast<double>(result.makespan) /
                static_cast<double>(config.fcIntervalCycles);
            table.addRow(
                {wl.name(),
                 TextTable::ratio(
                     ipc_ratios.add(result.ipc / wl.base.ipc)),
                 TextTable::ratio(
                     ser_ratios.add(result.ser / wl.base.ser), 1),
                 TextTable::ratio(
                     vs_static.add(result.ipc / perf_static.ipc)),
                 TextTable::num(static_cast<std::uint64_t>(
                     static_cast<double>(result.migratedPages) /
                     std::max(1.0, intervals)))});
        }
        table.addRow({"average", ipc_ratios.averageCell(),
                      ser_ratios.averageCell(1),
                      vs_static.averageCell(), "-"});
        table.print(std::cout,
                    "Figure 12: performance-focused migration "
                    "(paper: 1.52x IPC, 268x SER vs DDR-only)");
        return harness.finish();
    });
}
