/**
 * @file
 * Shared report generator for Figures 14 and 15.
 *
 * Both figures evaluate a reliability-aware migration scheme over
 * every workload and report IPC and SER relative to the
 * performance-focused migration baseline (the dynamic state of the
 * art, Section 6.1).
 */

#ifndef RAMP_BENCH_DYNAMIC_REPORT_HH
#define RAMP_BENCH_DYNAMIC_REPORT_HH

#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hh"

namespace ramp::bench
{

/** Run one dynamic scheme over all workloads, print figure rows. */
inline int
reportDynamicScheme(DynamicScheme scheme, const std::string &title)
{
    const SystemConfig config = SystemConfig::scaledDefault();

    TextTable table({"workload", "IPC vs perf-migration",
                     "SER reduction vs perf-migration",
                     "SER vs DDR-only", "pages moved"});
    std::vector<double> ipc_ratios, ser_reductions;

    for (const auto &spec : standardWorkloads()) {
        const auto wl = profileWorkload(config, spec);
        const auto perf_mig = runDynamic(
            config, wl.data, DynamicScheme::PerfFocused, wl.profile());
        const auto result =
            runDynamic(config, wl.data, scheme, wl.profile());
        const double ipc_ratio = result.ipc / perf_mig.ipc;
        const double ser_reduction = perf_mig.ser / result.ser;
        ipc_ratios.push_back(ipc_ratio);
        ser_reductions.push_back(ser_reduction);
        table.addRow({wl.name(), TextTable::ratio(ipc_ratio),
                      TextTable::ratio(ser_reduction, 1),
                      TextTable::ratio(result.ser / wl.base.ser, 1),
                      TextTable::num(result.migratedPages)});
    }
    table.addRow({"average", TextTable::ratio(meanRatio(ipc_ratios)),
                  TextTable::ratio(meanRatio(ser_reductions), 1), "-",
                  "-"});
    table.print(std::cout, title);

    std::cout << "\naverage IPC loss vs perf-migration: "
              << TextTable::percent(1.0 - meanRatio(ipc_ratios))
              << ", average SER reduction: "
              << TextTable::ratio(meanRatio(ser_reductions), 1)
              << "\n";
    return 0;
}

} // namespace ramp::bench

#endif // RAMP_BENCH_DYNAMIC_REPORT_HH
