/**
 * @file
 * Shared report generator for Figures 14 and 15.
 *
 * Both figures evaluate a reliability-aware migration scheme over
 * every workload and report IPC and SER relative to the
 * performance-focused migration baseline (the dynamic state of the
 * art, Section 6.1). The per-workload passes fan out across the
 * harness thread pool as independent, checkpointable passes.
 */

#ifndef RAMP_BENCH_DYNAMIC_REPORT_HH
#define RAMP_BENCH_DYNAMIC_REPORT_HH

#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hh"

namespace ramp::bench
{

/** Run one dynamic scheme over all workloads, print figure rows. */
inline int
reportDynamicScheme(DynamicScheme scheme, const std::string &title,
                    const std::string &tool, int argc, char **argv)
{
    return benchMain(tool.c_str(), [&] {
        Harness harness(tool, argc, argv);
        const SystemConfig &config = harness.config();
        const auto profiled =
            harness.profileAll(standardWorkloads());

        // Two passes per workload: even index = perf-focused
        // migration baseline, odd index = the scheme under study.
        std::vector<PassDesc> descs;
        for (const auto &wl : profiled) {
            descs.push_back(
                {wl->name(),
                 Harness::passKey(wl, "perf-migration")});
            descs.push_back(
                {wl->name(), Harness::passKey(wl, "scheme")});
        }
        const auto outcomes = harness.runPasses(
            descs, [&](std::size_t i) {
                const auto &wl = *profiled[i / 2];
                return runDynamic(config, wl.data,
                                  i % 2 == 0
                                      ? DynamicScheme::PerfFocused
                                      : scheme,
                                  wl.profile());
            });

        TextTable table({"workload", "IPC vs perf-migration",
                         "SER reduction vs perf-migration",
                         "SER vs DDR-only", "pages moved"});
        RatioColumn ipc_ratios, ser_reductions;

        for (std::size_t i = 0; i < profiled.size(); ++i) {
            const auto &wl = *profiled[i];
            const auto &perf_out = outcomes[2 * i];
            const auto &scheme_out = outcomes[2 * i + 1];
            if (!perf_out.ok() || !scheme_out.ok()) {
                table.addRow({wl.name(),
                              statusCell(perf_out.ok() ? scheme_out
                                                       : perf_out),
                              "-", "-", "-"});
                continue;
            }
            const auto &perf_mig = perf_out.result;
            const auto &result = scheme_out.result;
            table.addRow(
                {wl.name(),
                 TextTable::ratio(
                     ipc_ratios.add(result.ipc / perf_mig.ipc)),
                 TextTable::ratio(
                     ser_reductions.add(perf_mig.ser / result.ser),
                     1),
                 TextTable::ratio(result.ser / wl.base.ser, 1),
                 TextTable::num(result.migratedPages)});
        }
        table.addRow({"average", ipc_ratios.averageCell(),
                      ser_reductions.averageCell(1), "-", "-"});
        table.print(std::cout, title);

        std::cout << "\naverage IPC loss vs perf-migration: "
                  << ipc_ratios.lossCell()
                  << ", average SER reduction: "
                  << ser_reductions.averageCell(1) << "\n\n";

        // The write-ratio heuristic's input distribution, merged
        // over every workload the scheme just ran on.
        auto write_shares = writeShareHistogram();
        for (const auto &wl : profiled)
            addWriteShares(write_shares, wl->profile());
        printWriteShareTable(write_shares,
                             "Write-share distribution of the "
                             "evaluated footprint");
        return harness.finish();
    });
}

} // namespace ramp::bench

#endif // RAMP_BENCH_DYNAMIC_REPORT_HH
