/**
 * @file
 * Ablation: FC reliability-aware migration design points.
 *
 * Two of the design choices behind Section 6.1/6.2 that the paper
 * fixes by construction: the interval length (interacting with risk
 * estimation accuracy — the Wr ratio needs enough samples) and the
 * per-interval migration budget (the scaled stand-in for the
 * paper's unbounded-but-bandwidth-limited migration volume).
 */

#include <iostream>

#include "bench_common.hh"

using namespace ramp;
using namespace ramp::bench;

int
main()
{
    const SystemConfig base = SystemConfig::scaledDefault();
    const std::vector<WorkloadSpec> specs = {
        homogeneousWorkload("mcf"), homogeneousWorkload("lulesh"),
        mixWorkload("mix1")};
    const auto profiled = profileAll(base, specs);

    TextTable table({"interval", "cap", "workload",
                     "IPC vs perf-mig", "SER reduction"});

    for (const Cycle interval : {1'600'000ULL, 3'200'000ULL,
                                 6'400'000ULL}) {
        for (const std::uint32_t cap : {64U, 256U, 1024U}) {
            for (const auto &wl : profiled) {
                SystemConfig config = base;
                config.fcIntervalCycles = interval;
                config.fcMigrationCapPages = cap;

                const auto perf = runDynamic(
                    config, wl.data, DynamicScheme::PerfFocused,
                    wl.profile());
                FcReliabilityMigration engine(interval, cap);
                const auto result = runWithEngine(
                    config, wl.data, engine, wl.profile());
                table.addRow({
                    TextTable::num(
                        static_cast<std::uint64_t>(interval)),
                    TextTable::num(static_cast<std::uint64_t>(cap)),
                    wl.name(),
                    TextTable::ratio(result.ipc / perf.ipc),
                    TextTable::ratio(perf.ser / result.ser, 1),
                });
            }
        }
    }
    table.print(std::cout,
                "Ablation: FC migration interval x budget");
    return 0;
}
