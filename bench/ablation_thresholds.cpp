/**
 * @file
 * Ablation: FC reliability-aware migration design points.
 *
 * Two of the design choices behind Section 6.1/6.2 that the paper
 * fixes by construction: the interval length (interacting with risk
 * estimation accuracy — the Wr ratio needs enough samples) and the
 * per-interval migration budget (the scaled stand-in for the
 * paper's unbounded-but-bandwidth-limited migration volume).
 */

#include <iostream>
#include <string>

#include "bench_common.hh"

using namespace ramp;
using namespace ramp::bench;

int
main(int argc, char **argv)
{
    return benchMain("ablation_thresholds", [&] {
        Harness harness("ablation_thresholds", argc, argv);
        const SystemConfig base = harness.config();

        const std::vector<WorkloadSpec> specs = {
            homogeneousWorkload("mcf"),
            homogeneousWorkload("lulesh"), mixWorkload("mix1")};
        const auto profiled = harness.profileAll(specs);

        const std::vector<Cycle> intervals = {1'600'000, 3'200'000,
                                              6'400'000};
        const std::vector<std::uint32_t> caps = {64, 256, 1024};
        struct Point
        {
            Cycle interval;
            std::uint32_t cap;
            std::size_t workload;
        };
        std::vector<Point> points;
        for (const Cycle interval : intervals)
            for (const std::uint32_t cap : caps)
                for (std::size_t w = 0; w < profiled.size(); ++w)
                    points.push_back({interval, cap, w});

        // The interval/cap change the perf-focused baseline too, so
        // both passes run per design point: even index = perf
        // baseline, odd index = the reliability-aware engine.
        std::vector<PassDesc> descs;
        for (const Point &point : points) {
            const std::string suffix =
                "@fc" + std::to_string(point.interval) + "x" +
                std::to_string(point.cap);
            const auto &wl = profiled[point.workload];
            descs.push_back(
                {wl->name(),
                 Harness::passKey(wl, "perf" + suffix)});
            descs.push_back(
                {wl->name(),
                 Harness::passKey(wl, "fcrel" + suffix)});
        }

        const auto outcomes = harness.runPasses(
            descs, [&](std::size_t i) {
                const Point &point = points[i / 2];
                SystemConfig config = base;
                config.fcIntervalCycles = point.interval;
                config.fcMigrationCapPages = point.cap;
                const auto &wl = *profiled[point.workload];
                const std::string suffix =
                    "@fc" + std::to_string(point.interval) + "x" +
                    std::to_string(point.cap);

                SimResult result;
                if (i % 2 == 0) {
                    result = runDynamic(config, wl.data,
                                        DynamicScheme::PerfFocused,
                                        wl.profile());
                } else {
                    FcReliabilityMigration engine(point.interval,
                                                  point.cap);
                    result = runWithEngine(config, wl.data, engine,
                                           wl.profile());
                }
                result.label += suffix;
                return result;
            });

        TextTable table({"interval", "cap", "workload",
                         "IPC vs perf-mig", "SER reduction"});
        for (std::size_t i = 0; i < points.size(); ++i) {
            const Point &point = points[i];
            const auto &wl = *profiled[point.workload];
            const auto &perf_out = outcomes[2 * i];
            const auto &rel_out = outcomes[2 * i + 1];
            if (!perf_out.ok() || !rel_out.ok()) {
                table.addRow(
                    {TextTable::num(
                         static_cast<std::uint64_t>(point.interval)),
                     TextTable::num(
                         static_cast<std::uint64_t>(point.cap)),
                     wl.name(),
                     statusCell(perf_out.ok() ? rel_out : perf_out),
                     "-"});
                continue;
            }
            const auto &perf = perf_out.result;
            const auto &result = rel_out.result;
            table.addRow({
                TextTable::num(
                    static_cast<std::uint64_t>(point.interval)),
                TextTable::num(
                    static_cast<std::uint64_t>(point.cap)),
                wl.name(),
                TextTable::ratio(result.ipc / perf.ipc),
                TextTable::ratio(perf.ser / result.ser, 1),
            });
        }
        table.print(std::cout,
                    "Ablation: FC migration interval x budget");
        return harness.finish();
    });
}
