/**
 * @file
 * Figure 6: hotness vs AVF of the 1000 hottest pages of mix1.
 *
 * The paper shows most hot pages near 80% AVF with a tail reaching
 * below 5%, and a footprint-wide hotness-AVF correlation of 0.08 —
 * the weak correlation that makes balanced placement possible.
 */

#include <iostream>

#include "bench_common.hh"

using namespace ramp;
using namespace ramp::bench;

int
main(int argc, char **argv)
{
    return benchMain("fig06_hotness_avf", [&] {
        Harness harness("fig06_hotness_avf", argc, argv);
        const auto wl = harness.profile(mixWorkload("mix1"));

        const auto order = wl->profile().sortedByDescending(
            [](const PageStats &s) { return s.hotness(); });
        const std::size_t top =
            std::min<std::size_t>(1000, order.size());

        TextTable table({"hot rank", "accesses", "AVF"});
        for (std::size_t rank = 0; rank < top;
             rank += (rank < 100 ? 25 : 100)) {
            const auto &[page, stats] = order[rank];
            table.addRow({TextTable::num(
                              static_cast<std::uint64_t>(rank + 1)),
                          TextTable::num(stats.hotness()),
                          TextTable::percent(stats.avf)});
        }
        table.print(std::cout,
                    "Figure 6: top-1000 hot pages of mix1 "
                    "(sampled ranks)");

        // Correlations: top-1000 and whole footprint.
        std::vector<double> hot_top, avf_top;
        for (std::size_t i = 0; i < top; ++i) {
            hot_top.push_back(
                static_cast<double>(order[i].second.hotness()));
            avf_top.push_back(order[i].second.avf);
        }
        std::vector<double> hot_all, avf_all;
        for (const auto &[page, stats] : wl->profile().pages()) {
            hot_all.push_back(static_cast<double>(stats.hotness()));
            avf_all.push_back(stats.avf);
        }

        RunningStat avf_of_top;
        for (const double value : avf_top)
            avf_of_top.add(value);

        std::cout << "\nmean AVF of top-1000 hot pages: "
                  << TextTable::percent(avf_of_top.mean()) << "\n"
                  << "min AVF among top-1000 hot pages: "
                  << TextTable::percent(avf_of_top.min()) << "\n"
                  << "correlation(hotness, AVF), top-1000:   "
                  << TextTable::num(
                         pearsonCorrelation(hot_top, avf_top), 3)
                  << "\n"
                  << "correlation(hotness, AVF), footprint:  "
                  << TextTable::num(
                         pearsonCorrelation(hot_all, avf_all), 3)
                  << "  (paper: 0.08)\n";
        return harness.finish();
    });
}
