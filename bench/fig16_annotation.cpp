/**
 * @file
 * Figure 16: program-annotation-based placement.
 *
 * Hot & low-risk structures are pinned in HBM by the loader; no
 * hardware cost, no migration. Paper: SER / 1.3 at -1.1% IPC
 * relative to the performance-focused static oracular placement.
 */

#include <iostream>

#include "bench_common.hh"

using namespace ramp;
using namespace ramp::bench;

int
main()
{
    const SystemConfig config = SystemConfig::scaledDefault();

    TextTable table({"workload", "IPC vs perf-focused",
                     "SER reduction vs perf-focused",
                     "SER vs DDR-only", "annotations"});
    std::vector<double> ipc_ratios, ser_reductions;

    for (const auto &spec : standardWorkloads()) {
        const auto wl = profileWorkload(config, spec);
        const auto perf = runStaticPolicy(
            config, wl.data, StaticPolicy::PerfFocused, wl.profile());
        const auto result = runAnnotated(config, wl.data,
                                         wl.profile());
        const auto selection = annotationsFor(
            wl.data, wl.profile(), config.hbmPages());

        const double ipc_ratio = result.ipc / perf.ipc;
        const double ser_reduction = perf.ser / result.ser;
        ipc_ratios.push_back(ipc_ratio);
        ser_reductions.push_back(ser_reduction);
        table.addRow({wl.name(), TextTable::ratio(ipc_ratio),
                      TextTable::ratio(ser_reduction, 1),
                      TextTable::ratio(result.ser / wl.base.ser, 1),
                      TextTable::num(static_cast<std::uint64_t>(
                          selection.count()))});
    }
    table.addRow({"average", TextTable::ratio(meanRatio(ipc_ratios)),
                  TextTable::ratio(meanRatio(ser_reductions), 1), "-",
                  "-"});
    table.print(std::cout,
                "Figure 16: annotation-based placement "
                "(paper: SER/1.3, IPC -1.1%)");
    return 0;
}
