/**
 * @file
 * Figure 16: program-annotation-based placement.
 *
 * Hot & low-risk structures are pinned in HBM by the loader; no
 * hardware cost, no migration. Paper: SER / 1.3 at -1.1% IPC
 * relative to the performance-focused static oracular placement.
 */

#include <iostream>

#include "bench_common.hh"

using namespace ramp;
using namespace ramp::bench;

int
main(int argc, char **argv)
{
    return benchMain("fig16_annotation", [&] {
        Harness harness("fig16_annotation", argc, argv);
        const SystemConfig &config = harness.config();

        const auto profiled =
            harness.profileAll(standardWorkloads());

        // Two passes per workload: even index = perf-focused
        // baseline, odd index = the annotation-based placement.
        std::vector<PassDesc> descs;
        for (const auto &wl : profiled) {
            descs.push_back(
                {wl->name(),
                 Harness::passKey(wl, "perf-baseline")});
            descs.push_back(
                {wl->name(), Harness::passKey(wl, "annotated")});
        }
        const auto outcomes = harness.runPasses(
            descs, [&](std::size_t i) {
                const auto &wl = *profiled[i / 2];
                if (i % 2 == 0)
                    return runStaticPolicy(config, wl.data,
                                           StaticPolicy::PerfFocused,
                                           wl.profile());
                return runAnnotated(config, wl.data, wl.profile());
            });

        TextTable table({"workload", "IPC vs perf-focused",
                         "SER reduction vs perf-focused",
                         "SER vs DDR-only", "annotations"});
        RatioColumn ipc_ratios, ser_reductions;

        for (std::size_t i = 0; i < profiled.size(); ++i) {
            const auto &wl = *profiled[i];
            const auto &perf_out = outcomes[2 * i];
            const auto &annot_out = outcomes[2 * i + 1];
            if (!perf_out.ok() || !annot_out.ok()) {
                table.addRow({wl.name(),
                              statusCell(perf_out.ok() ? annot_out
                                                       : perf_out),
                              "-", "-", "-"});
                continue;
            }
            const auto &perf = perf_out.result;
            const auto &result = annot_out.result;
            const auto annotations =
                annotationsFor(wl.data, wl.profile(),
                               config.hbmPages())
                    .count();
            table.addRow(
                {wl.name(),
                 TextTable::ratio(
                     ipc_ratios.add(result.ipc / perf.ipc)),
                 TextTable::ratio(
                     ser_reductions.add(perf.ser / result.ser), 1),
                 TextTable::ratio(result.ser / wl.base.ser, 1),
                 TextTable::num(
                     static_cast<std::uint64_t>(annotations))});
        }
        table.addRow({"average", ipc_ratios.averageCell(),
                      ser_reductions.averageCell(1), "-", "-"});
        table.print(std::cout,
                    "Figure 16: annotation-based placement "
                    "(paper: SER/1.3, IPC -1.1%)");
        return harness.finish();
    });
}
