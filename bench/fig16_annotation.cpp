/**
 * @file
 * Figure 16: program-annotation-based placement.
 *
 * Hot & low-risk structures are pinned in HBM by the loader; no
 * hardware cost, no migration. Paper: SER / 1.3 at -1.1% IPC
 * relative to the performance-focused static oracular placement.
 */

#include <iostream>

#include "bench_common.hh"

using namespace ramp;
using namespace ramp::bench;

int
main(int argc, char **argv)
{
    Harness harness("fig16_annotation", argc, argv);
    const SystemConfig &config = harness.config();

    const auto profiled = harness.profileAll(standardWorkloads());

    struct Passes
    {
        SimResult perf;
        SimResult result;
        std::uint64_t annotations = 0;
    };
    const auto passes = harness.mapWorkloads(
        profiled, [&](const ProfiledWorkloadPtr &wl) {
            Passes out;
            out.perf = runStaticPolicy(config, wl->data,
                                       StaticPolicy::PerfFocused,
                                       wl->profile());
            out.result =
                runAnnotated(config, wl->data, wl->profile());
            out.annotations =
                annotationsFor(wl->data, wl->profile(),
                               config.hbmPages())
                    .count();
            return out;
        });

    TextTable table({"workload", "IPC vs perf-focused",
                     "SER reduction vs perf-focused",
                     "SER vs DDR-only", "annotations"});
    RatioColumn ipc_ratios, ser_reductions;

    for (std::size_t i = 0; i < profiled.size(); ++i) {
        const auto &wl = *profiled[i];
        const auto &perf = harness.record(wl.name(), passes[i].perf);
        const auto &result =
            harness.record(wl.name(), passes[i].result);
        table.addRow(
            {wl.name(),
             TextTable::ratio(
                 ipc_ratios.add(result.ipc / perf.ipc)),
             TextTable::ratio(
                 ser_reductions.add(perf.ser / result.ser), 1),
             TextTable::ratio(result.ser / wl.base.ser, 1),
             TextTable::num(passes[i].annotations)});
    }
    table.addRow({"average", ipc_ratios.averageCell(),
                  ser_reductions.averageCell(1), "-", "-"});
    table.print(std::cout,
                "Figure 16: annotation-based placement "
                "(paper: SER/1.3, IPC -1.1%)");
    return harness.finish();
}
