/**
 * @file
 * Ablation: annotation-pinned placement combined with a
 * reliability-aware migration engine.
 *
 * Section 7 closes with: "Supplementing such an annotation-driven
 * static data placement scheme with a reliability-aware migration
 * mechanism could potentially further improve the overall
 * reliability of the system." This bench quantifies that suggestion:
 * annotations pin half the HBM (pinning everything would leave the
 * engine nothing to manage), and the FC engine manages the remaining
 * capacity; evictions never touch pins.
 */

#include <iostream>

#include "bench_common.hh"

using namespace ramp;
using namespace ramp::bench;

int
main(int argc, char **argv)
{
    return benchMain("ablation_hybrid", [&] {
        Harness harness("ablation_hybrid", argc, argv);
        const SystemConfig &config = harness.config();

        const auto profiled = harness.profileAll(standardWorkloads());

        struct Passes
        {
            SimResult annotated;
            SimResult hybrid;
        };
        const auto passes = harness.mapWorkloads(
            profiled, [&](const ProfiledWorkloadPtr &wl) {
                Passes out;
                out.annotated =
                    runAnnotated(config, wl->data, wl->profile());

                const auto selection = annotationsFor(
                    wl->data, wl->profile(), config.hbmPages() / 2);
                auto pinned_half = buildAnnotatedPlacement(
                    wl->data.layout, selection,
                    config.hbmPages() / 2);
                // Give the full HBM to the run: the other half is
                // the engine's to manage.
                PlacementMap placement(config.hbmPages());
                for (const PageId page : pinned_half.hbmPages())
                    placement.placePinned(page, MemoryId::HBM);
                const auto engine =
                    makeEngine(DynamicScheme::FcReliability, config);
                HmaSystem system(config);
                out.hybrid = system.run(wl->data.traces,
                                        std::move(placement),
                                        engine.get());
                return out;
            });

        TextTable table({"workload", "annot IPC", "hybrid IPC",
                         "annot SER", "hybrid SER", "hybrid moved"});
        RatioColumn ipc_gain, ser_gain;

        for (std::size_t i = 0; i < profiled.size(); ++i) {
            const auto &wl = *profiled[i];
            const auto &annotated =
                harness.record(wl.name(), passes[i].annotated);
            const auto &hybrid =
                harness.record(wl.name(), passes[i].hybrid);

            ipc_gain.add(hybrid.ipc / annotated.ipc);
            ser_gain.add(annotated.ser / hybrid.ser);
            table.addRow({
                wl.name(),
                TextTable::ratio(annotated.ipc / wl.base.ipc),
                TextTable::ratio(hybrid.ipc / wl.base.ipc),
                TextTable::ratio(annotated.ser / wl.base.ser, 1),
                TextTable::ratio(hybrid.ser / wl.base.ser, 1),
                TextTable::num(hybrid.migratedPages),
            });
        }
        table.print(std::cout,
                    "Ablation: annotations + FC migration "
                    "(Section 7 future-work suggestion)");
        std::cout << "\nhybrid vs annotation-only: IPC "
                  << TextTable::ratio(ipc_gain.mean())
                  << ", SER reduction "
                  << TextTable::ratio(ser_gain.mean(), 2) << "\n";
        return harness.finish();
    });
}
