/**
 * @file
 * Ablation: annotation-pinned placement combined with a
 * reliability-aware migration engine.
 *
 * Section 7 closes with: "Supplementing such an annotation-driven
 * static data placement scheme with a reliability-aware migration
 * mechanism could potentially further improve the overall
 * reliability of the system." This bench quantifies that suggestion:
 * annotations pin half the HBM (pinning everything would leave the
 * engine nothing to manage), and the FC engine manages the remaining
 * capacity; evictions never touch pins.
 */

#include <iostream>

#include "bench_common.hh"

using namespace ramp;
using namespace ramp::bench;

int
main()
{
    const SystemConfig config = SystemConfig::scaledDefault();

    TextTable table({"workload", "annot IPC", "hybrid IPC",
                     "annot SER", "hybrid SER", "hybrid moved"});
    std::vector<double> ipc_gain, ser_gain;

    for (const auto &spec : standardWorkloads()) {
        const auto wl = profileWorkload(config, spec);
        const auto annotated =
            runAnnotated(config, wl.data, wl.profile());

        const auto selection = annotationsFor(
            wl.data, wl.profile(), config.hbmPages() / 2);
        auto pinned_half = buildAnnotatedPlacement(
            wl.data.layout, selection, config.hbmPages() / 2);
        // Give the full HBM to the run: the other half is the
        // engine's to manage.
        PlacementMap placement(config.hbmPages());
        for (const PageId page : pinned_half.hbmPages())
            placement.placePinned(page, MemoryId::HBM);
        const auto engine =
            makeEngine(DynamicScheme::FcReliability, config);
        HmaSystem system(config);
        auto hybrid = system.run(wl.data.traces,
                                 std::move(placement), engine.get());

        ipc_gain.push_back(hybrid.ipc / annotated.ipc);
        ser_gain.push_back(annotated.ser / hybrid.ser);
        table.addRow({
            wl.name(),
            TextTable::ratio(annotated.ipc / wl.base.ipc),
            TextTable::ratio(hybrid.ipc / wl.base.ipc),
            TextTable::ratio(annotated.ser / wl.base.ser, 1),
            TextTable::ratio(hybrid.ser / wl.base.ser, 1),
            TextTable::num(hybrid.migratedPages),
        });
    }
    table.print(std::cout,
                "Ablation: annotations + FC migration "
                "(Section 7 future-work suggestion)");
    std::cout << "\nhybrid vs annotation-only: IPC "
              << TextTable::ratio(meanRatio(ipc_gain))
              << ", SER reduction "
              << TextTable::ratio(meanRatio(ser_gain), 2) << "\n";
    return 0;
}
