/**
 * @file
 * Ablation: region-granularity placement and migration vs the
 * per-page policies.
 *
 * Three passes per workload: the paper's balanced static placement
 * at page granularity (the Section 5 reference), the same policy
 * decided over profile-seeded regions (buildRegionStaticPlacement),
 * and the dynamic region engine (adaptive merge/split monitor plus
 * declarative schemes). Quantifies what coarsening the placement
 * unit costs in IPC/SER against what it saves in tracked metadata
 * (the region engine's hardware cost is bounded by the region
 * budget, not the footprint).
 *
 * Flags (in addition to the shared harness flags):
 *   --regions N   RegionMonitor maxRegions (default 256)
 *   --scheme S    scheme list for the dynamic pass
 *                 (default: the balanced quadrant schemes)
 */

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "eventlog/eventlog.hh"

using namespace ramp;
using namespace ramp::bench;

namespace
{

struct AblationOptions
{
    std::uint64_t maxRegions = 256;
    std::vector<RegionScheme> schemes;
};

AblationOptions
parseAblationOptions(const std::vector<std::string> &positional)
{
    AblationOptions options;
    options.schemes = defaultRegionSchemes();
    for (std::size_t i = 0; i < positional.size(); ++i) {
        const std::string &arg = positional[i];
        auto value = [&](const char *flag) -> const std::string & {
            if (i + 1 >= positional.size()) {
                std::cerr << "ablation_region: " << flag
                          << " needs a value\n";
                std::exit(2);
            }
            return positional[++i];
        };
        if (arg == "--regions") {
            const std::string &text = value("--regions");
            char *end = nullptr;
            const unsigned long long parsed =
                std::strtoull(text.c_str(), &end, 10);
            if (end == text.c_str() || *end != '\0' || parsed == 0) {
                std::cerr << "ablation_region: --regions needs a "
                             "positive integer, got '"
                          << text << "'\n";
                std::exit(2);
            }
            options.maxRegions = parsed;
        } else if (arg == "--scheme") {
            std::string error;
            options.schemes =
                parseRegionSchemes(value("--scheme"), error);
            if (!error.empty()) {
                std::cerr << "ablation_region: --scheme: " << error
                          << "\n";
                std::exit(2);
            }
        } else {
            std::cerr << "ablation_region: unknown argument '" << arg
                      << "'\n";
            std::exit(2);
        }
    }
    return options;
}

} // namespace

int
main(int argc, char **argv)
{
    return benchMain("ablation_region", [&] {
        Harness harness("ablation_region", argc, argv);
        const SystemConfig &config = harness.config();
        const AblationOptions options =
            parseAblationOptions(harness.options().positional);

        RegionConfig region_config;
        region_config.maxRegions = options.maxRegions;
        region_config.minRegions = std::min<std::uint64_t>(
            region_config.minRegions, options.maxRegions);

        const auto profiled = harness.profileAll(standardWorkloads());

        struct Passes
        {
            SimResult page;
            SimResult region;
            SimResult dynamic;
        };
        const auto passes = harness.mapWorkloads(
            profiled, [&](const ProfiledWorkloadPtr &wl) {
                // mapWorkloads does not label ledger runs the way
                // runPasses does; scope each pass explicitly so the
                // region records sort schedule-independently.
                Passes out;
                {
                    eventlog::RunScope scope(wl->name() +
                                             "/balanced-page");
                    out.page = runStaticPolicy(
                        config, wl->data, StaticPolicy::Balanced,
                        wl->profile());
                }
                {
                    eventlog::RunScope scope(wl->name() +
                                             "/balanced-region");
                    out.region = runRegionStatic(
                        config, wl->data, StaticPolicy::Balanced,
                        wl->profile(), region_config);
                }
                {
                    eventlog::RunScope scope(wl->name() +
                                             "/region-migration");
                    out.dynamic = runRegionDynamic(
                        config, wl->data, wl->profile(),
                        region_config, options.schemes);
                }
                return out;
            });

        TextTable table({"workload", "page IPC", "region IPC",
                         "page SER", "region SER", "dyn IPC",
                         "dyn SER", "dyn moved"});
        RatioColumn ipc_cost, ser_cost;

        for (std::size_t i = 0; i < profiled.size(); ++i) {
            const auto &wl = *profiled[i];
            const auto &page =
                harness.record(wl.name(), passes[i].page);
            const auto &region =
                harness.record(wl.name(), passes[i].region);
            const auto &dynamic =
                harness.record(wl.name(), passes[i].dynamic);

            ipc_cost.add(region.ipc / page.ipc);
            ser_cost.add(region.ser / page.ser);
            table.addRow({
                wl.name(),
                TextTable::ratio(page.ipc / wl.base.ipc),
                TextTable::ratio(region.ipc / wl.base.ipc),
                TextTable::ratio(page.ser / wl.base.ser, 1),
                TextTable::ratio(region.ser / wl.base.ser, 1),
                TextTable::ratio(dynamic.ipc / wl.base.ipc),
                TextTable::ratio(dynamic.ser / wl.base.ser, 1),
                TextTable::num(dynamic.migratedPages),
            });
        }
        table.print(std::cout,
                    "Ablation: balanced placement at region "
                    "granularity (" +
                        TextTable::num(options.maxRegions) +
                        " regions max)");
        std::cout << "\nregion vs page static: IPC "
                  << TextTable::ratio(ipc_cost.mean())
                  << ", SER " << TextTable::ratio(ser_cost.mean(), 2)
                  << "\n";
        return harness.finish();
    });
}
