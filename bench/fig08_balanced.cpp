/**
 * @file
 * Figure 8: balanced static placement (hot & low-risk quadrant pages
 * in HBM). Paper: SER / 3, IPC -14% vs performance-focused.
 */

#include "static_policy_report.hh"

int
main(int argc, char **argv)
{
    return ramp::bench::reportStaticPolicy(
        ramp::StaticPolicy::Balanced,
        "Figure 8: balanced placement (paper: SER/3, IPC -14%)",
        "fig08_balanced", argc, argv);
}
