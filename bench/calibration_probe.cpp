/**
 * @file
 * Calibration probe: verifies the DESIGN.md Section 5 population
 * targets for every workload (AVF span, correlations, quadrant
 * fractions, IPC/SER ratios, migration volumes).
 *
 * Not a paper figure; this is the development/ablation aid used to
 * calibrate the synthetic workload profiles, and it documents how
 * the calibration targets are measured.
 */

#include <iostream>
#include <vector>

#include "common/stats.hh"
#include "common/table.hh"
#include "hma/experiment.hh"
#include "placement/quadrant.hh"

using namespace ramp;

int
main()
{
    const SystemConfig config = SystemConfig::scaledDefault();

    TextTable table({"workload", "pages", "AVF", "MPKI", "IPCddr",
                     "IPCperf", "SERperf", "hot&low", "r(h,a)",
                     "r(wr,a)", "mig/int", "ints"});

    for (const auto &spec : standardWorkloads()) {
        const WorkloadData data = prepareWorkload(spec);
        const SimResult base = runDdrOnly(config, data);
        const PageProfile &profile = base.profile;

        const SimResult perf = runStaticPolicy(
            config, data, StaticPolicy::PerfFocused, profile);
        const SimResult mig = runDynamic(
            config, data, DynamicScheme::PerfFocused, profile);

        const auto quadrants = analyzeQuadrants(profile);

        std::vector<double> hot, avf, wr;
        for (const auto &[page, stats] : profile.pages()) {
            hot.push_back(static_cast<double>(stats.hotness()));
            avf.push_back(stats.avf);
            wr.push_back(stats.wrRatio());
        }

        const double intervals =
            static_cast<double>(mig.makespan) /
            static_cast<double>(config.fcIntervalCycles);
        table.addRow({
            spec.name,
            TextTable::num(
                static_cast<std::uint64_t>(profile.footprintPages())),
            TextTable::percent(base.memoryAvf),
            TextTable::num(base.mpki, 1),
            TextTable::num(base.ipc, 2),
            TextTable::ratio(perf.ipc / base.ipc),
            TextTable::ratio(perf.ser / base.ser, 1),
            TextTable::percent(quadrants.hotLowRiskFraction()),
            TextTable::num(pearsonCorrelation(hot, avf), 2),
            TextTable::num(pearsonCorrelation(wr, avf), 2),
            TextTable::num(static_cast<std::uint64_t>(
                static_cast<double>(mig.migratedPages) /
                std::max(1.0, intervals))),
            TextTable::num(intervals, 1),
        });
    }
    table.print(std::cout, "calibration probe (DESIGN.md Section 5)");
    return 0;
}
