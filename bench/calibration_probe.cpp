/**
 * @file
 * Calibration probe: verifies the DESIGN.md Section 5 population
 * targets for every workload (AVF span, correlations, quadrant
 * fractions, IPC/SER ratios, migration volumes).
 *
 * Not a paper figure; this is the development/ablation aid used to
 * calibrate the synthetic workload profiles, and it documents how
 * the calibration targets are measured.
 */

#include <algorithm>
#include <iostream>
#include <vector>

#include "bench_common.hh"
#include "placement/quadrant.hh"

using namespace ramp;
using namespace ramp::bench;

int
main(int argc, char **argv)
{
    return benchMain("calibration_probe", [&] {
        Harness harness("calibration_probe", argc, argv);
        const SystemConfig &config = harness.config();

        const auto profiled = harness.profileAll(standardWorkloads());

        struct Passes
        {
            SimResult perf;
            SimResult mig;
        };
        const auto passes = harness.mapWorkloads(
            profiled, [&](const ProfiledWorkloadPtr &wl) {
                Passes out;
                out.perf = runStaticPolicy(config, wl->data,
                                           StaticPolicy::PerfFocused,
                                           wl->profile());
                out.mig = runDynamic(config, wl->data,
                                     DynamicScheme::PerfFocused,
                                     wl->profile());
                return out;
            });

        TextTable table({"workload", "pages", "AVF", "MPKI",
                         "IPCddr", "IPCperf", "SERperf", "hot&low",
                         "r(h,a)", "r(wr,a)", "mig/int", "ints"});

        for (std::size_t i = 0; i < profiled.size(); ++i) {
            const auto &wl = *profiled[i];
            const PageProfile &profile = wl.profile();
            const auto &perf =
                harness.record(wl.name(), passes[i].perf);
            const auto &mig =
                harness.record(wl.name(), passes[i].mig);

            const auto quadrants = analyzeQuadrants(profile);

            std::vector<double> hot, avf, wr;
            for (const auto &[page, stats] : profile.pages()) {
                hot.push_back(static_cast<double>(stats.hotness()));
                avf.push_back(stats.avf);
                wr.push_back(stats.wrRatio());
            }

            const double intervals =
                static_cast<double>(mig.makespan) /
                static_cast<double>(config.fcIntervalCycles);
            table.addRow({
                wl.name(),
                TextTable::num(static_cast<std::uint64_t>(
                    profile.footprintPages())),
                TextTable::percent(wl.base.memoryAvf),
                TextTable::num(wl.base.mpki, 1),
                TextTable::num(wl.base.ipc, 2),
                TextTable::ratio(perf.ipc / wl.base.ipc),
                TextTable::ratio(perf.ser / wl.base.ser, 1),
                TextTable::percent(quadrants.hotLowRiskFraction()),
                TextTable::num(pearsonCorrelation(hot, avf), 2),
                TextTable::num(pearsonCorrelation(wr, avf), 2),
                TextTable::num(static_cast<std::uint64_t>(
                    static_cast<double>(mig.migratedPages) /
                    std::max(1.0, intervals))),
                TextTable::num(intervals, 1),
            });
        }
        table.print(std::cout,
                    "calibration probe (DESIGN.md Section 5)");
        return harness.finish();
    });
}
