/**
 * @file
 * Shared report generator for Figures 7, 8, 10, and 11.
 *
 * Each of those figures evaluates one static placement policy over
 * every workload, ordered by decreasing MPKI (bandwidth-intensive on
 * the left), and reports IPC and SER relative to the
 * performance-focused static placement.
 */

#ifndef RAMP_BENCH_STATIC_POLICY_REPORT_HH
#define RAMP_BENCH_STATIC_POLICY_REPORT_HH

#include <algorithm>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hh"

namespace ramp::bench
{

/** Run one policy over all workloads and print the figure rows. */
inline int
reportStaticPolicy(StaticPolicy policy, const std::string &title)
{
    const SystemConfig config = SystemConfig::scaledDefault();
    auto profiled = profileAll(config, standardWorkloads());

    // The paper orders these figures by decreasing MPKI.
    std::sort(profiled.begin(), profiled.end(),
              [](const ProfiledWorkload &a, const ProfiledWorkload &b) {
                  return a.base.mpki > b.base.mpki;
              });

    TextTable table({"workload", "MPKI", "IPC vs perf-focused",
                     "SER reduction vs perf-focused",
                     "SER vs DDR-only"});
    std::vector<double> ipc_ratios, ser_reductions;

    for (const auto &wl : profiled) {
        const auto perf = runStaticPolicy(config, wl.data,
                                          StaticPolicy::PerfFocused,
                                          wl.profile());
        const auto result =
            runStaticPolicy(config, wl.data, policy, wl.profile());
        const double ipc_ratio = result.ipc / perf.ipc;
        const double ser_reduction = perf.ser / result.ser;
        ipc_ratios.push_back(ipc_ratio);
        ser_reductions.push_back(ser_reduction);
        table.addRow({wl.name(), TextTable::num(wl.base.mpki, 1),
                      TextTable::ratio(ipc_ratio),
                      TextTable::ratio(ser_reduction, 1),
                      TextTable::ratio(result.ser / wl.base.ser, 1)});
    }
    table.addRow({"average", "-",
                  TextTable::ratio(meanRatio(ipc_ratios)),
                  TextTable::ratio(meanRatio(ser_reductions), 1),
                  "-"});
    table.print(std::cout, title);

    std::cout << "\naverage IPC loss vs perf-focused: "
              << TextTable::percent(1.0 - meanRatio(ipc_ratios))
              << ", average SER reduction: "
              << TextTable::ratio(meanRatio(ser_reductions), 1)
              << "\n";
    return 0;
}

} // namespace ramp::bench

#endif // RAMP_BENCH_STATIC_POLICY_REPORT_HH
