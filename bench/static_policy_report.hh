/**
 * @file
 * Shared report generator for Figures 7, 8, 10, and 11.
 *
 * Each of those figures evaluates one static placement policy over
 * every workload, ordered by decreasing MPKI (bandwidth-intensive on
 * the left), and reports IPC and SER relative to the
 * performance-focused static placement. The per-workload pass pairs
 * (perf-focused baseline + the policy under study) fan out across
 * the harness thread pool.
 */

#ifndef RAMP_BENCH_STATIC_POLICY_REPORT_HH
#define RAMP_BENCH_STATIC_POLICY_REPORT_HH

#include <algorithm>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hh"

namespace ramp::bench
{

/** Run one policy over all workloads and print the figure rows. */
inline int
reportStaticPolicy(StaticPolicy policy, const std::string &title,
                   const std::string &tool, int argc, char **argv)
{
    Harness harness(tool, argc, argv);
    const SystemConfig &config = harness.config();
    auto profiled = harness.profileAll(standardWorkloads());

    // The paper orders these figures by decreasing MPKI.
    std::sort(profiled.begin(), profiled.end(),
              [](const ProfiledWorkloadPtr &a,
                 const ProfiledWorkloadPtr &b) {
                  return a->base.mpki > b->base.mpki;
              });

    struct Passes
    {
        SimResult perf;
        SimResult result;
    };
    const auto passes = harness.mapWorkloads(
        profiled, [&](const ProfiledWorkloadPtr &wl) {
            Passes out;
            out.perf = runStaticPolicy(config, wl->data,
                                       StaticPolicy::PerfFocused,
                                       wl->profile());
            out.result = runStaticPolicy(config, wl->data, policy,
                                         wl->profile());
            return out;
        });

    TextTable table({"workload", "MPKI", "IPC vs perf-focused",
                     "SER reduction vs perf-focused",
                     "SER vs DDR-only"});
    RatioColumn ipc_ratios, ser_reductions;

    for (std::size_t i = 0; i < profiled.size(); ++i) {
        const auto &wl = *profiled[i];
        const auto &perf = harness.record(wl.name(), passes[i].perf);
        const auto &result =
            harness.record(wl.name(), passes[i].result);
        table.addRow(
            {wl.name(), TextTable::num(wl.base.mpki, 1),
             TextTable::ratio(
                 ipc_ratios.add(result.ipc / perf.ipc)),
             TextTable::ratio(
                 ser_reductions.add(perf.ser / result.ser), 1),
             TextTable::ratio(result.ser / wl.base.ser, 1)});
    }
    table.addRow({"average", "-", ipc_ratios.averageCell(),
                  ser_reductions.averageCell(1), "-"});
    table.print(std::cout, title);

    std::cout << "\naverage IPC loss vs perf-focused: "
              << ipc_ratios.lossCell()
              << ", average SER reduction: "
              << ser_reductions.averageCell(1) << "\n";
    return harness.finish();
}

} // namespace ramp::bench

#endif // RAMP_BENCH_STATIC_POLICY_REPORT_HH
