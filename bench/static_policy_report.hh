/**
 * @file
 * Shared report generator for Figures 7, 8, 10, and 11.
 *
 * Each of those figures evaluates one static placement policy over
 * every workload, ordered by decreasing MPKI (bandwidth-intensive on
 * the left), and reports IPC and SER relative to the
 * performance-focused static placement. The per-workload passes
 * (perf-focused baseline + the policy under study) fan out across
 * the harness thread pool as independent, checkpointable passes.
 */

#ifndef RAMP_BENCH_STATIC_POLICY_REPORT_HH
#define RAMP_BENCH_STATIC_POLICY_REPORT_HH

#include <algorithm>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hh"

namespace ramp::bench
{

/** Run one policy over all workloads and print the figure rows. */
inline int
reportStaticPolicy(StaticPolicy policy, const std::string &title,
                   const std::string &tool, int argc, char **argv)
{
    return benchMain(tool.c_str(), [&] {
        Harness harness(tool, argc, argv);
        const SystemConfig &config = harness.config();
        auto profiled = harness.profileAll(standardWorkloads());

        // The paper orders these figures by decreasing MPKI.
        std::sort(profiled.begin(), profiled.end(),
                  [](const ProfiledWorkloadPtr &a,
                     const ProfiledWorkloadPtr &b) {
                      return a->base.mpki > b->base.mpki;
                  });

        // Two passes per workload: even index = perf-focused
        // baseline, odd index = the policy under study.
        std::vector<PassDesc> descs;
        for (const auto &wl : profiled) {
            descs.push_back(
                {wl->name(),
                 Harness::passKey(wl, "perf-baseline")});
            descs.push_back(
                {wl->name(), Harness::passKey(wl, "policy")});
        }
        const auto outcomes = harness.runPasses(
            descs, [&](std::size_t i) {
                const auto &wl = *profiled[i / 2];
                return runStaticPolicy(
                    config, wl.data,
                    i % 2 == 0 ? StaticPolicy::PerfFocused : policy,
                    wl.profile());
            });

        TextTable table({"workload", "MPKI", "IPC vs perf-focused",
                         "SER reduction vs perf-focused",
                         "SER vs DDR-only"});
        RatioColumn ipc_ratios, ser_reductions;

        for (std::size_t i = 0; i < profiled.size(); ++i) {
            const auto &wl = *profiled[i];
            const auto &perf_out = outcomes[2 * i];
            const auto &policy_out = outcomes[2 * i + 1];
            if (!perf_out.ok() || !policy_out.ok()) {
                table.addRow(
                    {wl.name(), TextTable::num(wl.base.mpki, 1),
                     statusCell(perf_out.ok() ? policy_out
                                              : perf_out),
                     "-", "-"});
                continue;
            }
            const auto &perf = perf_out.result;
            const auto &result = policy_out.result;
            table.addRow(
                {wl.name(), TextTable::num(wl.base.mpki, 1),
                 TextTable::ratio(
                     ipc_ratios.add(result.ipc / perf.ipc)),
                 TextTable::ratio(
                     ser_reductions.add(perf.ser / result.ser), 1),
                 TextTable::ratio(result.ser / wl.base.ser, 1)});
        }
        table.addRow({"average", "-", ipc_ratios.averageCell(),
                      ser_reductions.averageCell(1), "-"});
        table.print(std::cout, title);

        std::cout << "\naverage IPC loss vs perf-focused: "
                  << ipc_ratios.lossCell()
                  << ", average SER reduction: "
                  << ser_reductions.averageCell(1) << "\n";
        return harness.finish();
    });
}

} // namespace ramp::bench

#endif // RAMP_BENCH_STATIC_POLICY_REPORT_HH
