/**
 * @file
 * The self-profiling microbenchmark suite of the simulator's hot
 * kernels (src/perf framework — warmup detection, repeated timed
 * iterations, min-of-N reporting).
 *
 * Covers every inner loop the figure binaries spend their time in:
 * trace generation, the cache hierarchy, the full HmaSystem access
 * path, migration-epoch processing, FaultSim trial batches, and
 * thread-pool dispatch overhead. Run with --bench-out to emit the
 * BENCH_perf_suite.json document that bench_diff gates regressions
 * against (the committed baseline lives at the repo root); name one
 * or more cases as positional arguments to run a subset.
 */

#include <atomic>
#include <iostream>

#include "bench_common.hh"
#include "cache/hierarchy.hh"
#include "common/rng.hh"
#include "reliability/faultsim.hh"
#include "runner/pool.hh"
#include "trace/generator.hh"

using namespace ramp;
using namespace ramp::bench;

namespace
{

/** Register the suite over workload data prepared once. */
perf::Microbench
buildSuite(const SystemConfig &config, const WorkloadData &data)
{
    perf::Microbench suite;

    suite.add("trace_generation", "requests", [] {
        GeneratorOptions options;
        options.traceScale = 0.05;
        const auto traces =
            generateTraces(homogeneousWorkload("mcf"), options);
        return computeStats(traces).requests;
    });

    suite.add("cache_hierarchy", "accesses", [] {
        CacheHierarchy hierarchy(HierarchyConfig{});
        Rng rng(7);
        constexpr std::uint64_t accesses = 400'000;
        for (std::uint64_t i = 0; i < accesses; ++i) {
            const CoreId core = static_cast<CoreId>(i % 16);
            if (i % 4 == 0)
                hierarchy.accessInst(core, rng.nextRange(8 << 20));
            else
                hierarchy.accessData(core, rng.nextRange(8 << 20),
                                     rng.nextBool(0.3));
        }
        return accesses;
    });

    suite.add("hma_access", "accesses", [&config, &data] {
        // The full demand path: placement lookup, DRAM timing,
        // AVF tracking (the DDR-only profiling pass).
        const SimResult result = runDdrOnly(config, data);
        return result.requests;
    });

    suite.add("migration_epochs", "accesses", [&config] {
        const auto engine =
            makeEngine(DynamicScheme::CrossCounter, config);
        PlacementMap map(config.hbmPages());
        ZipfSampler zipf(32'768, 0.8);
        Rng rng(11);
        constexpr std::uint64_t per_epoch = 20'000;
        constexpr std::uint64_t epochs = 16;
        Cycle now = 0;
        for (std::uint64_t e = 0; e < epochs; ++e) {
            for (std::uint64_t i = 0; i < per_epoch; ++i) {
                const PageId page =
                    static_cast<PageId>(zipf.sample(rng));
                engine->onAccess(page, rng.nextBool(0.3),
                                 map.memoryOf(page));
            }
            now += engine->interval();
            const MigrationDecision decision =
                engine->onInterval(now, map);
            (void)decision;
        }
        return per_epoch * epochs;
    });

    suite.add("faultsim_trials", "trials", [] {
        const FaultSim sim(FaultSimConfig::ddrChipKill());
        static std::uint64_t seed = 1;
        // A fresh seed per iteration: warmup must not train the
        // branch predictor on one fault pattern.
        const FaultSimResult result =
            sim.run(2 * FaultSim::shardTrials, seed++);
        return result.trials;
    });

    suite.add("pool_dispatch", "tasks", [] {
        runner::ThreadPool pool(4);
        constexpr std::size_t rounds = 64;
        constexpr std::size_t tasks = 64;
        std::atomic<std::uint64_t> sink{0};
        for (std::size_t round = 0; round < rounds; ++round)
            pool.runIndexed(tasks, [&](std::size_t index) {
                sink.fetch_add(runner::taskSeed(1, index),
                               std::memory_order_relaxed);
            });
        return static_cast<std::uint64_t>(rounds * tasks);
    });

    return suite;
}

} // namespace

int
main(int argc, char **argv)
{
    return benchMain("perf_suite", [&] {
        Harness harness("perf_suite", argc, argv);
        const SystemConfig &config = harness.config();

        GeneratorOptions small;
        small.traceScale = 0.05;
        const WorkloadData data =
            prepareWorkload(homogeneousWorkload("mcf"), small);

        const perf::Microbench suite = buildSuite(config, data);
        const auto results = runMicrobenchSuite(harness, suite);
        printMicrobenchTable(results,
                             "perf_suite: hot-kernel throughput");
        return harness.finish();
    });
}
