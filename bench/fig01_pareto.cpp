/**
 * @file
 * Figure 1: reliability vs performance frontier of hot-page
 * placements.
 *
 * Sweeps the fraction of the HBM filled with the hottest pages (each
 * point is one static placement) over the paper's motivation
 * workloads (astar, cactusADM, mix1) and reports the averaged
 * normalised IPC and reliability. Reliability is plotted as the
 * paper does: relative to the DDR-only SER (1.0 = most reliable).
 */

#include <iostream>
#include <string>

#include "bench_common.hh"

using namespace ramp;
using namespace ramp::bench;

int
main(int argc, char **argv)
{
    return benchMain("fig01_pareto", [&] {
        Harness harness("fig01_pareto", argc, argv);
        const SystemConfig &config = harness.config();
        const auto profiled =
            harness.profileAll(motivationWorkloads());

        const std::vector<double> fractions = {0.0, 0.1, 0.2, 0.3,
                                               0.4, 0.5, 0.6, 0.7,
                                               0.8, 0.9, 1.0};

        // One pass per (fraction, workload) point; the last
        // "fraction" index is the balanced placement the paper
        // contrasts against.
        struct Point
        {
            std::size_t sweep;
            std::size_t workload;
        };
        std::vector<Point> points;
        std::vector<PassDesc> descs;
        for (std::size_t f = 0; f <= fractions.size(); ++f)
            for (std::size_t w = 0; w < profiled.size(); ++w) {
                points.push_back({f, w});
                const std::string label =
                    f == fractions.size()
                        ? "balanced"
                        : "hot@" + TextTable::num(fractions[f], 1);
                descs.push_back(
                    {profiled[w]->name(),
                     Harness::passKey(profiled[w], label)});
            }

        const auto outcomes = harness.runPasses(
            descs, [&](std::size_t i) {
                const Point &point = points[i];
                const auto &wl = *profiled[point.workload];
                if (point.sweep == fractions.size())
                    return runStaticPolicy(config, wl.data,
                                           StaticPolicy::Balanced,
                                           wl.profile());
                SimResult result =
                    runHotFraction(config, wl.data, wl.profile(),
                                   fractions[point.sweep]);
                result.label +=
                    "@" + TextTable::num(fractions[point.sweep], 1);
                return result;
            });

        TextTable table({"hot fraction", "IPC vs DDR-only",
                         "SER vs DDR-only", "reliability (1/SER)"});
        for (std::size_t f = 0; f <= fractions.size(); ++f) {
            RatioColumn ipc_ratios, ser_ratios;
            for (std::size_t i = 0; i < points.size(); ++i) {
                if (points[i].sweep != f || !outcomes[i].ok())
                    continue;
                const auto &wl = *profiled[points[i].workload];
                ipc_ratios.add(outcomes[i].result.ipc / wl.base.ipc);
                ser_ratios.add(outcomes[i].result.ser / wl.base.ser);
            }
            const bool balanced = f == fractions.size();
            table.addRow(
                {balanced ? "balanced"
                          : TextTable::num(fractions[f], 1),
                 ipc_ratios.averageCell(), ser_ratios.averageCell(1),
                 ser_ratios.values().empty()
                     ? "-"
                     : TextTable::num(1.0 / ser_ratios.mean(), 4)});
        }
        table.print(std::cout,
                    "Figure 1: performance vs reliability "
                    "(astar, cactusADM, mix1 average)");
        return harness.finish();
    });
}
