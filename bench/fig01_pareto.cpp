/**
 * @file
 * Figure 1: reliability vs performance frontier of hot-page
 * placements.
 *
 * Sweeps the fraction of the HBM filled with the hottest pages (each
 * point is one static placement) over the paper's motivation
 * workloads (astar, cactusADM, mix1) and reports the averaged
 * normalised IPC and reliability. Reliability is plotted as the
 * paper does: relative to the DDR-only SER (1.0 = most reliable).
 */

#include <iostream>

#include "bench_common.hh"

using namespace ramp;
using namespace ramp::bench;

int
main()
{
    const SystemConfig config = SystemConfig::scaledDefault();
    const auto profiled = profileAll(config, motivationWorkloads());

    TextTable table({"hot fraction", "IPC vs DDR-only",
                     "SER vs DDR-only", "reliability (1/SER)"});

    for (const double fraction :
         {0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}) {
        std::vector<double> ipc_ratios;
        std::vector<double> ser_ratios;
        for (const auto &wl : profiled) {
            const auto result = runHotFraction(config, wl.data,
                                               wl.profile(), fraction);
            ipc_ratios.push_back(result.ipc / wl.base.ipc);
            ser_ratios.push_back(result.ser / wl.base.ser);
        }
        const double ipc = meanRatio(ipc_ratios);
        const double ser = meanRatio(ser_ratios);
        table.addRow({TextTable::num(fraction, 1),
                      TextTable::ratio(ipc),
                      TextTable::ratio(ser, 1),
                      TextTable::num(1.0 / ser, 4)});
    }

    // The balanced placement reaches the upper-right region that the
    // pure hot-fraction frontier cannot (the paper's key point).
    std::vector<double> ipc_ratios, ser_ratios;
    for (const auto &wl : profiled) {
        const auto result = runStaticPolicy(
            config, wl.data, StaticPolicy::Balanced, wl.profile());
        ipc_ratios.push_back(result.ipc / wl.base.ipc);
        ser_ratios.push_back(result.ser / wl.base.ser);
    }
    table.addRow({"balanced", TextTable::ratio(meanRatio(ipc_ratios)),
                  TextTable::ratio(meanRatio(ser_ratios), 1),
                  TextTable::num(1.0 / meanRatio(ser_ratios), 4)});

    table.print(std::cout,
                "Figure 1: performance vs reliability "
                "(astar, cactusADM, mix1 average)");
    return 0;
}
