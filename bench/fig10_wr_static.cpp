/**
 * @file
 * Figure 10: Wr-ratio heuristic placement (top writes/reads pages in
 * HBM). Paper: SER / 1.8, IPC -8.1% vs performance-focused.
 */

#include "static_policy_report.hh"

int
main(int argc, char **argv)
{
    return ramp::bench::reportStaticPolicy(
        ramp::StaticPolicy::WrRatio,
        "Figure 10: Wr-ratio placement (paper: SER/1.8, IPC -8.1%)",
        "fig10_wr_static", argc, argv);
}
