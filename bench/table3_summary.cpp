/**
 * @file
 * Table 3: summary of every placement/migration scheme.
 *
 * For each scheme, average IPC degradation and SER improvement
 * relative to its performance-focused counterpart (static schemes vs
 * perf-static, dynamic schemes vs perf-migration), plus the
 * hardware-cost analysis of Sections 6.3 / 6.4.2 at the paper's
 * unscaled capacities (17 GB HMA: 4.25M pages, 262K in HBM).
 */

#include <iostream>

#include "bench_common.hh"

using namespace ramp;
using namespace ramp::bench;

namespace
{

struct SchemeSummary
{
    std::string name;
    std::string paper; ///< the paper's (IPC loss, SER gain) cell
    std::vector<double> ipcRatios;
    std::vector<double> serReductions;
};

} // namespace

int
main()
{
    const SystemConfig config = SystemConfig::scaledDefault();

    std::vector<SchemeSummary> summaries = {
        {"rel-focused [5.1]", "17% / 5.0x", {}, {}},
        {"balanced [5.2]", "14% / 3.0x", {}, {}},
        {"wr-ratio [5.4.1]", "8.1% / 1.8x", {}, {}},
        {"wr2-ratio [5.4.2]", "1% / 1.6x", {}, {}},
        {"fc-migration [6.2]", "6% / 1.8x", {}, {}},
        {"cc-migration [6.4]", "4.9% / 1.5x", {}, {}},
        {"annotations [7]", "1.1% / 1.3x", {}, {}},
    };

    for (const auto &spec : standardWorkloads()) {
        const auto wl = profileWorkload(config, spec);
        const auto perf_static = runStaticPolicy(
            config, wl.data, StaticPolicy::PerfFocused, wl.profile());
        const auto perf_mig = runDynamic(
            config, wl.data, DynamicScheme::PerfFocused, wl.profile());

        auto add = [&](std::size_t i, const SimResult &result,
                       const SimResult &baseline) {
            summaries[i].ipcRatios.push_back(result.ipc /
                                             baseline.ipc);
            summaries[i].serReductions.push_back(baseline.ser /
                                                 result.ser);
        };

        add(0,
            runStaticPolicy(config, wl.data,
                            StaticPolicy::ReliabilityFocused,
                            wl.profile()),
            perf_static);
        add(1,
            runStaticPolicy(config, wl.data, StaticPolicy::Balanced,
                            wl.profile()),
            perf_static);
        add(2,
            runStaticPolicy(config, wl.data, StaticPolicy::WrRatio,
                            wl.profile()),
            perf_static);
        add(3,
            runStaticPolicy(config, wl.data, StaticPolicy::Wr2Ratio,
                            wl.profile()),
            perf_static);
        add(4,
            runDynamic(config, wl.data, DynamicScheme::FcReliability,
                       wl.profile()),
            perf_mig);
        add(5,
            runDynamic(config, wl.data, DynamicScheme::CrossCounter,
                       wl.profile()),
            perf_mig);
        add(6, runAnnotated(config, wl.data, wl.profile()),
            perf_static);
    }

    TextTable table({"scheme", "IPC loss", "SER gain",
                     "paper (IPC loss / SER gain)"});
    for (const auto &summary : summaries) {
        table.addRow({
            summary.name,
            TextTable::percent(1.0 - meanRatio(summary.ipcRatios)),
            TextTable::ratio(meanRatio(summary.serReductions), 1),
            summary.paper,
        });
    }
    table.print(std::cout,
                "Table 3: scheme summary (static vs perf-static, "
                "dynamic vs perf-migration)");

    // Hardware cost at the paper's unscaled capacities.
    const std::uint64_t paper_total_pages =
        (17ULL << 30) / pageSize; // 1 GB HBM + 16 GB DDR
    const std::uint64_t paper_hbm_pages = (1ULL << 30) / pageSize;
    const PerfFocusedMigration perf(config.fcIntervalCycles);
    const FcReliabilityMigration fc(config.fcIntervalCycles);
    const CrossCounterMigration cc(config.meaIntervalCycles,
                                   config.fcPerMea());

    TextTable cost({"mechanism", "tracking storage", "paper"});
    auto kb = [](std::uint64_t bytes) {
        return TextTable::num(static_cast<double>(bytes) / 1024.0,
                              1) +
               " KB";
    };
    const auto perf_cost =
        perf.hardwareCostBytes(paper_total_pages, paper_hbm_pages);
    const auto fc_cost =
        fc.hardwareCostBytes(paper_total_pages, paper_hbm_pages);
    cost.addRow({"perf-migration (combined counters)", kb(perf_cost),
                 "4.25 MB"});
    cost.addRow({"fc-migration (split counters)", kb(fc_cost),
                 "8.5 MB"});
    cost.addRow({"fc additional vs perf", kb(fc_cost - perf_cost),
                 "4.25 MB"});
    cost.addRow({"cc-migration (risk FC + MEA + remap)",
                 kb(cc.hardwareCostBytes(paper_total_pages,
                                         paper_hbm_pages)),
                 "676 KB"});
    std::cout << "\n";
    cost.print(std::cout,
               "Hardware cost analysis (Sections 6.3, 6.4.2; "
               "unscaled 17 GB HMA)");
    return 0;
}
