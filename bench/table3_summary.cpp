/**
 * @file
 * Table 3: summary of every placement/migration scheme.
 *
 * For each scheme, average IPC degradation and SER improvement
 * relative to its performance-focused counterpart (static schemes vs
 * perf-static, dynamic schemes vs perf-migration), plus the
 * hardware-cost analysis of Sections 6.3 / 6.4.2 at the paper's
 * unscaled capacities (17 GB HMA: 4.25M pages, 262K in HBM). All
 * nine passes of every workload fan out across the thread pool.
 */

#include <iostream>

#include "bench_common.hh"

using namespace ramp;
using namespace ramp::bench;

namespace
{

struct SchemeSummary
{
    std::string name;
    std::string paper; ///< the paper's (IPC loss, SER gain) cell
    RatioColumn ipcRatios;
    RatioColumn serReductions;
};

} // namespace

int
main(int argc, char **argv)
{
    return benchMain("table3_summary", [&] {
        Harness harness("table3_summary", argc, argv);
        const SystemConfig &config = harness.config();

        std::vector<SchemeSummary> summaries = {
            {"rel-focused [5.1]", "17% / 5.0x", {}, {}},
            {"balanced [5.2]", "14% / 3.0x", {}, {}},
            {"wr-ratio [5.4.1]", "8.1% / 1.8x", {}, {}},
            {"wr2-ratio [5.4.2]", "1% / 1.6x", {}, {}},
            {"fc-migration [6.2]", "6% / 1.8x", {}, {}},
            {"cc-migration [6.4]", "4.9% / 1.5x", {}, {}},
            {"annotations [7]", "1.1% / 1.3x", {}, {}},
        };

        // Nine passes per workload: both performance-focused
        // baselines, then the seven schemes in table order.
        const std::vector<std::string> labels = {
            "perf-static",  "perf-migration", "rel-focused",
            "balanced",     "wr-ratio",       "wr2-ratio",
            "fc-migration", "cc-migration",   "annotations"};
        const std::vector<StaticPolicy> static_schemes = {
            StaticPolicy::ReliabilityFocused, StaticPolicy::Balanced,
            StaticPolicy::WrRatio, StaticPolicy::Wr2Ratio};

        const auto profiled = harness.profileAll(standardWorkloads());
        std::vector<PassDesc> descs;
        for (const auto &wl : profiled)
            for (const auto &label : labels)
                descs.push_back(
                    {wl->name(), Harness::passKey(wl, label)});

        const auto outcomes = harness.runPasses(
            descs, [&](std::size_t i) {
                const auto &wl = *profiled[i / labels.size()];
                const std::size_t pass = i % labels.size();
                switch (pass) {
                case 0:
                    return runStaticPolicy(config, wl.data,
                                           StaticPolicy::PerfFocused,
                                           wl.profile());
                case 1:
                    return runDynamic(config, wl.data,
                                      DynamicScheme::PerfFocused,
                                      wl.profile());
                case 2:
                case 3:
                case 4:
                case 5:
                    return runStaticPolicy(config, wl.data,
                                           static_schemes[pass - 2],
                                           wl.profile());
                case 6:
                    return runDynamic(config, wl.data,
                                      DynamicScheme::FcReliability,
                                      wl.profile());
                case 7:
                    return runDynamic(config, wl.data,
                                      DynamicScheme::CrossCounter,
                                      wl.profile());
                default:
                    return runAnnotated(config, wl.data,
                                        wl.profile());
                }
            });

        for (std::size_t w = 0; w < profiled.size(); ++w) {
            const auto *base = &outcomes[w * labels.size()];
            if (!base[0].ok() || !base[1].ok())
                continue;
            const auto &perf_static = base[0].result;
            const auto &perf_mig = base[1].result;
            for (std::size_t i = 0; i < summaries.size(); ++i) {
                if (!base[2 + i].ok())
                    continue;
                const auto &result = base[2 + i].result;
                // Schemes 4 and 5 are dynamic: their baseline is the
                // performance-focused migration, not the static
                // oracle.
                const auto &baseline =
                    (i == 4 || i == 5) ? perf_mig : perf_static;
                summaries[i].ipcRatios.add(result.ipc /
                                           baseline.ipc);
                summaries[i].serReductions.add(baseline.ser /
                                               result.ser);
            }
        }

        TextTable table({"scheme", "IPC loss", "SER gain",
                         "paper (IPC loss / SER gain)"});
        for (const auto &summary : summaries) {
            table.addRow({
                summary.name,
                summary.ipcRatios.lossCell(),
                summary.serReductions.averageCell(1),
                summary.paper,
            });
        }
        table.print(
            std::cout,
            "Table 3: scheme summary (static vs perf-static, "
            "dynamic vs perf-migration)");

        // Hardware cost at the paper's unscaled capacities.
        const std::uint64_t paper_total_pages =
            (17ULL << 30) / pageSize; // 1 GB HBM + 16 GB DDR
        const std::uint64_t paper_hbm_pages = (1ULL << 30) / pageSize;
        const PerfFocusedMigration perf(config.fcIntervalCycles);
        const FcReliabilityMigration fc(config.fcIntervalCycles);
        const CrossCounterMigration cc(config.meaIntervalCycles,
                                       config.fcPerMea());

        TextTable cost({"mechanism", "tracking storage", "paper"});
        auto kb = [](std::uint64_t bytes) {
            return TextTable::num(
                       static_cast<double>(bytes) / 1024.0, 1) +
                   " KB";
        };
        const auto perf_cost = perf.hardwareCostBytes(
            paper_total_pages, paper_hbm_pages);
        const auto fc_cost =
            fc.hardwareCostBytes(paper_total_pages, paper_hbm_pages);
        cost.addRow({"perf-migration (combined counters)",
                     kb(perf_cost), "4.25 MB"});
        cost.addRow({"fc-migration (split counters)", kb(fc_cost),
                     "8.5 MB"});
        cost.addRow({"fc additional vs perf",
                     kb(fc_cost - perf_cost), "4.25 MB"});
        cost.addRow({"cc-migration (risk FC + MEA + remap)",
                     kb(cc.hardwareCostBytes(paper_total_pages,
                                             paper_hbm_pages)),
                     "676 KB"});
        std::cout << "\n";
        cost.print(std::cout,
                   "Hardware cost analysis (Sections 6.3, 6.4.2; "
                   "unscaled 17 GB HMA)");
        return harness.finish();
    });
}
