/**
 * @file
 * Figure 7: naive reliability-focused static placement (lowest-AVF
 * pages in HBM). Paper: SER / 5, IPC -17% vs performance-focused;
 * lbm and milc are outliers (uniform hotness, only 6% / 1% loss).
 */

#include "static_policy_report.hh"

int
main(int argc, char **argv)
{
    return ramp::bench::reportStaticPolicy(
        ramp::StaticPolicy::ReliabilityFocused,
        "Figure 7: reliability-focused placement "
        "(paper: SER/5, IPC -17%)",
        "fig07_rel_static", argc, argv);
}
