/**
 * @file
 * Figure 5: performance-focused static placement.
 *
 * Top hot pages fill the HBM (profile-guided oracle). The paper
 * reports an average 1.6x IPC gain and a 287x SER increase relative
 * to DDR-only — the motivation for reliability-aware placement.
 */

#include <iostream>

#include "bench_common.hh"

using namespace ramp;
using namespace ramp::bench;

int
main()
{
    const SystemConfig config = SystemConfig::scaledDefault();

    TextTable table({"workload", "IPC (DDR)", "IPC (perf)",
                     "IPC gain", "SER vs DDR-only"});
    std::vector<double> ipc_ratios, ser_ratios;

    for (const auto &spec : standardWorkloads()) {
        const auto wl = profileWorkload(config, spec);
        const auto result = runStaticPolicy(
            config, wl.data, StaticPolicy::PerfFocused, wl.profile());
        const double ipc_ratio = result.ipc / wl.base.ipc;
        const double ser_ratio = result.ser / wl.base.ser;
        ipc_ratios.push_back(ipc_ratio);
        ser_ratios.push_back(ser_ratio);
        table.addRow({wl.name(), TextTable::num(wl.base.ipc, 2),
                      TextTable::num(result.ipc, 2),
                      TextTable::ratio(ipc_ratio),
                      TextTable::ratio(ser_ratio, 1)});
    }
    table.addRow({"average", "-", "-",
                  TextTable::ratio(meanRatio(ipc_ratios)),
                  TextTable::ratio(meanRatio(ser_ratios), 1)});
    table.print(std::cout,
                "Figure 5: performance-focused static placement "
                "(paper: 1.6x IPC, 287x SER)");
    return 0;
}
