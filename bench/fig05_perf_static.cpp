/**
 * @file
 * Figure 5: performance-focused static placement.
 *
 * Top hot pages fill the HBM (profile-guided oracle). The paper
 * reports an average 1.6x IPC gain and a 287x SER increase relative
 * to DDR-only — the motivation for reliability-aware placement.
 */

#include <iostream>

#include "bench_common.hh"

using namespace ramp;
using namespace ramp::bench;

int
main(int argc, char **argv)
{
    return benchMain("fig05_perf_static", [&] {
        Harness harness("fig05_perf_static", argc, argv);
        const SystemConfig &config = harness.config();

        TextTable table({"workload", "IPC (DDR)", "IPC (perf)",
                         "IPC gain", "SER vs DDR-only"});
        RatioColumn ipc_ratios, ser_ratios;

        const auto profiled =
            harness.profileAll(standardWorkloads());
        std::vector<PassDesc> descs;
        for (const auto &wl : profiled)
            descs.push_back(
                {wl->name(), Harness::passKey(wl, "perf-static")});
        const auto outcomes = harness.runPasses(
            descs, [&](std::size_t i) {
                const auto &wl = *profiled[i];
                return runStaticPolicy(config, wl.data,
                                       StaticPolicy::PerfFocused,
                                       wl.profile());
            });

        for (std::size_t i = 0; i < profiled.size(); ++i) {
            const auto &wl = *profiled[i];
            if (!outcomes[i].ok()) {
                table.addRow({wl.name(),
                              TextTable::num(wl.base.ipc, 2),
                              statusCell(outcomes[i]), "-", "-"});
                continue;
            }
            const auto &result = outcomes[i].result;
            table.addRow(
                {wl.name(), TextTable::num(wl.base.ipc, 2),
                 TextTable::num(result.ipc, 2),
                 TextTable::ratio(
                     ipc_ratios.add(result.ipc / wl.base.ipc)),
                 TextTable::ratio(
                     ser_ratios.add(result.ser / wl.base.ser), 1)});
        }
        table.addRow({"average", "-", "-", ipc_ratios.averageCell(),
                      ser_ratios.averageCell(1)});
        table.print(std::cout,
                    "Figure 5: performance-focused static placement "
                    "(paper: 1.6x IPC, 287x SER)");
        return harness.finish();
    });
}
