/**
 * @file
 * Figure 15: cross-counter reliability-aware migration (MEA
 * performance unit + Full-Counter risk unit).
 * Paper: SER / 1.5 at -4.9% IPC vs performance-focused migration;
 * cactusADM (striding) gains 11% IPC over FC at +20% SER.
 */

#include "dynamic_report.hh"

int
main(int argc, char **argv)
{
    return ramp::bench::reportDynamicScheme(
        ramp::DynamicScheme::CrossCounter,
        "Figure 15: cross-counter reliability-aware migration "
        "(paper: SER/1.5, IPC -4.9%)",
        "fig15_cc_migration", argc, argv);
}
