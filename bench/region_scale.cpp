/**
 * @file
 * Region-vs-page tracking at datacenter footprints.
 *
 * The scaling argument for src/region: per-page profiling metadata
 * grows with the footprint (millions of hash-table entries at
 * millions of 4 KB pages) while the RegionMonitor's span table is
 * bounded by maxRegions regardless of footprint. This bench drives
 * one precomputed Zipf access stream through both trackers and
 * reports accesses/sec plus the tracked-metadata footprint, so the
 * "bounded metadata, faster tracking" claim is a measured number
 * gated by bench_diff (committed baseline BENCH_region_scale.json).
 *
 * Flags (in addition to the shared harness flags):
 *   --pages N      footprint in pages        (default 1,000,000)
 *   --accesses N   stream length             (default 4,000,000)
 *   --regions N    RegionMonitor maxRegions  (default 1,024)
 *   --scheme S     scheme list for the scheme_eval case
 * Remaining positional arguments select microbench cases.
 */

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "common/rng.hh"
#include "common/table.hh"
#include "placement/map.hh"
#include "placement/profile.hh"
#include "region/engine.hh"
#include "region/region.hh"
#include "region/scheme.hh"

using namespace ramp;
using namespace ramp::bench;

namespace
{

struct ScaleOptions
{
    std::uint64_t pages = 1'000'000;
    std::uint64_t accesses = 4'000'000;
    std::uint64_t maxRegions = 1'024;
    std::vector<RegionScheme> schemes;

    /** Positional arguments left over: the case filter. */
    std::vector<std::string> cases;
};

std::uint64_t
parseCount(const std::string &flag, const std::string &text)
{
    char *end = nullptr;
    const unsigned long long value =
        std::strtoull(text.c_str(), &end, 10);
    if (end == text.c_str() || *end != '\0' || value == 0) {
        std::cerr << "region_scale: " << flag
                  << " needs a positive integer, got '" << text
                  << "'\n";
        std::exit(2);
    }
    return static_cast<std::uint64_t>(value);
}

/** Pull the bench-specific flags out of the harness positionals. */
ScaleOptions
parseScaleOptions(const std::vector<std::string> &positional)
{
    ScaleOptions options;
    options.schemes = defaultRegionSchemes();
    for (std::size_t i = 0; i < positional.size(); ++i) {
        const std::string &arg = positional[i];
        auto value = [&](const char *flag) -> const std::string & {
            if (i + 1 >= positional.size()) {
                std::cerr << "region_scale: " << flag
                          << " needs a value\n";
                std::exit(2);
            }
            return positional[++i];
        };
        if (arg == "--pages") {
            options.pages = parseCount(arg, value("--pages"));
        } else if (arg == "--accesses") {
            options.accesses = parseCount(arg, value("--accesses"));
        } else if (arg == "--regions") {
            options.maxRegions = parseCount(arg, value("--regions"));
        } else if (arg == "--scheme") {
            std::string error;
            options.schemes =
                parseRegionSchemes(value("--scheme"), error);
            if (!error.empty()) {
                std::cerr << "region_scale: --scheme: " << error
                          << "\n";
                std::exit(2);
            }
        } else {
            options.cases.push_back(arg);
        }
    }
    return options;
}

/** The shared access stream: page ids with the write bit packed in. */
std::vector<std::uint64_t>
buildStream(const ScaleOptions &options)
{
    ZipfSampler zipf(options.pages, 0.8);
    Rng rng(2018);
    std::vector<std::uint64_t> stream;
    stream.reserve(options.accesses);
    for (std::uint64_t i = 0; i < options.accesses; ++i) {
        const std::uint64_t page = zipf.sample(rng);
        const std::uint64_t write = rng.nextBool(0.3) ? 1 : 0;
        stream.push_back(page << 1 | write);
    }
    return stream;
}

RegionConfig
monitorConfig(const ScaleOptions &options)
{
    RegionConfig config;
    config.maxRegions = options.maxRegions;
    config.minRegions = std::min<std::uint64_t>(
        config.minRegions, options.maxRegions);
    config.ledger = false; // tracking cost only, no record I/O
    return config;
}

/** Replay the stream with an epoch boundary every 1/16th. */
void
replayIntoMonitor(RegionMonitor &monitor,
                  const std::vector<std::uint64_t> &stream)
{
    const std::uint64_t epoch =
        std::max<std::uint64_t>(1, stream.size() / 16);
    for (std::size_t i = 0; i < stream.size(); ++i) {
        const std::uint64_t packed = stream[i];
        monitor.recordAccess(static_cast<PageId>(packed >> 1),
                             (packed & 1) != 0);
        if ((i + 1) % epoch == 0)
            monitor.endEpoch();
    }
}

perf::Microbench
buildSuite(const ScaleOptions &options,
           const std::vector<std::uint64_t> &stream,
           const RegionMonitor &adapted)
{
    perf::Microbench suite;

    suite.add("page_tracking", "accesses", [&options, &stream] {
        PageProfile profile;
        profile.reserve(options.pages);
        for (const std::uint64_t packed : stream)
            profile.recordAccess(static_cast<PageId>(packed >> 1),
                                 (packed & 1) != 0);
        return static_cast<std::uint64_t>(stream.size());
    });

    suite.add("region_tracking", "accesses", [&options, &stream] {
        RegionMonitor monitor(monitorConfig(options));
        monitor.initFootprint(0, options.pages);
        replayIntoMonitor(monitor, stream);
        return static_cast<std::uint64_t>(stream.size());
    });

    suite.add("scheme_eval", "evaluations",
              [&options, &adapted] {
                  const SchemeEngine engine(options.schemes);
                  PlacementMap map(std::max<std::uint64_t>(
                      1, options.pages / 16));
                  constexpr std::uint64_t rounds = 64;
                  std::size_t sink = 0;
                  for (std::uint64_t r = 0; r < rounds; ++r)
                      sink += engine.evaluate(adapted, map).size();
                  if (sink == SIZE_MAX)
                      std::abort(); // defeat dead-code elimination
                  return rounds;
              });

    return suite;
}

/** The acceptance-criterion table: entries and bytes per tracker. */
void
printMetadataTable(const ScaleOptions &options,
                   const RegionMonitor &adapted)
{
    PageProfile profile;
    profile.reserve(options.pages);
    ZipfSampler zipf(options.pages, 0.8);
    Rng rng(2018);
    for (std::uint64_t i = 0; i < options.accesses; ++i) {
        profile.recordAccess(static_cast<PageId>(zipf.sample(rng)),
                             rng.nextBool(0.3));
    }
    // An unordered_map node costs the payload plus a next pointer
    // plus its share of the bucket array (~1 pointer at the default
    // load factor).
    const std::uint64_t page_entries = profile.footprintPages();
    const std::uint64_t per_entry =
        sizeof(std::pair<const PageId, PageStats>) +
        2 * sizeof(void *);
    const std::uint64_t page_bytes = page_entries * per_entry;

    const std::uint64_t region_entries = adapted.regions().size();
    const std::uint64_t region_bytes = adapted.trackedBytes();

    TextTable table({"tracker", "entries", "bytes", "bytes/page"});
    table.addRow({"per-page profile", TextTable::num(page_entries),
                  TextTable::num(page_bytes),
                  TextTable::num(static_cast<double>(page_bytes) /
                                     static_cast<double>(
                                         options.pages),
                                 2)});
    table.addRow({"region monitor", TextTable::num(region_entries),
                  TextTable::num(region_bytes),
                  TextTable::num(static_cast<double>(region_bytes) /
                                     static_cast<double>(
                                         options.pages),
                                 2)});
    const double entry_ratio =
        region_entries == 0
            ? 0.0
            : static_cast<double>(page_entries) /
                  static_cast<double>(region_entries);
    table.print(std::cout,
                "region_scale: tracked metadata at " +
                    TextTable::num(options.pages) + " pages (" +
                    TextTable::num(entry_ratio, 1) +
                    "x fewer entries)");
}

} // namespace

int
main(int argc, char **argv)
{
    return benchMain("region_scale", [&] {
        Harness harness("region_scale", argc, argv);
        const ScaleOptions options =
            parseScaleOptions(harness.options().positional);

        std::cout << "region_scale: " << options.pages
                  << " pages, " << options.accesses
                  << " accesses, maxRegions " << options.maxRegions
                  << "\n";

        const auto stream = buildStream(options);

        // One adapted monitor shared by scheme_eval and the
        // metadata table: the steady state after the full stream.
        RegionMonitor adapted(monitorConfig(options));
        adapted.initFootprint(0, options.pages);
        replayIntoMonitor(adapted, stream);

        const perf::Microbench suite =
            buildSuite(options, stream, adapted);
        const auto results =
            suite.run(perf::BenchOptions{}, options.cases);
        harness.addMicrobenchResults(results);
        printMicrobenchTable(
            results, "region_scale: tracking throughput");

        printMetadataTable(options, adapted);
        std::cout << "region_scale: " << adapted.merges()
                  << " merges, " << adapted.splits()
                  << " splits across " << adapted.epochs()
                  << " epochs\n";
        return harness.finish();
    });
}
