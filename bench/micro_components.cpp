/**
 * @file
 * google-benchmark micro-benchmarks of RAMP's hot components.
 *
 * These are throughput benchmarks of the simulator's inner loops
 * (not paper figures): the AVF tracker, the DRAM reservation model,
 * the activity counters, the cache model, and trace generation.
 */

#include <atomic>

#include <benchmark/benchmark.h>

#include "cache/cache.hh"
#include "common/rng.hh"
#include "dram/memory.hh"
#include "migration/counters.hh"
#include "reliability/avf.hh"
#include "runner/pool.hh"
#include "trace/generator.hh"

using namespace ramp;

namespace
{

void
bmZipfSample(benchmark::State &state)
{
    const ZipfSampler zipf(static_cast<std::uint64_t>(state.range(0)),
                           0.8);
    Rng rng(1);
    for (auto _ : state)
        benchmark::DoNotOptimize(zipf.sample(rng));
}
BENCHMARK(bmZipfSample)->Arg(1024)->Arg(65536);

void
bmAvfTracker(benchmark::State &state)
{
    AvfTracker tracker;
    Rng rng(2);
    Cycle now = 0;
    for (auto _ : state) {
        const Addr addr = rng.nextRange(1 << 26);
        tracker.onAccess(addr, rng.nextBool(0.3), now += 10);
    }
}
BENCHMARK(bmAvfTracker);

void
bmDramAccess(benchmark::State &state)
{
    DramMemory dram(state.range(0) == 0 ? ddr3Config() : hbmConfig());
    Rng rng(3);
    Cycle now = 0;
    for (auto _ : state) {
        const Addr addr = rng.nextRange(16 << 20);
        benchmark::DoNotOptimize(
            dram.access(now += 4, addr, rng.nextBool(0.3)));
    }
}
BENCHMARK(bmDramAccess)->Arg(0)->Arg(1);

void
bmFullCounters(benchmark::State &state)
{
    FullCounterTable counters;
    Rng rng(4);
    for (auto _ : state)
        counters.onAccess(rng.nextRange(10000), rng.nextBool(0.3));
}
BENCHMARK(bmFullCounters);

void
bmMeaTracker(benchmark::State &state)
{
    MeaTracker mea(32);
    Rng rng(5);
    for (auto _ : state)
        mea.onAccess(rng.nextRange(10000));
}
BENCHMARK(bmMeaTracker);

void
bmCacheAccess(benchmark::State &state)
{
    SetAssocCache cache({512 * 1024, 16, lineSize});
    Rng rng(6);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            cache.access(rng.nextRange(8 << 20), rng.nextBool(0.3)));
    }
}
BENCHMARK(bmCacheAccess);

void
bmThreadPoolDispatch(benchmark::State &state)
{
    runner::ThreadPool pool(
        static_cast<unsigned>(state.range(0)));
    std::atomic<std::uint64_t> sink{0};
    for (auto _ : state) {
        pool.runIndexed(64, [&](std::size_t index) {
            sink.fetch_add(runner::taskSeed(42, index),
                           std::memory_order_relaxed);
        });
    }
    benchmark::DoNotOptimize(sink.load());
}
BENCHMARK(bmThreadPoolDispatch)->Arg(1)->Arg(4);

void
bmTraceGeneration(benchmark::State &state)
{
    const auto spec = homogeneousWorkload("mcf");
    GeneratorOptions options;
    options.traceScale = 0.05;
    for (auto _ : state) {
        auto traces = generateTraces(spec, options);
        benchmark::DoNotOptimize(traces.data());
    }
}
BENCHMARK(bmTraceGeneration)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
