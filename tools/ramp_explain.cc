/**
 * @file
 * ramp_explain: the decision-ledger analyzer.
 *
 *   ramp_explain [queries] EVENTS.jsonl
 *
 * Reads an events file written by --events-out (DESIGN.md §10) and
 * answers the questions aggregate counters cannot: why is page P in
 * HBM, which pages spent the longest in the wrong tier, which pages
 * ping-pong between tiers, and where did the faults land.
 *
 *   --page P            full decision timeline of one page
 *   --top-regret K      pages whose realized tier disagrees longest
 *                       with their recorded hotness/risk quadrant
 *   --migration-churn   ping-pong detection per run
 *   --faults            fault-to-placement attribution
 *   --tenants           per-tenant placement-service summary
 *   --tenant ID         narrow every query to one tenant's records
 *                       (the ramp-events-v2 `tenant` stamp)
 *
 * With no query, prints a per-run ledger summary. Queries combine;
 * each prints its own table. Records are ordered by (run label,
 * sequence number) before any analysis, so the output is identical
 * for the same simulation regardless of the --jobs width that
 * produced the file. Exit code: 0 when every requested query found
 * events, 1 when one came up empty, 2 on usage or a malformed file.
 */

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <limits>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/table.hh"
#include "perf/json.hh"

using namespace ramp;

namespace
{

/** Accepted schemas: v2 added the optional per-record `tenant`
 * field (and the tenant record kind); every v1 analysis reads a v2
 * file unchanged because the new key defaults to 0 when absent. */
constexpr const char *eventsSchemaV1 = "ramp-events-v1";
constexpr const char *eventsSchemaV2 = "ramp-events-v2";
constexpr std::uint64_t noPage = UINT64_MAX;

/** One ledger record, denormalized from its JSONL line. */
struct Event
{
    std::string run;
    std::uint64_t seq = 0;
    std::uint64_t tenant = 0; ///< 0 = outside any tenant (v1 files)
    std::string kind;
    std::string policy;
    std::uint64_t epoch = 0;
    std::uint64_t page = noPage;
    std::uint64_t partner = noPage;
    std::string src;
    std::string dst;
    std::string quadrant;
    std::string mode; ///< fault records
    std::string tier; ///< fault records
    std::string fault; ///< inject records: correctable/uncorrected/..
    std::string source; ///< inject records: script/poisson/hammer
    std::string reason; ///< remap/degrade records
    double backlog = NAN; ///< degrade records
    std::string action; ///< region records
    std::uint64_t region = noPage; ///< region records
    std::uint64_t span = 0; ///< region records
    double density = NAN; ///< region records
    double hotness = NAN;
    double wrRatio = NAN;
    double avf = NAN;
    double threshHot = NAN;
    double threshRisk = NAN;
    double moved = NAN; ///< epoch records
    std::uint64_t shard = noPage; ///< tenant records
    std::uint64_t grant = 0; ///< tenant records
    std::uint64_t resident = 0; ///< tenant records
    double hbmShare = NAN; ///< tenant records
};

void
usage()
{
    std::fprintf(
        stderr,
        "usage: ramp_explain [queries] EVENTS.jsonl\n"
        "\n"
        "  --page P           decision timeline of page P\n"
        "  --top-regret K     K pages longest in the wrong tier\n"
        "  --migration-churn  tier ping-pong per run\n"
        "  --faults           fault-to-placement attribution\n"
        "  --region           region merge/split/scheme timeline\n"
        "  --tenants          per-tenant service summary\n"
        "  --tenant ID        restrict every query to one tenant's\n"
        "                     records (ramp-events-v2 files)\n"
        "\n"
        "No query prints a per-run summary. Exit: 0 ok, 1 empty\n"
        "result, 2 usage/malformed input.\n");
}

std::uint64_t
parseCount(const char *flag, const char *text)
{
    char *end = nullptr;
    const unsigned long long value = std::strtoull(text, &end, 10);
    if (end == text || *end != '\0') {
        std::fprintf(stderr,
                     "ramp_explain: %s needs a non-negative "
                     "integer, got '%s'\n",
                     flag, text);
        std::exit(2);
    }
    return value;
}

/** A member's integral value (handles noPage-sized ids exactly). */
std::uint64_t
idOr(const perf::JsonValue &object, const std::string &key,
     std::uint64_t fallback)
{
    const perf::JsonValue *member = object.find(key);
    if (member == nullptr || !member->isNumber())
        return fallback;
    // Page ids are small in practice (double-exact); the sentinel
    // only appears for absent fields, which the writer omits.
    return static_cast<std::uint64_t>(member->number);
}

bool
loadEvents(const std::string &path, std::vector<Event> &events,
           std::string &error)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        error = "cannot read " + path;
        return false;
    }
    std::string line;
    std::size_t line_no = 0;
    bool saw_header = false;
    while (std::getline(in, line)) {
        ++line_no;
        if (line.empty())
            continue;
        perf::JsonValue value;
        if (!perf::parseJson(line, value, error)) {
            error = path + ":" + std::to_string(line_no) + ": " +
                    error;
            return false;
        }
        if (!saw_header) {
            const std::string schema = value.stringOr("schema", "");
            if (schema != eventsSchemaV1 &&
                schema != eventsSchemaV2) {
                error = path + ": not a " +
                        std::string(eventsSchemaV1) + " / " +
                        std::string(eventsSchemaV2) +
                        " file (schema '" + schema + "')";
                return false;
            }
            saw_header = true;
            continue;
        }
        Event event;
        event.run = value.stringOr("run", "unattributed");
        event.seq = idOr(value, "seq", 0);
        event.tenant = idOr(value, "tenant", 0);
        event.kind = value.stringOr("kind", "?");
        event.policy = value.stringOr("policy", "?");
        event.epoch = idOr(value, "epoch", 0);
        event.page = idOr(value, "page", noPage);
        event.partner = idOr(value, "partner", noPage);
        event.src = value.stringOr("src", "");
        event.dst = value.stringOr("dst", "");
        event.quadrant = value.stringOr("quadrant", "");
        event.mode = value.stringOr("mode", "");
        event.tier = value.stringOr("tier", "");
        event.fault = value.stringOr("fault", "");
        event.source = value.stringOr("source", "");
        event.reason = value.stringOr("reason", "");
        event.backlog = value.numberOr("backlog", NAN);
        event.action = value.stringOr("action", "");
        event.region = idOr(value, "region", noPage);
        event.span = idOr(value, "span", 0);
        event.density = value.numberOr("density", NAN);
        event.hotness = value.numberOr("hotness", NAN);
        event.wrRatio = value.numberOr("wr_ratio", NAN);
        event.avf = value.numberOr("avf", NAN);
        event.threshHot = value.numberOr("thresh_hot", NAN);
        event.threshRisk = value.numberOr("thresh_risk", NAN);
        event.moved = value.numberOr("moved", NAN);
        event.shard = idOr(value, "shard", noPage);
        event.grant = idOr(value, "grant", 0);
        event.resident = idOr(value, "resident", 0);
        event.hbmShare = value.numberOr("hbm_share", NAN);
        events.push_back(std::move(event));
    }
    if (!saw_header) {
        error = path + ": empty events file (no header line)";
        return false;
    }
    // Canonical order: run label, then the per-run sequence number.
    // Run ids are assigned in pool-scheduling order, but labels are
    // schedule-independent, so this sort makes every analysis
    // invariant under --jobs.
    std::stable_sort(events.begin(), events.end(),
                     [](const Event &a, const Event &b) {
                         if (a.run != b.run)
                             return a.run < b.run;
                         return a.seq < b.seq;
                     });
    return true;
}

std::string
num(double value, int precision = 6)
{
    if (!std::isfinite(value))
        return "-";
    std::ostringstream out;
    out.precision(precision);
    out << value;
    return out.str();
}

std::string
pageCell(std::uint64_t page)
{
    return page == noPage ? "-" : std::to_string(page);
}

/** True for the four kinds that move a page between tiers. */
bool
isMove(const std::string &kind)
{
    return kind == "promote" || kind == "evict" ||
           kind == "swap-in" || kind == "swap-out";
}

/** Tier the page occupies after this event ("" when not a move). */
std::string
tierAfter(const Event &event)
{
    if (event.kind == "place" || event.kind == "promote" ||
        event.kind == "swap-in")
        return "hbm";
    if (event.kind == "evict" || event.kind == "swap-out")
        return "ddr";
    return "";
}

int
queryPage(const std::vector<Event> &events, std::uint64_t page)
{
    TextTable table({"run", "seq", "kind", "policy", "epoch",
                     "move", "quadrant", "hotness", "wr_ratio",
                     "avf", "thresh_hot", "thresh_risk"});
    std::size_t rows = 0;
    for (const Event &event : events) {
        const bool subject = event.page == page;
        const bool partner = event.partner == page;
        if (!subject && !partner)
            continue;
        std::string move;
        if (!event.src.empty() || !event.dst.empty())
            move = (event.src.empty() ? "-" : event.src) + "->" +
                   (event.dst.empty() ? "-" : event.dst);
        if (event.kind == "fault")
            move = event.tier + " " + event.mode;
        if (partner)
            move += " (partner of " + pageCell(event.page) + ")";
        else if (event.partner != noPage)
            move += " (with " + pageCell(event.partner) + ")";
        table.addRow({event.run, std::to_string(event.seq),
                      event.kind, event.policy,
                      std::to_string(event.epoch), move,
                      event.quadrant.empty() ? "-" : event.quadrant,
                      num(event.hotness), num(event.wrRatio),
                      num(event.avf), num(event.threshHot),
                      num(event.threshRisk)});
        ++rows;
    }
    if (rows == 0) {
        std::cout << "ramp_explain: no events for page " << page
                  << "\n";
        return 1;
    }
    table.print(std::cout, "timeline of page " +
                               std::to_string(page) + " (" +
                               std::to_string(rows) + " events)");
    return 0;
}

int
queryTopRegret(const std::vector<Event> &events, std::uint64_t k)
{
    // Per (run, page): replay the page's ledger stream, integrating
    // the cycles its realized tier disagrees with the tier its most
    // recently recorded quadrant calls for (hot & low-risk -> HBM,
    // anything else -> DDR). Pages whose quadrant was never
    // measured carry no verdict and accrue no regret.
    struct PageState
    {
        std::string tier = "ddr";
        std::string desired;
        std::uint64_t since = 0;
        double regret = 0;
        std::size_t moves = 0;
    };
    struct RunState
    {
        std::map<std::uint64_t, PageState> pages;
        std::uint64_t horizon = 0;
    };
    std::map<std::string, RunState> runs;

    auto settle = [](PageState &state, std::uint64_t now) {
        if (!state.desired.empty() && state.tier != state.desired &&
            now > state.since)
            state.regret += static_cast<double>(now - state.since);
        state.since = now;
    };

    for (const Event &event : events) {
        RunState &run = runs[event.run];
        run.horizon = std::max(run.horizon, event.epoch);
        if (event.page == noPage || event.kind == "fault" ||
            event.kind == "epoch")
            continue;
        PageState &state = run.pages[event.page];
        settle(state, event.epoch);
        if (!tierAfter(event).empty())
            state.tier = tierAfter(event);
        if (isMove(event.kind) || event.kind == "place")
            ++state.moves;
        if (!event.quadrant.empty() && event.quadrant != "unknown")
            state.desired =
                event.quadrant == "hot-low" ? "hbm" : "ddr";
        // A swap partner's record carries the partner's own scores.
        if (event.partner != noPage) {
            PageState &other = run.pages[event.partner];
            settle(other, event.epoch);
        }
    }

    struct Row
    {
        std::string run;
        std::uint64_t page;
        double regret;
        std::string tier;
        std::string desired;
        std::size_t moves;
    };
    std::vector<Row> rows;
    for (auto &[label, run] : runs) {
        for (auto &[page, state] : run.pages) {
            settle(state, run.horizon);
            if (state.regret > 0)
                rows.push_back({label, page, state.regret,
                                state.tier, state.desired,
                                state.moves});
        }
    }
    std::sort(rows.begin(), rows.end(),
              [](const Row &a, const Row &b) {
                  if (a.regret != b.regret)
                      return a.regret > b.regret;
                  if (a.run != b.run)
                      return a.run < b.run;
                  return a.page < b.page;
              });
    if (rows.size() > k)
        rows.resize(k);

    if (rows.empty()) {
        std::cout << "ramp_explain: no page disagreed with its "
                     "recorded quadrant\n";
        return 1;
    }
    TextTable table({"run", "page", "regret_cycles", "tier",
                     "wanted", "moves"});
    for (const Row &row : rows)
        table.addRow({row.run, std::to_string(row.page),
                      num(row.regret, 10), row.tier, row.desired,
                      std::to_string(row.moves)});
    table.print(std::cout,
                "top " + std::to_string(rows.size()) +
                    " regret pages (cycles in the tier their "
                    "quadrant argues against)");
    return 0;
}

int
queryChurn(const std::vector<Event> &events)
{
    // A page "bounces" each time it re-enters a tier it already
    // left within the same run; sustained bouncing is the ping-pong
    // pathology a migration policy must not exhibit.
    struct PageState
    {
        std::string tier;
        std::size_t moves = 0;
        std::size_t bounces = 0;
        bool leftHbm = false;
        std::string policy;
    };
    std::map<std::string, std::map<std::uint64_t, PageState>> runs;
    for (const Event &event : events) {
        if (event.page == noPage || !isMove(event.kind))
            continue;
        PageState &state = runs[event.run][event.page];
        const std::string after = tierAfter(event);
        ++state.moves;
        state.policy = event.policy;
        if (after == "hbm" && state.leftHbm)
            ++state.bounces;
        if (after == "ddr" && !state.tier.empty())
            state.leftHbm = true;
        state.tier = after;
    }

    TextTable table(
        {"run", "policy", "page", "moves", "bounces", "tier"});
    std::size_t rows = 0;
    for (const auto &[label, pages] : runs) {
        // Worst offenders first within each run.
        std::vector<std::pair<std::uint64_t, const PageState *>>
            order;
        for (const auto &[page, state] : pages)
            if (state.moves >= 3)
                order.emplace_back(page, &state);
        std::sort(order.begin(), order.end(),
                  [](const auto &a, const auto &b) {
                      if (a.second->bounces != b.second->bounces)
                          return a.second->bounces >
                                 b.second->bounces;
                      if (a.second->moves != b.second->moves)
                          return a.second->moves > b.second->moves;
                      return a.first < b.first;
                  });
        if (order.size() > 10)
            order.resize(10);
        for (const auto &[page, state] : order) {
            table.addRow({label, state->policy,
                          std::to_string(page),
                          std::to_string(state->moves),
                          std::to_string(state->bounces),
                          state->tier});
            ++rows;
        }
    }
    if (rows == 0) {
        std::cout << "ramp_explain: no page moved 3+ times in any "
                     "run (no churn)\n";
        return 1;
    }
    table.print(std::cout,
                "migration churn (pages moved 3+ times; worst 10 "
                "per run)");
    return 0;
}

int
queryFaults(const std::vector<Event> &events)
{
    // Offline FaultSim trials (kind == "fault").
    std::map<std::string, std::uint64_t> byTierMode;
    std::map<std::pair<std::string, std::uint64_t>, std::uint64_t>
        byPage;
    std::size_t total = 0;
    for (const Event &event : events) {
        if (event.kind != "fault")
            continue;
        ++total;
        ++byTierMode[event.tier + " " + event.mode];
        ++byPage[{event.run, event.page}];
    }
    if (total > 0) {
        TextTable modes({"tier mode", "faults"});
        for (const auto &[key, count] : byTierMode)
            modes.addRow({key, std::to_string(count)});
        modes.print(std::cout,
                    "uncorrected-trial faults by tier and mode (" +
                        std::to_string(total) + " total)");

        std::vector<
            std::pair<std::pair<std::string, std::uint64_t>,
                      std::uint64_t>>
            order(byPage.begin(), byPage.end());
        std::sort(order.begin(), order.end(),
                  [](const auto &a, const auto &b) {
                      if (a.second != b.second)
                          return a.second > b.second;
                      return a.first < b.first;
                  });
        if (order.size() > 10)
            order.resize(10);
        TextTable pages({"run", "page", "faults"});
        for (const auto &[key, count] : order)
            pages.addRow({key.first, std::to_string(key.second),
                          std::to_string(count)});
        pages.print(std::cout,
                    "most-struck pages (top " +
                        std::to_string(order.size()) + ")");
    }

    // Online injected faults and their responses. Events are in
    // (run, seq) order, so the "latest inject seen for this page"
    // map attributes each retirement to the strike that caused it,
    // identically at any --jobs width.
    struct RunStats
    {
        std::uint64_t injected = 0;
        std::uint64_t capacityPages = 0;
        std::uint64_t retired = 0;
        std::map<std::string, std::uint64_t> remaps;
        std::uint64_t degrades = 0;
        double backlog = NAN; ///< last reported
    };
    struct Attribution
    {
        const Event *inject;
        const Event *retire;
    };
    std::map<std::string, RunStats> runs;
    std::map<std::pair<std::string, std::uint64_t>, const Event *>
        lastInject;
    std::vector<Attribution> attributions;
    std::size_t online = 0;
    for (const Event &event : events) {
        if (event.kind == "inject") {
            ++online;
            RunStats &run = runs[event.run];
            ++run.injected;
            if (event.fault == "capacity")
                run.capacityPages += event.span;
            else
                lastInject[{event.run, event.page}] = &event;
        } else if (event.kind == "retire") {
            ++online;
            ++runs[event.run].retired;
            const auto it =
                lastInject.find({event.run, event.page});
            attributions.push_back(
                {it == lastInject.end() ? nullptr : it->second,
                 &event});
        } else if (event.kind == "remap") {
            ++online;
            ++runs[event.run].remaps[event.reason];
        } else if (event.kind == "degrade") {
            ++online;
            RunStats &run = runs[event.run];
            ++run.degrades;
            run.backlog = event.backlog;
        }
    }

    if (total == 0 && online == 0) {
        std::cout << "ramp_explain: no fault records (run FaultSim "
                     "or an --inject campaign with --events-out to "
                     "collect them)\n";
        return 1;
    }
    if (online == 0)
        return 0;

    TextTable summary({"run", "injected", "capacity_pages",
                       "retired", "remap:retire", "remap:sweep",
                       "remap:retry", "degrades", "backlog"});
    for (const auto &[label, run] : runs) {
        auto remap = [&](const char *reason) -> std::uint64_t {
            const auto it = run.remaps.find(reason);
            return it == run.remaps.end() ? 0 : it->second;
        };
        summary.addRow({label, std::to_string(run.injected),
                        std::to_string(run.capacityPages),
                        std::to_string(run.retired),
                        std::to_string(remap("retire")),
                        std::to_string(remap("sweep")),
                        std::to_string(remap("retry")),
                        std::to_string(run.degrades),
                        num(run.backlog)});
    }
    summary.print(std::cout, "online fault injection (" +
                                 std::to_string(online) +
                                 " ledger records)");

    if (!attributions.empty()) {
        TextTable table({"run", "page", "inject_seq", "source",
                         "fault", "retire_seq", "move", "hotness",
                         "avf"});
        for (const Attribution &attr : attributions) {
            const Event &retire = *attr.retire;
            table.addRow(
                {retire.run, pageCell(retire.page),
                 attr.inject == nullptr
                     ? "-"
                     : std::to_string(attr.inject->seq),
                 attr.inject == nullptr ? "-"
                                        : attr.inject->source,
                 attr.inject == nullptr ? "-" : attr.inject->fault,
                 std::to_string(retire.seq),
                 retire.src + "->" + retire.dst,
                 num(retire.hotness), num(retire.avf)});
        }
        table.print(std::cout,
                    "retirement attribution (each retired page "
                    "traced to the strike that killed it)");
    }
    return 0;
}

int
queryRegion(const std::vector<Event> &events)
{
    // Region timeline: every monitor adaptation (merge/split) and
    // every scheme action, in canonical (run, seq) order — the same
    // file analyzed at any --jobs width prints the same table.
    TextTable table({"run", "seq", "kind", "epoch", "region",
                     "first_page", "span", "what", "moved",
                     "density", "avf"});
    std::map<std::string, std::uint64_t> kinds;
    std::size_t rows = 0;
    for (const Event &event : events) {
        const bool adaptation = event.kind == "region-merge" ||
                                event.kind == "region-split";
        if (event.kind != "region" && !adaptation)
            continue;
        ++kinds[event.kind];
        std::string what;
        if (event.kind == "region-merge")
            what = "absorbed " + pageCell(event.partner);
        else if (event.kind == "region-split")
            what = "right half at " + pageCell(event.partner);
        else
            what = event.action + " " +
                   (event.src.empty() ? "-" : event.src) + "->" +
                   (event.dst.empty() ? "-" : event.dst);
        table.addRow({event.run, std::to_string(event.seq),
                      event.kind, std::to_string(event.epoch),
                      pageCell(event.region), pageCell(event.page),
                      std::to_string(event.span), what,
                      std::isfinite(event.moved)
                          ? num(event.moved)
                          : "-",
                      num(event.density), num(event.avf)});
        ++rows;
    }
    if (rows == 0) {
        std::cout << "ramp_explain: no region records (run a "
                     "region-mode pass with --events-out)\n";
        return 1;
    }
    std::string counts;
    for (const auto &[kind, count] : kinds)
        counts += " " + kind + "=" + std::to_string(count);
    table.print(std::cout, "region timeline (" +
                               std::to_string(rows) + " records:" +
                               counts + ")");
    return 0;
}

int
queryTenants(const std::vector<Event> &events)
{
    // Per-tenant service summary, driven by the tenant-kind records
    // the placement service emits once per (tenant, epoch) plus the
    // tenant stamp every other record carries. Tenant id order, so
    // the same file prints the same table at any --jobs width.
    struct TenantSummary
    {
        std::uint64_t shard = noPage;
        std::uint64_t epochs = 0;
        std::uint64_t lastGrant = 0;
        double residentSum = 0;
        double shareSum = 0;
        double avfSum = 0;
        std::uint64_t promotes = 0;
        std::uint64_t evicts = 0;
        std::uint64_t places = 0;
        std::uint64_t retires = 0;
    };
    std::map<std::uint64_t, TenantSummary> tenants;
    for (const Event &event : events) {
        if (event.kind == "tenant") {
            TenantSummary &tenant = tenants[event.tenant];
            tenant.shard = event.shard;
            ++tenant.epochs;
            tenant.lastGrant = event.grant;
            tenant.residentSum +=
                static_cast<double>(event.resident);
            if (std::isfinite(event.hbmShare))
                tenant.shareSum += event.hbmShare;
            if (std::isfinite(event.avf))
                tenant.avfSum += event.avf;
            continue;
        }
        if (event.tenant == 0)
            continue;
        TenantSummary &tenant = tenants[event.tenant];
        if (event.kind == "promote")
            ++tenant.promotes;
        else if (event.kind == "evict")
            ++tenant.evicts;
        else if (event.kind == "place")
            ++tenant.places;
        else if (event.kind == "retire")
            ++tenant.retires;
    }
    if (tenants.empty()) {
        std::cout << "ramp_explain: no tenant records (run the "
                     "placement service with --events-out to "
                     "collect them)\n";
        return 1;
    }
    TextTable table({"tenant", "shard", "epochs", "grant",
                     "mean_resident", "mean_hbm_share", "mean_avf",
                     "places", "promotes", "evicts", "retires"});
    for (const auto &[id, tenant] : tenants) {
        const double epochs =
            tenant.epochs > 0
                ? static_cast<double>(tenant.epochs)
                : 1.0;
        table.addRow({std::to_string(id), pageCell(tenant.shard),
                      std::to_string(tenant.epochs),
                      std::to_string(tenant.lastGrant),
                      num(tenant.residentSum / epochs),
                      tenant.epochs > 0
                          ? num(tenant.shareSum / epochs, 4)
                          : "-",
                      tenant.epochs > 0
                          ? num(tenant.avfSum / epochs, 4)
                          : "-",
                      std::to_string(tenant.places),
                      std::to_string(tenant.promotes),
                      std::to_string(tenant.evicts),
                      std::to_string(tenant.retires)});
    }
    table.print(std::cout,
                "tenant summary (" +
                    std::to_string(tenants.size()) + " tenants)");
    return 0;
}

int
summarize(const std::vector<Event> &events)
{
    if (events.empty()) {
        std::cout << "ramp_explain: the ledger is empty\n";
        return 1;
    }
    struct RunSummary
    {
        std::map<std::string, std::uint64_t> kinds;
        std::string policy;
    };
    std::map<std::string, RunSummary> runs;
    for (const Event &event : events) {
        RunSummary &run = runs[event.run];
        ++run.kinds[event.kind];
        if (run.policy.empty() && event.policy != "unknown")
            run.policy = event.policy;
    }
    TextTable table({"run", "policy", "places", "promotes",
                     "evicts", "swaps", "epochs", "faults"});
    for (const auto &[label, run] : runs) {
        auto count = [&](const char *kind) -> std::uint64_t {
            const auto it = run.kinds.find(kind);
            return it == run.kinds.end() ? 0 : it->second;
        };
        table.addRow({label, run.policy,
                      std::to_string(count("place")),
                      std::to_string(count("promote")),
                      std::to_string(count("evict")),
                      std::to_string(count("swap-in") +
                                     count("swap-out")),
                      std::to_string(count("epoch")),
                      std::to_string(count("fault"))});
    }
    table.print(std::cout, "decision ledger: " +
                               std::to_string(events.size()) +
                               " records across " +
                               std::to_string(runs.size()) +
                               " runs");
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    bool want_page = false;
    bool want_regret = false;
    bool want_churn = false;
    bool want_faults = false;
    bool want_region = false;
    bool want_tenants = false;
    bool have_tenant_filter = false;
    std::uint64_t page = noPage;
    std::uint64_t regret_k = 10;
    std::uint64_t tenant_filter = 0;
    std::vector<std::string> paths;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&](const char *flag) -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr,
                             "ramp_explain: %s needs a value\n",
                             flag);
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else if (arg == "--page") {
            want_page = true;
            page = parseCount("--page", value("--page"));
        } else if (arg == "--top-regret") {
            want_regret = true;
            regret_k =
                parseCount("--top-regret", value("--top-regret"));
        } else if (arg == "--migration-churn") {
            want_churn = true;
        } else if (arg == "--faults") {
            want_faults = true;
        } else if (arg == "--region") {
            want_region = true;
        } else if (arg == "--tenants") {
            want_tenants = true;
        } else if (arg == "--tenant") {
            have_tenant_filter = true;
            tenant_filter =
                parseCount("--tenant", value("--tenant"));
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr,
                         "ramp_explain: unknown flag '%s'\n",
                         arg.c_str());
            usage();
            return 2;
        } else {
            paths.push_back(arg);
        }
    }
    if (paths.size() != 1) {
        usage();
        return 2;
    }

    std::vector<Event> events;
    std::string error;
    if (!loadEvents(paths[0], events, error)) {
        std::fprintf(stderr, "ramp_explain: %s\n", error.c_str());
        return 2;
    }

    // The tenant filter narrows every query (and the default
    // summary) to one tenant's records before any analysis runs.
    if (have_tenant_filter)
        std::erase_if(events, [&](const Event &event) {
            return event.tenant != tenant_filter;
        });

    int code = 0;
    bool ran = false;
    if (want_page) {
        code = std::max(code, queryPage(events, page));
        ran = true;
    }
    if (want_regret) {
        code = std::max(code, queryTopRegret(events, regret_k));
        ran = true;
    }
    if (want_churn) {
        code = std::max(code, queryChurn(events));
        ran = true;
    }
    if (want_faults) {
        code = std::max(code, queryFaults(events));
        ran = true;
    }
    if (want_region) {
        code = std::max(code, queryRegion(events));
        ran = true;
    }
    if (want_tenants) {
        code = std::max(code, queryTenants(events));
        ran = true;
    }
    if (!ran)
        code = summarize(events);
    return code;
}
