/**
 * @file
 * ramp_prof: the cycle-profile analyzer.
 *
 *   ramp_prof [options] PROFILE.json            # top / tree / calls
 *   ramp_prof --diff BASE.json CAND.json        # per-phase deltas
 *
 * Reads the ramp-profile-v1 documents harness binaries write via
 * --profile-out and answers "where do the cycles go" (top
 * self-cycle table, phase-tree view) and "what moved" (diff mode:
 * per-phase self-cycle deltas against a baseline profile, the
 * measurement gate of the hot-path optimization campaign). The
 * --calls view prints phase paths and call counts only — for
 * deterministic workloads it is byte-identical at any --jobs, which
 * is what CI compares.
 *
 * Exit: 0 ok (diff: no phase slowed beyond the threshold), 1 on a
 * significant slowdown in diff mode, 2 on usage or unreadable
 * input.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "perf/prof_report.hh"

using namespace ramp;

namespace
{

void
usage()
{
    std::fprintf(
        stderr,
        "usage: ramp_prof [options] PROFILE.json\n"
        "       ramp_prof --diff BASE.json CANDIDATE.json\n"
        "\n"
        "  --top N           rows in the top table (default 20)\n"
        "  --tree            print the phase-tree view\n"
        "  --calls           print 'path calls' lines only (the\n"
        "                    schedule-independent structural view)\n"
        "  --diff            compare two profiles by phase path\n"
        "  --threshold-pct P significance threshold for diff mode\n"
        "                    (default 25)\n"
        "  --min-cycles N    ignore diff deltas smaller than N\n"
        "                    cycles (default 1000000)\n"
        "\n"
        "Exit: 0 ok, 1 significant slowdown (diff mode), 2 usage/"
        "unreadable input.\n");
}

double
parsePositive(const char *flag, const char *text)
{
    char *end = nullptr;
    const double value = std::strtod(text, &end);
    if (end == text || *end != '\0' || !(value > 0)) {
        std::fprintf(stderr,
                     "ramp_prof: %s needs a positive number, "
                     "got '%s'\n",
                     flag, text);
        std::exit(2);
    }
    return value;
}

} // namespace

int
main(int argc, char **argv)
{
    bool diff_mode = false;
    bool tree_view = false;
    bool calls_view = false;
    std::size_t top_n = 20;
    double threshold_pct = 25;
    std::uint64_t min_cycles = 1000000;
    std::vector<std::string> paths;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&](const char *flag) -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr,
                             "ramp_prof: %s needs a value\n", flag);
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else if (arg == "--diff") {
            diff_mode = true;
        } else if (arg == "--tree") {
            tree_view = true;
        } else if (arg == "--calls") {
            calls_view = true;
        } else if (arg == "--top") {
            top_n = static_cast<std::size_t>(
                parsePositive("--top", value("--top")));
        } else if (arg == "--threshold-pct") {
            threshold_pct = parsePositive(
                "--threshold-pct", value("--threshold-pct"));
        } else if (arg == "--min-cycles") {
            min_cycles = static_cast<std::uint64_t>(parsePositive(
                "--min-cycles", value("--min-cycles")));
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "ramp_prof: unknown flag '%s'\n",
                         arg.c_str());
            usage();
            return 2;
        } else {
            paths.push_back(arg);
        }
    }

    // Two positionals without --diff also mean a diff, matching
    // bench_diff's calling convention.
    if (paths.size() == 2)
        diff_mode = true;
    if ((diff_mode && paths.size() != 2) ||
        (!diff_mode && paths.size() != 1)) {
        usage();
        return 2;
    }

    std::string error;
    if (diff_mode) {
        perf::ProfileDoc base, cand;
        if (!perf::loadProfileDoc(paths[0], base, error) ||
            !perf::loadProfileDoc(paths[1], cand, error)) {
            std::fprintf(stderr, "ramp_prof: %s\n", error.c_str());
            return 2;
        }
        const auto deltas = perf::diffProfiles(
            base, cand, threshold_pct, min_cycles);
        std::cout << perf::renderDiffTable(base, cand, deltas);
        std::size_t slower = 0;
        std::size_t faster = 0;
        for (const auto &delta : deltas) {
            if (delta.regressed)
                ++slower;
            else if (delta.significant)
                ++faster;
        }
        if (slower == 0 && faster == 0) {
            std::cout << "ramp_prof: zero significant delta ("
                      << deltas.size() << " phases within ±"
                      << threshold_pct << "%)\n";
            return 0;
        }
        std::cout << "ramp_prof: " << slower << " phase(s) slower, "
                  << faster << " faster beyond ±" << threshold_pct
                  << "%\n";
        return slower > 0 ? 1 : 0;
    }

    perf::ProfileDoc doc;
    if (!perf::loadProfileDoc(paths[0], doc, error)) {
        std::fprintf(stderr, "ramp_prof: %s\n", error.c_str());
        return 2;
    }
    if (calls_view) {
        std::cout << perf::renderCalls(doc);
        return 0;
    }
    if (tree_view) {
        std::cout << perf::renderTree(doc);
        return 0;
    }
    std::cout << perf::renderTopTable(doc, top_n);
    return 0;
}
