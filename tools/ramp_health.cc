/**
 * @file
 * ramp_health: the health-timeline analyzer.
 *
 *   ramp_health [queries] TIMELINE.jsonl
 *
 * Reads a timeline file written by --timeline-out (DESIGN.md §14)
 * and answers the questions the end-of-run report cannot: which
 * rules fired where, how a signal moved across the epochs of a run,
 * and — while a campaign is still running — what just went wrong.
 *
 *   --rule N      firing timeline of one rule (by index in the
 *                 header's rule set)
 *   --runs        per-run sample/signal summary
 *   --tenant ID   narrow alerts and samples to one tenant's scope
 *   --shard IDX   narrow alerts and samples to one shard's scope
 *   --follow      poll the file and stream newly appeared alerts
 *                 (the harness rewrites atomically, so each flush
 *                 is re-read whole and only unseen alerts print)
 *
 * With no query, prints the per-run alert summary. Records are
 * ordered by (source, run label, sequence) before any analysis, so
 * the output is identical for the same simulation regardless of the
 * --jobs width that produced the file. Exit code: 0 when every
 * requested query found records, 1 when one came up empty, 2 on
 * usage or a malformed file.
 */

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <sys/stat.h>
#include <thread>
#include <tuple>
#include <vector>

#include "common/table.hh"
#include "perf/json.hh"

using namespace ramp;

namespace
{

constexpr const char *timelineSchema = "ramp-timeline-v1";

/** One "sample" line, denormalized. */
struct Sample
{
    std::string source;
    std::string run;
    std::uint64_t epoch = 0;
    std::uint64_t seq = 0;
    std::uint64_t moves = 0;
    std::uint64_t faultsInjected = 0;
    std::uint64_t pagesRetired = 0;
    double backlog = NAN;
    bool degraded = false;
    double fairness = NAN;
    double p99Slowdown = NAN;
    std::size_t tenants = 0;
    std::size_t shards = 0;
    bool anyShardDegraded = false;

    /** Scope hits for the --tenant / --shard filters. */
    std::set<std::uint64_t> tenantIds;
    std::set<std::uint64_t> shardIds;
};

/** One "alert" line, denormalized. */
struct Alert
{
    std::string severity;
    std::uint64_t rule = 0;
    std::string signal;
    std::string source;
    std::string run;
    std::uint64_t epoch = 0;
    std::uint64_t seq = 0;
    std::uint64_t tenant = 0; ///< 0 = run-wide
    std::int64_t shard = -1;  ///< -1 = run-wide
    double value = NAN;
    double threshold = NAN;
};

struct Timeline
{
    std::string tool;
    std::string rules;
    std::vector<Sample> samples;
    std::vector<Alert> alerts;
};

void
usage()
{
    std::fprintf(
        stderr,
        "usage: ramp_health [queries] TIMELINE.jsonl\n"
        "\n"
        "  --rule N     firing timeline of rule N (header index)\n"
        "  --runs       per-run sample/signal summary\n"
        "  --tenant ID  narrow to one tenant's scope\n"
        "  --shard IDX  narrow to one shard's scope\n"
        "  --follow     poll the file, stream unseen alerts\n"
        "\n"
        "No query prints the per-run alert summary. Exit: 0 ok,\n"
        "1 empty result, 2 usage/malformed input.\n");
}

std::uint64_t
parseCount(const char *flag, const char *text)
{
    char *end = nullptr;
    const unsigned long long value = std::strtoull(text, &end, 10);
    if (end == text || *end != '\0') {
        std::fprintf(stderr,
                     "ramp_health: %s needs a non-negative "
                     "integer, got '%s'\n",
                     flag, text);
        std::exit(2);
    }
    return value;
}

std::uint64_t
idOr(const perf::JsonValue &object, const std::string &key,
     std::uint64_t fallback)
{
    const perf::JsonValue *member = object.find(key);
    if (member == nullptr || !member->isNumber())
        return fallback;
    return static_cast<std::uint64_t>(member->number);
}

bool
loadTimeline(const std::string &path, Timeline &timeline,
             std::string &error, bool ignore_partial_tail = false)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        error = "cannot read " + path;
        return false;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    std::string content = buffer.str();
    if (ignore_partial_tail && !content.empty() &&
        content.back() != '\n') {
        // A live tail: the writer is mid-line. Drop the partial
        // trailing line — the next poll re-reads the file and
        // parses it once its newline has arrived — rather than
        // failing the whole parse (or reading a torn sample).
        const std::size_t last_newline = content.rfind('\n');
        content.resize(last_newline == std::string::npos
                           ? 0
                           : last_newline + 1);
    }
    timeline = Timeline{};
    std::istringstream lines(content);
    std::string line;
    std::size_t line_no = 0;
    bool saw_header = false;
    while (std::getline(lines, line)) {
        ++line_no;
        if (line.empty())
            continue;
        perf::JsonValue value;
        if (!perf::parseJson(line, value, error)) {
            error = path + ":" + std::to_string(line_no) + ": " +
                    error;
            return false;
        }
        if (!saw_header) {
            const std::string schema = value.stringOr("schema", "");
            if (schema != timelineSchema) {
                error = path + ": not a " +
                        std::string(timelineSchema) +
                        " file (schema '" + schema + "')";
                return false;
            }
            timeline.tool = value.stringOr("tool", "?");
            timeline.rules = value.stringOr("rules", "");
            saw_header = true;
            continue;
        }
        const std::string type = value.stringOr("type", "");
        if (type == "sample") {
            Sample sample;
            sample.source = value.stringOr("source", "?");
            sample.run = value.stringOr("run", "unattributed");
            sample.epoch = idOr(value, "epoch", 0);
            sample.seq = idOr(value, "seq", 0);
            sample.moves = idOr(value, "moves", 0);
            sample.faultsInjected =
                idOr(value, "faults_injected", 0);
            sample.pagesRetired = idOr(value, "pages_retired", 0);
            sample.backlog = value.numberOr("backlog", NAN);
            sample.degraded = value.boolOr("degraded", false);
            sample.fairness = value.numberOr("fairness", NAN);
            sample.p99Slowdown =
                value.numberOr("p99_slowdown", NAN);
            if (const perf::JsonValue *tenants =
                    value.find("tenants");
                tenants != nullptr && tenants->isArray()) {
                sample.tenants = tenants->array.size();
                for (const perf::JsonValue &row : tenants->array)
                    sample.tenantIds.insert(
                        idOr(row, "tenant", 0));
            }
            if (const perf::JsonValue *shards = value.find("shards");
                shards != nullptr && shards->isArray()) {
                sample.shards = shards->array.size();
                for (const perf::JsonValue &row : shards->array) {
                    sample.shardIds.insert(idOr(row, "shard", 0));
                    if (row.boolOr("degraded", false))
                        sample.anyShardDegraded = true;
                }
            }
            timeline.samples.push_back(std::move(sample));
        } else if (type == "alert") {
            Alert alert;
            alert.severity = value.stringOr("severity", "?");
            alert.rule = idOr(value, "rule", 0);
            alert.signal = value.stringOr("signal", "?");
            alert.source = value.stringOr("source", "?");
            alert.run = value.stringOr("run", "unattributed");
            alert.epoch = idOr(value, "epoch", 0);
            alert.seq = idOr(value, "seq", 0);
            alert.tenant = idOr(value, "tenant", 0);
            alert.shard = static_cast<std::int64_t>(
                idOr(value, "shard",
                     static_cast<std::uint64_t>(-1)));
            alert.value = value.numberOr("value", NAN);
            alert.threshold = value.numberOr("threshold", NAN);
            timeline.alerts.push_back(std::move(alert));
        }
        // "metrics" lines are the registry delta for bench tooling;
        // no per-run analysis reads them.
    }
    if (!saw_header) {
        error = path + ": empty timeline file (no header line)";
        return false;
    }
    // Canonical order: the writer already sorts, but an analyzer
    // must not trust its input to keep the --jobs invariance.
    std::stable_sort(timeline.samples.begin(),
                     timeline.samples.end(),
                     [](const Sample &a, const Sample &b) {
                         return std::tie(a.source, a.run, a.seq) <
                                std::tie(b.source, b.run, b.seq);
                     });
    std::stable_sort(
        timeline.alerts.begin(), timeline.alerts.end(),
        [](const Alert &a, const Alert &b) {
            return std::tie(a.source, a.run, a.seq, a.rule) <
                   std::tie(b.source, b.run, b.seq, b.rule);
        });
    return true;
}

std::string
num(double value, int precision = 4)
{
    if (!std::isfinite(value))
        return "-";
    std::ostringstream out;
    out.precision(precision);
    out << value;
    return out.str();
}

std::string
scopeCell(const Alert &alert)
{
    if (alert.tenant != 0)
        return "tenant " + std::to_string(alert.tenant);
    if (alert.shard >= 0)
        return "shard " + std::to_string(alert.shard);
    return "run";
}

/** Apply the --tenant / --shard scope filters in place. */
void
applyFilters(Timeline &timeline, bool have_tenant,
             std::uint64_t tenant, bool have_shard,
             std::uint64_t shard)
{
    if (have_tenant) {
        std::erase_if(timeline.alerts, [&](const Alert &alert) {
            return alert.tenant != tenant;
        });
        std::erase_if(timeline.samples, [&](const Sample &sample) {
            return sample.tenantIds.count(tenant) == 0;
        });
    }
    if (have_shard) {
        std::erase_if(timeline.alerts, [&](const Alert &alert) {
            return alert.shard !=
                   static_cast<std::int64_t>(shard);
        });
        std::erase_if(timeline.samples, [&](const Sample &sample) {
            return sample.shardIds.count(shard) == 0;
        });
    }
}

int
summarize(const Timeline &timeline)
{
    if (timeline.samples.empty() && timeline.alerts.empty()) {
        std::cout << "ramp_health: the timeline is empty\n";
        return 1;
    }
    struct RunSummary
    {
        std::uint64_t samples = 0;
        std::uint64_t lastEpoch = 0;
        std::uint64_t alerts = 0;
        std::uint64_t warns = 0;
        std::uint64_t moves = 0;
        std::uint64_t retired = 0;
        double worstP99 = NAN;
        double worstFairness = NAN;
        bool degraded = false;
    };
    std::map<std::pair<std::string, std::string>, RunSummary> runs;
    for (const Sample &sample : timeline.samples) {
        RunSummary &run = runs[{sample.source, sample.run}];
        ++run.samples;
        run.lastEpoch = std::max(run.lastEpoch, sample.epoch);
        run.moves += sample.moves;
        run.retired += sample.pagesRetired;
        if (std::isfinite(sample.p99Slowdown) &&
            !(run.worstP99 >= sample.p99Slowdown))
            run.worstP99 = sample.p99Slowdown;
        if (std::isfinite(sample.fairness) &&
            !(run.worstFairness <= sample.fairness))
            run.worstFairness = sample.fairness;
        if (sample.degraded || sample.anyShardDegraded)
            run.degraded = true;
    }
    for (const Alert &alert : timeline.alerts) {
        RunSummary &run = runs[{alert.source, alert.run}];
        if (alert.severity == "alert")
            ++run.alerts;
        else
            ++run.warns;
    }

    TextTable table({"source", "run", "samples", "epochs", "moves",
                     "retired", "worst_p99", "worst_fairness",
                     "degraded", "alerts", "warns"});
    for (const auto &[key, run] : runs)
        table.addRow({key.first, key.second,
                      std::to_string(run.samples),
                      std::to_string(run.lastEpoch),
                      std::to_string(run.moves),
                      std::to_string(run.retired),
                      num(run.worstP99), num(run.worstFairness),
                      run.degraded ? "yes" : "no",
                      std::to_string(run.alerts),
                      std::to_string(run.warns)});
    table.print(std::cout,
                timeline.tool + ": " +
                    std::to_string(timeline.samples.size()) +
                    " samples, " +
                    std::to_string(timeline.alerts.size()) +
                    " fired rules across " +
                    std::to_string(runs.size()) + " runs (rules: " +
                    (timeline.rules.empty() ? "none"
                                            : timeline.rules) +
                    ")");
    return 0;
}

int
queryRule(const Timeline &timeline, std::uint64_t rule)
{
    TextTable table({"severity", "signal", "source", "run", "epoch",
                     "scope", "value", "threshold"});
    std::size_t rows = 0;
    for (const Alert &alert : timeline.alerts) {
        if (alert.rule != rule)
            continue;
        table.addRow({alert.severity, alert.signal, alert.source,
                      alert.run, std::to_string(alert.epoch),
                      scopeCell(alert), num(alert.value),
                      num(alert.threshold)});
        ++rows;
    }
    if (rows == 0) {
        std::cout << "ramp_health: rule " << rule
                  << " never fired\n";
        return 1;
    }
    table.print(std::cout, "rule " + std::to_string(rule) +
                               " firings (" + std::to_string(rows) +
                               ")");
    return 0;
}

int
queryRuns(const Timeline &timeline)
{
    if (timeline.samples.empty()) {
        std::cout << "ramp_health: no samples\n";
        return 1;
    }
    TextTable table({"source", "run", "epoch", "moves", "faults",
                     "retired", "backlog", "fairness", "p99",
                     "degraded", "tenants", "shards"});
    for (const Sample &sample : timeline.samples)
        table.addRow(
            {sample.source, sample.run,
             std::to_string(sample.epoch),
             std::to_string(sample.moves),
             std::to_string(sample.faultsInjected),
             std::to_string(sample.pagesRetired),
             num(sample.backlog), num(sample.fairness),
             num(sample.p99Slowdown),
             sample.degraded || sample.anyShardDegraded ? "yes"
                                                        : "no",
             std::to_string(sample.tenants),
             std::to_string(sample.shards)});
    table.print(std::cout,
                "epoch samples (" +
                    std::to_string(timeline.samples.size()) + ")");
    return 0;
}

/** One alert as a human-readable --follow line. */
std::string
followLine(const Alert &alert)
{
    std::ostringstream out;
    out << "[" << alert.severity << "] rule " << alert.rule << " "
        << alert.signal << " " << scopeCell(alert) << " ("
        << alert.source << " " << alert.run << " epoch "
        << alert.epoch << ")";
    if (std::isfinite(alert.threshold))
        out << " value " << num(alert.value) << " vs "
            << num(alert.threshold);
    return out.str();
}

int
follow(const std::string &path, bool have_tenant,
       std::uint64_t tenant, bool have_shard, std::uint64_t shard)
{
    // The harness writes the timeline atomically (tmp + rename), so
    // a poll sees either the old document or the new one, never a
    // torn line; each flush is re-read whole and only alerts not
    // yet printed stream out. Keyed by the deterministic
    // (source, run, seq, rule, tenant, shard) coordinates so a
    // rewrite never re-prints an already-seen firing.
    std::set<std::tuple<std::string, std::string, std::uint64_t,
                        std::uint64_t, std::uint64_t, std::int64_t>>
        seen;
    std::cout << "ramp_health: following " << path
              << " (interrupt to stop)\n";
    time_t last_mtime = 0;
    bool reported_missing = false;
    for (;;) {
        struct stat st{};
        if (::stat(path.c_str(), &st) != 0) {
            if (!reported_missing) {
                std::cout << "ramp_health: waiting for " << path
                          << "\n";
                reported_missing = true;
            }
        } else if (st.st_mtime != last_mtime) {
            last_mtime = st.st_mtime;
            reported_missing = false;
            Timeline timeline;
            std::string error;
            if (loadTimeline(path, timeline, error,
                             /*ignore_partial_tail=*/true)) {
                applyFilters(timeline, have_tenant, tenant,
                             have_shard, shard);
                for (const Alert &alert : timeline.alerts) {
                    const auto key = std::make_tuple(
                        alert.source, alert.run, alert.seq,
                        alert.rule, alert.tenant, alert.shard);
                    if (!seen.insert(key).second)
                        continue;
                    std::cout << followLine(alert) << "\n";
                }
                std::cout.flush();
            }
            // A half-written file (a writer outside the harness)
            // simply parses on the next poll.
        }
        std::this_thread::sleep_for(
            std::chrono::milliseconds(500));
    }
}

} // namespace

int
main(int argc, char **argv)
{
    bool want_rule = false;
    bool want_runs = false;
    bool want_follow = false;
    bool have_tenant = false;
    bool have_shard = false;
    std::uint64_t rule = 0;
    std::uint64_t tenant = 0;
    std::uint64_t shard = 0;
    std::vector<std::string> paths;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&](const char *flag) -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr,
                             "ramp_health: %s needs a value\n",
                             flag);
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else if (arg == "--rule") {
            want_rule = true;
            rule = parseCount("--rule", value("--rule"));
        } else if (arg == "--runs") {
            want_runs = true;
        } else if (arg == "--follow") {
            want_follow = true;
        } else if (arg == "--tenant") {
            have_tenant = true;
            tenant = parseCount("--tenant", value("--tenant"));
        } else if (arg == "--shard") {
            have_shard = true;
            shard = parseCount("--shard", value("--shard"));
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr,
                         "ramp_health: unknown flag '%s'\n",
                         arg.c_str());
            usage();
            return 2;
        } else {
            paths.push_back(arg);
        }
    }
    if (paths.size() != 1) {
        usage();
        return 2;
    }

    if (want_follow)
        return follow(paths[0], have_tenant, tenant, have_shard,
                      shard);

    Timeline timeline;
    std::string error;
    if (!loadTimeline(paths[0], timeline, error)) {
        std::fprintf(stderr, "ramp_health: %s\n", error.c_str());
        return 2;
    }
    applyFilters(timeline, have_tenant, tenant, have_shard, shard);

    int code = 0;
    bool ran = false;
    if (want_rule) {
        code = std::max(code, queryRule(timeline, rule));
        ran = true;
    }
    if (want_runs) {
        code = std::max(code, queryRuns(timeline));
        ran = true;
    }
    if (!ran)
        code = summarize(timeline);
    return code;
}
