/**
 * @file
 * bench_diff: the BENCH_*.json regression gate.
 *
 *   bench_diff [options] BASELINE CANDIDATE
 *
 * Compares two ramp-bench-v1 documents metric by metric with
 * per-family noise thresholds (perf/bench_report.hh) and prints a
 * human-readable verdict table. Exit code: 0 when no metric
 * regressed beyond its threshold, 1 on any regression, 2 on usage
 * or unreadable/incomparable inputs. CI runs it against the
 * baselines committed at the repo root, so a PR that slows a hot
 * kernel down fails visibly instead of silently.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <set>
#include <string>
#include <vector>

#include "common/table.hh"
#include "perf/bench_report.hh"

using namespace ramp;

namespace
{

void
usage()
{
    std::fprintf(
        stderr,
        "usage: bench_diff [options] BASELINE.json CANDIDATE.json\n"
        "\n"
        "  --relax F         multiply every threshold by F\n"
        "  --wall-pct P      wall-time threshold (default 50)\n"
        "  --throughput-pct P  throughput threshold (default 40)\n"
        "  --rss-pct P       peak-RSS threshold (default 50)\n"
        "  --percentile-pct P  histogram-quantile threshold "
        "(default 75)\n"
        "  --micro-pct P     microbenchmark threshold "
        "(default 50)\n"
        "  --eventlog-pct P  decision-ledger threshold "
        "(default 60)\n"
        "  --service-pct P   multi-tenant service threshold "
        "(default 40;\n"
        "                    the fairness index keeps its own "
        "tight 5%% band)\n"
        "  --health-pct P    health-monitor threshold "
        "(default 40)\n"
        "  --family PREFIX   only compare metrics whose name "
        "starts\n"
        "                    with PREFIX (repeatable), so one "
        "family\n"
        "                    gates/relaxes independently\n"
        "\n"
        "Exit: 0 ok, 1 regression, 2 usage/unreadable input.\n");
}

double
parsePositive(const char *flag, const char *text)
{
    char *end = nullptr;
    const double value = std::strtod(text, &end);
    if (end == text || *end != '\0' || !(value > 0)) {
        std::fprintf(stderr,
                     "bench_diff: %s needs a positive number, "
                     "got '%s'\n",
                     flag, text);
        std::exit(2);
    }
    return value;
}

std::string
pct(double value)
{
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%+.1f%%", value);
    return buffer;
}

std::string
quantity(double value)
{
    char buffer[32];
    if (value >= 1e6)
        std::snprintf(buffer, sizeof(buffer), "%.3g", value);
    else
        std::snprintf(buffer, sizeof(buffer), "%.4g", value);
    return buffer;
}

} // namespace

int
main(int argc, char **argv)
{
    perf::DiffOptions options;
    std::vector<std::string> paths;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&](const char *flag) -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr,
                             "bench_diff: %s needs a value\n",
                             flag);
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else if (arg == "--relax") {
            options.relax = parsePositive("--relax",
                                          value("--relax"));
        } else if (arg == "--wall-pct") {
            options.wallPct =
                parsePositive("--wall-pct", value("--wall-pct"));
        } else if (arg == "--throughput-pct") {
            options.throughputPct = parsePositive(
                "--throughput-pct", value("--throughput-pct"));
        } else if (arg == "--rss-pct") {
            options.rssPct =
                parsePositive("--rss-pct", value("--rss-pct"));
        } else if (arg == "--percentile-pct") {
            options.percentilePct = parsePositive(
                "--percentile-pct", value("--percentile-pct"));
        } else if (arg == "--micro-pct") {
            options.microPct =
                parsePositive("--micro-pct", value("--micro-pct"));
        } else if (arg == "--eventlog-pct") {
            options.eventlogPct = parsePositive(
                "--eventlog-pct", value("--eventlog-pct"));
        } else if (arg == "--service-pct") {
            options.servicePct = parsePositive(
                "--service-pct", value("--service-pct"));
        } else if (arg == "--health-pct") {
            options.healthPct = parsePositive(
                "--health-pct", value("--health-pct"));
        } else if (arg == "--family") {
            options.families.push_back(value("--family"));
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr,
                         "bench_diff: unknown flag '%s'\n",
                         arg.c_str());
            usage();
            return 2;
        } else {
            paths.push_back(arg);
        }
    }
    if (paths.size() != 2) {
        usage();
        return 2;
    }

    perf::JsonValue baseline, candidate;
    std::string error;
    if (!perf::parseJsonFile(paths[0], baseline, error) ||
        !perf::parseJsonFile(paths[1], candidate, error)) {
        std::fprintf(stderr, "bench_diff: %s\n", error.c_str());
        return 2;
    }

    // Schema growth: a document may carry top-level blocks this
    // build predates (or postdates). Note and skip them so old
    // baselines stay comparable against new candidates.
    std::set<std::string> unknown_blocks;
    for (const auto &name : perf::unknownBenchBlocks(baseline))
        unknown_blocks.insert(name);
    for (const auto &name : perf::unknownBenchBlocks(candidate))
        unknown_blocks.insert(name);
    for (const auto &name : unknown_blocks)
        std::cout << "bench_diff: note: skipping unknown block '"
                  << name << "'\n";

    const auto diffs = perf::compareBenchReports(
        baseline, candidate, options, error);
    if (!error.empty()) {
        std::fprintf(stderr, "bench_diff: %s\n", error.c_str());
        return 2;
    }

    std::size_t regressions = 0;
    TextTable table({"metric", "baseline", "candidate", "delta",
                     "limit", "verdict"});
    for (const auto &diff : diffs) {
        if (diff.regressed)
            ++regressions;
        const bool improved = diff.higherIsBetter
                                  ? diff.deltaPct > diff.limitPct
                                  : diff.deltaPct < -diff.limitPct;
        table.addRow({diff.name, quantity(diff.baseline),
                      quantity(diff.candidate), pct(diff.deltaPct),
                      "±" + quantity(diff.limitPct) + "%",
                      diff.regressed  ? "REGRESSED"
                      : improved      ? "improved"
                                      : "ok"});
    }
    table.print(std::cout,
                "bench_diff: " + paths[0] + " -> " + paths[1] +
                    " (" + std::to_string(diffs.size()) +
                    " metrics compared)");
    if (diffs.empty())
        std::cout << "bench_diff: no comparable metrics "
                     "(documents measure nothing in common)\n";
    if (regressions > 0) {
        std::cout << "bench_diff: " << regressions << " metric(s) "
                  << "regressed beyond their noise threshold\n";
        return 1;
    }
    std::cout << "bench_diff: no regressions\n";
    return 0;
}
