/**
 * @file
 * Tests for the static placement policies (src/placement/policies).
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "placement/policies.hh"

namespace ramp
{
namespace
{

/** Four-page profile with orthogonal hotness and risk. */
PageProfile
cornerProfile()
{
    PageProfile profile;
    auto fill = [&](PageId page, int reads, int writes, double avf) {
        for (int i = 0; i < reads; ++i)
            profile.recordAccess(page, false);
        for (int i = 0; i < writes; ++i)
            profile.recordAccess(page, true);
        profile.setAvf(page, avf);
    };
    fill(0, 90, 10, 0.9); // hot, high risk
    fill(1, 20, 80, 0.1); // hot, low risk (write heavy)
    fill(2, 5, 0, 0.8);   // cold, high risk
    fill(3, 1, 4, 0.05);  // cold, low risk
    return profile;
}

TEST(Policies, DdrOnlyPlacesNothing)
{
    const auto map = buildStaticPlacement(StaticPolicy::DdrOnly,
                                          cornerProfile(), 4);
    EXPECT_EQ(map.hbmUsedPages(), 0u);
}

TEST(Policies, PerfFocusedPicksHottest)
{
    const auto map = buildStaticPlacement(StaticPolicy::PerfFocused,
                                          cornerProfile(), 2);
    EXPECT_EQ(map.memoryOf(0), MemoryId::HBM);
    EXPECT_EQ(map.memoryOf(1), MemoryId::HBM);
    EXPECT_EQ(map.memoryOf(2), MemoryId::DDR);
    EXPECT_EQ(map.memoryOf(3), MemoryId::DDR);
}

TEST(Policies, ReliabilityFocusedPicksLowestAvf)
{
    const auto map = buildStaticPlacement(
        StaticPolicy::ReliabilityFocused, cornerProfile(), 2);
    EXPECT_EQ(map.memoryOf(3), MemoryId::HBM); // avf .05
    EXPECT_EQ(map.memoryOf(1), MemoryId::HBM); // avf .1
    EXPECT_EQ(map.memoryOf(0), MemoryId::DDR);
}

TEST(Policies, BalancedPicksHotLowRiskOnly)
{
    const auto map = buildStaticPlacement(StaticPolicy::Balanced,
                                          cornerProfile(), 3);
    // Only page 1 is in the hot & low-risk quadrant; the policy is
    // conservative and leaves the HBM underfilled.
    EXPECT_EQ(map.memoryOf(1), MemoryId::HBM);
    EXPECT_EQ(map.hbmUsedPages(), 1u);
}

TEST(Policies, WrRatioPrefersHighWriteShare)
{
    const auto map = buildStaticPlacement(StaticPolicy::WrRatio,
                                          cornerProfile(), 2);
    // Wr ratios: p0=0.11, p1=4, p2=0, p3=4 -> pages 1 and 3.
    EXPECT_EQ(map.memoryOf(1), MemoryId::HBM);
    EXPECT_EQ(map.memoryOf(3), MemoryId::HBM);
}

TEST(Policies, Wr2RatioAvoidsColdPages)
{
    const auto map = buildStaticPlacement(StaticPolicy::Wr2Ratio,
                                          cornerProfile(), 1);
    // Wr^2: p1 = 6400/20 = 320 dominates p3 = 16.
    EXPECT_EQ(map.memoryOf(1), MemoryId::HBM);
    EXPECT_EQ(map.memoryOf(3), MemoryId::DDR);
}

TEST(Policies, BalancedFilledTopsUp)
{
    const auto map =
        buildBalancedFilledPlacement(cornerProfile(), 3);
    // Quadrant page first, then hottest remaining.
    EXPECT_EQ(map.memoryOf(1), MemoryId::HBM);
    EXPECT_EQ(map.memoryOf(0), MemoryId::HBM);
    EXPECT_EQ(map.hbmUsedPages(), 3u);
}

TEST(Policies, HotFractionSweep)
{
    const auto profile = cornerProfile();
    const auto none = buildHotFractionPlacement(profile, 4, 0.0);
    EXPECT_EQ(none.hbmUsedPages(), 0u);
    const auto half = buildHotFractionPlacement(profile, 4, 0.5);
    EXPECT_EQ(half.hbmUsedPages(), 2u);
    const auto full = buildHotFractionPlacement(profile, 4, 1.0);
    EXPECT_EQ(full.hbmUsedPages(), 4u);
}

TEST(PoliciesDeathTest, HotFractionOutOfRangeIsFatal)
{
    EXPECT_EXIT(
        buildHotFractionPlacement(cornerProfile(), 4, 1.5),
        ::testing::ExitedWithCode(1), "fraction");
}

TEST(Policies, PolicyNames)
{
    EXPECT_STREQ(policyName(StaticPolicy::DdrOnly), "ddr-only");
    EXPECT_STREQ(policyName(StaticPolicy::Wr2Ratio), "wr2-ratio");
}

/** Property: every policy respects HBM capacity on random input. */
class PolicyCapacityTest
    : public ::testing::TestWithParam<StaticPolicy>
{
};

TEST_P(PolicyCapacityTest, NeverExceedsCapacity)
{
    Rng rng(123);
    PageProfile profile;
    for (PageId page = 0; page < 500; ++page) {
        const auto reads = rng.nextRange(100);
        const auto writes = rng.nextRange(100);
        for (std::uint64_t i = 0; i < reads; ++i)
            profile.recordAccess(page, false);
        for (std::uint64_t i = 0; i < writes; ++i)
            profile.recordAccess(page, true);
        profile.setAvf(page, rng.nextDouble());
    }
    for (const std::uint64_t capacity : {1ULL, 37ULL, 400ULL, 600ULL}) {
        const auto map =
            buildStaticPlacement(GetParam(), profile, capacity);
        EXPECT_LE(map.hbmUsedPages(), capacity);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, PolicyCapacityTest,
    ::testing::Values(StaticPolicy::DdrOnly, StaticPolicy::PerfFocused,
                      StaticPolicy::ReliabilityFocused,
                      StaticPolicy::Balanced, StaticPolicy::WrRatio,
                      StaticPolicy::Wr2Ratio));

} // namespace
} // namespace ramp
