/**
 * @file
 * Cross-validation of the set-associative cache against a naive
 * reference implementation on random access streams.
 */

#include <gtest/gtest.h>

#include <list>
#include <unordered_map>
#include <vector>

#include "cache/cache.hh"
#include "common/rng.hh"

namespace ramp
{
namespace
{

/** Obviously-correct LRU write-back cache on std::list. */
class ReferenceCache
{
  public:
    explicit ReferenceCache(const CacheConfig &config)
        : config_(config), sets_(config.numSets())
    {
    }

    SetAssocCache::AccessResult
    access(Addr addr, bool is_write)
    {
        const std::uint64_t line = addr / config_.lineBytes;
        const std::uint64_t set_idx = line % sets_.size();
        auto &set = sets_[set_idx];

        SetAssocCache::AccessResult result;
        for (auto it = set.begin(); it != set.end(); ++it) {
            if (it->line == line) {
                it->dirty = it->dirty || is_write;
                set.splice(set.begin(), set, it);
                result.hit = true;
                return result;
            }
        }
        if (set.size() >= config_.associativity) {
            const auto &victim = set.back();
            if (victim.dirty) {
                result.writeback = true;
                result.writebackAddr =
                    victim.line * config_.lineBytes;
            }
            set.pop_back();
        }
        set.push_front({line, is_write});
        return result;
    }

  private:
    struct Way
    {
        std::uint64_t line;
        bool dirty;
    };

    CacheConfig config_;
    std::vector<std::list<Way>> sets_;
};

class CacheFuzzTest
    : public ::testing::TestWithParam<std::tuple<std::uint64_t,
                                                 std::uint32_t>>
{
};

TEST_P(CacheFuzzTest, MatchesReferenceExactly)
{
    const auto [seed, ways] = GetParam();
    const CacheConfig config{4096, ways, 64};
    SetAssocCache cache(config);
    ReferenceCache reference(config);
    Rng rng(seed);

    for (int i = 0; i < 30000; ++i) {
        // Skewed address stream to exercise hits and evictions.
        const Addr addr =
            (rng.nextBool(0.5) ? rng.nextRange(2048)
                               : rng.nextRange(64 * 1024)) *
            64;
        const bool is_write = rng.nextBool(0.3);
        const auto got = cache.access(addr, is_write);
        const auto want = reference.access(addr, is_write);
        ASSERT_EQ(got.hit, want.hit) << "access " << i;
        ASSERT_EQ(got.writeback, want.writeback) << "access " << i;
        if (want.writeback)
            ASSERT_EQ(got.writebackAddr, want.writebackAddr)
                << "access " << i;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, CacheFuzzTest,
    ::testing::Combine(::testing::Values(11, 22, 33),
                       ::testing::Values(1u, 2u, 4u, 8u)));

} // namespace
} // namespace ramp
