/**
 * @file
 * Tests for the experiment harness (src/hma/experiment).
 */

#include <gtest/gtest.h>

#include "hma/experiment.hh"

namespace ramp
{
namespace
{

/** Shared small-workload fixture (one generation per suite). */
class ExperimentFixture : public ::testing::Test
{
  protected:
    static void SetUpTestSuite()
    {
        GeneratorOptions options;
        options.traceScale = 0.03;
        data_ = new WorkloadData(
            prepareWorkload(mixWorkload("mix1"), options));
        config_ = new SystemConfig(SystemConfig::scaledDefault());
        config_->fcIntervalCycles = 100000;
        config_->meaIntervalCycles = 5000;
        base_ = new SimResult(runDdrOnly(*config_, *data_));
    }

    static void TearDownTestSuite()
    {
        delete base_;
        delete config_;
        delete data_;
        base_ = nullptr;
        config_ = nullptr;
        data_ = nullptr;
    }

    static WorkloadData *data_;
    static SystemConfig *config_;
    static SimResult *base_;
};

WorkloadData *ExperimentFixture::data_ = nullptr;
SystemConfig *ExperimentFixture::config_ = nullptr;
SimResult *ExperimentFixture::base_ = nullptr;

TEST_F(ExperimentFixture, DdrOnlyProfilesEverything)
{
    EXPECT_EQ(base_->label, "ddr-only");
    EXPECT_GT(base_->profile.footprintPages(), 0u);
    EXPECT_EQ(base_->hbmAccessFraction, 0.0);
    double avf_sum = 0;
    for (const auto &[page, stats] : base_->profile.pages())
        avf_sum += stats.avf;
    EXPECT_GT(avf_sum, 0.0);
}

TEST_F(ExperimentFixture, PerfStaticBeatsBaseline)
{
    const auto perf = runStaticPolicy(
        *config_, *data_, StaticPolicy::PerfFocused, base_->profile);
    EXPECT_EQ(perf.label, "perf-focused");
    EXPECT_GT(perf.ipc, base_->ipc);
    EXPECT_GT(perf.ser, base_->ser);
    EXPECT_GT(perf.hbmAccessFraction, 0.2);
}

TEST_F(ExperimentFixture, ReliabilityPoliciesTradeIpcForSer)
{
    const auto perf = runStaticPolicy(
        *config_, *data_, StaticPolicy::PerfFocused, base_->profile);
    for (const auto policy :
         {StaticPolicy::ReliabilityFocused, StaticPolicy::Balanced,
          StaticPolicy::WrRatio, StaticPolicy::Wr2Ratio}) {
        const auto result = runStaticPolicy(*config_, *data_, policy,
                                            base_->profile);
        EXPECT_LT(result.ser, perf.ser) << policyName(policy);
        EXPECT_LE(result.ipc, perf.ipc * 1.02) << policyName(policy);
        EXPECT_GE(result.ipc, base_->ipc * 0.9)
            << policyName(policy);
    }
}

TEST_F(ExperimentFixture, HotFractionSweepIsMonotonicInSer)
{
    double last_ser = -1;
    for (const double fraction : {0.0, 0.5, 1.0}) {
        const auto result = runHotFraction(*config_, *data_,
                                           base_->profile, fraction);
        EXPECT_GE(result.ser, last_ser);
        last_ser = result.ser;
    }
}

TEST_F(ExperimentFixture, DynamicSchemesRun)
{
    for (const auto scheme :
         {DynamicScheme::PerfFocused, DynamicScheme::FcReliability,
          DynamicScheme::CrossCounter}) {
        const auto result =
            runDynamic(*config_, *data_, scheme, base_->profile);
        EXPECT_EQ(result.label, dynamicSchemeName(scheme));
        EXPECT_GT(result.ipc, 0.0);
        EXPECT_GT(result.hbmAccessFraction, 0.0);
    }
}

TEST_F(ExperimentFixture, ReliabilityMigrationLowersSer)
{
    const auto perf = runDynamic(*config_, *data_,
                                 DynamicScheme::PerfFocused,
                                 base_->profile);
    const auto fc = runDynamic(*config_, *data_,
                               DynamicScheme::FcReliability,
                               base_->profile);
    EXPECT_LT(fc.ser, perf.ser);
}

TEST_F(ExperimentFixture, AnnotatedPlacementRuns)
{
    const auto result =
        runAnnotated(*config_, *data_, base_->profile);
    EXPECT_EQ(result.label, "annotated");
    EXPECT_GT(result.ipc, 0.0);
    EXPECT_GT(result.hbmAccessFraction, 0.0);
    const auto selection = annotationsFor(*data_, base_->profile,
                                          config_->hbmPages());
    EXPECT_GT(selection.count(), 0u);
    EXPECT_LE(selection.pinnedPages, config_->hbmPages());
}

TEST_F(ExperimentFixture, CustomEngineHelper)
{
    FcReliabilityMigration engine(config_->fcIntervalCycles, 64);
    const auto result =
        runWithEngine(*config_, *data_, engine, base_->profile);
    EXPECT_EQ(result.label, std::string("fc-migration"));
    EXPECT_GT(result.ipc, 0.0);
}

TEST(Experiment, MakeEngineHonoursConfig)
{
    SystemConfig config = SystemConfig::scaledDefault();
    config.fcIntervalCycles = 120000;
    config.meaIntervalCycles = 12000;
    const auto engine =
        makeEngine(DynamicScheme::PerfFocused, config);
    EXPECT_EQ(engine->interval(), 120000u);
    EXPECT_EQ(config.fcPerMea(), 10u);
    const auto cc = makeEngine(DynamicScheme::CrossCounter, config);
    EXPECT_EQ(cc->interval(), config.meaIntervalCycles);
}

TEST(Experiment, SchemeNames)
{
    EXPECT_STREQ(dynamicSchemeName(DynamicScheme::PerfFocused),
                 "perf-migration");
    EXPECT_STREQ(dynamicSchemeName(DynamicScheme::CrossCounter),
                 "cc-migration");
}

} // namespace
} // namespace ramp
